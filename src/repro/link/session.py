"""Timing and goodput of one reader/node exchange.

One round is::

    | PIE query | turnaround | node frame (preamble + coded bits) | guard |

The turnaround covers the acoustic round trip — at 300 m that is 0.4 s,
which *dominates* the round at long range: underwater backscatter is
latency-limited by physics, not by the PHY. The goodput model keeps every
term explicit so the E7 throughput-vs-range curve has the right shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.downlink import PIEConfig
from repro.phy.frame import FrameConfig


@dataclass(frozen=True)
class FrameTiming:
    """Durations of the pieces of one exchange.

    Attributes:
        chip_rate: uplink chip rate, chips/s.
        pie: downlink timing.
        frame_config: uplink framing.
        query_bits: length of the reader's query command.
        guard_s: settling guard after each response.
    """

    chip_rate: float = 2_000.0
    pie: PIEConfig = field(default_factory=PIEConfig)
    frame_config: FrameConfig = field(default_factory=FrameConfig)
    query_bits: int = 16
    guard_s: float = 10e-3

    def query_duration_s(self) -> float:
        """Worst-case PIE query duration (all ones), seconds."""
        return self.query_bits * self.pie.bit_duration_s(1)

    def response_duration_s(self, payload_bytes: int) -> float:
        """Node frame duration on the uplink, seconds."""
        chips = self.frame_config.frame_chips(payload_bytes)
        return chips / self.chip_rate

    def turnaround_s(self, range_m: float, sound_speed: float = 1500.0) -> float:
        """Acoustic round-trip time, seconds."""
        if range_m < 0:
            raise ValueError("range must be non-negative")
        return 2.0 * range_m / sound_speed

    def round_duration_s(self, payload_bytes: int, range_m: float,
                         sound_speed: float = 1500.0) -> float:
        """Total duration of one exchange, seconds."""
        return (
            self.query_duration_s()
            + self.turnaround_s(range_m, sound_speed)
            + self.response_duration_s(payload_bytes)
            + self.guard_s
        )


@dataclass(frozen=True)
class QuerySession:
    """Steady-state goodput of repeated exchanges with one node.

    Attributes:
        timing: exchange timing.
        payload_bytes: payload per frame.
        frame_success_probability: delivery probability per attempt
            (from a link budget or a measured campaign).
        max_retries: retransmissions before a frame is abandoned.
    """

    timing: FrameTiming = field(default_factory=FrameTiming)
    payload_bytes: int = 8
    frame_success_probability: float = 1.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.frame_success_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def expected_attempts(self) -> float:
        """Mean attempts per frame (truncated geometric)."""
        p = self.frame_success_probability
        if p <= 0.0:
            return float(self.max_retries + 1)
        n = self.max_retries + 1
        q = 1.0 - p
        # E[attempts] for a geometric capped at n tries.
        return (1.0 - q**n) / p

    def delivery_probability(self) -> float:
        """Probability a frame is delivered within the retry budget."""
        return 1.0 - (1.0 - self.frame_success_probability) ** (self.max_retries + 1)

    def goodput_bps(self, range_m: float, sound_speed: float = 1500.0) -> float:
        """Delivered payload bits per second of wall-clock time."""
        round_s = self.timing.round_duration_s(
            self.payload_bytes, range_m, sound_speed
        )
        attempts = self.expected_attempts()
        delivered_bits = self.payload_bytes * 8 * self.delivery_probability()
        return delivered_bits / (round_s * attempts)

    def uplink_bitrate_bps(self) -> float:
        """Raw uplink bitrate during a response (chip rate / chips-per-bit)."""
        from repro.phy.coding import chips_per_bit

        return self.timing.chip_rate / chips_per_bit(
            self.timing.frame_config.line_code
        )
