"""Link layer: interrogation sessions and multi-node inventory.

Backscatter networks are reader-coordinated: nodes cannot hear each other
(they have no receiver beyond an envelope detector), so all medium access
is scheduled by the reader. The layer provides:

* :mod:`repro.link.session` — timing of one query/response exchange and
  the goodput arithmetic for a single node;
* :mod:`repro.link.mac` — slotted-ALOHA inventory of multiple nodes with
  per-node delivery probabilities;
* :mod:`repro.link.stats` — throughput/latency accounting shared by both.
"""

from repro.link.session import FrameTiming, QuerySession
from repro.link.mac import InventoryResult, SlottedAlohaInventory
from repro.link.stats import LinkStats
from repro.link.commands import Command, Opcode, decode_command, encode_command
from repro.link.node_fsm import NodeController, NodeState
from repro.link.protocol import (
    CommandLevelInventory,
    ProtocolTrace,
    read_selected,
)
from repro.link.energy import (
    DutyCycledNode,
    StorageState,
    endurance_interrogations,
)
from repro.link.adaptive import (
    DEFAULT_MODES,
    PhyMode,
    adaptive_goodput_bps,
    frame_delivery_probability,
    mode_goodput_bps,
    select_mode,
)

__all__ = [
    "FrameTiming",
    "QuerySession",
    "SlottedAlohaInventory",
    "InventoryResult",
    "LinkStats",
    "Command",
    "Opcode",
    "encode_command",
    "decode_command",
    "NodeController",
    "NodeState",
    "CommandLevelInventory",
    "ProtocolTrace",
    "read_selected",
    "DutyCycledNode",
    "StorageState",
    "endurance_interrogations",
    "PhyMode",
    "DEFAULT_MODES",
    "select_mode",
    "mode_goodput_bps",
    "adaptive_goodput_bps",
    "frame_delivery_probability",
]
