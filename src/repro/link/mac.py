"""Slotted-ALOHA inventory of a multi-node backscatter network.

The reader broadcasts a QUERY carrying a window size ``W``; every
un-inventoried node picks a slot uniformly at random and backscatters its
frame in that slot. Slots with exactly one transmission succeed with the
node's frame-delivery probability; collided slots are lost (the reader
cannot separate two overlapping backscatter signatures at these SNRs).
ACKed nodes stay silent in later rounds; the reader adapts ``W`` toward
the number of outstanding nodes (the classic Q-style adjustment).

The model is packet-level: per-node delivery probabilities come from the
link budget (or a waveform campaign), so the E10 benchmark composes the
whole stack without re-simulating waveforms per slot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.link.session import FrameTiming
from repro.link.stats import LinkStats


@dataclass(frozen=True)
class InventoryResult:
    """Outcome of an inventory run.

    Attributes:
        inventoried: node ids successfully read, in completion order.
        rounds: query rounds used.
        elapsed_s: total wall-clock time spent.
        stats: detailed counters.
    """

    inventoried: List[int]
    rounds: int
    elapsed_s: float
    stats: LinkStats

    @property
    def complete(self) -> bool:
        """All requested nodes were read."""
        return self.stats.frames_delivered >= len(self.inventoried) > 0

    def node_read_rate_hz(self) -> float:
        """Nodes inventoried per second."""
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.inventoried) / self.elapsed_s


@dataclass
class SlottedAlohaInventory:
    """Reader-side inventory engine.

    Attributes:
        timing: exchange timing (slot duration derives from the frame).
        payload_bytes: payload per node frame.
        initial_window: starting slot-count per round (power of two).
        max_rounds: give-up bound.
        seed: RNG seed (slot choices are the only randomness besides
            delivery draws).
    """

    timing: FrameTiming = field(default_factory=FrameTiming)
    payload_bytes: int = 8
    initial_window: int = 4
    max_rounds: int = 64
    seed: int = 11

    def run(
        self,
        node_ranges_m: Dict[int, float],
        delivery_probability: Optional[Dict[int, float]] = None,
        sound_speed: float = 1500.0,
    ) -> InventoryResult:
        """Inventory a set of nodes.

        Args:
            node_ranges_m: node id -> slant range (sets slot timing; the
                slot must cover the farthest outstanding node).
            delivery_probability: node id -> per-attempt frame delivery
                probability (1.0 for all if omitted).
            sound_speed: medium sound speed.

        Returns:
            The inventory outcome.
        """
        if not node_ranges_m:
            raise ValueError("need at least one node")
        probs = delivery_probability or {n: 1.0 for n in node_ranges_m}
        for n in node_ranges_m:
            if n not in probs:
                raise ValueError(f"missing delivery probability for node {n}")

        rng = np.random.default_rng(self.seed)
        outstanding = set(node_ranges_m)
        inventoried: List[int] = []
        stats = LinkStats()
        window = max(self.initial_window, 1)
        elapsed = 0.0
        rounds = 0

        while outstanding and rounds < self.max_rounds:
            rounds += 1
            max_range = max(node_ranges_m[n] for n in outstanding)
            slot_s = self.timing.response_duration_s(self.payload_bytes) + (
                self.timing.guard_s
            )
            round_overhead = self.timing.query_duration_s() + self.timing.turnaround_s(
                max_range, sound_speed
            )
            elapsed += round_overhead + window * slot_s
            stats.busy_time_s = elapsed

            slots: Dict[int, List[int]] = {}
            for node in sorted(outstanding):
                slot = int(rng.integers(0, window))
                slots.setdefault(slot, []).append(node)
                stats.record_attempt(node)

            for slot in range(window):
                contenders = slots.get(slot, [])
                if not contenders:
                    stats.record_idle_slot()
                elif len(contenders) > 1:
                    stats.record_collision()
                else:
                    node = contenders[0]
                    if rng.random() < probs[node]:
                        outstanding.discard(node)
                        inventoried.append(node)
                        stats.record_delivery(node, self.payload_bytes * 8)

            window = _adapt_window(window, len(outstanding))

        return InventoryResult(
            inventoried=inventoried, rounds=rounds, elapsed_s=elapsed, stats=stats
        )


def _adapt_window(window: int, outstanding: int) -> int:
    """Q-style window adaptation toward the outstanding population."""
    if outstanding == 0:
        return window
    target = 1 << max(0, math.ceil(math.log2(max(outstanding, 1))))
    if target > window:
        return min(window * 2, 256)
    if target < window:
        return max(window // 2, 1)
    return window


def throughput_efficiency(result: InventoryResult) -> float:
    """Successful reads per attempted transmission (ALOHA efficiency)."""
    if result.stats.frames_sent <= 0:
        return 0.0
    return result.stats.frames_delivered / result.stats.frames_sent
