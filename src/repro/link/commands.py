"""Downlink command vocabulary.

Commands ride the PIE downlink and must decode on a comparator-and-timer
budget, so the format is fixed-length and tiny::

    +--------+---------+-------+
    | opcode | arg     | crc4  |     16 bits total
    | 4 bits | 8 bits  | 4 bits|
    +--------+---------+-------+

Vocabulary (a deliberately minimal Gen2-flavoured set):

* ``QUERY(q)``    — open an inventory round with ``2**q`` slots; every
  unselected, awake node draws a slot.
* ``QUERY_REP``   — advance to the next slot of the current round.
* ``ACK(id)``     — acknowledge node ``id``; it stays silent for the rest
  of the inventory.
* ``SELECT(id)``  — address one node; only it answers until deselected
  (``SELECT(0)`` clears).
* ``SLEEP(code)`` — duty-cycle command: nodes hibernate for
  ``2**code`` superframes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

CRC4_POLY = 0x3  # x^4 + x + 1
COMMAND_BITS = 16


class Opcode(enum.IntEnum):
    """Command opcodes (4 bits)."""

    QUERY = 0x1
    QUERY_REP = 0x2
    ACK = 0x3
    SELECT = 0x4
    SLEEP = 0x5


@dataclass(frozen=True)
class Command:
    """One downlink command.

    Attributes:
        opcode: what to do.
        arg: 8-bit argument (slot exponent, node id, or sleep code).
    """

    opcode: Opcode
    arg: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.arg <= 255:
            raise ValueError("arg must fit in 8 bits")

    # -- convenience constructors ------------------------------------------

    @staticmethod
    def query(q: int) -> "Command":
        """Open a round with ``2**q`` slots (q in 0..15)."""
        if not 0 <= q <= 15:
            raise ValueError("q must be in 0..15")
        return Command(Opcode.QUERY, q)

    @staticmethod
    def query_rep() -> "Command":
        """Advance to the next slot."""
        return Command(Opcode.QUERY_REP, 0)

    @staticmethod
    def ack(node_id: int) -> "Command":
        """Acknowledge a node."""
        return Command(Opcode.ACK, node_id)

    @staticmethod
    def select(node_id: int) -> "Command":
        """Address a single node (0 clears the selection)."""
        return Command(Opcode.SELECT, node_id)

    @staticmethod
    def sleep(code: int) -> "Command":
        """Hibernate nodes for ``2**code`` superframes."""
        return Command(Opcode.SLEEP, code)


def crc4(bits: Sequence[int]) -> int:
    """CRC-4 (poly x^4+x+1, init 0) over a bit sequence."""
    reg = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError("bits must be 0/1")
        reg ^= int(b) << 3
        if reg & 0x8:
            reg = ((reg << 1) ^ CRC4_POLY) & 0xF
        else:
            reg = (reg << 1) & 0xF
    return reg


def encode_command(command: Command) -> np.ndarray:
    """Serialise a command to its 16-bit wire format."""
    body = [(int(command.opcode) >> (3 - i)) & 1 for i in range(4)]
    body += [(command.arg >> (7 - i)) & 1 for i in range(8)]
    fcs = crc4(body)
    bits = body + [(fcs >> (3 - i)) & 1 for i in range(4)]
    return np.array(bits, dtype=np.int64)


def decode_command(bits: Sequence[int]) -> Optional[Command]:
    """Parse 16 command bits; None on bad length, CRC, or opcode."""
    bits = list(bits)
    if len(bits) != COMMAND_BITS:
        return None
    body, fcs_bits = bits[:12], bits[12:]
    try:
        if crc4(body) != int("".join(str(int(b)) for b in fcs_bits), 2):
            return None
    except ValueError:
        return None
    opcode_val = int("".join(str(int(b)) for b in body[:4]), 2)
    arg = int("".join(str(int(b)) for b in body[4:]), 2)
    try:
        opcode = Opcode(opcode_val)
    except ValueError:
        return None
    return Command(opcode, arg)
