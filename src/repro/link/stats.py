"""Throughput/latency accounting for link-layer simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LinkStats:
    """Mutable counters accumulated during a link-layer simulation."""

    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    idle_slots: int = 0
    busy_time_s: float = 0.0
    payload_bits_delivered: int = 0
    per_node_attempts: Dict[int, int] = field(default_factory=dict)

    def record_attempt(self, node_id: int) -> None:
        """Count a transmission attempt by a node."""
        self.frames_sent += 1
        self.per_node_attempts[node_id] = self.per_node_attempts.get(node_id, 0) + 1

    def record_delivery(self, node_id: int, payload_bits: int) -> None:
        """Count a successful delivery."""
        self.frames_delivered += 1
        self.payload_bits_delivered += payload_bits
        # node_id kept for symmetry with record_attempt; per-node delivery
        # is implied by inventory completion.
        __ = node_id

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent (0 when nothing was sent)."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_delivered / self.frames_sent

    def goodput_bps(self) -> float:
        """Delivered payload bits per busy second."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.payload_bits_delivered / self.busy_time_s

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary for benchmark tables."""
        return {
            "frames_sent": float(self.frames_sent),
            "frames_delivered": float(self.frames_delivered),
            "collisions": float(self.collisions),
            "idle_slots": float(self.idle_slots),
            "delivery_ratio": self.delivery_ratio,
            "busy_time_s": self.busy_time_s,
            "goodput_bps": self.goodput_bps(),
        }
