"""Throughput/latency accounting for link-layer simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.metrics import counter

FRAMES_SENT_COUNTER = counter(
    "repro.link.stats.frames_sent", "link-layer transmission attempts"
)
FRAMES_DELIVERED_COUNTER = counter(
    "repro.link.stats.frames_delivered", "link-layer frames delivered intact"
)
COLLISIONS_COUNTER = counter(
    "repro.link.stats.collisions", "slots lost to multi-node collisions"
)
IDLE_SLOTS_COUNTER = counter(
    "repro.link.stats.idle_slots", "inventory slots no node answered in"
)


@dataclass
class LinkStats:
    """Mutable counters accumulated during a link-layer simulation.

    The record methods mirror every count into the active
    :mod:`repro.obs.metrics` registry (``repro.link.stats.*``), so
    campaign manifests see link-layer traffic without the MAC threading
    a registry through.
    """

    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    idle_slots: int = 0
    busy_time_s: float = 0.0
    payload_bits_delivered: int = 0
    per_node_attempts: Dict[int, int] = field(default_factory=dict)

    def record_attempt(self, node_id: int) -> None:
        """Count a transmission attempt by a node."""
        self.frames_sent += 1
        self.per_node_attempts[node_id] = self.per_node_attempts.get(node_id, 0) + 1
        FRAMES_SENT_COUNTER.inc()

    def record_delivery(self, node_id: int, payload_bits: int) -> None:
        """Count a successful delivery."""
        self.frames_delivered += 1
        self.payload_bits_delivered += payload_bits
        FRAMES_DELIVERED_COUNTER.inc()
        # node_id kept for symmetry with record_attempt; per-node delivery
        # is implied by inventory completion.
        __ = node_id

    def record_collision(self) -> None:
        """Count a slot lost to a collision."""
        self.collisions += 1
        COLLISIONS_COUNTER.inc()

    def record_idle_slot(self) -> None:
        """Count a slot no node answered in."""
        self.idle_slots += 1
        IDLE_SLOTS_COUNTER.inc()

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent; explicitly 0.0 when nothing was sent, so
        empty-campaign summaries and manifests serialize cleanly."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_delivered / self.frames_sent

    def goodput_bps(self) -> float:
        """Delivered payload bits per busy second; explicitly 0.0 when
        no busy time accrued (empty or failed campaigns)."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.payload_bits_delivered / self.busy_time_s

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary for benchmark tables."""
        return {
            "frames_sent": float(self.frames_sent),
            "frames_delivered": float(self.frames_delivered),
            "collisions": float(self.collisions),
            "idle_slots": float(self.idle_slots),
            "delivery_ratio": self.delivery_ratio,
            "busy_time_s": self.busy_time_s,
            "goodput_bps": self.goodput_bps(),
        }
