"""Node-side protocol state machine.

The node's sequencer is a handful of states driven entirely by decoded
downlink commands and slot boundaries — exactly what an FSM in a
microwatt MCU can run:

::

            SLEEP(c)             QUERY(q): draw slot
    ASLEEP <-------- READY ----------------------------+
       |  wake after   ^  ^                            v
       +---------------+  |        slot==0?        ARBITRATE
                          |  ACK(my id)               |
                          +--------- REPLIED <--------+ (respond, wait)
                          inventoried      QUERY_REP: slot -= 1

``SELECT`` short-circuits arbitration: a selected node answers every
query in slot 0 and the others stay silent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.link.commands import Command, Opcode


class NodeState(enum.Enum):
    """FSM states of the node sequencer."""

    READY = "ready"
    ARBITRATE = "arbitrate"
    REPLIED = "replied"
    INVENTORIED = "inventoried"
    ASLEEP = "asleep"


@dataclass
class NodeController:
    """The protocol controller of one backscatter node.

    Attributes:
        node_id: this node's 8-bit address.
        seed: seeds the slot-draw RNG (hardware would use a ring
            oscillator; a seed keeps simulations reproducible).
    """

    node_id: int
    seed: int = 0
    state: NodeState = NodeState.READY
    slot_counter: int = 0
    sleep_remaining: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.node_id <= 255:
            raise ValueError("node_id must be in 1..255")
        self._rng = np.random.default_rng((self.seed << 8) | self.node_id)
        self.selected = False

    # -- inputs ----------------------------------------------------------------

    def on_command(self, command: Optional[Command]) -> bool:
        """Process a decoded command; True when the node should respond now.

        A ``None`` command (CRC failure at the node) is ignored — the
        reader will retry.
        """
        if command is None:
            return False
        handler = {
            Opcode.QUERY: self._on_query,
            Opcode.QUERY_REP: self._on_query_rep,
            Opcode.ACK: self._on_ack,
            Opcode.SELECT: self._on_select,
            Opcode.SLEEP: self._on_sleep,
        }[command.opcode]
        return handler(command)

    def on_superframe(self) -> None:
        """Clock the sleep counter at each superframe boundary."""
        if self.state is NodeState.ASLEEP:
            self.sleep_remaining -= 1
            if self.sleep_remaining <= 0:
                self.state = NodeState.READY

    # -- per-opcode behaviour ------------------------------------------------------

    def _on_query(self, command: Command) -> bool:
        if self.state in (NodeState.ASLEEP, NodeState.INVENTORIED):
            return False
        if self.selected:
            self.state = NodeState.REPLIED
            return True
        window = 1 << command.arg
        self.slot_counter = int(self._rng.integers(0, window))
        if self.slot_counter == 0:
            self.state = NodeState.REPLIED
            return True
        self.state = NodeState.ARBITRATE
        return False

    def _on_query_rep(self, command: Command) -> bool:
        __ = command
        if self.state is not NodeState.ARBITRATE:
            return False
        self.slot_counter -= 1
        if self.slot_counter == 0:
            self.state = NodeState.REPLIED
            return True
        return False

    def _on_ack(self, command: Command) -> bool:
        if command.arg == self.node_id and self.state is NodeState.REPLIED:
            self.state = NodeState.INVENTORIED
        return False

    def _on_select(self, command: Command) -> bool:
        if self.state is NodeState.ASLEEP:
            return False
        self.selected = command.arg == self.node_id
        if command.arg == 0:
            self.selected = False
        return False

    def _on_sleep(self, command: Command) -> bool:
        if self.state is NodeState.INVENTORIED:
            return False
        self.state = NodeState.ASLEEP
        self.sleep_remaining = 1 << command.arg
        return False

    # -- maintenance ------------------------------------------------------------------

    def reset_inventory(self) -> None:
        """New inventory epoch: inventoried nodes participate again."""
        if self.state is not NodeState.ASLEEP:
            self.state = NodeState.READY
