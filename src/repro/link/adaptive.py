"""Link adaptation: pick the PHY mode the channel can carry.

A fixed chip rate wastes the channel twice: near the reader it leaves
throughput on the table, at the cliff it delivers nothing. The reader
knows its SNR (from the preamble eye of probe frames, or the budget), so
it can select per-node modes — chip rate plus FEC — like every modern
radio does. The node side costs nothing: the mode is announced in the
QUERY command and the node's FSM just clocks its switch differently.

The analytic mode model chains: chip-rate noise bandwidth -> chip BER ->
per-block FEC survival -> frame delivery -> session goodput. The E19
benchmark checks the adaptive envelope against every fixed mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.link.session import FrameTiming, QuerySession
from repro.phy.ber import ber_ook_coherent
from repro.phy.coding import chips_per_bit
from repro.phy.fec import FECScheme
from repro.phy.frame import FrameConfig
from repro.sim.linkbudget import LinkBudget


@dataclass(frozen=True)
class PhyMode:
    """One selectable PHY operating mode.

    Attributes:
        name: display label.
        chip_rate: uplink chip rate, chips/s.
        fec: body FEC scheme.
        interleave_depth: interleaver rows when FEC is on.
    """

    name: str
    chip_rate: float
    fec: FECScheme = FECScheme.NONE
    interleave_depth: int = 1

    def frame_config(self) -> FrameConfig:
        """The framing this mode uses."""
        return FrameConfig(fec=self.fec, interleave_depth=self.interleave_depth)

    def information_rate_bps(self) -> float:
        """Peak payload bitrate during a response."""
        from repro.phy.fec import code_rate

        return (
            self.chip_rate
            / chips_per_bit(FrameConfig().line_code)
            * code_rate(self.fec)
        )


DEFAULT_MODES = (
    PhyMode("fast", 4_000.0),
    PhyMode("nominal", 2_000.0),
    PhyMode("nominal+fec", 2_000.0, FECScheme.HAMMING74, 8),
    PhyMode("slow", 500.0),
    PhyMode("slow+fec", 500.0, FECScheme.HAMMING74, 8),
)


def chip_error_probability(budget: LinkBudget, mode: PhyMode, range_m: float) -> float:
    """Chip-level error probability of a mode at a range.

    The budget's SNR scales with the noise bandwidth (the chip rate), so
    the mode's rate enters through the scenario's in-band noise.
    """
    import dataclasses

    scenario = dataclasses.replace(budget.scenario, chip_rate=mode.chip_rate)
    scaled = budget.with_(scenario=scenario)
    # Chip decisions integrate one chip: use the per-chip SNR (no FM0
    # bit-level processing gain at this stage).
    snr_chip_db = scaled.snr_db(range_m) - scaled.processing_gain_db()
    return ber_ook_coherent(snr_chip_db)


def frame_delivery_probability(
    budget: LinkBudget, mode: PhyMode, range_m: float, payload_bytes: int = 8
) -> float:
    """Probability one frame of a mode survives at a range.

    Chains chip errors through the line code and FEC. FM0 maps one chip
    error to one bit error (pair mismatch), so bit error ~ 2p(1-p) for
    chip error p; FEC then repairs per block.
    """
    p_chip = chip_error_probability(budget, mode, range_m)
    p_bit = 2.0 * p_chip * (1.0 - p_chip)
    cfg = mode.frame_config()

    header_ok = (1.0 - p_bit) ** cfg.header_bits()
    info_bits = cfg.body_bits(payload_bytes)
    if mode.fec is FECScheme.HAMMING74:
        blocks = -(-info_bits // 4)
        q = 1.0 - p_bit
        block_ok = q**7 + 7.0 * p_bit * q**6
        body_ok = block_ok**blocks
    elif mode.fec is FECScheme.REPETITION3:
        q = 1.0 - p_bit
        bit_ok = q**3 + 3.0 * p_bit * q**2
        body_ok = bit_ok**info_bits
    else:
        body_ok = (1.0 - p_bit) ** info_bits
    return header_ok * body_ok


def mode_goodput_bps(
    budget: LinkBudget,
    mode: PhyMode,
    range_m: float,
    payload_bytes: int = 8,
    sound_speed: float = 1500.0,
) -> float:
    """Session goodput of a mode at a range (retries included)."""
    p_frame = frame_delivery_probability(budget, mode, range_m, payload_bytes)
    timing = FrameTiming(chip_rate=mode.chip_rate, frame_config=mode.frame_config())
    session = QuerySession(
        timing=timing,
        payload_bytes=payload_bytes,
        frame_success_probability=p_frame,
    )
    return session.goodput_bps(range_m, sound_speed)


def select_mode(
    budget: LinkBudget,
    range_m: float,
    modes: Sequence[PhyMode] = DEFAULT_MODES,
    payload_bytes: int = 8,
    min_delivery: float = 0.5,
) -> Optional[PhyMode]:
    """Pick the goodput-maximising mode with acceptable delivery.

    Args:
        budget: the link budget (array, environment, reader).
        range_m: node range.
        modes: candidate modes.
        payload_bytes: frame payload.
        min_delivery: modes below this per-attempt delivery probability
            are excluded (retry storms are worse than slow modes).

    Returns:
        The best mode, or None when no mode clears ``min_delivery``
        (the node is out of range for every configuration).
    """
    if not modes:
        raise ValueError("need at least one candidate mode")
    best: Optional[PhyMode] = None
    best_goodput = -math.inf
    for mode in modes:
        delivery = frame_delivery_probability(budget, mode, range_m, payload_bytes)
        if delivery < min_delivery:
            continue
        goodput = mode_goodput_bps(budget, mode, range_m, payload_bytes)
        if goodput > best_goodput:
            best = mode
            best_goodput = goodput
    return best


def adaptive_goodput_bps(
    budget: LinkBudget,
    range_m: float,
    modes: Sequence[PhyMode] = DEFAULT_MODES,
    payload_bytes: int = 8,
) -> float:
    """Goodput of the adaptive policy (0 when out of range entirely)."""
    mode = select_mode(budget, range_m, modes, payload_bytes)
    if mode is None:
        return 0.0
    return mode_goodput_bps(budget, mode, range_m, payload_bytes)
