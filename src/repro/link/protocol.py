"""Command-level protocol simulation: reader driver + node FSMs.

Where :mod:`repro.link.mac` models inventory statistically, this module
runs the *actual protocol*: the reader issues QUERY/QUERY_REP/ACK
commands, each node's :class:`~repro.link.node_fsm.NodeController` reacts
exactly as its microwatt sequencer would, and the reader observes slots
as idle / single / collided. Downlink commands and uplink frames can each
be lost with configurable probabilities, exercising the retry logic that
statistics gloss over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.link.commands import Command
from repro.link.node_fsm import NodeController, NodeState


@dataclass
class ProtocolTrace:
    """What happened during a command-level inventory run.

    Attributes:
        commands_sent: total downlink commands issued.
        slots_idle: slots nobody answered.
        slots_single: slots with exactly one response.
        slots_collided: slots with overlapping responses.
        inventoried: node ids read, in order.
        acks_sent: ACK commands issued.
    """

    commands_sent: int = 0
    slots_idle: int = 0
    slots_single: int = 0
    slots_collided: int = 0
    inventoried: List[int] = field(default_factory=list)
    acks_sent: int = 0

    @property
    def total_slots(self) -> int:
        """All observed slots."""
        return self.slots_idle + self.slots_single + self.slots_collided


@dataclass
class CommandLevelInventory:
    """Reader-side inventory driver over real node FSMs.

    Attributes:
        q: slot exponent of each QUERY (window = 2**q).
        max_rounds: QUERY rounds before giving up.
        downlink_loss: probability a node misses a command (CRC fail).
        uplink_loss: probability a node's frame is not decodable.
        seed: reader-side RNG seed for the loss draws.
    """

    q: int = 2
    max_rounds: int = 32
    downlink_loss: float = 0.0
    uplink_loss: float = 0.0
    seed: int = 1

    def run(self, nodes: List[NodeController]) -> ProtocolTrace:
        """Inventory a set of nodes; returns the protocol trace."""
        if not nodes:
            raise ValueError("need at least one node")
        rng = np.random.default_rng(self.seed)
        trace = ProtocolTrace()

        for _ in range(self.max_rounds):
            outstanding = [
                n for n in nodes
                if n.state not in (NodeState.INVENTORIED, NodeState.ASLEEP)
            ]
            if not outstanding:
                break
            responders = self._broadcast(Command.query(self.q), nodes, rng, trace)
            self._resolve_slot(responders, rng, trace)
            for _ in range((1 << self.q) - 1):
                responders = self._broadcast(Command.query_rep(), nodes, rng, trace)
                self._resolve_slot(responders, rng, trace)
        return trace

    def _broadcast(
        self,
        command: Command,
        nodes: List[NodeController],
        rng: np.random.Generator,
        trace: ProtocolTrace,
    ) -> List[NodeController]:
        """Send a command; return the nodes that respond in this slot."""
        trace.commands_sent += 1
        responders = []
        for node in nodes:
            delivered = rng.random() >= self.downlink_loss
            if node.on_command(command if delivered else None):
                responders.append(node)
        return responders

    def _resolve_slot(
        self,
        responders: List[NodeController],
        rng: np.random.Generator,
        trace: ProtocolTrace,
    ) -> None:
        """Score one slot and ACK a successful singleton."""
        if not responders:
            trace.slots_idle += 1
            return
        if len(responders) > 1:
            trace.slots_collided += 1
            # Collided nodes return to arbitration on the next QUERY.
            for node in responders:
                node.state = NodeState.READY
            return
        node = responders[0]
        if rng.random() < self.uplink_loss:
            # Frame lost: reader saw energy but no decode; node will
            # contend again next round.
            trace.slots_single += 1
            node.state = NodeState.READY
            return
        trace.slots_single += 1
        trace.acks_sent += 1
        trace.commands_sent += 1
        node.on_command(Command.ack(node.node_id))
        if node.state is NodeState.INVENTORIED:
            trace.inventoried.append(node.node_id)


def read_selected(
    node: NodeController,
    rounds: int = 1,
    downlink_loss: float = 0.0,
    seed: int = 2,
) -> int:
    """Poll one SELECTed node repeatedly; returns successful reads.

    Models the steady-state monitoring mode: SELECT once, then every
    QUERY is answered by that node alone in slot 0.
    """
    rng = np.random.default_rng(seed)
    node.on_command(Command.select(node.node_id))
    reads = 0
    for _ in range(rounds):
        delivered = rng.random() >= downlink_loss
        if node.on_command(Command.query(0) if delivered else None):
            reads += 1
            node.state = NodeState.READY  # ready for the next poll
    return reads
