"""Energy-aware node operation: storage, recharge, and endurance.

The E8 budget shows the node self-sustains only within a few tens of
metres of the reader — yet the headline experiments read nodes at 300 m.
The reconciliation is *storage-assisted* operation: the supercapacitor is
topped up when the reader (a boat) passes close, and each long-range
interrogation then spends a microjoule-scale budget from storage. This
module models that life cycle so deployments can be planned:

* :class:`StorageState` — the supercap (charge/discharge bookkeeping),
* :class:`DutyCycledNode` — a node that answers only when its storage
  covers the exchange, recharging whenever the carrier is strong enough,
* :func:`endurance_interrogations` — how many reads one full charge buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.link.session import FrameTiming
from repro.vanatta.node import VanAttaNode


@dataclass
class StorageState:
    """A storage capacitor tracked by voltage.

    Attributes:
        capacitance_f: storage capacitance, farads.
        voltage_v: current voltage.
        max_voltage_v: charge ceiling (regulator clamp).
        min_voltage_v: brown-out floor — below this the sequencer cannot
            run and the node is silent.
    """

    capacitance_f: float = 220e-6
    voltage_v: float = 0.0
    max_voltage_v: float = 2.4
    min_voltage_v: float = 1.8

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if not 0 <= self.min_voltage_v < self.max_voltage_v:
            raise ValueError("need 0 <= min_voltage < max_voltage")

    def energy_j(self) -> float:
        """Stored energy, joules."""
        return 0.5 * self.capacitance_f * self.voltage_v**2

    def usable_energy_j(self) -> float:
        """Energy above the brown-out floor, joules."""
        floor = 0.5 * self.capacitance_f * self.min_voltage_v**2
        return max(self.energy_j() - floor, 0.0)

    def charge(self, power_w: float, duration_s: float) -> None:
        """Integrate charging power over a duration (clamped at max)."""
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        energy = self.energy_j() + power_w * duration_s
        cap = 0.5 * self.capacitance_f * self.max_voltage_v**2
        energy = min(energy, cap)
        self.voltage_v = (2.0 * energy / self.capacitance_f) ** 0.5

    def discharge(self, energy_j: float) -> bool:
        """Spend energy if available above the floor; False if it browns out."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        if energy_j > self.usable_energy_j():
            return False
        remaining = self.energy_j() - energy_j
        self.voltage_v = (2.0 * remaining / self.capacitance_f) ** 0.5
        return True

    @property
    def alive(self) -> bool:
        """Above the brown-out floor."""
        return self.voltage_v >= self.min_voltage_v


@dataclass
class DutyCycledNode:
    """A storage-backed node participating in interrogations.

    Attributes:
        node: the physical node (harvester + budget + array).
        storage: the supercap state.
        timing: exchange timing (sets per-response energy).
        payload_bytes: frame size the node answers with.
    """

    node: VanAttaNode = field(default_factory=VanAttaNode)
    storage: StorageState = field(default_factory=StorageState)
    timing: FrameTiming = field(default_factory=FrameTiming)
    payload_bytes: int = 8

    def response_energy_j(self) -> float:
        """Energy one response costs (active MCU + switching for a frame)."""
        duration = self.timing.response_duration_s(self.payload_bytes)
        bitrate = self.timing.chip_rate / 2.0  # FM0: 2 chips/bit
        active_power = (
            self.node.budget.mcu_active_w
            + self.node.budget.switch_driver_w
            + self.node.budget.switching_energy_per_bit_j * bitrate
            + self.node.switch.switching_power_w(self.timing.chip_rate)
        )
        return active_power * duration

    def idle_power_w(self) -> float:
        """Power burned while waiting for a query."""
        return self.node.budget.mcu_sleep_w + self.node.budget.wakeup_receiver_w

    def recharge(self, incident_level_db: float, duration_s: float,
                 frequency_hz: float = 18_500.0) -> None:
        """Harvest from a carrier for a duration (minus idle burn)."""
        harvested = self.node.harvested_power_w(incident_level_db, frequency_hz)
        net = harvested - self.idle_power_w()
        if net >= 0:
            self.storage.charge(net, duration_s)
        else:
            self.storage.discharge(min(-net * duration_s,
                                       self.storage.usable_energy_j()))

    def try_respond(self) -> bool:
        """Answer a query if storage allows; spends the response energy."""
        return self.storage.discharge(self.response_energy_j())

    def idle_wait(self, duration_s: float,
                  incident_level_db: float = -300.0,
                  frequency_hz: float = 18_500.0) -> None:
        """Wait between queries, harvesting whatever trickle exists."""
        self.recharge(incident_level_db, duration_s, frequency_hz)


def endurance_interrogations(
    node: DutyCycledNode, polling_period_s: float = 60.0
) -> int:
    """How many long-range exchanges a full charge supports.

    Assumes no recharge at the interrogation range (the node is beyond
    the harvesting radius) and idle burn between polls.

    Args:
        node: the duty-cycled node (storage is reset to full).
        polling_period_s: time between interrogations.

    Returns:
        Number of responses delivered before brown-out.
    """
    node.storage.voltage_v = node.storage.max_voltage_v
    count = 0
    # Hard bound keeps pathological configurations from looping forever.
    for _ in range(10_000_000):
        node.idle_wait(polling_period_s)
        if not node.try_respond():
            break
        count += 1
    return count
