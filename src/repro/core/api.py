"""The public facade over the full stack.

Most experiments need only three things: an environment
(:class:`~repro.sim.scenario.Scenario`), a node
(:class:`~repro.vanatta.node.VanAttaNode`), and either the analytic
budget (:func:`default_vab_budget`) or a Monte-Carlo waveform run
(:func:`simulate_link`). The :class:`Reader` bundles the transmit and
receive chains for users driving the DSP directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.phy.frame import FrameConfig
from repro.phy.receiver import DemodResult, ReaderReceiver
from repro.phy.transmitter import ReaderTransmitter
from repro.sim.linkbudget import LinkBudget
from repro.sim.results import BERPoint
from repro.sim.scenario import Scenario
from repro.sim.trials import TrialCampaign
from repro.vanatta.array import VanAttaArray
from repro.vanatta.node import VanAttaNode
from repro.vanatta.retrodirective import monostatic_gain


@dataclass
class Reader:
    """The interrogator: projector TX chain plus hydrophone RX chain.

    Attributes:
        scenario: environment defaults (carrier, rates, source level).
        frame_config: uplink framing shared with nodes.
    """

    scenario: Scenario = field(default_factory=Scenario.river)
    frame_config: FrameConfig = field(default_factory=FrameConfig)

    def __post_init__(self) -> None:
        self.tx = ReaderTransmitter(
            carrier_hz=self.scenario.carrier_hz,
            fs=self.scenario.fs,
            source_level_db=self.scenario.source_level_db,
        )
        self.rx = ReaderReceiver(
            fs=self.scenario.fs,
            chip_rate=self.scenario.chip_rate,
            frame_config=self.frame_config,
        )

    def carrier(self, duration_s: float) -> np.ndarray:
        """Unit CW carrier at the reader's baseband rate."""
        return self.tx.carrier(duration_s)

    def demodulate(self, record: np.ndarray) -> DemodResult:
        """Run the receive chain on a baseband record."""
        return self.rx.demodulate(record)


@dataclass(frozen=True)
class LinkReport:
    """Summary of a simulated link at one operating point.

    Attributes:
        point: Monte-Carlo aggregate (None when trials == 0).
        predicted_snr_db: analytic link-budget SNR.
        predicted_ber: analytic link-budget BER.
        range_m: reader-node range.
        incidence_deg: node orientation offset.
    """

    point: Optional[BERPoint]
    predicted_snr_db: float
    predicted_ber: float
    range_m: float
    incidence_deg: float

    @property
    def ber(self) -> float:
        """Measured BER when trials ran, else the prediction."""
        return self.point.ber if self.point is not None else self.predicted_ber

    @property
    def frame_success_rate(self) -> float:
        """Measured frame delivery rate (0 when no trials ran)."""
        return self.point.frame_success_rate if self.point is not None else 0.0


def default_vab_budget(
    scenario: Scenario,
    num_elements: int = 4,
    theta_deg: Optional[float] = None,
) -> LinkBudget:
    """The standard VAB link budget for a scenario.

    Evaluates the actual array model at the scenario's incidence angle, so
    orientation sweeps change the budget the way they change the hardware.
    """
    array = VanAttaArray.uniform(
        num_elements=num_elements,
        frequency_hz=scenario.carrier_hz,
        sound_speed=scenario.water.sound_speed,
    )
    angle = scenario.incidence_deg if theta_deg is None else theta_deg
    gain = abs(
        monostatic_gain(array, scenario.carrier_hz, angle, scenario.water.sound_speed)
    )
    return LinkBudget(
        scenario=scenario,
        array_gain_db=20.0 * math.log10(max(gain, 1e-12)),
    )


def simulate_link(
    scenario: Scenario,
    node: Optional[VanAttaNode] = None,
    trials: int = 10,
    seed: int = 2023,
    payload_bytes: int = 8,
) -> LinkReport:
    """Simulate a link: analytic prediction plus optional waveform trials.

    Args:
        scenario: environment and geometry.
        node: node model (default 4-element VAB node).
        trials: Monte-Carlo waveform trials (0 = analytic only).
        seed: campaign seed.
        payload_bytes: frame payload size.

    Returns:
        A :class:`LinkReport` combining both fidelities.
    """
    if node is None:
        node = VanAttaNode()
    budget = default_vab_budget(scenario, node.array.num_elements)
    point = None
    if trials > 0:
        campaign = TrialCampaign(
            trials_per_point=trials,
            seed=seed,
            payload_bytes=payload_bytes,
            node_factory=lambda: node,
        )
        point = campaign.run_point(scenario)
    return LinkReport(
        point=point,
        predicted_snr_db=budget.snr_db(),
        predicted_ber=budget.ber(),
        range_m=scenario.range_m,
        incidence_deg=scenario.incidence_deg,
    )
