"""High-level facade: the API most users need.

::

    from repro.core import Reader, VanAttaNode, Scenario, simulate_link

    scenario = Scenario.river(range_m=100.0)
    report = simulate_link(scenario, trials=20)
    print(report.ber, report.frame_success_rate)
"""

from repro.core.api import (
    LinkReport,
    Reader,
    default_vab_budget,
    simulate_link,
)
from repro.sim.scenario import Scenario
from repro.sim.linkbudget import LinkBudget
from repro.vanatta.node import VanAttaNode

__all__ = [
    "Reader",
    "LinkReport",
    "simulate_link",
    "default_vab_budget",
    "Scenario",
    "LinkBudget",
    "VanAttaNode",
]
