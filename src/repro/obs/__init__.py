"""Unified observability: spans, metrics, manifests, ledger, traces, probes.

Campaigns at the paper's trial counts (>1,500 field trials) are only
trustworthy when you can see inside them: where the wall-clock went,
how the caches behaved, which receiver stages failed, and exactly what
configuration produced a result file. This package is the substrate the
rest of the simulator reports through:

* :mod:`repro.obs.spans` — hierarchical trace spans
  (``campaign > point > trial > channel/reflect/noise/demod``) with a
  no-op fast path when no tracer is installed.
* :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, histograms) that engine layers register
  instruments with.
* :mod:`repro.obs.manifest` — run manifests and JSONL event logs, the
  durable record of a campaign run, plus the manifest JSON codec.
* :mod:`repro.obs.ledger` — a persistent content-addressed run store:
  every observed campaign filed under a digest of its configuration,
  so repeats collide and nothing silently shadows anything.
* :mod:`repro.obs.trace` — Chrome trace-event export (``chrome://
  tracing`` / Perfetto) of a run's event log and span totals.
* :mod:`repro.obs.progress` — live trials-done/rate/ETA reporting with
  TTY autodetection and heartbeat events.
* :mod:`repro.obs.probes` — near-zero-overhead runtime physics
  invariant probes (finite signals, level ceilings, BER bounds, frame
  accounting) wired into the hot engine paths.
* :mod:`repro.obs.report` — renders a manifest/event log into the
  per-stage, per-point breakdown behind ``repro obs report``, and the
  ``BENCH_*`` perf-trajectory timeline.

Layering: ``obs`` sits below :mod:`repro.sim` — simulation code imports
``obs``, never the reverse — so any subsystem (PHY, link, baselines)
can instrument itself without dependency cycles.
"""

from repro.obs.spans import (
    SpanTracer,
    active_tracer,
    collect_spans,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    counter,
    gauge,
    histogram,
    instruments,
    metrics_snapshot,
    reset_metrics,
    use_registry,
)
from repro.obs.manifest import (
    EventLog,
    RunManifest,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    read_events,
    save_manifest,
    scenario_snapshot,
)
from repro.obs.ledger import (
    Ledger,
    LedgerRecord,
    diff_manifests,
    render_diff,
    render_ledger,
    run_id,
    run_key,
)
from repro.obs.probes import (
    ProbeViolation,
    probe_finite,
    probe_invariant,
    probe_mode,
    probe_signal,
    probe_unit_interval,
    probes,
    set_probe_mode,
)
from repro.obs.progress import ProgressReporter, progress_enabled
from repro.obs.trace import (
    chrome_trace,
    validate_trace_events,
    write_trace,
)
from repro.obs.report import render_report, render_timeline

__all__ = [
    "SpanTracer",
    "span",
    "collect_spans",
    "active_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "instruments",
    "use_registry",
    "active_registry",
    "metrics_snapshot",
    "reset_metrics",
    "EventLog",
    "RunManifest",
    "read_events",
    "scenario_snapshot",
    "manifest_to_dict",
    "manifest_from_dict",
    "save_manifest",
    "load_manifest",
    "Ledger",
    "LedgerRecord",
    "run_key",
    "run_id",
    "diff_manifests",
    "render_diff",
    "render_ledger",
    "ProbeViolation",
    "probes",
    "probe_mode",
    "set_probe_mode",
    "probe_signal",
    "probe_finite",
    "probe_unit_interval",
    "probe_invariant",
    "ProgressReporter",
    "progress_enabled",
    "chrome_trace",
    "write_trace",
    "validate_trace_events",
    "render_report",
    "render_timeline",
]
