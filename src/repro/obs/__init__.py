"""Unified observability: trace spans, metrics, manifests, reports.

Campaigns at the paper's trial counts (>1,500 field trials) are only
trustworthy when you can see inside them: where the wall-clock went,
how the caches behaved, which receiver stages failed, and exactly what
configuration produced a result file. This package is the substrate the
rest of the simulator reports through:

* :mod:`repro.obs.spans` — hierarchical trace spans
  (``campaign > point > trial > channel/reflect/noise/demod``) with a
  no-op fast path when no tracer is installed.
* :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, histograms) that engine layers register
  instruments with.
* :mod:`repro.obs.manifest` — run manifests and JSONL event logs, the
  durable record of a campaign run.
* :mod:`repro.obs.report` — renders a manifest/event log into the
  per-stage, per-point breakdown behind ``repro obs report``.

Layering: ``obs`` sits below :mod:`repro.sim` — simulation code imports
``obs``, never the reverse — so any subsystem (PHY, link, baselines)
can instrument itself without dependency cycles.
"""

from repro.obs.spans import (
    SpanTracer,
    active_tracer,
    collect_spans,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    counter,
    gauge,
    histogram,
    instruments,
    metrics_snapshot,
    reset_metrics,
    use_registry,
)
from repro.obs.manifest import (
    EventLog,
    RunManifest,
    read_events,
    scenario_snapshot,
)
from repro.obs.report import render_report

__all__ = [
    "SpanTracer",
    "span",
    "collect_spans",
    "active_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "instruments",
    "use_registry",
    "active_registry",
    "metrics_snapshot",
    "reset_metrics",
    "EventLog",
    "RunManifest",
    "read_events",
    "scenario_snapshot",
    "render_report",
]
