"""Run manifests and structured event logs.

A campaign's numbers are only as reusable as the metadata recorded with
them: the seed, the exact scenario, the package version, where the time
went, what the caches and the receiver saw. A :class:`RunManifest`
captures all of that in one JSON-safe record (persisted via
:mod:`repro.sim.export`, round-trippable like ``CampaignResult``), and
an :class:`EventLog` streams the run's progress — campaign/point/chunk
boundaries — as JSON Lines for tailing and post-hoc timelines.
"""

from __future__ import annotations

import dataclasses
import json
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, List, Optional, Union

MANIFEST_SCHEMA_VERSION = 1


def wall_clock_unix() -> float:
    """Current Unix time, for manifest/event timestamping.

    Wall-clock reads are confined to :mod:`repro.obs` (lint rule
    ``VAB004``): simulation results must never depend on when they run,
    so sim/phy/acoustics code that needs a timestamp for *telemetry*
    calls this instead of ``time.time`` directly.
    """
    return time.time()


@dataclass
class RunManifest:
    """The durable record of one campaign run.

    Attributes:
        label: campaign label (matches the result's).
        seed: master campaign seed.
        version: ``repro.__version__`` that produced the run.
        created_unix: wall-clock start of the run (Unix seconds).
        elapsed_s: end-to-end wall-clock of the run.
        workers: worker processes the run was configured for.
        campaign: campaign configuration snapshot (trials per point,
            payload size, ...).
        scenarios: one :func:`scenario_snapshot` per operating point.
        timings: span-path -> {total_s, count, mean_ms}
            (:meth:`repro.obs.spans.SpanTracer.as_dict`).
        metrics: metrics snapshot
            (:meth:`repro.obs.metrics.MetricsRegistry.as_dict`).
        results: serialized campaign results
            (:func:`repro.sim.export.campaign_to_dict`).
        events_path: path of the JSONL event log, when one was written.
    """

    label: str
    seed: int
    version: str
    created_unix: float
    elapsed_s: float
    workers: int
    campaign: dict = field(default_factory=dict)
    scenarios: List[dict] = field(default_factory=list)
    timings: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    results: dict = field(default_factory=dict)
    events_path: Optional[str] = None
    lint: Optional[dict] = None
    """Optional lint provenance: :func:`repro.analysis.tree_fingerprint`
    of the library tree that produced the run (clean flag + hash)."""
    engine_versions: Optional[dict] = None
    """Versions of the numeric engines (batched kernel, units table)
    that produced the run — part of the ledger's identity key, so a
    kernel rewrite never silently collides with old results."""

    @property
    def total_trials(self) -> int:
        """Trials across all points of the recorded results."""
        return sum(int(p["trials"]) for p in self.results.get("points", []))


class EventLog:
    """Append-only JSON Lines event stream for one run.

    Each event is one line: ``{"ts": <unix seconds>, "event": <name>,
    ...fields}``. The file is created lazily on the first
    :meth:`emit`, so constructing a log never leaves empty files
    behind. Every line is flushed as it is written — a run that dies
    mid-campaign leaves a log that reads up to the crash, not an empty
    buffer. Emission is thread-safe (progress heartbeats arrive from
    executor callback threads). Usable as a context manager.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self._lock = threading.Lock()

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event with the current timestamp."""
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, default=_json_default) + "\n"
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("w")
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: Union[str, Path], strict: bool = False) -> List[dict]:
    """Parse a JSONL event log back into a list of event dicts.

    By default a torn *final* line — the signature of a writer killed
    mid-``write`` — is dropped silently, so logs from crashed runs stay
    readable. Corruption anywhere else, or any corruption under
    ``strict=True``, raises ``json.JSONDecodeError``.
    """
    lines = [
        line.strip()
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    events: List[dict] = []
    for pos, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or pos != len(lines) - 1:
                raise
    return events


def scenario_snapshot(scenario: object) -> dict:
    """A JSON-safe snapshot of a scenario's full configuration.

    Recursively expands the scenario's nested dataclasses (water,
    surface, noise, poses) and adds the derived quantities reports key
    on (slant range, incidence, sample rate). Non-JSON leaves degrade
    to ``repr`` rather than failing: a manifest with a stringified
    field beats no manifest.
    """
    if dataclasses.is_dataclass(scenario):
        raw = dataclasses.asdict(scenario)
    else:  # pragma: no cover - campaigns always pass dataclass scenarios
        raw = {"repr": repr(scenario)}
    snapshot = _jsonify(raw)
    for derived in ("range_m", "incidence_deg", "fs"):
        value = getattr(scenario, derived, None)
        if value is not None:
            snapshot[derived] = _jsonify(value)
    return snapshot


def _jsonify(value: Any) -> Any:
    """Best-effort conversion to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if hasattr(value, "item"):  # numpy scalar
        return _jsonify(value.item())
    return repr(value)


def _json_default(value: Any) -> Any:
    """json.dumps fallback for event fields."""
    return _jsonify(value)


def manifest_to_dict(manifest: RunManifest) -> dict:
    """Serialise a run manifest to a plain dict (JSON-safe).

    Lives here (not :mod:`repro.sim.export`, which re-exports it) so
    the ledger can file manifests without the obs layer reaching up
    into sim.
    """
    data: dict = {"schema": MANIFEST_SCHEMA_VERSION, "kind": "run-manifest"}
    data.update(dataclasses.asdict(manifest))
    return data


def manifest_from_dict(data: dict) -> RunManifest:
    """Rebuild a run manifest from its serialised form.

    Unknown keys are dropped rather than rejected, so manifests written
    by a newer build with extra fields still load.
    """
    if data.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported manifest schema {data.get('schema')!r}; "
            f"this build reads {MANIFEST_SCHEMA_VERSION}"
        )
    if data.get("kind") != "run-manifest":
        raise ValueError(f"not a run manifest: kind={data.get('kind')!r}")
    fields = {f.name for f in dataclasses.fields(RunManifest)}
    return RunManifest(**{k: v for k, v in data.items() if k in fields})


def save_manifest(manifest: RunManifest, path: Union[str, Path]) -> None:
    """Write a run manifest to a JSON file."""
    Path(path).write_text(json.dumps(manifest_to_dict(manifest), indent=2))


def load_manifest(path: Union[str, Path]) -> RunManifest:
    """Read a run manifest from a JSON file."""
    return manifest_from_dict(json.loads(Path(path).read_text()))
