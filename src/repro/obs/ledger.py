"""Content-addressed persistent ledger of observed campaign runs.

A sweep you ran last month is only evidence if you can find it again
and trust what produced it. The ledger files every observed run under a
**run key** — a digest of everything that determines the numbers
(scenario snapshots, master seed, campaign configuration, package and
numeric-engine versions, lint fingerprint) and nothing that doesn't
(label, worker count, wall-clock). Re-running the same configuration
lands on the same key, so repeats of an experiment collide into one
ledger entry and genuinely different configurations never do.

Layout under the root (``$VAB_LEDGER_DIR`` or ``~/.repro/ledger``)::

    index.jsonl                      # append-only, one line per run
    runs/<key>/<run_id>.manifest.json
    runs/<key>/<run_id>.events.jsonl # when the run logged events

``run_id`` is a digest of the *complete* manifest (results and timings
included), so two repeats of one configuration share a key but keep
distinct run ids. The index is read tolerantly
(:func:`repro.obs.manifest.read_events` with ``strict=False``): a
writer killed mid-append costs one line, not the ledger.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Annotated, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.effects.vocab import PURE
from repro.obs.manifest import (
    RunManifest,
    manifest_from_dict,
    manifest_to_dict,
    read_events,
    wall_clock_unix,
)

LEDGER_ENV = "VAB_LEDGER_DIR"
"""Environment variable overriding the ledger root directory."""

DEFAULT_LEDGER_DIR = "~/.repro/ledger"
"""Default ledger root when ``VAB_LEDGER_DIR`` is unset."""

KEY_FIELDS = (
    "schema",
    "seed",
    "campaign",
    "scenarios",
    "version",
    "engine_versions",
    "lint",
)
"""Manifest fields that determine the run key — the configuration
identity. Everything else (label, workers, timestamps, results,
timings, metrics) is an observation *about* a run, not part of what
the run *is*."""

KEY_ABBREV = 12
"""Hex digits shown for keys/run ids in listings (full digests are
stored; prefixes resolve)."""


def _canonical(data: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def run_key(manifest: Union[RunManifest, dict]) -> Annotated[str, PURE]:
    """The content-address of a run's configuration.

    SHA-256 over the canonical JSON of :data:`KEY_FIELDS` only, so a
    relabelled or re-parallelised repeat of the same sweep hashes
    identically while any change to a scenario, the seed, the campaign
    shape, or a numeric engine version produces a new key.
    """
    data = (
        manifest_to_dict(manifest)
        if isinstance(manifest, RunManifest)
        else manifest
    )
    identity = {name: data.get(name) for name in KEY_FIELDS}
    return hashlib.sha256(_canonical(identity).encode()).hexdigest()


def run_id(manifest: Union[RunManifest, dict]) -> Annotated[str, PURE]:
    """The content-address of a complete run record (results included).

    Volatile per-execution fields (wall-clock stamps, elapsed time,
    event-log path, timing/metric telemetry) are excluded, so a
    bit-identical re-run of the same configuration maps to the same
    run id — the ledger's dedup unit — while any change in *results*
    yields a fresh id under the same key.
    """
    data = (
        manifest_to_dict(manifest)
        if isinstance(manifest, RunManifest)
        else dict(manifest)
    )
    volatile = ("created_unix", "elapsed_s", "events_path", "timings", "metrics")
    stable = {k: v for k, v in data.items() if k not in volatile}
    return hashlib.sha256(_canonical(stable).encode()).hexdigest()[:KEY_ABBREV]


@dataclass
class LedgerRecord:
    """One filed run: where it landed and under what addresses."""

    key: str
    run_id: str
    manifest_path: Path
    events_path: Optional[Path] = None
    duplicate: bool = False
    """True when this exact run record (same run id) was already filed
    — the manifest on disk is the earlier copy."""


class Ledger:
    """Append-only content-addressed store of run manifests."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        if root is None:
            root = os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_DIR
        self.root = Path(root).expanduser()

    @property
    def index_path(self) -> Path:
        """The append-only run index (JSON Lines)."""
        return self.root / "index.jsonl"

    def _run_dir(self, key: str) -> Path:
        return self.root / "runs" / key

    def record(self, manifest: RunManifest) -> LedgerRecord:
        """File one run under its content address.

        Writes the manifest (and a copy of its event log, when one
        exists on disk) under ``runs/<key>/`` and appends an index
        line. Filing a record whose run id is already on disk keeps
        the earlier manifest (``duplicate=True``) but still appends an
        index line — the index counts executions, the run directory
        stores distinct outcomes.
        """
        data = manifest_to_dict(manifest)
        key = run_key(data)
        rid = run_id(data)
        run_dir = self._run_dir(key)
        manifest_path = run_dir / f"{rid}.manifest.json"
        duplicate = manifest_path.exists()
        events_dst: Optional[Path] = None
        if duplicate:
            stored_events = run_dir / f"{rid}.events.jsonl"
            events_dst = stored_events if stored_events.exists() else None
        else:
            run_dir.mkdir(parents=True, exist_ok=True)
            if manifest.events_path:
                events_src = Path(manifest.events_path)
                if events_src.exists():
                    events_dst = run_dir / f"{rid}.events.jsonl"
                    shutil.copyfile(events_src, events_dst)
                    data = dict(data, events_path=str(events_dst))
            manifest_path.write_text(json.dumps(data, indent=2))
        entry = {
            "ts": round(wall_clock_unix(), 6),
            "key": key,
            "run_id": rid,
            "label": manifest.label,
            "seed": manifest.seed,
            "version": manifest.version,
            "points": len(manifest.scenarios),
            "trials": manifest.total_trials,
            "elapsed_s": manifest.elapsed_s,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.index_path.open("a") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
        return LedgerRecord(
            key=key,
            run_id=rid,
            manifest_path=manifest_path,
            events_path=events_dst,
            duplicate=duplicate,
        )

    def entries(self) -> List[dict]:
        """All index lines, oldest first (torn final line tolerated)."""
        if not self.index_path.exists():
            return []
        return [
            e
            for e in read_events(self.index_path, strict=False)
            if isinstance(e, dict) and "key" in e and "run_id" in e
        ]

    def runs(self, key: str) -> List[str]:
        """Run ids filed under one key, oldest index entry first."""
        return [e["run_id"] for e in self.entries() if e["key"] == key]

    def resolve(self, ref: str) -> LedgerRecord:
        """Resolve a key or run-id prefix to one filed run.

        A key (prefix) with several runs resolves to the most recently
        filed one. Ambiguous or unknown prefixes raise ``KeyError``.
        """
        if not ref:
            raise KeyError("empty ledger reference")
        matches: List[Tuple[str, str]] = []
        for e in self.entries():
            if e["run_id"].startswith(ref) or e["key"].startswith(ref):
                matches.append((e["key"], e["run_id"]))
        if not matches:
            raise KeyError(f"no ledger run matches {ref!r}")
        unique_keys = {key for key, _ in matches}
        if len(unique_keys) > 1:
            shown = ", ".join(sorted(rid for _, rid in matches)[:4])
            raise KeyError(f"ambiguous ledger reference {ref!r}: {shown}, ...")
        key, rid = matches[-1]
        manifest_path = self._run_dir(key) / f"{rid}.manifest.json"
        if not manifest_path.exists():
            raise KeyError(
                f"index lists run {rid} but its manifest is missing "
                f"({manifest_path})"
            )
        events_path = self._run_dir(key) / f"{rid}.events.jsonl"
        return LedgerRecord(
            key=key,
            run_id=rid,
            manifest_path=manifest_path,
            events_path=events_path if events_path.exists() else None,
        )

    def load(self, ref: str) -> RunManifest:
        """Load the manifest for a key/run-id prefix."""
        record = self.resolve(ref)
        return manifest_from_dict(json.loads(record.manifest_path.read_text()))


def ledger_rows(ledger: Ledger) -> List[Dict[str, Any]]:
    """Listing rows, one per distinct key, newest activity first.

    Repeat runs of one configuration collapse into that key's row —
    ``runs`` counts them — which is the point of content addressing:
    the listing answers "which experiments exist", not "how many times
    did I press enter".
    """
    by_key: Dict[str, Dict[str, Any]] = {}
    for e in ledger.entries():
        row = by_key.setdefault(
            e["key"],
            {
                "key": e["key"],
                "runs": 0,
                "run_ids": [],
                "label": e.get("label", ""),
                "seed": e.get("seed"),
                "points": e.get("points"),
                "trials": e.get("trials"),
                "last_ts": 0.0,
            },
        )
        row["runs"] += 1
        row["run_ids"].append(e["run_id"])
        row["label"] = e.get("label", row["label"])
        row["last_ts"] = max(row["last_ts"], float(e.get("ts", 0.0)))
    return sorted(by_key.values(), key=lambda r: -r["last_ts"])


def render_ledger(ledger: Ledger) -> str:
    """Human-readable ``repro obs ls`` listing."""
    rows = ledger_rows(ledger)
    if not rows:
        return f"ledger at {ledger.root}: empty"
    lines = [f"ledger at {ledger.root}: {len(rows)} configuration(s)"]
    header = (
        f"{'key':<{KEY_ABBREV}}  {'runs':>4}  {'label':<24}  "
        f"{'seed':>8}  {'points':>6}  {'trials':>7}  latest run"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['key'][:KEY_ABBREV]:<{KEY_ABBREV}}  {row['runs']:>4}  "
            f"{str(row['label'])[:24]:<24}  {str(row['seed']):>8}  "
            f"{str(row['points']):>6}  {str(row['trials']):>7}  "
            f"{row['run_ids'][-1]}"
        )
    return "\n".join(lines)


def _flatten(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists to dotted leaf paths for diffing."""
    out: Dict[str, Any] = {}
    if isinstance(value, dict):
        for k in sorted(value):
            out.update(_flatten(value[k], f"{prefix}.{k}" if prefix else str(k)))
    elif isinstance(value, list):
        for i, item in enumerate(value):
            out.update(_flatten(item, f"{prefix}.{i}" if prefix else str(i)))
    else:
        out[prefix] = value
    return out


def diff_manifests(a: RunManifest, b: RunManifest) -> Dict[str, Any]:
    """Structured comparison of two runs.

    Reports, in order of causal priority: configuration deltas
    (scenario fields, campaign shape, seed, versions — the *why*),
    then per-point metric deltas (BER, frame success, SNR — the
    *what*), then stage-timing deltas (the *how fast*). Two runs under
    the same key show an empty ``scenarios`` section by construction.
    """
    scenario_deltas: List[Dict[str, Any]] = []
    for i in range(max(len(a.scenarios), len(b.scenarios))):
        sa = _flatten(a.scenarios[i]) if i < len(a.scenarios) else {}
        sb = _flatten(b.scenarios[i]) if i < len(b.scenarios) else {}
        for fname in sorted(set(sa) | set(sb)):
            va, vb = sa.get(fname), sb.get(fname)
            if va != vb:
                scenario_deltas.append(
                    {"point": i, "field": fname, "a": va, "b": vb}
                )

    config_deltas: List[Dict[str, Any]] = []
    for section, da, db in (
        ("campaign", a.campaign, b.campaign),
        ("engine_versions", a.engine_versions or {}, b.engine_versions or {}),
    ):
        fa, fb = _flatten(da), _flatten(db)
        for fname in sorted(set(fa) | set(fb)):
            if fa.get(fname) != fb.get(fname):
                config_deltas.append(
                    {
                        "field": f"{section}.{fname}",
                        "a": fa.get(fname),
                        "b": fb.get(fname),
                    }
                )
    for scalar in ("seed", "version"):
        va, vb = getattr(a, scalar), getattr(b, scalar)
        if va != vb:
            config_deltas.append({"field": scalar, "a": va, "b": vb})

    metric_deltas: List[Dict[str, Any]] = []
    pa = a.results.get("points", [])
    pb = b.results.get("points", [])
    metric_names = ("ber", "frame_success_rate", "detection_rate", "mean_snr_db")
    for i in range(min(len(pa), len(pb))):
        for m in metric_names:
            va, vb = pa[i].get(m), pb[i].get(m)
            if va != vb:
                delta = (
                    vb - va
                    if isinstance(va, (int, float)) and isinstance(vb, (int, float))
                    else None
                )
                metric_deltas.append(
                    {"point": i, "metric": m, "a": va, "b": vb, "delta": delta}
                )

    timing_deltas: List[Dict[str, Any]] = []
    for stage in sorted(set(a.timings) | set(b.timings)):
        ta = float(a.timings.get(stage, {}).get("total_s", 0.0))
        tb = float(b.timings.get(stage, {}).get("total_s", 0.0))
        if ta != tb:
            timing_deltas.append(
                {"stage": stage, "a_s": ta, "b_s": tb, "delta_s": tb - ta}
            )

    return {
        "a": {"label": a.label, "run_id": run_id(a)},
        "b": {"label": b.label, "run_id": run_id(b)},
        "same_key": run_key(a) == run_key(b),
        "point_counts": [len(pa), len(pb)],
        "config": config_deltas,
        "scenarios": scenario_deltas,
        "metrics": metric_deltas,
        "timings": timing_deltas,
    }


def render_diff(diff: Dict[str, Any], max_rows: int = 20) -> str:
    """Human-readable ``repro obs diff`` output."""
    lines = [
        f"a: {diff['a']['run_id']} ({diff['a']['label']})",
        f"b: {diff['b']['run_id']} ({diff['b']['label']})",
        "same configuration key"
        if diff["same_key"]
        else "different configuration keys",
    ]

    def section(title: str, rows: Sequence[Dict[str, Any]], fmt: Any) -> None:
        if not rows:
            return
        lines.append("")
        shown = rows[:max_rows]
        lines.append(f"{title} ({len(rows)} delta(s)):")
        lines.extend(f"  {fmt(r)}" for r in shown)
        if len(rows) > len(shown):
            lines.append(f"  ... {len(rows) - len(shown)} more")

    section(
        "config",
        diff["config"],
        lambda r: f"{r['field']}: {r['a']!r} -> {r['b']!r}",
    )
    section(
        "scenario fields",
        diff["scenarios"],
        lambda r: f"point {r['point']} {r['field']}: {r['a']!r} -> {r['b']!r}",
    )
    section(
        "metrics",
        diff["metrics"],
        lambda r: (
            f"point {r['point']} {r['metric']}: {r['a']} -> {r['b']}"
            + (f" ({r['delta']:+.4g})" if r["delta"] is not None else "")
        ),
    )
    section(
        "stage timings",
        diff["timings"],
        lambda r: f"{r['stage']}: {r['a_s']:.3f}s -> {r['b_s']:.3f}s "
        f"({r['delta_s']:+.3f}s)",
    )
    if len(lines) == 3:
        lines.append("no differences")
    return "\n".join(lines)
