"""Live progress reporting for long campaigns.

A 100k-trial sweep that prints nothing for twenty minutes is
indistinguishable from a hung one. :class:`ProgressReporter` turns
trial completions into two things:

* a single self-overwriting **stderr line** — trials done, rate, ETA —
  refreshed at a bounded cadence, and
* throttled ``heartbeat`` **events** on the run's
  :class:`~repro.obs.manifest.EventLog`, which the trace exporter
  renders as counter tracks.

The display is **off by default outside a TTY**: CI logs and piped
output never fill with carriage returns. ``VAB_PROGRESS=1`` forces it
on (``0`` forces it off); a set ``CI`` variable disables autodetection.
Heartbeat *events* are emitted regardless of the display — they are
telemetry, not decoration.

Counting is thread-safe: the parallel runner advances the reporter
from executor completion callbacks, which fire on a different thread
than the harvest loop. Progress never touches results — it only
observes completions — so bit-identity is untouched.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import IO, Annotated, Any, Optional

from repro.analysis.effects.vocab import READS_ENVIRON, READS_HOST
from repro.obs.manifest import EventLog

PROGRESS_ENV = "VAB_PROGRESS"
"""Environment variable forcing the display on (``1``) or off (``0``)."""

DEFAULT_MIN_INTERVAL_S = 0.25
"""Floor between display refreshes / heartbeat events."""


def progress_enabled(
    stream: Optional[IO[str]] = None,
) -> Annotated[bool, READS_ENVIRON, READS_HOST]:
    """Whether the live display should run, per env + TTY detection.

    The grant is deliberate: this value only drives *display*, never a
    stored result — VAB022 would flag any result-shaping use."""
    forced = os.environ.get(PROGRESS_ENV, "").strip().lower()
    if forced in ("1", "true", "yes", "on"):
        return True
    if forced in ("0", "false", "no", "off"):
        return False
    if os.environ.get("CI"):
        return False
    stream = stream if stream is not None else sys.stderr
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


class ProgressReporter:
    """Throttled trials-done/rate/ETA reporting for one campaign.

    Args:
        total_trials: expected trial count (drives the ETA).
        label: campaign label shown on the line.
        stream: display stream (default ``sys.stderr``).
        enabled: force the display on/off; ``None`` autodetects via
            :func:`progress_enabled`.
        events: optional event log receiving ``heartbeat`` events.
        min_interval_s: minimum seconds between refreshes.
    """

    def __init__(
        self,
        total_trials: int,
        label: str = "campaign",
        stream: Optional[IO[str]] = None,
        enabled: Optional[bool] = None,
        events: Optional[EventLog] = None,
        min_interval_s: float = DEFAULT_MIN_INTERVAL_S,
    ) -> None:
        self.total_trials = max(0, int(total_trials))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = (
            progress_enabled(self.stream) if enabled is None else enabled
        )
        self.events = events
        self.min_interval_s = min_interval_s
        self.done = 0
        self._lock = threading.Lock()
        self._t_start: Optional[float] = None
        self._last_emit = 0.0
        self._line_live = False

    def start(self) -> None:
        """Mark the campaign start (rate/ETA reference point)."""
        with self._lock:
            self._t_start = time.perf_counter()
            # First refresh comes one full interval in — a run shorter
            # than that gets its single render from finish().
            self._last_emit = self._t_start

    def advance(self, trials: int = 1) -> None:
        """Record ``trials`` completions; refresh if the throttle allows.

        Safe to call from any thread (the runner calls it from future
        completion callbacks).
        """
        with self._lock:
            self.done += int(trials)
            if self._t_start is None:
                self._t_start = time.perf_counter()
                self._last_emit = self._t_start
            now = time.perf_counter()
            due = (now - self._last_emit) >= self.min_interval_s
            final = self.done >= self.total_trials > 0
            if not (due or final):
                return
            self._last_emit = now
            self._emit_locked(now)

    def finish(self) -> None:
        """Emit a final heartbeat and terminate the display line."""
        with self._lock:
            now = time.perf_counter()
            self._emit_locked(now)
            if self._line_live:
                self.stream.write("\n")
                self.stream.flush()
                self._line_live = False

    def _snapshot_locked(self, now: float) -> dict:
        elapsed = max(now - (self._t_start or now), 1e-9)
        rate = self.done / elapsed
        remaining = max(self.total_trials - self.done, 0)
        eta_s = remaining / rate if rate > 0 else None
        return {
            "done": self.done,
            "total": self.total_trials,
            "elapsed_s": round(elapsed, 3),
            "trials_per_s": round(rate, 3),
            "eta_s": round(eta_s, 3) if eta_s is not None else None,
        }

    def _emit_locked(self, now: float) -> None:
        snap = self._snapshot_locked(now)
        if self.events is not None:
            self.events.emit("heartbeat", label=self.label, **snap)
        if self.enabled:
            eta = (
                f" eta {snap['eta_s']:.0f}s"
                if snap["eta_s"] is not None and snap["done"] < snap["total"]
                else ""
            )
            line = (
                f"{self.label}: {snap['done']}/{snap['total']} trials "
                f"{snap['trials_per_s']:.1f} trials/s{eta}"
            )
            self.stream.write("\r\x1b[2K" + line)
            self.stream.flush()
            self._line_live = True

    def __enter__(self) -> "ProgressReporter":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()
