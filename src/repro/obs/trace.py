"""Chrome trace-event export for campaign runs.

Span tables and stage rows answer "where did the time go *in total*";
a trace answers "what was happening *at second 3.2*". This module turns
a run's telemetry into the Chrome trace-event JSON format, viewable in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_ — zero
new dependencies, just the right JSON shape.

Two sources, two process lanes:

* **The event timeline** (pid :data:`TRACE_PID_RUN`): real wall-clock
  slices reconstructed from a run's JSONL event log — the campaign
  span, each point, and every worker chunk. Chunk completions carry
  their elapsed time, so each chunk becomes a complete ("X") slice
  ending at its ``chunk_done`` timestamp; slices are greedy-packed
  into worker lanes (threads) so parallel runs show their actual
  overlap. Progress heartbeats become counter ("C") tracks.
* **The aggregate span flame** (pid :data:`TRACE_PID_SPANS`): the
  hierarchical span totals from a :class:`repro.obs.spans.SpanTracer`
  laid out as a synthetic flame graph — not a timeline (span totals
  are aggregates), but the familiar nested-rectangles view of where
  the time went.

Timestamps are microseconds (the format's unit), relative to the first
event, so traces diff cleanly across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

TRACE_PID_RUN = 1
"""Trace pid of the real event timeline."""

TRACE_PID_SPANS = 2
"""Trace pid of the synthetic aggregate-span flame."""

TID_CAMPAIGN = 0
"""Thread lane of the campaign/point slices."""

_REQUIRED_EVENT_FIELDS = ("name", "ph", "pid", "tid")


def _meta(pid: int, name: str) -> Dict[str, Any]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def _thread_meta(pid: int, tid: int, name: str) -> Dict[str, Any]:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _pack_lanes(
    slices: Sequence[Tuple[float, float, Dict[str, Any]]],
) -> List[Tuple[int, float, float, Dict[str, Any]]]:
    """Greedy-pack (start, end, payload) slices into worker lanes.

    The event log records chunk *completions*, not worker identities;
    packing slices into the fewest non-overlapping lanes reconstructs
    a consistent (and minimal) worker assignment for display.
    """
    lanes: List[float] = []
    packed: List[Tuple[int, float, float, Dict[str, Any]]] = []
    for start, end, payload in sorted(slices, key=lambda s: (s[0], s[1])):
        for lane, busy_until in enumerate(lanes):
            if start >= busy_until - 1e-9:
                lanes[lane] = end
                packed.append((lane, start, end, payload))
                break
        else:
            lanes.append(end)
            packed.append((len(lanes) - 1, start, end, payload))
    return packed


def trace_from_events(events: Sequence[dict]) -> List[Dict[str, Any]]:
    """Trace events for the real run timeline (pid 1).

    Consumes the runner's JSONL vocabulary — ``campaign_start`` /
    ``chunk_done`` / ``point_end`` / ``campaign_end`` plus optional
    ``heartbeat`` events — and emits complete slices, counters, and
    lane metadata. Unknown event types pass through as instant events,
    so new vocabulary degrades visibly instead of vanishing.
    """
    if not events:
        return []
    t0 = min(float(e["ts"]) for e in events if "ts" in e)

    def us(ts: float) -> float:
        return round((ts - t0) * 1e6, 1)

    out: List[Dict[str, Any]] = [_meta(TRACE_PID_RUN, "run timeline")]
    out.append(_thread_meta(TRACE_PID_RUN, TID_CAMPAIGN, "campaign"))
    chunk_slices: List[Tuple[float, float, Dict[str, Any]]] = []
    campaign_start: Optional[dict] = None

    for e in events:
        kind = e.get("event")
        ts = float(e.get("ts", t0))
        if kind == "campaign_start":
            campaign_start = e
        elif kind == "campaign_end":
            start_ts = (
                float(campaign_start["ts"]) if campaign_start else ts
            )
            out.append(
                {
                    "name": f"campaign {e.get('label', '')}".strip(),
                    "ph": "X",
                    "ts": us(start_ts),
                    "dur": max(0.0, us(ts) - us(start_ts)),
                    "pid": TRACE_PID_RUN,
                    "tid": TID_CAMPAIGN,
                    "args": {
                        k: v for k, v in e.items() if k not in ("ts", "event")
                    },
                }
            )
        elif kind == "point_end":
            # A parallel point's elapsed is busy-time summed over
            # workers, which can exceed its wall window — clamp the
            # slice into the run so the lane stays readable.
            elapsed = float(e.get("elapsed_s") or 0.0)
            start_us = max(0.0, us(ts - elapsed))
            out.append(
                {
                    "name": f"point {e.get('point')}",
                    "ph": "X",
                    "ts": start_us,
                    "dur": max(0.0, us(ts) - start_us),
                    "pid": TRACE_PID_RUN,
                    "tid": TID_CAMPAIGN,
                    "args": {
                        k: v for k, v in e.items() if k not in ("ts", "event")
                    },
                }
            )
        elif kind == "chunk_done":
            elapsed = float(e.get("elapsed_s") or 0.0)
            chunk_slices.append(
                (
                    ts - elapsed,
                    ts,
                    {
                        "name": f"chunk p{e.get('point')}+{e.get('start')}",
                        "args": {
                            k: v
                            for k, v in e.items()
                            if k not in ("ts", "event")
                        },
                    },
                )
            )
        elif kind == "heartbeat":
            for counter_name, field_name in (
                ("trials done", "done"),
                ("trials/s", "trials_per_s"),
            ):
                if e.get(field_name) is not None:
                    out.append(
                        {
                            "name": counter_name,
                            "ph": "C",
                            "ts": us(ts),
                            "pid": TRACE_PID_RUN,
                            "tid": TID_CAMPAIGN,
                            "args": {field_name: e[field_name]},
                        }
                    )
        elif kind is not None:
            out.append(
                {
                    "name": str(kind),
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts),
                    "pid": TRACE_PID_RUN,
                    "tid": TID_CAMPAIGN,
                    "args": {
                        k: v for k, v in e.items() if k not in ("ts", "event")
                    },
                }
            )

    for lane, start, end, payload in _pack_lanes(chunk_slices):
        tid = lane + 1
        out.append(_thread_meta(TRACE_PID_RUN, tid, f"worker lane {lane}"))
        out.append(
            {
                "name": payload["name"],
                "ph": "X",
                "ts": us(start),
                "dur": max(0.0, round((end - start) * 1e6, 1)),
                "pid": TRACE_PID_RUN,
                "tid": tid,
                "args": payload["args"],
            }
        )
    return out


def trace_from_timings(timings: Dict[str, dict]) -> List[Dict[str, Any]]:
    """Synthetic flame-graph slices from aggregated span totals (pid 2).

    Span totals have no start times, so the layout is synthetic:
    siblings are laid end to end inside their parent's extent, in path
    order. Widths are real (total seconds); positions are not — the
    lane is labelled accordingly.
    """
    if not timings:
        return []
    out: List[Dict[str, Any]] = [
        _meta(TRACE_PID_SPANS, "span totals (aggregate, synthetic layout)"),
        _thread_meta(TRACE_PID_SPANS, 0, "spans"),
    ]
    cursors: Dict[str, float] = {"": 0.0}
    for path in sorted(timings):
        parts = path.split("/")
        parent = "/".join(parts[:-1])
        start = cursors.get(parent, 0.0)
        total_s = float(timings[path].get("total_s", 0.0))
        out.append(
            {
                "name": parts[-1],
                "ph": "X",
                "ts": round(start * 1e6, 1),
                "dur": round(total_s * 1e6, 1),
                "pid": TRACE_PID_SPANS,
                "tid": 0,
                "args": {"path": path, **timings[path]},
            }
        )
        # Children start where the parent starts; the next sibling
        # starts where this span ends.
        cursors[path] = start
        cursors[parent] = start + total_s
    return out


def chrome_trace(
    events: Optional[Sequence[dict]] = None,
    timings: Optional[Dict[str, dict]] = None,
) -> Dict[str, Any]:
    """A complete Chrome trace-event document from run telemetry."""
    trace_events: List[Dict[str, Any]] = []
    if events:
        trace_events.extend(trace_from_events(events))
    if timings:
        trace_events.extend(trace_from_timings(timings))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_trace(
    path: Union[str, Path],
    events: Optional[Sequence[dict]] = None,
    timings: Optional[Dict[str, dict]] = None,
) -> Dict[str, Any]:
    """Build and write a trace JSON file; returns the document."""
    doc = chrome_trace(events=events, timings=timings)
    validate_trace_events(doc)
    Path(path).write_text(json.dumps(doc))
    return doc


def validate_trace_events(doc: Any) -> int:
    """Assert a document is schema-valid trace-event JSON.

    Accepts the object form (``{"traceEvents": [...]}``) or the bare
    array form. Checks the fields the viewers actually require: every
    event carries ``name``/``ph``/``pid``/``tid``, non-metadata events
    carry a numeric ``ts``, and complete ("X") events carry a
    non-negative numeric ``dur``. Returns the event count; raises
    ``ValueError`` on the first violation.
    """
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object must carry a traceEvents array")
    elif isinstance(doc, list):
        events = doc
    else:
        raise ValueError(f"not a trace document: {type(doc).__name__}")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for fname in _REQUIRED_EVENT_FIELDS:
            if fname not in e:
                raise ValueError(f"traceEvents[{i}] missing {fname!r}")
        if not isinstance(e["ph"], str) or not e["ph"]:
            raise ValueError(f"traceEvents[{i}] has non-string ph")
        if e["ph"] != "M":
            if not isinstance(e.get("ts"), (int, float)):
                raise ValueError(f"traceEvents[{i}] missing numeric ts")
        if e["ph"] == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}] ('X') needs non-negative dur"
                )
    return len(events)
