"""Hierarchical trace spans for the campaign path.

Generalizes the flat per-stage timers of :mod:`repro.sim.profiling`:
spans nest (``campaign > point > trial > channel``), and a tracer
aggregates wall-clock and call counts per *path*, so a report can show
both the engine-stage totals and how they roll up through trials and
points.

Design constraints, in priority order:

1. **Zero cost when off.** :func:`span` reads one module global; when no
   tracer is installed it yields immediately. Campaigns that don't ask
   for telemetry pay nothing measurable.
2. **Aggregating, not event-recording.** A 10,000-trial campaign would
   produce hundreds of thousands of span events; the tracer keeps only
   ``path -> (total_s, count)``, which is what the reports need and is
   cheap to merge across worker processes.
3. **Process-local, mergeable.** The parallel runner installs one
   tracer per worker chunk and merges them in trial order
   (:meth:`SpanTracer.merge`), mirroring the determinism discipline of
   the results themselves.

Usage::

    with collect_spans() as tracer:
        with span("campaign"):
            with span("point"):
                ...
    tracer.as_dict()   # {"campaign": {...}, "campaign/point": {...}}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

PATH_SEPARATOR = "/"
"""Separator used when rendering span paths as strings."""


class SpanTracer:
    """Aggregated wall-clock and call counts keyed by span path.

    Attributes:
        totals_s: span path (tuple of names, outermost first) ->
            accumulated seconds.
        counts: span path -> number of completed spans.
    """

    def __init__(self) -> None:
        self.totals_s: Dict[Tuple[str, ...], float] = {}
        self.counts: Dict[Tuple[str, ...], int] = {}
        self._stack: List[str] = []

    def add(self, path: Tuple[str, ...], elapsed_s: float) -> None:
        """Accumulate one completed span at ``path``."""
        self.totals_s[path] = self.totals_s.get(path, 0.0) + elapsed_s
        self.counts[path] = self.counts.get(path, 0) + 1

    def merge(self, other: "SpanTracer") -> None:
        """Fold another tracer (e.g. from a worker chunk) into this one."""
        for path, total in other.totals_s.items():
            self.totals_s[path] = self.totals_s.get(path, 0.0) + total
        for path, count in other.counts.items():
            self.counts[path] = self.counts.get(path, 0) + count

    def leaf_totals(self) -> Tuple[Dict[str, float], Dict[str, int]]:
        """Totals and counts aggregated by leaf span name.

        This is the flat per-stage view the legacy
        :class:`repro.sim.profiling.StageTimings` exposes: every path is
        attributed to its innermost name, so ``("point", "trial",
        "channel")`` and ``("trial", "channel")`` both count as
        ``channel`` — which makes serial and parallel runs (whose span
        roots differ) comparable.
        """
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for path, total in self.totals_s.items():
            leaf = path[-1]
            totals[leaf] = totals.get(leaf, 0.0) + total
        for path, count in self.counts.items():
            leaf = path[-1]
            counts[leaf] = counts.get(leaf, 0) + count
        return totals, counts

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly view: {"a/b": {total_s, count, mean_ms}}."""
        return {
            PATH_SEPARATOR.join(path): {
                "total_s": round(self.totals_s[path], 6),
                "count": self.counts.get(path, 0),
                "mean_ms": round(
                    1e3 * self.totals_s[path]
                    / max(self.counts.get(path, 1), 1),
                    6,
                ),
            }
            for path in sorted(self.totals_s)
        }

    def __getstate__(self) -> dict:
        # Workers never pickle a tracer mid-span; drop the live stack.
        return {"totals_s": self.totals_s, "counts": self.counts}

    def __setstate__(self, state: dict) -> None:
        self.totals_s = state["totals_s"]
        self.counts = state["counts"]
        self._stack = []


_ACTIVE: Optional[SpanTracer] = None


def active_tracer() -> Optional[SpanTracer]:
    """The currently installed tracer, or None when tracing is off."""
    return _ACTIVE


@contextmanager
def collect_spans(
    tracer: Optional[SpanTracer] = None,
) -> Iterator[SpanTracer]:
    """Install a tracer for the duration of the block (re-entrant).

    Nested installs shadow the outer tracer, exactly like the stage
    collectors they replace: the innermost tracer owns every span
    entered while it is active.
    """
    global _ACTIVE
    if tracer is None:
        tracer = SpanTracer()
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextmanager
def span(name: str) -> Iterator[None]:
    """Bracket one nested unit of work; no-op when no tracer is installed."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    stack = tracer._stack
    stack.append(name)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - t0
        tracer.add(tuple(stack), elapsed)
        stack.pop()
