"""Near-zero-overhead runtime physics-invariant probes.

The static linter (:mod:`repro.analysis`) proves what the *source*
cannot do; these probes watch what the *numbers* actually do at run
time. A NaN smuggled into the batched receive chain does not crash —
it silently scores as a detection failure, which is the worst kind of
wrong answer. Probes catch that class of corruption at the stage that
produced it:

* **Non-finite samples** in the batched ``(trials, samples)`` arrays
  (and their scalar-engine counterparts), attributed to the engine
  stage (channel / reflect / noise / demod) that introduced them.
* **Received level ≤ source level** — a backscatter record louder than
  the projector means a gain bookkeeping error somewhere in the
  link-budget chain.
* **BER ∈ [0, 1]** — a bit error rate outside the unit interval is an
  accounting bug, not physics.
* **CRC/frame accounting** — demod, detection-failure, and CRC-failure
  counts must reconcile; a frame cannot pass CRC without detection.

Cost model: every probe starts with one module-global mode check, so
``off`` costs a function call. The default ``count`` mode performs one
cheap reduction per *batch* (not per trial) on the hot path — a single
``max(|re|, |im|)`` pass that detects NaN/Inf (both propagate through
``max``) and bounds the peak amplitude to within 3 dB in the same
sweep — and records violations in the active metrics registry
(``repro.obs.probes.violations`` plus a per-probe counter). ``raise``
mode additionally hard-fails with a :class:`ProbeViolation` naming the
probe and the attributed stage. Overhead on the batched engine is
gated below 2% by ``tools/bench_compare.py`` (BENCH_3 → BENCH_4).

Mode comes from ``VAB_PROBES`` (``off`` / ``count`` / ``raise``,
default ``count``) or :func:`set_probe_mode` / the :func:`probes`
context manager.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Annotated, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.effects.vocab import (
    MUTATES_GLOBAL,
    READS_ENVIRON,
    READS_GLOBAL,
)
from repro.obs.metrics import counter

PROBE_MODES = ("off", "count", "raise")
"""Recognised probe modes, least to most intrusive."""

PROBE_ENV = "VAB_PROBES"
"""Environment variable selecting the initial probe mode."""

LEVEL_MARGIN_DB = 6.0
"""Slack on the received-level ceiling: the cheap peak estimate is
within 3 dB of the true peak, and constructive multipath can add a
little on top — only gross gain errors should trip the probe."""

CHECKS_COUNTER = counter(
    "repro.obs.probes.checks", "invariant probes evaluated"
)
VIOLATIONS_COUNTER = counter(
    "repro.obs.probes.violations", "invariant probe violations observed"
)


class ProbeViolation(AssertionError):
    """A runtime physics invariant did not hold.

    Attributes:
        probe: the probe's dotted name (e.g. ``sim.engine.record``).
        stage: engine stage the violation is attributed to, when known.
        detail: human-readable description of what went wrong.
    """

    def __init__(
        self, probe: str, detail: str, stage: Optional[str] = None
    ) -> None:
        self.probe = probe
        self.stage = stage
        self.detail = detail
        where = f" [stage: {stage}]" if stage else ""
        super().__init__(
            f"physics invariant violated: {probe}{where}: {detail}"
        )


def _initial_mode() -> Annotated[str, READS_ENVIRON]:
    mode = os.environ.get(PROBE_ENV, "count").strip().lower()
    return mode if mode in PROBE_MODES else "count"


_MODE = _initial_mode()


def probe_mode() -> Annotated[str, READS_GLOBAL]:
    """The current probe mode (``off`` / ``count`` / ``raise``)."""
    return _MODE


def set_probe_mode(mode: str) -> Annotated[str, READS_GLOBAL, MUTATES_GLOBAL]:
    """Set the probe mode process-wide; returns the previous mode."""
    global _MODE
    if mode not in PROBE_MODES:
        raise ValueError(
            f"probe mode must be one of {PROBE_MODES}, got {mode!r}"
        )
    previous = _MODE
    _MODE = mode
    return previous


@contextmanager
def probes(mode: str) -> Iterator[None]:
    """Run a block under the given probe mode (restores on exit)."""
    previous = set_probe_mode(mode)
    try:
        yield
    finally:
        set_probe_mode(previous)


def _violation(probe: str, detail: str, stage: Optional[str]) -> None:
    """Record (and in ``raise`` mode, raise) one violation."""
    VIOLATIONS_COUNTER.inc()
    counter(f"repro.obs.probes.{probe}.violations").inc()
    if _MODE == "raise":
        raise ProbeViolation(probe, detail, stage)


def peak_component(values: np.ndarray) -> float:
    """``max(|re|, |im|)`` over an array, in one pass.

    NaN and ±Inf both propagate through the reduction, so a non-finite
    return detects corruption and a finite one bounds the true peak
    magnitude: ``peak_component(x) <= max|x| <= sqrt(2) *
    peak_component(x)``. Complex inputs are scanned through a float
    view (no temporary the size of the data beyond the |.| buffer).
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return 0.0
    if np.iscomplexobj(arr):
        arr = np.ascontiguousarray(arr).view(np.float64)
    return float(np.max(np.abs(arr)))


def probe_signal(
    probe: str,
    values: np.ndarray,
    level_limit_db: Optional[float] = None,
    stage: Optional[str] = None,
    stage_arrays: Optional[Sequence[Tuple[str, np.ndarray]]] = None,
) -> bool:
    """Check a signal block for non-finite samples and a level ceiling.

    One reduction over ``values`` serves both checks. When the block is
    corrupt and ``stage_arrays`` — ``(stage_name, array)`` pairs in
    pipeline order — is given, the failure path (only) re-scans them to
    attribute the corruption to the first stage whose output is already
    non-finite; ``stage`` names the final stage and is the fallback
    attribution.

    Args:
        probe: dotted probe name for metrics/error attribution.
        values: the signal block (any shape, real or complex).
        level_limit_db: amplitude ceiling as ``20*log10(peak)`` (e.g.
            the scenario source level); ``None`` skips the level check.
        stage: stage name attributed when no earlier stage is corrupt.
        stage_arrays: upstream stage outputs for attribution.

    Returns:
        True when the invariants held (always True in ``count`` mode —
        violations surface as metrics).
    """
    if _MODE == "off":
        return True
    CHECKS_COUNTER.inc()
    peak = peak_component(values)
    if not math.isfinite(peak):
        blame = stage
        for name, arr in stage_arrays or ():
            if not math.isfinite(peak_component(arr)):
                blame = name
                break
        _violation(probe, "non-finite samples in signal block", blame)
        return False
    if level_limit_db is not None and peak > 0.0:
        # sqrt(2) covers the component-vs-magnitude slack exactly.
        peak_db = 20.0 * math.log10(peak * math.sqrt(2.0))
        if peak_db > level_limit_db + LEVEL_MARGIN_DB:
            _violation(
                probe,
                f"peak level {peak_db:.1f} dB exceeds limit "
                f"{level_limit_db:.1f} dB (+{LEVEL_MARGIN_DB:.0f} dB margin)",
                stage,
            )
            return False
    return True


def probe_finite(
    probe: str, values: np.ndarray, stage: Optional[str] = None
) -> bool:
    """Check an array for NaN/Inf (no level ceiling)."""
    return probe_signal(probe, values, level_limit_db=None, stage=stage)


def probe_unit_interval(
    probe: str,
    value: float,
    lo: float = 0.0,
    hi: float = 1.0,
    stage: Optional[str] = None,
) -> bool:
    """Check that a scalar lies in ``[lo, hi]`` (NaN fails)."""
    if _MODE == "off":
        return True
    CHECKS_COUNTER.inc()
    if math.isnan(value) or value < lo or value > hi:
        _violation(
            probe, f"value {value!r} outside [{lo:g}, {hi:g}]", stage
        )
        return False
    return True


def probe_invariant(
    probe: str, condition: bool, detail: str, stage: Optional[str] = None
) -> bool:
    """Check an arbitrary boolean invariant (e.g. counter accounting)."""
    if _MODE == "off":
        return True
    CHECKS_COUNTER.inc()
    if not condition:
        _violation(probe, detail, stage)
        return False
    return True
