"""Render a run manifest (+ optional event log) as breakdown tables.

This is the analysis half of the observability layer: given the
JSON-safe record a campaign emitted (see :mod:`repro.obs.manifest`),
produce the human-readable per-stage and per-point breakdowns behind
``repro obs report``. Pure string formatting — no simulation imports —
so reports can be rendered anywhere a manifest file can be read.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import RunManifest
from repro.obs.spans import PATH_SEPARATOR


def stage_rows(timings: dict) -> List[dict]:
    """Leaf-aggregated stage table rows from a manifest's span dict.

    Every span path is attributed to its innermost name (so serial and
    parallel runs, whose roots differ, produce the same stages), sorted
    by total time descending. ``share`` is each stage's fraction of the
    run's root span total (falling back to the largest stage when the
    manifest has no root span).
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    root_total = 0.0
    for path_str, stats in timings.items():
        parts = path_str.split(PATH_SEPARATOR)
        leaf = parts[-1]
        totals[leaf] = totals.get(leaf, 0.0) + float(stats["total_s"])
        counts[leaf] = counts.get(leaf, 0) + int(stats["count"])
        if len(parts) == 1:
            root_total += float(stats["total_s"])
    if root_total <= 0.0:
        root_total = max(totals.values(), default=0.0)
    rows = []
    for leaf in sorted(totals, key=lambda name: -totals[name]):
        total = totals[leaf]
        count = counts[leaf]
        rows.append(
            {
                "stage": leaf,
                "count": count,
                "total_s": total,
                "mean_ms": 1e3 * total / max(count, 1),
                "share": total / root_total if root_total > 0 else 0.0,
            }
        )
    return rows


def span_tree_lines(timings: dict) -> List[str]:
    """The span hierarchy, indented by nesting depth."""
    lines = []
    for path_str in sorted(timings):
        parts = path_str.split(PATH_SEPARATOR)
        stats = timings[path_str]
        indent = "  " * (len(parts) - 1)
        lines.append(
            f"{indent}{parts[-1]:<{max(28 - len(indent), 1)}} "
            f"{stats['count']:>7} {stats['total_s']:>10.3f}s "
            f"{stats['mean_ms']:>10.3f}ms"
        )
    return lines


def point_wall_clocks(events: Sequence[dict]) -> Dict[int, float]:
    """point index -> wall/busy seconds, from ``point_end`` events."""
    walls: Dict[int, float] = {}
    for event in events:
        if event.get("event") == "point_end" and "point" in event:
            elapsed = event.get("elapsed_s")
            if elapsed is not None:
                walls[int(event["point"])] = float(elapsed)
    return walls


def engine_line(metrics: dict) -> Optional[str]:
    """How the campaign's trials were dispatched, from the run's counters.

    Distinguishes trials that ran on the batched point engine from those
    that took the per-trial fallback (custom ``receiver_factory`` or a
    receiver the batched kernel does not support). None when the run
    predates the dispatch counters.
    """
    counters = metrics.get("counters", {})
    batched = int(counters.get("repro.sim.trials.batched_trials", 0))
    fallback = int(counters.get("repro.sim.trials.fallback_trials", 0))
    if not (batched or fallback):
        return None
    if fallback == 0:
        return f"batched ({batched} trials)"
    if batched == 0:
        return f"per-trial fallback ({fallback} trials)"
    return f"mixed ({batched} batched, {fallback} per-trial fallback)"


def _table(headers: Sequence[str], rows: List[Sequence[str]]) -> List[str]:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def render_report(
    manifest: RunManifest, events: Optional[Sequence[dict]] = None
) -> str:
    """The full ``repro obs report`` text for one manifest."""
    lines: List[str] = []
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(manifest.created_unix)
    )
    trials = manifest.total_trials
    rate = trials / manifest.elapsed_s if manifest.elapsed_s > 0 else 0.0
    lines.append(f"=== run: {manifest.label} (seed {manifest.seed}) ===")
    lines.append(f"version    : {manifest.version}")
    lines.append(f"created    : {created}")
    lines.append(f"workers    : {manifest.workers}")
    lines.append(f"elapsed    : {manifest.elapsed_s:.3f} s")
    lines.append(
        f"trials     : {trials} across "
        f"{len(manifest.results.get('points', []))} points "
        f"({rate:.1f} trials/s)"
    )
    # How trials actually dispatched (the campaign's `engine` field
    # below is the requested mode — "auto" says nothing about the path
    # taken; this line does).
    engine = engine_line(manifest.metrics)
    if engine:
        lines.append(f"dispatch   : {engine}")
    for key, value in sorted(manifest.campaign.items()):
        lines.append(f"{key:<11}: {value}")
    if manifest.events_path:
        lines.append(f"events     : {manifest.events_path}")

    if manifest.timings:
        lines.append("")
        lines.append("--- per-stage breakdown ---")
        rows = [
            [
                r["stage"],
                str(r["count"]),
                f"{r['total_s']:.3f}",
                f"{r['mean_ms']:.3f}",
                f"{100.0 * r['share']:.1f}%",
            ]
            for r in stage_rows(manifest.timings)
        ]
        lines.extend(
            _table(["stage", "count", "total_s", "mean_ms", "share"], rows)
        )
        lines.append("")
        lines.append("--- span tree ---")
        lines.extend(span_tree_lines(manifest.timings))

    points = manifest.results.get("points", [])
    if points:
        walls = point_wall_clocks(events or [])
        lines.append("")
        lines.append("--- per-point breakdown ---")
        rows = []
        for i, p in enumerate(points):
            snr = p.get("mean_snr_db")
            rows.append(
                [
                    str(i),
                    f"{p['range_m']:.0f}",
                    str(p["trials"]),
                    f"{p['ber']:.4f}",
                    f"{p['frame_success_rate']:.2f}",
                    f"{p['detection_rate']:.2f}",
                    f"{snr:.1f}" if snr is not None else "-inf",
                    f"{walls[i]:.3f}" if i in walls else "-",
                ]
            )
        lines.extend(
            _table(
                [
                    "point", "range_m", "trials", "ber",
                    "frames", "detect", "snr_db", "wall_s",
                ],
                rows,
            )
        )

    lines.extend(_metrics_lines(manifest.metrics))
    return "\n".join(lines) + "\n"


def load_bench_files(root: Union[str, Path]) -> List[dict]:
    """Load ``BENCH_<n>.json`` files under a directory, in bench order.

    The repo keeps one frozen benchmark record per performance
    milestone; numeric ordering (not lexicographic — ``BENCH_10``
    follows ``BENCH_9``) is the perf trajectory.
    """

    def bench_number(path: Path) -> int:
        match = re.search(r"BENCH_(\d+)", path.name)
        return int(match.group(1)) if match else 0

    docs = []
    for path in sorted(Path(root).glob("BENCH_*.json"), key=bench_number):
        docs.append(json.loads(path.read_text()))
    return docs


def bench_timeline_rows(docs: Sequence[dict]) -> List[dict]:
    """Timeline rows from benchmark documents (one row per bench).

    Each row carries the bench id/name and an ``arms`` mapping of
    benchmark arm -> trials/s (any top-level object with a
    ``trials_per_sec`` field counts as an arm, so new arms appear
    without code changes).
    """
    rows: List[dict] = []
    for doc in docs:
        arms = {
            name: float(value["trials_per_sec"])
            for name, value in doc.items()
            if isinstance(value, dict) and "trials_per_sec" in value
        }
        rows.append(
            {
                "bench": str(doc.get("bench", "?")),
                "name": str(doc.get("name", "")),
                "arms": arms,
            }
        )
    return rows


def render_timeline(docs: Sequence[dict]) -> str:
    """The ``repro obs timeline`` table: trials/s per arm across benches.

    Arms appear as columns in first-seen order; a trailing ``x best``
    column tracks the best arm's speedup over the *first* bench's best
    arm — the headline of the perf trajectory.
    """
    rows = bench_timeline_rows(docs)
    if not rows:
        return "no benchmark records found"
    arm_order: List[str] = []
    for row in rows:
        for arm in row["arms"]:
            if arm not in arm_order:
                arm_order.append(arm)
    baseline_best = max(rows[0]["arms"].values(), default=0.0)
    table_rows = []
    for row in rows:
        best = max(row["arms"].values(), default=0.0)
        table_rows.append(
            [
                row["bench"],
                row["name"],
                *(
                    f"{row['arms'][arm]:.1f}" if arm in row["arms"] else "-"
                    for arm in arm_order
                ),
                f"{best / baseline_best:.2f}x" if baseline_best > 0 else "-",
            ]
        )
    lines = _table(["bench", "name", *arm_order, "x best"], table_rows)
    return "\n".join(lines) + "\n"


def _metrics_lines(metrics: dict) -> List[str]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if not (counters or gauges or histograms):
        return []
    lines = ["", "--- metrics ---"]
    width = max(
        (len(n) for n in (*counters, *gauges, *histograms)), default=0
    )
    for name, value in sorted(counters.items()):
        lines.append(f"counter    {name:<{width}}  {value:g}")
    for name, value in sorted(gauges.items()):
        lines.append(f"gauge      {name:<{width}}  {value:g}")
    for name, data in sorted(histograms.items()):
        mean = data["total"] / data["count"] if data["count"] else 0.0
        lo = f"{data['min']:.2f}" if data["min"] is not None else "-"
        hi = f"{data['max']:.2f}" if data["max"] is not None else "-"
        lines.append(
            f"histogram  {name:<{width}}  count={data['count']} "
            f"mean={mean:.2f} min={lo} max={hi}"
        )
        buckets = []
        bounds = data["bounds"]
        for i, count in enumerate(data["bucket_counts"]):
            label = f"<={bounds[i]:g}" if i < len(bounds) else f">{bounds[-1]:g}"
            buckets.append(f"{label}:{count}")
        lines.append("           " + "  ".join(buckets))
    return lines
