"""Counters, gauges, and histograms for the simulation stack.

Engine layers register *instruments* once at import time (module
globals) and update them from hot paths; the values land in whichever
:class:`MetricsRegistry` is active — the process-default one, or a
registry a campaign installed with :func:`use_registry` to isolate its
own run. Updates are a dict upsert, cheap enough for per-trial paths.

Registered instruments in the tree today:

* ``repro.sim.cache.*`` — channel-response cache hits/misses/evictions.
* ``repro.sim.parallel.*`` — chunks dispatched, worker count, pool
  utilization.
* ``repro.phy.receiver.*`` — demods, detect/CRC failures, eye-SNR
  histogram.
* ``repro.link.stats.*`` — frames sent/delivered.

Worker processes of the parallel runner collect into a fresh registry
per chunk and ship the snapshot back for merging
(:meth:`MetricsRegistry.merge_snapshot`), so campaign metrics are exact
regardless of how trials were scheduled.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

DEFAULT_SNR_BOUNDS = (-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
"""Default histogram bucket upper bounds for eye-SNR observations, dB."""


class HistogramData:
    """One histogram's accumulated state (bucket counts + summary)."""

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "HistogramData") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def as_dict(self) -> dict:
        """JSON-safe view (min/max omitted when empty: inf isn't JSON)."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min_value, 6) if self.count else None,
            "max": round(self.max_value, 6) if self.count else None,
        }

    @staticmethod
    def from_dict(data: dict) -> "HistogramData":
        """Rebuild from :meth:`as_dict` output."""
        hist = HistogramData(tuple(data["bounds"]))
        hist.bucket_counts = [int(c) for c in data["bucket_counts"]]
        hist.count = int(data["count"])
        hist.total = float(data["total"])
        hist.min_value = (
            float(data["min"]) if data.get("min") is not None else math.inf
        )
        hist.max_value = (
            float(data["max"]) if data.get("max") is not None else -math.inf
        )
        return hist


class MetricsRegistry:
    """A process-local store of metric values.

    Values live here; *instruments* (:class:`Counter` & co.) are just
    named handles that write into whichever registry is active.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramData] = {}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges
        last-write-wins, histograms bucket-merge)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = HistogramData.from_dict(hist.as_dict())
            else:
                mine.merge(hist)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold an :meth:`as_dict` snapshot (e.g. from a worker chunk)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snapshot.get("gauges", {}))
        for name, data in snapshot.get("histograms", {}).items():
            incoming = HistogramData.from_dict(data)
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = incoming
            else:
                mine.merge(incoming)

    def as_dict(self) -> dict:
        """JSON-safe snapshot of every value in the registry."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every value (instrument registrations are unaffected)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_DEFAULT = MetricsRegistry()
_ACTIVE = _DEFAULT

_INSTRUMENTS: Dict[str, Tuple[str, str]] = {}


def _register(name: str, kind: str, help: str) -> None:
    existing = _INSTRUMENTS.get(name)
    if existing is not None and existing[0] != kind:
        raise ValueError(
            f"instrument {name!r} already registered as {existing[0]}"
        )
    if existing is None or help:
        _INSTRUMENTS[name] = (kind, help)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (default 1) to the active registry's count."""
        counters = _ACTIVE.counters
        counters[self.name] = counters.get(self.name, 0) + n

    def value(self, registry: Optional[MetricsRegistry] = None) -> float:
        """Current count in ``registry`` (active registry if omitted)."""
        return (registry or _ACTIVE).counters.get(self.name, 0)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def set(self, value: float) -> None:
        """Record the current value in the active registry."""
        _ACTIVE.gauges[self.name] = float(value)

    def value(self, registry: Optional[MetricsRegistry] = None) -> Optional[float]:
        """Current value in ``registry`` (active registry if omitted)."""
        return (registry or _ACTIVE).gauges.get(self.name)


class Histogram:
    """A bucketed distribution with fixed upper bounds."""

    __slots__ = ("name", "bounds")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)

    def observe(self, value: float) -> None:
        """Record one observation in the active registry."""
        registry = _ACTIVE
        data = registry.histograms.get(self.name)
        if data is None:
            data = HistogramData(self.bounds)
            registry.histograms[self.name] = data
        data.observe(value)

    def data(
        self, registry: Optional[MetricsRegistry] = None
    ) -> Optional[HistogramData]:
        """Accumulated data in ``registry`` (active registry if omitted)."""
        return (registry or _ACTIVE).histograms.get(self.name)


def counter(name: str, help: str = "") -> Counter:
    """Register (idempotently) and return a counter instrument."""
    _register(name, "counter", help)
    return Counter(name)


def gauge(name: str, help: str = "") -> Gauge:
    """Register (idempotently) and return a gauge instrument."""
    _register(name, "gauge", help)
    return Gauge(name)


def histogram(
    name: str, bounds: Sequence[float] = DEFAULT_SNR_BOUNDS, help: str = ""
) -> Histogram:
    """Register (idempotently) and return a histogram instrument."""
    _register(name, "histogram", help)
    return Histogram(name, bounds)


def instruments() -> Dict[str, Tuple[str, str]]:
    """name -> (kind, help) for every registered instrument."""
    return dict(_INSTRUMENTS)


def active_registry() -> MetricsRegistry:
    """The registry instrument updates currently land in."""
    return _ACTIVE


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route instrument updates to ``registry`` for the block (re-entrant)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def metrics_snapshot(registry: Optional[MetricsRegistry] = None) -> dict:
    """JSON-safe snapshot of ``registry`` (active registry if omitted)."""
    return (registry or _ACTIVE).as_dict()


def reset_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Clear every value in ``registry`` (active registry if omitted)."""
    (registry or _ACTIVE).reset()
