"""Acoustic energy harvesting and the node power budget.

The node is battery-free: the same transducers that backscatter also
harvest the reader's carrier. The harvesting chain is

incident intensity → effective aperture → captured acoustic power →
rectifier (threshold + efficiency) → storage capacitor → load.

The budget experiment (E8) asks one question: at what range does the
harvested power stop covering the node's consumption? The consumption
side is a sum of always-on components (MCU sleep current, switch driver
leakage) plus the per-bit switching energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.piezo.transducer import Transducer

REFERENCE_INTENSITY_W_M2 = 6.7e-19
"""Plane-wave intensity of 1 uPa in sea water: ``p^2 / (rho c)`` in W/m^2."""


def intensity_from_spl(pressure_level_db: float) -> float:
    """Plane-wave acoustic intensity (W/m^2) for a level in dB re 1 uPa."""
    return REFERENCE_INTENSITY_W_M2 * 10.0 ** (pressure_level_db / 10.0)


@dataclass(frozen=True)
class EnergyHarvester:
    """Harvesting chain parameters.

    Attributes:
        transducer: the element used for capture.
        num_elements: elements wired to the harvester.
        rectifier_efficiency: AC->DC conversion efficiency in (0, 1].
        rectifier_threshold_v: minimum open-circuit voltage before the
            charge-pump rectifier starts up (negative-threshold MOSFET
            pumps cold-start around tens of millivolts).
        electroacoustic_efficiency: acoustic-to-electrical conversion
            fraction of the element (radiation_fraction of the BVD model
            is a good default; kept separate so it can be swept).
        storage_capacitance_f: storage capacitor, farads.
    """

    transducer: Transducer = field(default_factory=Transducer)
    num_elements: int = 2
    rectifier_efficiency: float = 0.55
    rectifier_threshold_v: float = 0.015
    electroacoustic_efficiency: float = 0.6
    storage_capacitance_f: float = 220e-6

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ValueError("need at least one element")
        if not 0 < self.rectifier_efficiency <= 1:
            raise ValueError("rectifier efficiency in (0, 1]")
        if not 0 < self.electroacoustic_efficiency <= 1:
            raise ValueError("electroacoustic efficiency in (0, 1]")

    def captured_acoustic_power_w(
        self, pressure_level_db: float, frequency_hz: float
    ) -> float:
        """Acoustic power captured from an incident level, watts."""
        intensity = intensity_from_spl(pressure_level_db)
        aperture = self.transducer.effective_aperture_m2(frequency_hz)
        return intensity * aperture * self.num_elements

    def harvested_power_w(
        self, pressure_level_db: float, frequency_hz: float
    ) -> float:
        """DC power delivered to storage, watts (0 below threshold)."""
        v_oc = self.transducer.received_voltage_rms(pressure_level_db, frequency_hz)
        if v_oc < self.rectifier_threshold_v:
            return 0.0
        acoustic = self.captured_acoustic_power_w(pressure_level_db, frequency_hz)
        return (
            acoustic * self.electroacoustic_efficiency * self.rectifier_efficiency
        )

    def charge_time_s(
        self,
        pressure_level_db: float,
        frequency_hz: float,
        target_voltage: float = 2.2,
        load_power_w: float = 0.0,
    ) -> float:
        """Time to charge storage to a target voltage, seconds.

        Returns ``inf`` when harvest does not exceed the load.
        """
        p_net = self.harvested_power_w(pressure_level_db, frequency_hz) - load_power_w
        if p_net <= 0:
            return math.inf
        energy = 0.5 * self.storage_capacitance_f * target_voltage**2
        return energy / p_net


@dataclass(frozen=True)
class PowerBudget:
    """The node's consumption side, watts.

    Defaults reflect an ultra-low-power backscatter node: a sleepy MCU or
    FSM sequencer, an analog switch, and a wake-up/envelope detector for
    the downlink. Per-bit switching energy covers charging the switch gate
    plus the transducer static capacitance.
    """

    mcu_sleep_w: float = 0.6e-6
    mcu_active_w: float = 18e-6
    switch_driver_w: float = 0.9e-6
    wakeup_receiver_w: float = 0.3e-6
    switching_energy_per_bit_j: float = 3.0e-9
    duty_cycle: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in [0, 1]")

    def average_power_w(self, bitrate_bps: float = 1000.0) -> float:
        """Duty-cycled average consumption at an uplink bitrate, watts."""
        if bitrate_bps < 0:
            raise ValueError("bitrate must be non-negative")
        active = (
            self.mcu_active_w
            + self.switch_driver_w
            + self.switching_energy_per_bit_j * bitrate_bps
        )
        idle = self.mcu_sleep_w + self.wakeup_receiver_w
        return self.duty_cycle * active + (1.0 - self.duty_cycle) * idle

    def breakdown(self, bitrate_bps: float = 1000.0) -> Dict[str, float]:
        """Per-component average power, watts (for the E8 table)."""
        return {
            "mcu_sleep": (1.0 - self.duty_cycle) * self.mcu_sleep_w,
            "wakeup_receiver": (1.0 - self.duty_cycle) * self.wakeup_receiver_w,
            "mcu_active": self.duty_cycle * self.mcu_active_w,
            "switch_driver": self.duty_cycle * self.switch_driver_w,
            "switching": self.duty_cycle
            * self.switching_energy_per_bit_j
            * bitrate_bps,
        }

    def is_sustainable(self, harvested_w: float, bitrate_bps: float = 1000.0) -> bool:
        """True when harvesting covers the duty-cycled consumption."""
        return harvested_w >= self.average_power_w(bitrate_bps)
