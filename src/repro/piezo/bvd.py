"""Butterworth–Van Dyke (BVD) equivalent circuit of a piezo transducer.

Near a single resonance a piezoelectric transducer is electrically
equivalent to a static capacitance ``C0`` in parallel with a *motional*
series branch ``Rm — Lm — Cm``:

::

        o────┬────[ Rm ─ Lm ─ Cm ]────┬────o
             │                        │
             └──────────[ C0 ]────────┘

``Lm``/``Cm`` set the (series) resonance where the motional branch looks
purely resistive and electrical power couples best into the water; ``Rm``
lumps the radiation resistance (useful output) with mechanical losses.
This is the model the paper's authors use to co-design the transducer and
the backscatter switch network, and everything the node does — reflection
modulation, harvesting, bandwidth — follows from this impedance curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.units.vocab import HZ, OHM


@dataclass(frozen=True)
class BVDModel:
    """BVD parameters of one transducer element.

    Attributes:
        c0_farad: static (clamped) capacitance.
        rm_ohm: motional resistance (radiation + loss).
        lm_henry: motional inductance.
        cm_farad: motional capacitance.
        radiation_fraction: fraction of ``rm_ohm`` that is radiation
            resistance (electro-acoustic efficiency at resonance).
    """

    c0_farad: float
    rm_ohm: float
    lm_henry: float
    cm_farad: float
    radiation_fraction: float = 0.7

    def __post_init__(self) -> None:
        for name in ("c0_farad", "rm_ohm", "lm_henry", "cm_farad"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.radiation_fraction <= 1.0:
            raise ValueError("radiation_fraction must be in (0, 1]")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_resonance(
        resonance_hz: HZ,
        q_factor: float = 7.0,
        c0_farad: float = 10e-9,
        capacitance_ratio: float = 12.0,
        radiation_fraction: float = 0.7,
    ) -> "BVDModel":
        """Build a BVD model from designer-facing quantities.

        Args:
            resonance_hz: series resonance frequency ``f_s``.
            q_factor: quality factor at resonance. In water the radiation
                load damps the ceramic heavily: Q ~ 5-10 is typical for a
                potted cylinder (vs tens in air), which is what buys the
                bandwidth the PHY chip rate needs.
            c0_farad: static capacitance.
            capacitance_ratio: ``C0 / Cm`` (stiffness ratio; ~10–30 for
                potted ceramic cylinders; lower = stronger coupling).
            radiation_fraction: efficiency split of ``Rm``.
        """
        if resonance_hz <= 0 or q_factor <= 0 or capacitance_ratio <= 0:
            raise ValueError("resonance, Q, and capacitance ratio must be positive")
        w_s = 2.0 * math.pi * resonance_hz
        cm = c0_farad / capacitance_ratio
        lm = 1.0 / (w_s * w_s * cm)
        rm = w_s * lm / q_factor
        return BVDModel(
            c0_farad=c0_farad,
            rm_ohm=rm,
            lm_henry=lm,
            cm_farad=cm,
            radiation_fraction=radiation_fraction,
        )

    @staticmethod
    def vab_element(resonance_hz: HZ = 18_500.0) -> "BVDModel":
        """The default element used throughout the reproduction.

        An 18.5 kHz potted cylinder with water-loaded Q ~ 7, matching the
        band and the ~2 kHz usable bandwidth the paper's transducers and
        bitrates imply.
        """
        return BVDModel.from_resonance(resonance_hz)

    # -- derived quantities ---------------------------------------------------

    @property
    def series_resonance_hz(self) -> HZ:
        """Series (motional) resonance ``f_s``."""
        return 1.0 / (2.0 * math.pi * math.sqrt(self.lm_henry * self.cm_farad))

    @property
    def parallel_resonance_hz(self) -> HZ:
        """Parallel (anti-) resonance ``f_p > f_s``."""
        c_eff = self.cm_farad * self.c0_farad / (self.cm_farad + self.c0_farad)
        return 1.0 / (2.0 * math.pi * math.sqrt(self.lm_henry * c_eff))

    @property
    def q_factor(self) -> float:
        """Mechanical quality factor at series resonance."""
        w_s = 2.0 * math.pi * self.series_resonance_hz
        return w_s * self.lm_henry / self.rm_ohm

    @property
    def coupling_coefficient(self) -> float:
        """Effective electro-mechanical coupling ``k_eff`` in (0, 1)."""
        fs = self.series_resonance_hz
        fp = self.parallel_resonance_hz
        return math.sqrt(1.0 - (fs / fp) ** 2)

    def bandwidth_hz(self) -> HZ:
        """-3 dB bandwidth of the motional branch, ``f_s / Q``."""
        return self.series_resonance_hz / self.q_factor

    # -- impedance -----------------------------------------------------------

    def motional_impedance(self, frequency_hz: HZ) -> complex:
        """Impedance of the series Rm–Lm–Cm branch."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        w = 2.0 * math.pi * frequency_hz
        return complex(
            self.rm_ohm, w * self.lm_henry - 1.0 / (w * self.cm_farad)
        )

    def impedance(self, frequency_hz: HZ) -> complex:
        """Terminal impedance: motional branch in parallel with ``C0``."""
        zm = self.motional_impedance(frequency_hz)
        w = 2.0 * math.pi * frequency_hz
        zc0 = 1.0 / complex(0.0, w * self.c0_farad)
        return zm * zc0 / (zm + zc0)

    def admittance(self, frequency_hz: HZ) -> complex:
        """Terminal admittance."""
        return 1.0 / self.impedance(frequency_hz)

    def radiation_resistance(self) -> OHM:
        """The radiating part of ``Rm``, ohms."""
        return self.rm_ohm * self.radiation_fraction

    def conjugate_match(self, frequency_hz: HZ) -> complex:
        """The load that absorbs maximum power at ``frequency_hz``."""
        return self.impedance(frequency_hz).conjugate()

    def __repr__(self) -> str:  # compact, designer-facing
        return (
            f"BVDModel(fs={self.series_resonance_hz:.0f} Hz, "
            f"Q={self.q_factor:.1f}, C0={self.c0_farad * 1e9:.1f} nF, "
            f"keff={self.coupling_coefficient:.2f})"
        )
