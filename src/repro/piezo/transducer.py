"""Acoustic-side transducer behaviour: sensitivity, response, aperture.

A transducer is the BVD electrical model plus its acoustic calibration:

* **TVR** (transmit voltage response): source level per volt of drive,
  dB re 1 uPa·m/V. Peaks at series resonance with the motional-branch
  frequency shape.
* **RVS** (receive voltage sensitivity): open-circuit volts per pascal,
  dB re 1 V/uPa.
* **Directivity**: a potted cylinder is omnidirectional in the horizontal
  plane with a soft cosine-ish roll-off in elevation; single elements are
  intentionally broad-beam — all the directivity in VAB comes from the
  *array*, not the element.

The calibration numbers default to values typical of small potted
cylinders in this band and can be overridden for sensitivity studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.piezo.bvd import BVDModel


@dataclass(frozen=True)
class Transducer:
    """One piezo element: BVD circuit plus acoustic calibration.

    Attributes:
        bvd: electrical equivalent circuit.
        tvr_peak_db: transmit voltage response at resonance,
            dB re 1 uPa·m/V.
        rvs_peak_db: open-circuit receive sensitivity at resonance,
            dB re 1 V/uPa.
        elevation_rolloff_exponent: exponent ``n`` of the ``cos^n``
            elevation pattern (0 = perfectly omnidirectional).
    """

    bvd: BVDModel = field(default_factory=BVDModel.vab_element)
    tvr_peak_db: float = 145.0
    rvs_peak_db: float = -193.0
    elevation_rolloff_exponent: float = 0.5

    # -- frequency response -------------------------------------------------

    def _resonance_shape(self, frequency_hz: float) -> float:
        """Normalised (0, 1] magnitude response of the motional branch."""
        zm = self.bvd.motional_impedance(frequency_hz)
        return self.bvd.rm_ohm / abs(zm)

    def tvr_db(self, frequency_hz: float) -> float:
        """Transmit voltage response at a frequency, dB re 1 uPa·m/V."""
        shape = self._resonance_shape(frequency_hz)
        return self.tvr_peak_db + 20.0 * math.log10(max(shape, 1e-15))

    def rvs_db(self, frequency_hz: float) -> float:
        """Receive voltage sensitivity at a frequency, dB re 1 V/uPa."""
        shape = self._resonance_shape(frequency_hz)
        return self.rvs_peak_db + 20.0 * math.log10(max(shape, 1e-15))

    # -- conversions -----------------------------------------------------------

    def source_level_db(self, drive_voltage_rms: float, frequency_hz: float) -> float:
        """Source level for a drive voltage, dB re 1 uPa @ 1 m."""
        if drive_voltage_rms <= 0:
            raise ValueError("drive voltage must be positive")
        return self.tvr_db(frequency_hz) + 20.0 * math.log10(drive_voltage_rms)

    def received_voltage_rms(
        self, pressure_level_db: float, frequency_hz: float
    ) -> float:
        """Open-circuit voltage for an incident pressure level (dB re 1 uPa)."""
        v_db = pressure_level_db + self.rvs_db(frequency_hz)
        return 10.0 ** (v_db / 20.0)

    # -- directivity ----------------------------------------------------------

    def element_gain(self, elevation_deg: float) -> float:
        """Linear amplitude pattern vs elevation off the horizontal plane."""
        e = abs(elevation_deg)
        if e >= 90.0:
            return 0.0 if self.elevation_rolloff_exponent > 0 else 1.0
        return math.cos(math.radians(e)) ** self.elevation_rolloff_exponent

    # -- aperture --------------------------------------------------------------

    def effective_aperture_m2(self, frequency_hz: float, sound_speed: float = 1500.0) -> float:
        """Effective capture area of the (near-omni) element, m^2.

        For an omnidirectional receiver the effective aperture is
        ``lambda^2 / (4 pi)`` — the acoustic analogue of the antenna
        theorem — which drives how much power the harvester can collect.
        """
        lam = sound_speed / frequency_hz
        return lam * lam / (4.0 * math.pi)
