"""Load reflection and backscatter modulation depth.

A backscatter node signals by switching the electrical load on its
transducer(s) between states. The incident acoustic wave induces a wave in
the electrical domain; how much is re-radiated depends on the *power-wave
reflection coefficient* of the load against the transducer impedance:

``Gamma = (Z_load - Z_t^*) / (Z_load + Z_t)``

* ``Gamma = 0``  — conjugate match: all captured power is absorbed
  (good for harvesting, invisible to the reader).
* ``|Gamma| = 1`` — open/short: all captured power is re-radiated
  (maximally visible).

The differential radar cross-section — hence the uplink signal amplitude —
is proportional to ``|Gamma_1 - Gamma_2|``, the *modulation depth*. The
switch network in the Van Atta pairs realises the two states; this module
computes what those states are worth.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.piezo.bvd import BVDModel

OPEN_CIRCUIT = complex(1e12, 0.0)
SHORT_CIRCUIT = complex(1e-6, 0.0)


def power_wave_reflection(z_load: complex, z_source: complex) -> complex:
    """Power-wave reflection coefficient of a load against a source impedance.

    Args:
        z_load: load impedance, ohms.
        z_source: source (transducer terminal) impedance, ohms.

    Returns:
        Complex reflection coefficient; |Gamma| <= 1 for passive loads.
    """
    denom = z_load + z_source
    if abs(denom) == 0:
        raise ValueError("degenerate load/source combination")
    return (z_load - z_source.conjugate()) / denom


def reflection_states(
    bvd: BVDModel,
    frequency_hz: float,
    z_on: complex = SHORT_CIRCUIT,
    z_off: complex = None,
) -> Tuple[complex, complex]:
    """Reflection coefficients of a node's two modulation states.

    The default states model the paper's switch design: the "on" state
    shorts the element pair through the Van Atta connection (reflective),
    while the "off" state terminates the element in its conjugate match
    (absorptive; the captured energy goes to the harvester).

    Args:
        bvd: element equivalent circuit.
        frequency_hz: operating frequency.
        z_on: load in the reflective state.
        z_off: load in the absorptive state (conjugate match if None).

    Returns:
        ``(Gamma_on, Gamma_off)``.
    """
    z_t = bvd.impedance(frequency_hz)
    if z_off is None:
        z_off = z_t.conjugate()
    return (
        power_wave_reflection(z_on, z_t),
        power_wave_reflection(z_off, z_t),
    )


def modulation_depth(gamma_on: complex, gamma_off: complex) -> float:
    """Backscatter modulation depth ``|Gamma_on - Gamma_off| / 2``.

    Normalised so a perfect open/short keying (Gamma swinging between +1
    and -1) scores 1.0. The uplink signal amplitude scales linearly with
    this number, so it is the figure of merit the E9 ablation sweeps.
    """
    return abs(gamma_on - gamma_off) / 2.0


def modulation_depth_for(
    bvd: BVDModel,
    frequency_hz: float,
    z_on: complex = SHORT_CIRCUIT,
    z_off: complex = None,
) -> float:
    """Convenience wrapper: modulation depth of a switch design."""
    g_on, g_off = reflection_states(bvd, frequency_hz, z_on, z_off)
    return modulation_depth(g_on, g_off)


def mismatch_loss_db(gamma: complex) -> float:
    """Power lost to reflection when trying to *absorb*, dB.

    ``-10 log10(1 - |Gamma|^2)`` — used by the harvester to discount the
    captured power in the absorptive state.
    """
    mag2 = min(abs(gamma) ** 2, 1.0 - 1e-12)
    return -10.0 * math.log10(1.0 - mag2)
