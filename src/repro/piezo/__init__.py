"""Piezoelectric transducer substrate.

Models the electro-mechanical components the VAB node is built from:

* :mod:`repro.piezo.bvd` — Butterworth–Van Dyke equivalent circuit
  (impedance, resonance, bandwidth) for a potted piezo cylinder.
* :mod:`repro.piezo.transducer` — acoustic-side behaviour: transmit
  voltage response, receive sensitivity, directivity, effective aperture.
* :mod:`repro.piezo.matching` — load reflection coefficients and the
  backscatter modulation depth they produce.
* :mod:`repro.piezo.harvester` — acoustic energy harvesting and the node's
  power budget.
"""

from repro.piezo.bvd import BVDModel
from repro.piezo.transducer import Transducer
from repro.piezo.matching import (
    modulation_depth,
    power_wave_reflection,
    reflection_states,
)
from repro.piezo.harvester import EnergyHarvester, PowerBudget

__all__ = [
    "BVDModel",
    "Transducer",
    "power_wave_reflection",
    "reflection_states",
    "modulation_depth",
    "EnergyHarvester",
    "PowerBudget",
]
