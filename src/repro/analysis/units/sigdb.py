"""Curated unit signatures for the physics API and common stdlib calls.

Annotations and name suffixes cover most of the tree, but the
load-bearing physics entry points deserve ground truth that does not
depend on either convention surviving a refactor: this database pins
the units the *papers* define — Thorp/Francois–Garrison absorption is
dB **per kilometre**, spreading and transmission loss are dB, BVD
impedances are ohms, trigonometry consumes radians.

Lookup order in the engine is annotation > sigdb > suffix, so an
explicit annotation always wins; the database is the safety net for
unannotated call sites and for external functions (``math.radians``)
the engine cannot read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.units.vocab import (
    DB_PER_KM_UNIT,
    DB_UNIT,
    DEG_UNIT,
    HZ_UNIT,
    KM_UNIT,
    LINEAR_UNIT,
    MPS_UNIT,
    M_UNIT,
    OHM_UNIT,
    RAD_UNIT,
    SCALAR_UNIT,
    S_UNIT,
)


@dataclass(frozen=True)
class Signature:
    """Unit contract of one callable.

    Attributes:
        params: parameter name -> canonical unit token. Positional
            binding happens in the engine against the callee's ordered
            parameter list (or :attr:`param_order` for externals).
        returns: unit token of the return value (None when unknown or
            not unit-bearing).
        param_order: positional order of the unit-bearing parameters
            for callables whose definitions the engine cannot parse
            (stdlib / numpy).
    """

    params: Dict[str, str] = field(default_factory=dict)
    returns: Optional[str] = None
    param_order: Tuple[str, ...] = ()


def _sig(returns: Optional[str] = None, order: Tuple[str, ...] = (), **params: str) -> Signature:
    return Signature(params=dict(params), returns=returns, param_order=order)


SIGNATURES: Dict[str, Signature] = {
    # -- acoustics: absorption returns dB/km by model definition --------------
    "repro.acoustics.absorption.absorption_thorp": _sig(
        DB_PER_KM_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.absorption.absorption_francois_garrison": _sig(
        DB_PER_KM_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.absorption.absorption_db_per_km": _sig(
        DB_PER_KM_UNIT, frequency_hz=HZ_UNIT),
    # -- acoustics: spreading / transmission loss are dB ----------------------
    "repro.acoustics.spreading.spreading_loss_db": _sig(
        DB_UNIT, distance_m=M_UNIT),
    "repro.acoustics.spreading.transmission_loss_db": _sig(
        DB_UNIT, distance_m=M_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.spreading.amplitude_gain": _sig(
        LINEAR_UNIT, distance_m=M_UNIT, frequency_hz=HZ_UNIT),
    # -- acoustics: Wenz noise model ------------------------------------------
    "repro.acoustics.noise.wenz_turbulence_psd_db": _sig(DB_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.noise.wenz_shipping_psd_db": _sig(DB_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.noise.wenz_wind_psd_db": _sig(
        DB_UNIT, frequency_hz=HZ_UNIT, wind_speed_mps=MPS_UNIT),
    "repro.acoustics.noise.wenz_thermal_psd_db": _sig(DB_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.noise.total_noise_psd_db": _sig(DB_UNIT, frequency_hz=HZ_UNIT),
    "repro.acoustics.noise.noise_level_db": _sig(
        DB_UNIT, center_frequency_hz=HZ_UNIT, bandwidth_hz=HZ_UNIT),
    "repro.acoustics.doppler.doppler_shift_hz": _sig(HZ_UNIT),
    # -- PHY: BER curves consume post-processing SNR in dB --------------------
    "repro.phy.ber.ber_ook_coherent": _sig(SCALAR_UNIT, snr_db=DB_UNIT),
    "repro.phy.ber.ber_ook_noncoherent": _sig(SCALAR_UNIT, snr_db=DB_UNIT),
    "repro.phy.ber.required_snr_db": _sig(DB_UNIT),
    # -- Van Atta gains -------------------------------------------------------
    "repro.vanatta.retrodirective.monostatic_gain": _sig(
        LINEAR_UNIT, frequency_hz=HZ_UNIT, theta_deg=DEG_UNIT, sound_speed=MPS_UNIT),
    "repro.vanatta.retrodirective.monostatic_gain_db": _sig(
        DB_UNIT, frequency_hz=HZ_UNIT, theta_deg=DEG_UNIT, sound_speed=MPS_UNIT),
    "repro.vanatta.retrodirective.monostatic_pattern_db": _sig(
        DB_UNIT, frequency_hz=HZ_UNIT, sound_speed=MPS_UNIT),
    "repro.vanatta.scaling.peak_gain_db": _sig(DB_UNIT),
    "repro.vanatta.scaling.gain_improvement_db": _sig(DB_UNIT),
    "repro.vanatta.scaling.aperture_m": _sig(M_UNIT, spacing_m=M_UNIT),
    "repro.vanatta.scaling.recommended_spacing": _sig(
        M_UNIT, frequency_hz=HZ_UNIT, sound_speed=MPS_UNIT),
    "repro.vanatta.polarity.coherence_loss_db": _sig(DB_UNIT),
    # -- piezo: BVD impedances are ohms ---------------------------------------
    "repro.piezo.bvd.BVDModel.impedance": _sig(OHM_UNIT, frequency_hz=HZ_UNIT),
    "repro.piezo.bvd.BVDModel.motional_impedance": _sig(OHM_UNIT, frequency_hz=HZ_UNIT),
    "repro.piezo.bvd.BVDModel.conjugate_match": _sig(OHM_UNIT, frequency_hz=HZ_UNIT),
    "repro.piezo.bvd.BVDModel.radiation_resistance": _sig(OHM_UNIT),
    "repro.piezo.bvd.BVDModel.bandwidth_hz": _sig(HZ_UNIT),
    # -- link budget ----------------------------------------------------------
    "repro.sim.linkbudget.LinkBudget.one_way_loss_db": _sig(DB_UNIT, range_m=M_UNIT),
    "repro.sim.linkbudget.LinkBudget.incident_level_db": _sig(DB_UNIT, range_m=M_UNIT),
    "repro.sim.linkbudget.LinkBudget.reflection_gain_db": _sig(DB_UNIT),
    "repro.sim.linkbudget.LinkBudget.received_data_level_db": _sig(
        DB_UNIT, range_m=M_UNIT),
    "repro.sim.linkbudget.LinkBudget.ambient_noise_db": _sig(DB_UNIT),
    "repro.sim.linkbudget.LinkBudget.noise_level_in_band_db": _sig(DB_UNIT),
    "repro.sim.linkbudget.LinkBudget.processing_gain_db": _sig(DB_UNIT),
    "repro.sim.linkbudget.LinkBudget.snr_db": _sig(DB_UNIT, range_m=M_UNIT),
    "repro.sim.linkbudget.LinkBudget.margin_db": _sig(DB_UNIT, range_m=M_UNIT),
    "repro.sim.linkbudget.LinkBudget.max_range_m": _sig(M_UNIT, lo=M_UNIT, hi=M_UNIT),
    # -- stdlib / numpy angle plumbing ----------------------------------------
    "math.radians": _sig(RAD_UNIT, order=("x",), x=DEG_UNIT),
    "math.degrees": _sig(DEG_UNIT, order=("x",), x=RAD_UNIT),
    "numpy.radians": _sig(RAD_UNIT, order=("x",), x=DEG_UNIT),
    "numpy.degrees": _sig(DEG_UNIT, order=("x",), x=RAD_UNIT),
    "numpy.deg2rad": _sig(RAD_UNIT, order=("x",), x=DEG_UNIT),
    "numpy.rad2deg": _sig(DEG_UNIT, order=("x",), x=RAD_UNIT),
}

TRIG_CALLS = frozenset({
    "math.sin", "math.cos", "math.tan",
    "numpy.sin", "numpy.cos", "numpy.tan",
    "cmath.sin", "cmath.cos", "cmath.tan",
})
"""Functions whose argument is an angle in radians (VAB008 anchors)."""

FILTER_TIME_CALLS: Dict[str, str] = {
    "scipy.signal.butter": "Wn",
    "scipy.signal.cheby1": "Wn",
    "scipy.signal.firwin": "cutoff",
}
"""Filter-design calls whose critical-frequency argument is in Hz when a
sampling rate is supplied — passing rad/s there is the VAB008 twin of
the trig case."""

PASSTHROUGH_CALLS = frozenset({
    "max", "min", "abs", "float", "round", "sum",
    "numpy.abs", "numpy.maximum", "numpy.minimum", "numpy.clip",
    "numpy.asarray", "numpy.array", "numpy.mean", "numpy.median",
    "numpy.max", "numpy.min", "numpy.sum",
})
"""Calls that return (an aggregate of) their first argument's unit."""

LOG10_CALLS = frozenset({"math.log10", "numpy.log10"})

PI_NAMES = frozenset({"math.pi", "numpy.pi", "math.tau", "numpy.tau"})


def lookup(qualname: Optional[str]) -> Optional[Signature]:
    """Signature for a fully qualified callable name, if curated."""
    if qualname is None:
        return None
    return SIGNATURES.get(qualname)


_METHOD_INDEX: Dict[str, Tuple[str, ...]] = {}


def method_signature(attr_name: str) -> Optional[Signature]:
    """Signature for a bare method name, when unique in the database.

    ``budget.snr_db(...)`` cannot be resolved statically without type
    inference; a curated method name that appears exactly once in the
    database is safe to match on the attribute alone.
    """
    if not _METHOD_INDEX:
        for qualname in SIGNATURES:
            parts = qualname.split(".")
            if len(parts) >= 2 and parts[-2][:1].isupper():
                tail = parts[-1]
                _METHOD_INDEX[tail] = _METHOD_INDEX.get(tail, ()) + (qualname,)
    matches = _METHOD_INDEX.get(attr_name, ())
    if len(matches) == 1:
        return SIGNATURES[matches[0]]
    return None
