"""Unit-aware dataflow analysis for the VAB tree (rules VAB006–VAB010).

Where :mod:`repro.analysis.rules` checks unit *spelling* on single
statements (VAB003), this subpackage actually tracks units through the
code: a project-wide symbol table and call graph over ``src/repro``,
unit facts seeded from ``Annotated``-style annotations
(:mod:`~repro.analysis.units.vocab`), ``_db``/``_hz``/``_m`` name
suffixes, and a curated physics signature database
(:mod:`~repro.analysis.units.sigdb`), propagated flow-sensitively
through assignments, tuple unpacking, and arithmetic, and across call
boundaries by a fixed-point pass
(:mod:`~repro.analysis.units.engine`).

Entry points::

    from repro.analysis.units import analyze_units

    report = analyze_units(discover_files(["src/repro"]))
    assert report.clean, report.findings

``analyze_units(files, cache_path=...)`` is incremental — unchanged
files and their untouched call-graph dependents are served from the
cache (:mod:`~repro.analysis.units.cache`). The differential baseline
workflow for CI lives in :mod:`~repro.analysis.units.baseline`.
"""

from repro.analysis.units.baseline import (
    apply_baseline,
    diff_against_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.analysis.units.cache import (
    ENGINE_VERSION,
    UnitsCache,
    UnitsReport,
    analyze_units,
)
from repro.analysis.units.engine import (
    FunctionSummary,
    run_fixed_point,
    seed_summaries,
)
from repro.analysis.units.symbols import ModuleInfo, extract_module

UNIT_RULES = {
    "VAB006": (
        "db-domain-product",
        "multiplying or dividing two dB-domain quantities; log-domain "
        "values compose additively — convert to linear first",
    ),
    "VAB007": (
        "db-linear-mix",
        "additive arithmetic or bindings mixing dB-domain and "
        "linear-domain quantities",
    ),
    "VAB008": (
        "hz-rad-confusion",
        "Hz vs rad/s (and kHz) mismatches: frequency-family conflicts in "
        "arithmetic, call arguments, and trig/filter calls expecting radians",
    ),
    "VAB009": (
        "m-km-mix",
        "metre vs kilometre mixing in range expressions, including dB/km "
        "coefficients multiplied by metres without / 1e3",
    ),
    "VAB010": (
        "call-site-unit-conflict",
        "interprocedural conflicts: argument units contradicting the "
        "callee's parameter units, or returns contradicting declarations",
    ),
}
"""rule id -> (name, summary) for the units engine's findings."""

UNIT_RULE_IDS = tuple(sorted(UNIT_RULES))

__all__ = [
    "analyze_units",
    "UnitsReport",
    "UnitsCache",
    "ENGINE_VERSION",
    "UNIT_RULES",
    "UNIT_RULE_IDS",
    "FunctionSummary",
    "ModuleInfo",
    "extract_module",
    "seed_summaries",
    "run_fixed_point",
    "finding_key",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
]
