"""Incremental analysis cache and the ``analyze_units`` entry point.

The engine's cost is parsing and re-walking ~100 ASTs; the units of a
file only change when the file (or something it calls) changes. The
cache keys every file on the sha256 of its bytes plus the engine
version, and stores the file's findings, function summaries, and the
set of project functions it references. A warm run then:

1. hashes every file (cheap),
2. marks changed files dirty,
3. expands the dirty set with the **call-graph dependents** of every
   dirty file (transitively, via the cached reference sets — a caller's
   call-site checks depend on its callees' summaries),
4. re-parses and re-analyzes only the dirty set, against the cached
   summaries of everything else,
5. reuses cached findings verbatim for untouched files.

Findings are stored suppression-filtered, so cache hits and cold runs
produce byte-identical reports — the determinism tests lock this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import PARSE_ERROR_RULE, Finding
from repro.analysis.suppressions import SuppressionIndex
from repro.analysis.units.engine import (
    FunctionSummary,
    run_fixed_point,
    seed_summaries,
)
from repro.analysis.units.symbols import ModuleInfo, extract_module

ENGINE_VERSION = "1.0.0"
"""Bumping this invalidates every cache entry (new rules, new algebra)."""

DEFAULT_CACHE_NAME = ".vablint_units_cache.json"


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class CacheEntry:
    """Everything remembered about one analyzed file."""

    sha: str
    findings: List[Dict[str, object]] = field(default_factory=list)
    summaries: List[Dict[str, object]] = field(default_factory=list)
    refs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sha": self.sha,
            "findings": self.findings,
            "summaries": self.summaries,
            "refs": self.refs,
        }

    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "CacheEntry":
        return CacheEntry(
            sha=str(raw["sha"]),
            findings=list(raw.get("findings", [])),  # type: ignore[arg-type]
            summaries=list(raw.get("summaries", [])),  # type: ignore[arg-type]
            refs=list(raw.get("refs", [])),  # type: ignore[arg-type]
        )


class UnitsCache:
    """On-disk store of per-file analysis results."""

    def __init__(self, entries: Optional[Dict[str, CacheEntry]] = None) -> None:
        self.entries: Dict[str, CacheEntry] = entries or {}

    @classmethod
    def load(cls, path: Optional[Path]) -> "UnitsCache":
        """Read a cache file; any mismatch or damage yields an empty cache."""
        if path is None or not Path(path).is_file():
            return cls()
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        if raw.get("engine") != ENGINE_VERSION:
            return cls()
        entries = {
            str(key): CacheEntry.from_dict(value)
            for key, value in raw.get("files", {}).items()
        }
        return cls(entries)

    def save(self, path: Path) -> None:
        """Persist the cache (deterministic JSON; sorted keys)."""
        payload = {
            "engine": ENGINE_VERSION,
            "files": {
                key: self.entries[key].to_dict() for key in sorted(self.entries)
            },
        }
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )


@dataclass
class UnitsReport:
    """Output of one (possibly incremental) units-engine run.

    Attributes:
        findings: suppression-filtered VAB006..VAB010 findings, sorted.
        errors: parse failures (VAB000).
        files: number of files covered (analyzed + reused).
        analyzed: files re-parsed and re-analyzed this run.
        reused: files served entirely from the cache.
        passes: fixed-point passes the engine ran.
        engine_version: the engine/cache version string.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files: int = 0
    analyzed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    passes: int = 0
    engine_version: str = ENGINE_VERSION

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def stats(self) -> Dict[str, object]:
        """JSON-safe summary embedded in reports and manifests."""
        return {
            "engine_version": self.engine_version,
            "files": self.files,
            "analyzed": len(self.analyzed),
            "reused": len(self.reused),
            "passes": self.passes,
        }


def _filtered(findings: Sequence[Finding], source: str) -> List[Finding]:
    index = SuppressionIndex.from_source(source)
    return [f for f in findings if not index.is_suppressed(f.line, f.rule_id)]


def _dependent_closure(
    dirty: Set[str],
    cache: UnitsCache,
    qualname_owner: Dict[str, str],
) -> Set[str]:
    """Dirty files plus every cached file that (transitively) refers to
    a function defined in a dirty file."""
    ref_edges: Dict[str, Set[str]] = {}
    for path, entry in cache.entries.items():
        deps = {qualname_owner[q] for q in entry.refs if q in qualname_owner}
        deps.discard(path)
        ref_edges[path] = deps
    closed = set(dirty)
    changed = True
    while changed:
        changed = False
        for path, deps in ref_edges.items():
            if path not in closed and deps & closed:
                closed.add(path)
                changed = True
    return closed


def analyze_units(
    files: Sequence[Path],
    cache_path: Optional[Path] = None,
) -> UnitsReport:
    """Run the dimensional-analysis engine over ``files``.

    With ``cache_path`` the run is incremental: unchanged files (whose
    call-graph dependencies are also unchanged) are served from the
    cache without re-parsing, and the cache is rewritten afterwards.
    Without it, every file is analyzed cold.
    """
    report = UnitsReport()
    sources: Dict[str, str] = {}
    shas: Dict[str, str] = {}
    ordered: List[str] = []
    for file_path in files:
        key = Path(file_path).as_posix()
        try:
            data = Path(file_path).read_bytes()
        except OSError as exc:
            report.errors.append(Finding(
                path=key, line=1, col=0, rule_id=PARSE_ERROR_RULE,
                message=f"could not read file: {exc}",
            ))
            continue
        ordered.append(key)
        shas[key] = _sha256(data)
        sources[key] = data.decode("utf-8", errors="replace")

    cache = UnitsCache.load(cache_path)
    cache.entries = {k: v for k, v in cache.entries.items() if k in shas}

    qualname_owner: Dict[str, str] = {}
    for path, entry in cache.entries.items():
        for raw in entry.summaries:
            qualname_owner[str(raw["qualname"])] = path

    dirty = {
        key for key in ordered
        if key not in cache.entries or cache.entries[key].sha != shas[key]
    }
    dirty = _dependent_closure(dirty, cache, qualname_owner) & set(ordered)

    infos: List[ModuleInfo] = []
    for key in sorted(dirty):
        try:
            infos.append(extract_module(Path(key), sources[key]))
        except SyntaxError as exc:
            report.errors.append(Finding(
                path=key, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse file: {exc.msg}",
            ))
            dirty.discard(key)
            cache.entries.pop(key, None)

    summaries: Dict[str, FunctionSummary] = {}
    for path, entry in cache.entries.items():
        if path in dirty:
            continue
        for raw in entry.summaries:
            summary = FunctionSummary.from_dict(raw)
            summaries[summary.qualname] = summary
    summaries.update(seed_summaries(infos))

    analyses, summaries, passes = run_fixed_point(infos, summaries)
    report.passes = passes

    summary_by_path: Dict[str, List[FunctionSummary]] = {}
    for summary in summaries.values():
        summary_by_path.setdefault(summary.path, []).append(summary)

    for key in ordered:
        if key in dirty:
            analysis = analyses.get(key)
            fresh = _filtered(analysis.findings if analysis else [], sources[key])
            report.findings.extend(fresh)
            report.analyzed.append(key)
            cache.entries[key] = CacheEntry(
                sha=shas[key],
                findings=[f.to_dict() for f in fresh],
                summaries=[
                    s.to_dict() for s in sorted(
                        summary_by_path.get(key, []), key=lambda s: s.qualname
                    )
                ],
                refs=sorted(analysis.refs) if analysis else [],
            )
        elif key in cache.entries:
            entry = cache.entries[key]
            report.findings.extend(
                Finding(
                    path=str(raw["path"]), line=int(raw["line"]),  # type: ignore[arg-type]
                    col=int(raw["col"]), rule_id=str(raw["rule"]),  # type: ignore[arg-type]
                    message=str(raw["message"]),
                )
                for raw in entry.findings
            )
            report.reused.append(key)

    report.files = len(report.analyzed) + len(report.reused)
    report.findings.sort()
    report.errors.sort()
    if cache_path is not None:
        cache.save(Path(cache_path))
    return report
