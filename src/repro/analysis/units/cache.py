"""Incremental units cache and the ``analyze_units`` entry point.

The sha-keyed cache, call-graph dependent invalidation, and the
byte-identical replay contract all live in the shared driver
(:mod:`repro.analysis.incremental`); this module binds the units
engine's callables to it and keeps the units-specific types
(:class:`UnitsReport`, :class:`UnitsCache`) as the public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.incremental import (
    AnalysisCache,
    CacheEntry,
    analyze_incremental,
)
from repro.analysis.units.engine import (
    FunctionSummary,
    run_fixed_point,
    seed_summaries,
)
from repro.analysis.units.symbols import extract_module

__all__ = [
    "ENGINE_VERSION",
    "DEFAULT_CACHE_NAME",
    "CacheEntry",
    "UnitsCache",
    "UnitsReport",
    "analyze_units",
]

ENGINE_VERSION = "1.0.0"
"""Bumping this invalidates every cache entry (new rules, new algebra)."""

DEFAULT_CACHE_NAME = ".vablint_units_cache.json"


class UnitsCache(AnalysisCache):
    """On-disk store of per-file units results (version-bound wrapper)."""

    @classmethod
    def load(cls, path: Optional[Path]) -> "UnitsCache":  # type: ignore[override]
        """Read a cache file; any mismatch or damage yields an empty cache."""
        return super().load(path, ENGINE_VERSION)  # type: ignore[return-value]

    def save(self, path: Path) -> None:  # type: ignore[override]
        """Persist the cache (deterministic JSON; sorted keys)."""
        super().save(path, ENGINE_VERSION)


@dataclass
class UnitsReport:
    """Output of one (possibly incremental) units-engine run.

    Attributes:
        findings: suppression-filtered VAB006..VAB010 findings, sorted.
        errors: parse failures (VAB000).
        files: number of files covered (analyzed + reused).
        analyzed: files re-parsed and re-analyzed this run.
        reused: files served entirely from the cache.
        passes: fixed-point passes the engine ran.
        engine_version: the engine/cache version string.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files: int = 0
    analyzed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    passes: int = 0
    engine_version: str = ENGINE_VERSION

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def stats(self) -> Dict[str, object]:
        """JSON-safe summary embedded in reports and manifests."""
        return {
            "engine_version": self.engine_version,
            "files": self.files,
            "analyzed": len(self.analyzed),
            "reused": len(self.reused),
            "passes": self.passes,
        }


def analyze_units(
    files: Sequence[Path],
    cache_path: Optional[Path] = None,
    force_dirty: Optional[Set[str]] = None,
) -> UnitsReport:
    """Run the dimensional-analysis engine over ``files``.

    With ``cache_path`` the run is incremental: unchanged files (whose
    call-graph dependencies are also unchanged) are served from the
    cache without re-parsing, and the cache is rewritten afterwards.
    Without it, every file is analyzed cold.  ``force_dirty`` paths are
    re-analyzed (with their dependents) even when their sha matches.
    """
    # ENGINE_VERSION is read at call time so a version bump (or a test
    # monkeypatching it) invalidates existing cache files.
    return analyze_incremental(
        files,
        cache_path,
        engine_version=ENGINE_VERSION,
        report=UnitsReport(),
        extract=extract_module,
        seed=seed_summaries,
        fixed_point=run_fixed_point,
        summary_from_dict=FunctionSummary.from_dict,
        force_dirty=force_dirty,
    )
