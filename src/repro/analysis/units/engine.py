"""Flow-sensitive, interprocedural dimensional analysis (VAB006–VAB010).

The engine runs in three layers:

1. **Seeding** — every function gets a :class:`FunctionSummary` whose
   parameter/return units come from annotations
   (:mod:`repro.analysis.units.vocab`), the curated signature database
   (:mod:`repro.analysis.units.sigdb`), or ``_db``-style name suffixes,
   in that priority order.
2. **Flow analysis** — each function body is interpreted statement by
   statement: assignments and tuple unpacking extend a name -> unit
   environment, arithmetic combines units through the vocab algebra
   (including conversion constants like ``/ 1e3``), and calls pull
   return units from the summary table.
3. **Fixed point** — return units inferred from bodies feed back into
   the summary table and analysis repeats (in practice two passes)
   until no summary changes, so units flow across call boundaries in
   either direction.

The rules:

* **VAB006** ``db-domain-product`` — multiplying or dividing two
  dB-domain quantities (log-domain values compose additively).
* **VAB007** ``db-linear-mix`` — additive arithmetic or a binding that
  mixes the dB domain with an explicitly linear-domain ratio.
* **VAB008** ``hz-rad-confusion`` — frequency-family mismatches: Hz
  where rad/s (or kHz) is in play, frequencies fed raw into
  trigonometric or filter-design calls that expect radians.
* **VAB009** ``m-km-mix`` — length-family mismatches in range
  expressions, including the factor-1000 slip of multiplying a dB/km
  absorption coefficient by metres with no ``/ 1e3``.
* **VAB010** ``call-site-unit-conflict`` — interprocedural checks: an
  argument whose inferred unit conflicts with the callee's declared
  parameter unit, or a return value that contradicts the function's
  declared return unit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.units import sigdb
from repro.analysis.units.symbols import FunctionInfo, ModuleInfo
from repro.analysis.units.vocab import (
    DB_DOMAIN,
    DB_TIMES_M_PER_KM_UNIT,
    DB_UNIT,
    DEG_UNIT,
    HZ_UNIT,
    KHZ_UNIT,
    KM_UNIT,
    LINEAR_UNIT,
    M_UNIT,
    PI_SCALAR_UNIT,
    RAD_PER_S_UNIT,
    SCALAR_UNIT,
    combine_additive,
    combine_divisive,
    combine_multiplicative,
    family_of,
    unit_from_name,
)

MAX_FIXED_POINT_PASSES = 4
"""Safety bound; the issue's two-pass scheme converges in 2 on this tree."""

LOG10_RESULT = "__log10__"
"""Pseudo-unit of a bare ``log10(...)`` call, promoted to dB by 10x/20x."""

RULE_DB_PRODUCT = "VAB006"
RULE_DB_LINEAR_MIX = "VAB007"
RULE_HZ_RAD = "VAB008"
RULE_M_KM = "VAB009"
RULE_CALL_SITE = "VAB010"

_FREQ_UNITS = frozenset({HZ_UNIT, KHZ_UNIT, RAD_PER_S_UNIT})
_TRIG_BAD_UNITS = frozenset({HZ_UNIT, KHZ_UNIT, RAD_PER_S_UNIT, DEG_UNIT})
_LINSPACE_CALLS = frozenset({"numpy.linspace", "numpy.arange", "numpy.geomspace"})

Unit = Optional[str]


@dataclass(frozen=True)
class FunctionSummary:
    """The interprocedural unit contract of one function."""

    qualname: str
    params: Tuple[Tuple[str, Unit], ...]
    returns: Unit
    return_source: str
    path: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "params": [[n, u] for n, u in self.params],
            "returns": self.returns,
            "return_source": self.return_source,
            "path": self.path,
        }

    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "FunctionSummary":
        return FunctionSummary(
            qualname=str(raw["qualname"]),
            params=tuple((str(n), u) for n, u in raw["params"]),  # type: ignore[union-attr]
            returns=raw["returns"],  # type: ignore[arg-type]
            return_source=str(raw.get("return_source", "")),
            path=str(raw["path"]),
        )


@dataclass
class ModuleAnalysis:
    """Per-file output of one engine pass."""

    findings: List[Finding] = field(default_factory=list)
    refs: Set[str] = field(default_factory=set)
    inferred_returns: Dict[str, str] = field(default_factory=dict)


def seed_summaries(infos: Sequence[ModuleInfo]) -> Dict[str, FunctionSummary]:
    """Initial summary table from annotations, sigdb, and suffixes."""
    table: Dict[str, FunctionSummary] = {}
    for info in infos:
        for fn in info.functions:
            table[fn.qualname] = FunctionSummary(
                qualname=fn.qualname,
                params=tuple((p.name, p.unit) for p in fn.params),
                returns=fn.return_unit,
                return_source=fn.return_source,
                path=info.path.as_posix(),
            )
    return table


def method_index(table: Dict[str, FunctionSummary]) -> Dict[str, Tuple[str, ...]]:
    """bare method name -> qualnames, for unique-name attribute fallback."""
    index: Dict[str, Tuple[str, ...]] = {}
    for qualname in sorted(table):
        parts = qualname.split(".")
        if len(parts) >= 2 and parts[-2][:1].isupper():
            index[parts[-1]] = index.get(parts[-1], ()) + (qualname,)
    return index


def _conflict(a: Unit, b: Unit) -> Optional[Tuple[str, str]]:
    """(rule_id, description) when units ``a`` and ``b`` must not meet
    additively, else None. Pseudo-units and unknowns never conflict."""
    if a is None or b is None or a == b:
        return None
    in_db_a, in_db_b = a in DB_DOMAIN, b in DB_DOMAIN
    if (in_db_a and b == LINEAR_UNIT) or (in_db_b and a == LINEAR_UNIT):
        return RULE_DB_LINEAR_MIX, "dB-domain and linear-domain quantities"
    if DB_TIMES_M_PER_KM_UNIT in (a, b) and (in_db_a or in_db_b):
        return (
            RULE_M_KM,
            "a dB/km coefficient multiplied by metres (missing / 1e3) "
            "and a dB quantity",
        )
    if {a, b} == {M_UNIT, KM_UNIT}:
        return RULE_M_KM, "metre and kilometre quantities"
    if a in _FREQ_UNITS and b in _FREQ_UNITS:
        return RULE_HZ_RAD, f"{a} and {b} frequency conventions"
    return None


def _call_conflict(arg_unit: Unit, param_unit: Unit) -> Optional[Tuple[str, str]]:
    """Conflict classification for an argument against a parameter."""
    if arg_unit is None or param_unit is None or arg_unit == param_unit:
        return None
    if arg_unit in (SCALAR_UNIT, PI_SCALAR_UNIT, LOG10_RESULT):
        return None
    if arg_unit in _FREQ_UNITS and param_unit in _FREQ_UNITS:
        return RULE_HZ_RAD, f"{arg_unit} argument for a {param_unit} parameter"
    in_db_arg, in_db_param = arg_unit in DB_DOMAIN, param_unit in DB_DOMAIN
    if (in_db_arg and param_unit == LINEAR_UNIT) or (in_db_param and arg_unit == LINEAR_UNIT):
        return RULE_CALL_SITE, f"{arg_unit} argument for a {param_unit} parameter"
    if arg_unit == DB_TIMES_M_PER_KM_UNIT and in_db_param:
        return RULE_CALL_SITE, "unconverted dB/km * m argument for a dB parameter"
    fam_a, fam_p = family_of(arg_unit), family_of(param_unit)
    if fam_a is not None and fam_a == fam_p and fam_a != "level":
        return RULE_CALL_SITE, f"{arg_unit} argument for a {param_unit} parameter"
    return None


class _FunctionFlow:
    """Interprets one function (or the module top level) in order."""

    def __init__(
        self,
        info: ModuleInfo,
        analysis: ModuleAnalysis,
        summaries: Dict[str, FunctionSummary],
        methods: Dict[str, Tuple[str, ...]],
        fn: Optional[FunctionInfo],
        module_env: Optional[Dict[str, Unit]] = None,
    ) -> None:
        self.info = info
        self.analysis = analysis
        self.summaries = summaries
        self.methods = methods
        self.fn = fn
        self.module_env = module_env or {}
        self.env: Dict[str, Unit] = {}
        self.return_units: List[Unit] = []
        if fn is not None:
            for param in fn.params:
                self.env[param.name] = param.unit

    # -- plumbing ---------------------------------------------------------

    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.analysis.findings.append(Finding(
            path=str(self.info.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        ))

    def _where(self) -> str:
        return self.fn.name + "()" if self.fn is not None else "module level"

    # -- statement flow ---------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed separately (or skipped)
        if isinstance(stmt, ast.Assign):
            unit, _ = self._infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, unit)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                unit, _ = self._infer(stmt.value)
                self._bind(stmt.target, stmt.value, unit)
        elif isinstance(stmt, ast.AugAssign):
            unit, _ = self._infer(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and isinstance(stmt.target, ast.Name):
                existing = self._name_unit(stmt.target.id)
                clash = _conflict(existing, unit)
                if clash is not None:
                    self._emit(stmt, clash[0],
                               f"augmented assignment mixes {clash[1]} "
                               f"({stmt.target.id!r} is {existing}, value is {unit}) "
                               f"in {self._where()}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit, _ = self._infer(stmt.value)
                self.return_units.append(unit)
                self._check_return(stmt, unit)
        elif isinstance(stmt, ast.Expr):
            self._infer(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._infer(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_unit, _ = self._infer(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = iter_unit
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._infer(item.context_expr)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._infer(child)

    def _bind(self, target: ast.expr, value: ast.expr, unit: Unit) -> None:
        if isinstance(target, ast.Name):
            declared = unit_from_name(target.id)
            self._check_binding(target, target.id, declared, unit)
            self.env[target.id] = declared if declared is not None else unit
        elif isinstance(target, ast.Attribute):
            declared = unit_from_name(target.attr)
            self._check_binding(target, target.attr, declared, unit)
            dotted = self.info.resolve(target)
            if dotted is not None:
                self.env[dotted] = declared if declared is not None else unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            values: List[Optional[ast.expr]]
            units: List[Unit]
            if isinstance(value, (ast.Tuple, ast.List)) and (
                len(value.elts) == len(target.elts)
            ):
                values = list(value.elts)
                units = [self._infer(v)[0] for v in values]
            else:
                values = [None] * len(target.elts)
                units = [None] * len(target.elts)
            for sub_target, sub_value, sub_unit in zip(target.elts, values, units):
                self._bind(sub_target, sub_value or target, sub_unit)

    def _check_binding(
        self, node: ast.AST, name: str, declared: Unit, value_unit: Unit
    ) -> None:
        if declared is None or value_unit is None:
            return
        if value_unit == DB_TIMES_M_PER_KM_UNIT and declared in DB_DOMAIN:
            self._emit(node, RULE_M_KM,
                       f"{name!r} ({declared}) bound to a dB/km coefficient "
                       "multiplied by metres; divide the distance by 1e3 "
                       "(dB/km expects km)")
            return
        clash = _conflict(declared, value_unit)
        if clash is not None:
            self._emit(node, clash[0],
                       f"{name!r} declares {declared} but is bound to a "
                       f"{value_unit} expression ({clash[1]}) in {self._where()}")

    def _check_return(self, node: ast.AST, unit: Unit) -> None:
        if self.fn is None or self.fn.return_unit is None or unit is None:
            return
        declared = self.fn.return_unit
        if unit in (SCALAR_UNIT, PI_SCALAR_UNIT, LOG10_RESULT):
            return
        if unit == DB_TIMES_M_PER_KM_UNIT and declared in DB_DOMAIN:
            self._emit(node, RULE_M_KM,
                       f"{self.fn.name}() declares a {declared} return but "
                       "returns a dB/km coefficient multiplied by metres "
                       "(missing / 1e3)")
            return
        if _conflict(declared, unit) is not None or (
            family_of(declared) == family_of(unit)
            and declared != unit and family_of(declared) != "level"
        ):
            self._emit(node, RULE_CALL_SITE,
                       f"{self.fn.name}() declares a {declared} return "
                       f"({self.fn.return_source}) but returns a {unit} "
                       "expression")

    # -- name resolution --------------------------------------------------

    def _name_unit(self, name: str) -> Unit:
        if name in self.env:
            return self.env[name]
        if name in self.module_env:
            return self.module_env[name]
        resolved = self.info.aliases.get(name)
        if resolved is not None:
            if resolved in sigdb.PI_NAMES:
                return PI_SCALAR_UNIT
            return unit_from_name(resolved.rsplit(".", 1)[-1])
        return unit_from_name(name)

    # -- expression inference ---------------------------------------------

    def _infer(self, node: ast.expr) -> Tuple[Unit, Optional[float]]:
        """(unit, numeric constant value) of one expression."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
                return None, float(node.value)
            return None, None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            unit, const = self._infer(node.operand)
            return unit, (None if const is None else -const)
        if isinstance(node, ast.Name):
            return self._name_unit(node.id), None
        if isinstance(node, ast.Attribute):
            resolved = self.info.resolve(node)
            if resolved is not None:
                if resolved in sigdb.PI_NAMES:
                    return PI_SCALAR_UNIT, None
                if resolved in self.env:
                    return self.env[resolved], None
            return unit_from_name(node.attr), None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self._infer(node.test)
            a, _ = self._infer(node.body)
            b, _ = self._infer(node.orelse)
            return (a if a == b else combine_additive(a, b)), None
        if isinstance(node, ast.Subscript):
            unit, _ = self._infer(node.value)
            return unit, None
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._infer(elt)
            return None, None
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._infer(child)
            return None, None
        return None, None

    def _infer_binop(self, node: ast.BinOp) -> Tuple[Unit, Optional[float]]:
        left, left_const = self._infer(node.left)
        right, right_const = self._infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            clash = _conflict(left, right)
            if clash is not None:
                self._emit(node, clash[0],
                           f"additive arithmetic mixes {clash[1]} "
                           f"({left} vs {right}) in {self._where()}")
                return None, None
            return combine_additive(left, right), None
        if isinstance(node.op, ast.Mult):
            if left in DB_DOMAIN and right in DB_DOMAIN:
                self._emit(node, RULE_DB_PRODUCT,
                           f"product of two dB-domain quantities ({left} * "
                           f"{right}) in {self._where()}; dB compose "
                           "additively — convert to linear before multiplying")
                return None, None
            if LOG10_RESULT in (left, right):
                const = right_const if left == LOG10_RESULT else left_const
                if const in (10.0, 20.0):
                    return DB_UNIT, None
                return None, None
            return combine_multiplicative(left, right, left_const, right_const), None
        if isinstance(node.op, ast.Div):
            if left in DB_DOMAIN and right in DB_DOMAIN:
                self._emit(node, RULE_DB_PRODUCT,
                           f"ratio of two dB-domain quantities ({left} / "
                           f"{right}) in {self._where()}; subtract dB values "
                           "instead of dividing them")
                return None, None
            return combine_divisive(left, right, right_const), None
        if isinstance(node.op, ast.Pow):
            if left_const == 10.0 and left is None and right in DB_DOMAIN:
                return LINEAR_UNIT, None
            return None, None
        return None, None

    def _infer_call(self, node: ast.Call) -> Tuple[Unit, Optional[float]]:
        arg_units = [self._infer(arg)[0] for arg in node.args
                     if not isinstance(arg, ast.Starred)]
        kw_units = {
            kw.arg: self._infer(kw.value)[0]
            for kw in node.keywords if kw.arg is not None
        }
        resolved = self.info.resolve(node.func)

        if resolved in sigdb.LOG10_CALLS:
            return LOG10_RESULT, None
        if resolved in sigdb.TRIG_CALLS:
            if arg_units and arg_units[0] in _TRIG_BAD_UNITS:
                self._emit(node, RULE_HZ_RAD,
                           f"{resolved}() expects radians but the argument "
                           f"is {arg_units[0]}-valued in {self._where()}; "
                           "build the phase explicitly (2*pi*f*t, or "
                           "math.radians for angles)")
            return None, None
        if resolved in sigdb.FILTER_TIME_CALLS:
            critical = sigdb.FILTER_TIME_CALLS[resolved]
            unit = kw_units.get(critical)
            if unit in (RAD_PER_S_UNIT, KHZ_UNIT):
                self._emit(node, RULE_HZ_RAD,
                           f"{resolved}() critical frequency {critical!r} is "
                           f"{unit}-valued in {self._where()}; with fs= the "
                           "filter design expects Hz")
            return None, None
        if resolved in sigdb.PASSTHROUGH_CALLS:
            return (arg_units[0] if arg_units else None), None
        if resolved in _LINSPACE_CALLS:
            if len(arg_units) >= 2:
                return combine_additive(arg_units[0], arg_units[1]), None
            return (arg_units[0] if arg_units else None), None

        summary = self._resolve_summary(node, resolved)
        if summary is not None:
            self._check_call_args(node, summary, arg_units, kw_units)
            if summary.returns is not None:
                return summary.returns, None
        signature = sigdb.lookup(resolved)
        if signature is None and isinstance(node.func, ast.Attribute):
            signature = sigdb.method_signature(node.func.attr)
        if signature is not None and summary is None:
            self._check_external_args(node, resolved, signature, arg_units, kw_units)
            if signature.returns is not None:
                return signature.returns, None

        # Fallback: trust the callee's own name suffix (bandwidth_hz()).
        callee_name = None
        if isinstance(node.func, ast.Attribute):
            callee_name = node.func.attr
        elif isinstance(node.func, ast.Name):
            callee_name = node.func.id
        if callee_name is not None:
            return unit_from_name(callee_name), None
        return None, None

    def _resolve_summary(
        self, node: ast.Call, resolved: Optional[str]
    ) -> Optional[FunctionSummary]:
        candidates: List[str] = []
        if resolved is not None:
            candidates.append(resolved)
            if "." not in resolved:
                candidates.append(f"{self.info.module}.{resolved}")
        if isinstance(node.func, ast.Attribute):
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
                and self.fn is not None
                and self.fn.class_name is not None
            ):
                candidates.append(
                    f"{self.info.module}.{self.fn.class_name}.{node.func.attr}"
                )
            else:
                unique = self.methods.get(node.func.attr, ())
                if len(unique) == 1:
                    candidates.append(unique[0])
        for candidate in candidates:
            summary = self.summaries.get(candidate)
            if summary is not None:
                self.analysis.refs.add(summary.qualname)
                return summary
        # Remember unresolved candidates too: if the target appears in a
        # later run (new file), this caller must be re-analyzed.
        self.analysis.refs.update(c for c in candidates if "." in c)
        return None

    def _check_call_args(
        self,
        node: ast.Call,
        summary: FunctionSummary,
        arg_units: List[Unit],
        kw_units: Dict[str, Unit],
    ) -> None:
        params = list(summary.params)
        by_name = dict(params)
        callee = summary.qualname.rsplit(".", 1)[-1]
        for i, unit in enumerate(arg_units):
            if i >= len(params):
                break
            self._flag_arg(node, callee, params[i][0], params[i][1], unit)
        for name, unit in sorted(kw_units.items()):
            if name in by_name:
                self._flag_arg(node, callee, name, by_name[name], unit)

    def _check_external_args(
        self,
        node: ast.Call,
        resolved: Optional[str],
        signature: sigdb.Signature,
        arg_units: List[Unit],
        kw_units: Dict[str, Unit],
    ) -> None:
        callee = (resolved or "?").rsplit(".", 1)[-1]
        order = signature.param_order
        for i, unit in enumerate(arg_units):
            if i >= len(order):
                break
            name = order[i]
            self._flag_arg(node, callee, name, signature.params.get(name), unit)
        for name, unit in sorted(kw_units.items()):
            if name in signature.params:
                self._flag_arg(node, callee, name, signature.params[name], unit)

    def _flag_arg(
        self, node: ast.Call, callee: str, param: str, declared: Unit, actual: Unit
    ) -> None:
        clash = _call_conflict(actual, declared)
        if clash is None:
            return
        rule_id, description = clash
        self._emit(node, rule_id,
                   f"call to {callee}() passes a {actual} value for "
                   f"parameter {param!r} which expects {declared} "
                   f"({description}) in {self._where()}")


def analyze_module(
    info: ModuleInfo,
    summaries: Dict[str, FunctionSummary],
    methods: Dict[str, Tuple[str, ...]],
) -> ModuleAnalysis:
    """One engine pass over one module with the given summary table."""
    analysis = ModuleAnalysis()
    module_flow = _FunctionFlow(info, analysis, summaries, methods, fn=None)
    module_flow.run(info.tree.body)
    module_env = dict(module_flow.env)
    for fn in info.functions:
        flow = _FunctionFlow(
            info, analysis, summaries, methods, fn=fn, module_env=module_env
        )
        flow.run(getattr(fn.node, "body", []))
        if fn.return_unit is None:
            units = {u for u in flow.return_units
                     if u not in (None, SCALAR_UNIT, PI_SCALAR_UNIT, LOG10_RESULT)}
            if len(units) == 1:
                analysis.inferred_returns[fn.qualname] = units.pop()
    analysis.findings.sort()
    return analysis


def run_fixed_point(
    infos: Sequence[ModuleInfo],
    summaries: Dict[str, FunctionSummary],
) -> Tuple[Dict[str, ModuleAnalysis], Dict[str, FunctionSummary], int]:
    """Iterate analysis passes until the summary table stabilises.

    Args:
        infos: modules to (re-)analyze this run.
        summaries: global summary table (seeded; may contain cached
            summaries for modules *not* in ``infos``). Mutated in place
            as return units are inferred.

    Returns:
        (per-path analyses, final summary table, passes run).
    """
    ordered = sorted(infos, key=lambda info: info.path.as_posix())
    analyses: Dict[str, ModuleAnalysis] = {}
    passes = 0
    for _ in range(MAX_FIXED_POINT_PASSES):
        passes += 1
        methods = method_index(summaries)
        changed = False
        for info in ordered:
            analysis = analyze_module(info, summaries, methods)
            analyses[info.path.as_posix()] = analysis
            for qualname, unit in sorted(analysis.inferred_returns.items()):
                summary = summaries.get(qualname)
                if summary is not None and summary.returns != unit:
                    summaries[qualname] = FunctionSummary(
                        qualname=summary.qualname,
                        params=summary.params,
                        returns=unit,
                        return_source="inferred",
                        path=summary.path,
                    )
                    changed = True
        if not changed:
            break
    return analyses, summaries, passes
