"""The unit vocabulary: tags, annotation aliases, and unit algebra.

This is the shared language of the dimensional-analysis engine
(:mod:`repro.analysis.units.engine`) and the physics code it checks.
Three things live here:

* :class:`UnitTag` and the canonical unit tokens (``"dB"``, ``"Hz"``,
  ``"m"``, ...) grouped into *families* (level, length, frequency,
  time, angle, ...). Two units of the same family measure the same
  physical dimension in different conventions — exactly the mix-ups
  (dB vs linear, Hz vs rad/s, m vs km) that silently shift link-budget
  results by orders of magnitude.
* The **annotation aliases** — ``DB``, ``HZ``, ``METERS``, ... — which
  are plain ``typing.Annotated[float, UnitTag(...)]`` types. Annotating
  a parameter or return as ``def tl(d: METERS) -> DB`` costs nothing at
  runtime, stays mypy-clean, and seeds the interprocedural engine with
  ground-truth units it propagates through the call graph.
* The **algebra**: which unit survives arithmetic
  (:func:`combine_additive`, :func:`combine_multiplicative`,
  :func:`combine_divisive`) and which constants act as unit
  conversions (``distance_m / 1e3`` is a km, not a fraction of a m).

Name-suffix seeding (``snr_db``, ``range_m``) uses
:func:`unit_from_name`, so unannotated code still participates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

try:  # Annotated is typing_extensions-only before 3.9; stdlib after.
    from typing import Annotated
except ImportError:  # pragma: no cover - 3.8 fallback, untested
    Annotated = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UnitTag:
    """The runtime marker carried inside an ``Annotated`` unit alias."""

    unit: str

    def __repr__(self) -> str:
        return f"UnitTag({self.unit!r})"


# ---------------------------------------------------------------------------
# canonical unit tokens and families
# ---------------------------------------------------------------------------

DB_UNIT = "dB"
DBM_UNIT = "dBm"
DB_PER_KM_UNIT = "dB/km"
LINEAR_UNIT = "linear"
HZ_UNIT = "Hz"
KHZ_UNIT = "kHz"
RAD_PER_S_UNIT = "rad/s"
RAD_UNIT = "rad"
DEG_UNIT = "deg"
M_UNIT = "m"
KM_UNIT = "km"
MPS_UNIT = "m/s"
S_UNIT = "s"
MS_UNIT = "ms"
OHM_UNIT = "ohm"
SCALAR_UNIT = "scalar"
"""Dimensionless ratio that is *not* in the dB domain."""

DB_TIMES_M_PER_KM_UNIT = "dB*m/km"
"""Intermediate of ``alpha_db_per_km * distance_m`` before the ``/ 1e3``.

Legal only as a half-finished conversion; reaching an additive dB
context (or a dB binding) in this state is the classic factor-1000
absorption slip the engine reports as VAB009.
"""

PI_SCALAR_UNIT = "pi-scalar"
"""A constant multiple of pi (``2 * math.pi``); ``pi * Hz`` -> rad/s."""

FAMILIES: Dict[str, Tuple[str, ...]] = {
    "level": (DB_UNIT, DBM_UNIT, LINEAR_UNIT),
    "attenuation": (DB_PER_KM_UNIT,),
    "frequency": (HZ_UNIT, KHZ_UNIT, RAD_PER_S_UNIT),
    "angle": (RAD_UNIT, DEG_UNIT),
    "length": (M_UNIT, KM_UNIT),
    "speed": (MPS_UNIT,),
    "time": (S_UNIT, MS_UNIT),
    "impedance": (OHM_UNIT,),
}

_FAMILY_OF: Dict[str, str] = {
    unit: family for family, units in FAMILIES.items() for unit in units
}

DB_DOMAIN = frozenset({DB_UNIT, DBM_UNIT})
"""Log-domain units: additive composition is legal, products are not."""


def family_of(unit: str) -> Optional[str]:
    """The dimension family a unit token belongs to (None for pseudo-units)."""
    return _FAMILY_OF.get(unit)


def same_family_conflict(a: str, b: str) -> bool:
    """True when ``a`` and ``b`` measure one dimension in different units."""
    fam_a, fam_b = family_of(a), family_of(b)
    return fam_a is not None and fam_a == fam_b and a != b


# ---------------------------------------------------------------------------
# annotation aliases (the public vocabulary)
# ---------------------------------------------------------------------------

DB = Annotated[float, UnitTag(DB_UNIT)]
DBM = Annotated[float, UnitTag(DBM_UNIT)]
DB_PER_KM = Annotated[float, UnitTag(DB_PER_KM_UNIT)]
LINEAR = Annotated[float, UnitTag(LINEAR_UNIT)]
HZ = Annotated[float, UnitTag(HZ_UNIT)]
KHZ = Annotated[float, UnitTag(KHZ_UNIT)]
RAD_PER_S = Annotated[float, UnitTag(RAD_PER_S_UNIT)]
RAD = Annotated[float, UnitTag(RAD_UNIT)]
DEG = Annotated[float, UnitTag(DEG_UNIT)]
METERS = Annotated[float, UnitTag(M_UNIT)]
KM = Annotated[float, UnitTag(KM_UNIT)]
MPS = Annotated[float, UnitTag(MPS_UNIT)]
SECONDS = Annotated[float, UnitTag(S_UNIT)]
MS = Annotated[float, UnitTag(MS_UNIT)]
OHM = Annotated[float, UnitTag(OHM_UNIT)]

ANNOTATION_UNITS: Dict[str, str] = {
    "DB": DB_UNIT,
    "DBM": DBM_UNIT,
    "DB_PER_KM": DB_PER_KM_UNIT,
    "LINEAR": LINEAR_UNIT,
    "HZ": HZ_UNIT,
    "KHZ": KHZ_UNIT,
    "RAD_PER_S": RAD_PER_S_UNIT,
    "RAD": RAD_UNIT,
    "DEG": DEG_UNIT,
    "METERS": M_UNIT,
    "KM": KM_UNIT,
    "MPS": MPS_UNIT,
    "SECONDS": S_UNIT,
    "MS": MS_UNIT,
    "OHM": OHM_UNIT,
}
"""Alias name (as written in an annotation) -> canonical unit token."""

VOCAB_MODULE = "repro.analysis.units.vocab"


def unit_from_annotation_name(qualname: str) -> Optional[str]:
    """Canonical unit of a resolved annotation name, else None.

    Accepts both the fully qualified spelling
    (``repro.analysis.units.vocab.DB``) and the bare alias (``DB``)
    a ``from ... import DB`` leaves behind after alias resolution.
    """
    tail = qualname.rsplit(".", 1)[-1]
    if qualname != tail and not qualname.startswith(VOCAB_MODULE):
        return None
    return ANNOTATION_UNITS.get(tail)


# ---------------------------------------------------------------------------
# name-suffix seeding
# ---------------------------------------------------------------------------

SUFFIX_UNITS: Dict[str, str] = {
    "db": DB_UNIT,
    "dbm": DBM_UNIT,
    "db_per_km": DB_PER_KM_UNIT,
    "lin": LINEAR_UNIT,
    "linear": LINEAR_UNIT,
    "hz": HZ_UNIT,
    "khz": KHZ_UNIT,
    "rad_per_s": RAD_PER_S_UNIT,
    "rad": RAD_UNIT,
    "deg": DEG_UNIT,
    "m": M_UNIT,
    "km": KM_UNIT,
    "mps": MPS_UNIT,
    "ms": MS_UNIT,
    "ohm": OHM_UNIT,
}
"""Trailing name tokens that mark a unit (longest match wins).

``_s`` (bare seconds) is deliberately absent: single-letter ``w_s`` /
``f_s`` spellings for angular/series-resonance frequency are too common
for the suffix alone to be trustworthy; seconds require an annotation,
a per-name ``elapsed_s`` style the time family rules don't touch, or
the signature database.
"""

_MULTI_SUFFIXES = sorted(SUFFIX_UNITS, key=len, reverse=True)


def unit_from_name(name: str) -> Optional[str]:
    """Unit implied by a name's trailing suffix (``snr_db`` -> ``dB``).

    Mid-name dB markers with a per-something tail (``loss_db_per_bounce``)
    resolve to dB unless the tail is the full ``db_per_km`` spelling.
    """
    lowered = name.lower()
    for suffix in _MULTI_SUFFIXES:
        if lowered == suffix or lowered.endswith("_" + suffix):
            return SUFFIX_UNITS[suffix]
    if "_db_per_" in lowered:  # e.g. loss_db_per_bounce: dB-valued rate
        return DB_UNIT
    return None


# ---------------------------------------------------------------------------
# unit algebra
# ---------------------------------------------------------------------------

CONVERSION_DIV: Dict[Tuple[str, float], str] = {
    (M_UNIT, 1e3): KM_UNIT,
    (KM_UNIT, 1e-3): M_UNIT,
    (HZ_UNIT, 1e3): KHZ_UNIT,
    (KHZ_UNIT, 1e-3): HZ_UNIT,
    (S_UNIT, 1e-3): MS_UNIT,
    (MS_UNIT, 1e3): S_UNIT,
    (DB_TIMES_M_PER_KM_UNIT, 1e3): DB_UNIT,
}
"""``unit / constant`` conversions that land on a new unit."""

CONVERSION_MUL: Dict[Tuple[str, float], str] = {
    (M_UNIT, 1e-3): KM_UNIT,
    (KM_UNIT, 1e3): M_UNIT,
    (HZ_UNIT, 1e-3): KHZ_UNIT,
    (KHZ_UNIT, 1e3): HZ_UNIT,
    (S_UNIT, 1e3): MS_UNIT,
    (MS_UNIT, 1e-3): S_UNIT,
    (DB_TIMES_M_PER_KM_UNIT, 1e-3): DB_UNIT,
}
"""``unit * constant`` conversions that land on a new unit."""


def combine_additive(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Unit of ``a + b`` / ``a - b`` when no conflict fires.

    One known side propagates (adding a dimensionless correction
    constant is everywhere in the empirical physics fits); two equal
    sides keep their unit; anything else is unknown — conflicts are the
    *engine's* job to report, not this helper's.
    """
    if a is None or a == SCALAR_UNIT:
        return b if b != SCALAR_UNIT else a
    if b is None or b == SCALAR_UNIT:
        return a
    if a == b:
        return a
    return None


def combine_multiplicative(
    a: Optional[str], b: Optional[str],
    a_const: Optional[float] = None, b_const: Optional[float] = None,
) -> Optional[str]:
    """Unit of ``a * b`` (constants, conversions, and the dB/km cases).

    ``a_const`` / ``b_const`` are the literal values when an operand is
    a numeric constant, enabling the conversion table (``* 1e-3``) and
    the pi-scalar -> rad/s promotion.
    """
    for unit, other, const in ((a, b, b_const), (b, a, a_const)):
        if unit is None:
            continue
        if const is not None and (unit, const) in CONVERSION_MUL:
            return CONVERSION_MUL[(unit, const)]
    if a in DB_DOMAIN and b in DB_DOMAIN:
        return None  # the engine reports VAB006 before consulting us
    pairs = {(a, b), (b, a)}
    if (DB_PER_KM_UNIT, KM_UNIT) in pairs:
        return DB_UNIT
    if (DB_PER_KM_UNIT, M_UNIT) in pairs:
        return DB_TIMES_M_PER_KM_UNIT
    if (PI_SCALAR_UNIT, HZ_UNIT) in pairs:
        return RAD_PER_S_UNIT
    if (RAD_PER_S_UNIT, S_UNIT) in pairs:
        return RAD_UNIT
    if (MPS_UNIT, S_UNIT) in pairs:
        return M_UNIT
    for unit, other in ((a, b), (b, a)):
        if unit is not None and unit != SCALAR_UNIT and (
            other is None or other == SCALAR_UNIT
        ):
            # scalar * unit keeps the unit only for domain-style units
            # where scaling is meaningful (dB gains, lengths, times).
            if unit in (PI_SCALAR_UNIT,):
                return PI_SCALAR_UNIT
            if other == SCALAR_UNIT:
                return unit
            return None
    return None


def combine_divisive(
    a: Optional[str], b: Optional[str],
    b_const: Optional[float] = None,
) -> Optional[str]:
    """Unit of ``a / b`` (conversion constants, ratios, m/s)."""
    if a is not None and b_const is not None and (a, b_const) in CONVERSION_DIV:
        return CONVERSION_DIV[(a, b_const)]
    if a in DB_DOMAIN and b in DB_DOMAIN:
        return None  # VAB006 territory
    if a is not None and a == b:
        return SCALAR_UNIT
    if a == M_UNIT and b == S_UNIT:
        return MPS_UNIT
    if a == M_UNIT and b == KM_UNIT:
        return SCALAR_UNIT
    if a in DB_DOMAIN and (b is None or b == SCALAR_UNIT):
        # x_db / 10 inside 10**(x/10): stays in the dB domain until the
        # power pattern converts it.
        return a
    if a is not None and (b is None or b == SCALAR_UNIT) and b_const is not None:
        return a if family_of(a) is not None else None
    return None
