"""Project-wide symbol extraction for the dimensional-analysis engine.

One :class:`ModuleInfo` per file: the parsed tree, the module's dotted
name (derived from its path so ``src/repro/acoustics/spreading.py``
and an absolute import ``repro.acoustics.spreading`` agree), import
aliases, and every function/method definition with its parameter and
return **unit seeds** (annotation > signature database > name suffix).

The engine (:mod:`repro.analysis.units.engine`) turns these into
:class:`FunctionSummary` records — the interprocedural currency — and
the set of cross-module references that drives the incremental cache's
dependent invalidation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.registry import _import_aliases
from repro.analysis.units import sigdb
from repro.analysis.units.vocab import unit_from_annotation_name, unit_from_name


def module_name_for_path(path: Path) -> str:
    """Dotted module name a file would import as.

    Anchors on the last ``src`` or site-packages-style segment when the
    path contains a ``repro`` package directory; otherwise falls back to
    the stem (loose scripts, test fixtures, temp trees).
    """
    parts = list(path.parts)
    stem = path.stem
    if "repro" in parts:
        idx = parts.index("repro")
        dotted = parts[idx:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


@dataclass(frozen=True)
class ParamSeed:
    """One parameter's unit seed.

    Attributes:
        name: parameter name.
        unit: canonical unit token, or None when nothing marks it.
        source: where the unit came from (``annotation`` / ``sigdb`` /
            ``suffix``) — reported in findings so a fix knows which
            convention it is violating.
    """

    name: str
    unit: Optional[str]
    source: str = ""


@dataclass
class FunctionInfo:
    """One function or method definition, with unit seeds."""

    qualname: str
    name: str
    node: ast.AST
    params: List[ParamSeed]
    return_unit: Optional[str]
    return_source: str
    lineno: int
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ModuleInfo:
    """Everything the engine needs to know about one parsed file."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    aliases: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a Name/Attribute chain."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])


def _annotation_unit(
    info_aliases: Dict[str, str], node: Optional[ast.AST]
) -> Optional[str]:
    """Unit declared by an annotation AST node, via the vocab aliases."""
    if node is None:
        return None
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    head = info_aliases.get(parts[0], parts[0])
    qualname = ".".join([head] + parts[1:])
    return unit_from_annotation_name(qualname)


def _param_seeds(
    info: ModuleInfo, qualname: str, node: ast.AST, skip_self: bool
) -> List[ParamSeed]:
    """Ordered unit seeds for a function's parameters."""
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if skip_self and ordered and ordered[0].arg in ("self", "cls"):
        ordered = ordered[1:]
    sig = sigdb.lookup(qualname)
    sig_units = dict(sig.params) if sig is not None else {}
    seeds: List[ParamSeed] = []
    for arg in ordered:
        unit = _annotation_unit(info.aliases, arg.annotation)
        source = "annotation"
        if unit is None and arg.arg in sig_units:
            unit, source = sig_units[arg.arg], "sigdb"
        if unit is None:
            unit, source = unit_from_name(arg.arg), "suffix"
        seeds.append(ParamSeed(name=arg.arg, unit=unit, source=unit and source or ""))
    return seeds


def _return_seed(
    info: ModuleInfo, qualname: str, name: str, node: ast.AST
) -> Tuple[Optional[str], str]:
    """(unit, source) the function's return value is declared to carry."""
    unit = _annotation_unit(info.aliases, node.returns)
    if unit is not None:
        return unit, "annotation"
    sig = sigdb.lookup(qualname)
    if sig is not None and isinstance(sig.returns, str):
        return sig.returns, "sigdb"
    suffix_unit = unit_from_name(name)
    if suffix_unit is not None:
        return suffix_unit, "suffix"
    return None, ""


def extract_module(path: Path, source: str) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    Raises:
        SyntaxError: for unparsable sources (the caller reports VAB000).
    """
    tree = ast.parse(source, filename=str(path))
    info = ModuleInfo(
        path=path,
        module=module_name_for_path(path),
        source=source,
        tree=tree,
        aliases=_import_aliases(tree),
    )
    _collect_functions(info, tree.body, class_name=None)
    return info


def _collect_functions(
    info: ModuleInfo, body: Sequence[ast.stmt], class_name: Optional[str]
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = f"{info.module}.{class_name}" if class_name else info.module
            qualname = f"{scope}.{node.name}"
            seeds = _param_seeds(info, qualname, node, skip_self=class_name is not None)
            unit, source = _return_seed(info, qualname, node.name, node)
            info.functions.append(FunctionInfo(
                qualname=qualname,
                name=node.name,
                node=node,
                params=seeds,
                return_unit=unit,
                return_source=source,
                lineno=node.lineno,
                class_name=class_name,
            ))
        elif isinstance(node, ast.ClassDef) and class_name is None:
            _collect_functions(info, node.body, class_name=node.name)
