"""Differential lint baselines: fail CI only on *new* findings.

A baseline file records the multiset of findings a tree is allowed to
carry (grandfathered debt). ``repro lint --baseline lint_baseline.json``
then exits non-zero only when the current run produces a finding that
is not covered by the baseline, so the gate can be enabled on day one
while the repo burns the old findings down; ``--update-baseline``
rewrites the file from the current findings (shrinking it as debt is
paid off).

Keys deliberately exclude line and column: moving a grandfathered
violation around a file must not trip the gate, but adding a *second*
instance of the same violation in the same file must — hence counts,
not a set.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.linter import LintReport

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Line-number-free identity of a finding (path, rule, message)."""
    return f"{Path(finding.path).as_posix()}::{finding.rule_id}::{finding.message}"


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a key -> allowed-count counter.

    Raises:
        ValueError: on a malformed or wrong-version baseline.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if raw.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {raw.get('version')!r} in {path}"
        )
    entries = raw.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline entries in {path}")
    return Counter({str(k): int(v) for k, v in entries.items()})


def write_baseline(findings: Sequence[Finding], path: Path) -> Dict[str, int]:
    """Write the current findings as the new baseline; returns entries."""
    counts = Counter(finding_key(f) for f in findings)
    entries = {key: counts[key] for key in sorted(counts)}
    Path(path).write_text(
        json.dumps(
            {"version": BASELINE_VERSION, "entries": entries},
            indent=2, sort_keys=True,
        ) + "\n",
        encoding="utf-8",
    )
    return entries


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Split findings into (new, resolved-count) against a baseline.

    A finding is *new* when its key's occurrence count exceeds the
    baseline's allowance; within one key, the later occurrences (by
    line) are the ones reported. ``resolved`` counts baseline
    allowances no current finding uses — debt that has been paid and
    can be dropped with ``--update-baseline``.
    """
    seen: Counter = Counter()
    new: List[Finding] = []
    for finding in sorted(findings):
        key = finding_key(finding)
        seen[key] += 1
        if seen[key] > baseline.get(key, 0):
            new.append(finding)
    resolved = sum(
        max(allowed - seen.get(key, 0), 0) for key, allowed in baseline.items()
    )
    return new, resolved


def apply_baseline(report: "LintReport", path: Path) -> Tuple[int, int]:
    """Filter a lint report's findings down to the non-grandfathered ones.

    Mutates ``report.findings`` in place. Returns
    ``(grandfathered, resolved)``: how many findings the baseline
    absorbed and how many baseline allowances went unused.
    """
    baseline = load_baseline(path)
    new, resolved = diff_against_baseline(report.findings, baseline)
    grandfathered = len(report.findings) - len(new)
    report.findings[:] = new
    return grandfathered, resolved
