"""Incremental effects cache and the ``analyze_effects`` entry point.

Identical contract to the units and shapes caches — sha-keyed entries,
call-graph dependent invalidation, suppression-filtered findings stored
for byte-identical replay — via the shared driver in
:mod:`repro.analysis.incremental`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.effects.engine import (
    EffectSummary,
    run_effect_fixed_point,
    seed_effect_summaries,
)
from repro.analysis.findings import Finding
from repro.analysis.incremental import (
    AnalysisCache,
    CacheEntry,
    analyze_incremental,
)
from repro.analysis.units.symbols import extract_module

__all__ = [
    "ENGINE_VERSION",
    "DEFAULT_CACHE_NAME",
    "CacheEntry",
    "EffectsCache",
    "EffectsReport",
    "analyze_effects",
    "effects_cache_path",
]

ENGINE_VERSION = "1.0.0"
"""Bumping this invalidates every cache entry (new rules, new sigdb)."""

DEFAULT_CACHE_NAME = ".vablint_effects_cache.json"


def effects_cache_path(units_cache: Optional[Path]) -> Optional[Path]:
    """Sibling cache file for the effects pass, derived from the units one.

    The engines version and invalidate independently, so they keep
    separate stores; deriving the name keeps the CLI surface at a single
    ``--units-cache`` flag.
    """
    if units_cache is None:
        return None
    path = Path(units_cache)
    if "units" in path.name:
        return path.with_name(path.name.replace("units", "effects"))
    return path.with_name(path.name + ".effects")


class EffectsCache(AnalysisCache):
    """On-disk store of per-file effects results (version-bound wrapper)."""

    @classmethod
    def load(cls, path: Optional[Path]) -> "EffectsCache":  # type: ignore[override]
        return super().load(path, ENGINE_VERSION)  # type: ignore[return-value]

    def save(self, path: Path) -> None:  # type: ignore[override]
        super().save(path, ENGINE_VERSION)


@dataclass
class EffectsReport:
    """Output of one (possibly incremental) effects-engine run.

    Attributes:
        findings: suppression-filtered VAB017..VAB022 findings, sorted.
        errors: parse failures (VAB000).
        files: number of files covered (analyzed + reused).
        analyzed: files re-parsed and re-analyzed this run.
        reused: files served entirely from the cache.
        passes: fixed-point passes the engine ran.
        engine_version: the engine/cache version string.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files: int = 0
    analyzed: List[str] = field(default_factory=list)
    reused: List[str] = field(default_factory=list)
    passes: int = 0
    engine_version: str = ENGINE_VERSION

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def stats(self) -> Dict[str, object]:
        """JSON-safe summary embedded in reports and manifests."""
        return {
            "engine_version": self.engine_version,
            "files": self.files,
            "analyzed": len(self.analyzed),
            "reused": len(self.reused),
            "passes": self.passes,
        }


def analyze_effects(
    files: Sequence[Path],
    cache_path: Optional[Path] = None,
    force_dirty: Optional[Set[str]] = None,
) -> EffectsReport:
    """Run the effect/purity analysis engine over ``files``.

    With ``cache_path`` the run is incremental with the same contract as
    ``analyze_units``; without it every file is analyzed cold.
    """
    # ENGINE_VERSION is read at call time so a version bump (or a test
    # monkeypatching it) invalidates existing cache files.
    return analyze_incremental(
        files,
        cache_path,
        engine_version=ENGINE_VERSION,
        report=EffectsReport(engine_version=ENGINE_VERSION),
        extract=extract_module,
        seed=seed_effect_summaries,
        fixed_point=run_effect_fixed_point,
        summary_from_dict=EffectSummary.from_dict,
        force_dirty=force_dirty,
    )
