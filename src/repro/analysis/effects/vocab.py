"""Effect-contract vocabulary for the effect/purity analysis engine.

The determinism-critical paths (:mod:`repro.sim.cache`,
:mod:`repro.sim.parallel`, :mod:`repro.obs.ledger`, :mod:`repro.rng`)
annotate functions with *effect contracts*::

    from repro.analysis.effects.vocab import Effectful, Pure

    def _site_key(channel, source, receiver) -> Pure[tuple]: ...

    def default_workers() -> Effectful[int, "reads:host"]: ...

``Pure[T]`` declares "the result depends only on the arguments and the
call has no observable side effects" — the property memoization and the
content-addressed ledger rely on.  ``Effectful[T, atoms...]`` declares
a specific *grant*: the named effects are intentional and documented,
so the engine reports only effects the contract does **not** cover.

Both factories produce ``Annotated[T, EffectTag(...)]``, so at runtime
the annotations are inert (annotated modules use ``from __future__
import annotations``) and the static engine reads them straight off the
annotation AST.  For modules under the mypy typed-API gate the same
contracts can be spelled with plain ``typing.Annotated`` and the tag
constants — mypy ignores ``Annotated`` metadata::

    from typing import Annotated
    from repro.analysis.effects.vocab import READS_HOST

    def default_root() -> Annotated[Path, READS_HOST]: ...

Effect atoms
------------
* ``reads:environ`` — reads ``os.environ`` / ``os.getenv``,
* ``reads:clock`` — wall-clock reads (``time.time``, ``datetime.now``),
* ``reads:file`` — filesystem reads,
* ``reads:host`` — host-configuration reads (``os.cpu_count``, TTY/CI
  detection, locale),
* ``reads:global`` — reads a *mutable* module-level global,
* ``mutates:global`` — writes a module-level global,
* ``mutates:arg`` — mutates a caller-owned argument in place,
* ``writes:file`` — filesystem writes,
* ``rng:ambient`` — draws from a process-global RNG stream instead of a
  passed ``SeedSequence``-derived generator.

The vocabulary is stdlib-only on purpose — the analysis framework must
import without numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, Any, Dict, Tuple

READS_ENVIRON_ATOM = "reads:environ"
READS_CLOCK_ATOM = "reads:clock"
READS_FILE_ATOM = "reads:file"
READS_HOST_ATOM = "reads:host"
READS_GLOBAL_ATOM = "reads:global"
MUTATES_GLOBAL_ATOM = "mutates:global"
MUTATES_ARG_ATOM = "mutates:arg"
WRITES_FILE_ATOM = "writes:file"
RNG_AMBIENT_ATOM = "rng:ambient"

ATOMS: Tuple[str, ...] = (
    READS_ENVIRON_ATOM,
    READS_CLOCK_ATOM,
    READS_FILE_ATOM,
    READS_HOST_ATOM,
    READS_GLOBAL_ATOM,
    MUTATES_GLOBAL_ATOM,
    MUTATES_ARG_ATOM,
    WRITES_FILE_ATOM,
    RNG_AMBIENT_ATOM,
)
"""Every effect atom the engine tracks."""

HIDDEN_INPUT_ATOMS = frozenset({
    READS_ENVIRON_ATOM,
    READS_CLOCK_ATOM,
    READS_FILE_ATOM,
    READS_HOST_ATOM,
    READS_GLOBAL_ATOM,
    RNG_AMBIENT_ATOM,
})
"""Atoms that make a result depend on state outside the arguments —
poison for anything memoized or filed under a content-addressed key."""

SIDE_EFFECT_ATOMS = frozenset({
    MUTATES_GLOBAL_ATOM,
    MUTATES_ARG_ATOM,
    WRITES_FILE_ATOM,
})
"""Atoms that do not re-occur on a cache hit — divergence between the
first (computing) call and every later (cached) call."""


@dataclass(frozen=True)
class EffectTag:
    """Metadata payload carried inside ``Annotated[T, EffectTag(...)]``.

    ``atoms == ()`` is the ``Pure`` contract; a non-empty tuple is an
    ``Effectful`` grant of exactly those atoms.
    """

    atoms: Tuple[str, ...]


class _PureFactory:
    """``Pure[T]`` -> ``Annotated[T, EffectTag(())]``."""

    def __getitem__(self, item: Any) -> Any:
        return Annotated[item, EffectTag(())]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Pure"


class _EffectfulFactory:
    """``Effectful[T, "atom", ...]`` -> ``Annotated[T, EffectTag(...)]``."""

    def __getitem__(self, item: Any) -> Any:
        if not isinstance(item, tuple):
            item = (item,)
        inner, atoms = item[0], tuple(item[1:])
        if not atoms:
            raise TypeError(
                "Effectful[...] needs at least one effect atom; "
                "declare purity with Pure[T]"
            )
        for atom in atoms:
            if atom not in ATOMS:
                raise TypeError(
                    f"unknown effect atom {atom!r}; expected one of "
                    f"{', '.join(ATOMS)}"
                )
        return Annotated[inner, EffectTag(atoms)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Effectful"


Pure = _PureFactory()
Effectful = _EffectfulFactory()

# mypy-friendly spelling: ``Annotated[T, READS_HOST]``.  The engine
# matches these constants by (resolved) name in annotation ASTs.
PURE = EffectTag(())
READS_ENVIRON = EffectTag((READS_ENVIRON_ATOM,))
READS_CLOCK = EffectTag((READS_CLOCK_ATOM,))
READS_FILE = EffectTag((READS_FILE_ATOM,))
READS_HOST = EffectTag((READS_HOST_ATOM,))
READS_GLOBAL = EffectTag((READS_GLOBAL_ATOM,))
MUTATES_GLOBAL = EffectTag((MUTATES_GLOBAL_ATOM,))
MUTATES_ARG = EffectTag((MUTATES_ARG_ATOM,))
WRITES_FILE = EffectTag((WRITES_FILE_ATOM,))
RNG_AMBIENT = EffectTag((RNG_AMBIENT_ATOM,))

TAG_CONSTANTS: Dict[str, EffectTag] = {
    "PURE": PURE,
    "READS_ENVIRON": READS_ENVIRON,
    "READS_CLOCK": READS_CLOCK,
    "READS_FILE": READS_FILE,
    "READS_HOST": READS_HOST,
    "READS_GLOBAL": READS_GLOBAL,
    "MUTATES_GLOBAL": MUTATES_GLOBAL,
    "MUTATES_ARG": MUTATES_ARG,
    "WRITES_FILE": WRITES_FILE,
    "RNG_AMBIENT": RNG_AMBIENT,
}
"""Constant name -> tag, as the engine matches them in annotation ASTs."""

CONTRACT_FACTORIES: Tuple[str, ...] = ("Pure", "Effectful")
"""Factory names the engine recognises in ``Pure[...]``/``Effectful[...]``
annotation subscripts."""


__all__ = [
    "ATOMS",
    "HIDDEN_INPUT_ATOMS",
    "SIDE_EFFECT_ATOMS",
    "EffectTag",
    "Pure",
    "Effectful",
    "PURE",
    "READS_ENVIRON",
    "READS_CLOCK",
    "READS_FILE",
    "READS_HOST",
    "READS_GLOBAL",
    "MUTATES_GLOBAL",
    "MUTATES_ARG",
    "WRITES_FILE",
    "RNG_AMBIENT",
    "TAG_CONSTANTS",
    "CONTRACT_FACTORIES",
    "READS_ENVIRON_ATOM",
    "READS_CLOCK_ATOM",
    "READS_FILE_ATOM",
    "READS_HOST_ATOM",
    "READS_GLOBAL_ATOM",
    "MUTATES_GLOBAL_ATOM",
    "MUTATES_ARG_ATOM",
    "WRITES_FILE_ATOM",
    "RNG_AMBIENT_ATOM",
]
