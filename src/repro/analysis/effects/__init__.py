"""Effect/purity analysis for the VAB tree (VAB017–VAB022).

Where :mod:`repro.analysis.units` tracks physical units and
:mod:`repro.analysis.shapes` tracks ndarray shapes/dtypes, this
subpackage tracks **effects**: which functions read ambient state
(environ, wall-clock, filesystem, host configuration, mutable module
globals, process-global RNG streams), which mutate state, and which
callables cross the ProcessPool process boundary.  Contracts are
declared with the ``Pure[T]`` / ``Effectful[T, atoms...]`` vocabulary
(:mod:`~repro.analysis.effects.vocab`), known stdlib/numpy/repro
signatures live in a curated database
(:mod:`~repro.analysis.effects.sigdb`), and a flow-sensitive,
interprocedural fixed-point engine
(:mod:`~repro.analysis.effects.engine`) rides the same
:class:`~repro.analysis.units.symbols.ModuleInfo` symbol tables and the
same incremental cache driver (:mod:`repro.analysis.incremental`) as
the other two engines.

Entry points::

    from repro.analysis.effects import analyze_effects

    report = analyze_effects(discover_files(["src/repro"]))
    assert report.clean, report.findings

``analyze_effects(files, cache_path=...)`` is incremental with the same
sha-keyed, call-graph-aware invalidation contract as ``analyze_units``.
The rules run under the same ``--units`` CLI flag as VAB006..VAB016 —
no new CLI surface.
"""

from repro.analysis.effects.cache import (
    DEFAULT_CACHE_NAME,
    ENGINE_VERSION,
    EffectsReport,
    analyze_effects,
    effects_cache_path,
)
from repro.analysis.effects.engine import (
    EffectSummary,
    run_effect_fixed_point,
    seed_effect_summaries,
)
from repro.analysis.effects.vocab import (
    ATOMS,
    EffectTag,
    Effectful,
    Pure,
)

EFFECT_RULES = {
    "VAB017": (
        "hidden-cache-input",
        "a hidden input (environ, wall-clock, filesystem, host config, "
        "mutable global, ambient RNG) reaches a memoized or "
        "content-addressed computation whose cache key cannot see it — "
        "cached results go stale silently and poison dedupe for every "
        "user sharing the store",
    ),
    "VAB018": (
        "cache-hit-divergence",
        "a side effect (global/argument mutation, file write) escapes a "
        "memoized function: it happens on the computing call and never "
        "again on a cache hit, so warm and cold runs diverge",
    ),
    "VAB019": (
        "worker-rng-indiscipline",
        "a callable dispatched across the process boundary draws from "
        "an ambient RNG stream instead of a SeedSequence-derived "
        "generator threaded through its parameters — worker results "
        "stop being reproducible",
    ),
    "VAB020": (
        "unpicklable-submit",
        "a lambda or closure-capturing nested function crosses the "
        "ProcessPool submit path: it cannot pickle (or silently "
        "re-binds its closure in the worker)",
    ),
    "VAB021": (
        "version-stamp-completeness",
        "a *_ENGINE_VERSION constant never flows into an "
        "engine_versions={...} manifest stamp, so results computed by "
        "different engine versions collide under one run_key",
    ),
    "VAB022": (
        "host-dependent-result",
        "a host-configuration read (os.cpu_count(), TTY/CI detection, "
        "locale) flows into a returned value without a declared "
        'Effectful[..., "reads:host"] grant — stored results must not '
        "depend on the machine that computed them",
    ),
}
"""rule id -> (name, summary) for the effects engine's findings."""

EFFECT_RULE_IDS = tuple(sorted(EFFECT_RULES))

__all__ = [
    "analyze_effects",
    "effects_cache_path",
    "EffectsReport",
    "ENGINE_VERSION",
    "DEFAULT_CACHE_NAME",
    "EFFECT_RULES",
    "EFFECT_RULE_IDS",
    "EffectSummary",
    "EffectTag",
    "Pure",
    "Effectful",
    "ATOMS",
    "seed_effect_summaries",
    "run_effect_fixed_point",
]
