"""Curated effect signatures for the effect/purity analysis engine.

Like the shapes engine's numpy tables, this is the stdlib/numpy/repro
surface the engine understands *without* seeing a body: which calls
read ambient state, which draw from process-global RNG streams, which
method names mutate their receiver, and which repro functions sit on
the memoization / worker-dispatch boundaries the VAB017–VAB022 rules
police.  Everything else is inferred from bodies and propagated through
the call graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.analysis.effects.vocab import (
    MUTATES_GLOBAL_ATOM,
    READS_CLOCK_ATOM,
    READS_ENVIRON_ATOM,
    READS_FILE_ATOM,
    READS_HOST_ATOM,
    RNG_AMBIENT_ATOM,
)

EFFECT_CALLS: Dict[str, str] = {
    # -- ambient environment -------------------------------------------
    "os.getenv": READS_ENVIRON_ATOM,
    "os.environb.get": READS_ENVIRON_ATOM,
    # -- wall clock (volatile fields are excluded from run_key; a cached
    #    computation must still never read it) --------------------------
    "time.time": READS_CLOCK_ATOM,
    "time.time_ns": READS_CLOCK_ATOM,
    "time.localtime": READS_CLOCK_ATOM,
    "time.ctime": READS_CLOCK_ATOM,
    "datetime.datetime.now": READS_CLOCK_ATOM,
    "datetime.datetime.utcnow": READS_CLOCK_ATOM,
    "datetime.datetime.today": READS_CLOCK_ATOM,
    "datetime.date.today": READS_CLOCK_ATOM,
    # -- host configuration --------------------------------------------
    "os.cpu_count": READS_HOST_ATOM,
    "multiprocessing.cpu_count": READS_HOST_ATOM,
    "os.get_terminal_size": READS_HOST_ATOM,
    "shutil.get_terminal_size": READS_HOST_ATOM,
    "locale.getlocale": READS_HOST_ATOM,
    "locale.getdefaultlocale": READS_HOST_ATOM,
    "locale.getpreferredencoding": READS_HOST_ATOM,
    "locale.nl_langinfo": READS_HOST_ATOM,
    "platform.system": READS_HOST_ATOM,
    "platform.machine": READS_HOST_ATOM,
    "platform.node": READS_HOST_ATOM,
    # -- process-global RNG streams ------------------------------------
    "repro.rng.reseed_fallback": MUTATES_GLOBAL_ATOM,
}
"""call qualname -> effect atom, unconditionally."""

ENVIRON_ATTRS: FrozenSet[str] = frozenset({"os.environ", "os.environb"})
"""Attribute chains whose mere *access* is an environment read."""

AMBIENT_RNG_CALLS: FrozenSet[str] = frozenset({
    # numpy legacy global-state draws.
    "numpy.random.random", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.random_sample",
    "numpy.random.normal", "numpy.random.uniform", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.permutation",
    "numpy.random.standard_normal", "numpy.random.exponential",
    "numpy.random.poisson", "numpy.random.binomial", "numpy.random.seed",
    "numpy.random.rayleigh", "numpy.random.gamma", "numpy.random.beta",
    # stdlib random module (module-level = one hidden global stream).
    "random.random", "random.randint", "random.randrange",
    "random.uniform", "random.gauss", "random.normalvariate",
    "random.choice", "random.choices", "random.sample",
    "random.shuffle", "random.seed",
})
"""Calls that draw from (or reseed) a process-global RNG stream."""

FALLBACK_RNG_FUNCS: FrozenSet[str] = frozenset({
    "repro.rng.fallback_rng",
})
"""The documented process-global fallback stream.  Calling it is only
*indiscipline* when the enclosing function has no ``rng``-style
parameter to thread a seeded stream through — the ``rng=None ->
fallback_rng()`` convenience default is the documented contract and is
policed at construction time by VAB001."""

RNG_PARAM_NAMES: FrozenSet[str] = frozenset({
    "rng", "generator", "gen", "random_state", "rngs",
})
"""Parameter names that count as "a seeded stream can be threaded"."""

MUTATING_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft", "fill", "partial_fit",
})
"""Receiver-mutating method names.  Deliberately excludes the metrics
instruments (``inc``/``observe``/``set``): telemetry is merged
deterministically and excluded from ``run_key``."""

FILE_READ_METHODS: FrozenSet[str] = frozenset({
    "read", "readline", "readlines", "read_text", "read_bytes",
})
FILE_WRITE_METHODS: FrozenSet[str] = frozenset({
    "write", "writelines", "write_text", "write_bytes",
})

MEMOIZED_FUNCS: FrozenSet[str] = frozenset({
    # The channel-response memo store (repro.sim.cache) caches these
    # results by value-equality key; the computation must be pure.
    "repro.sim.cache.cached_between",
    "repro.sim.cache.reader_node_response",
    "repro.acoustics.channel.AcousticChannel.between",
    # Content-addressed ledger keys: two manifests with equal key fields
    # MUST hash identically, so the key derivation is effectively a
    # cache lookup shared across every user of the store.
    "repro.obs.ledger.run_key",
    "repro.obs.ledger.run_id",
})
"""Functions whose results are memoized or content-addressed — checked
by VAB017/VAB018 even without a ``functools`` decorator."""

MEMO_DECORATORS: FrozenSet[str] = frozenset({
    "functools.lru_cache",
    "functools.cache",
})
"""Decorators that memoize the wrapped function."""

WORKER_ENTRY_FUNCS: FrozenSet[str] = frozenset({
    "repro.sim.parallel._run_chunk",
})
"""Functions dispatched across the ProcessPool boundary by
``repro.sim.parallel`` — checked by VAB019 even when the submit call is
not syntactically visible."""

POOL_CONSTRUCTORS: FrozenSet[str] = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})
"""Constructors whose result submits callables to *other processes*."""

SUBMIT_METHODS: FrozenSet[str] = frozenset({
    "submit", "map", "apply", "apply_async", "map_async", "imap",
    "imap_unordered", "starmap",
})
"""Method names on a pool object that carry a callable across the
process boundary (the callable is the first positional argument)."""

HOST_PASSTHROUGH_CALLS: FrozenSet[str] = frozenset({
    "min", "max", "abs", "round", "int", "float", "bool", "str",
})
"""Builtins that return a value derived from their arguments — host
taint flows through them on the way to a ``return``."""

VERSION_CONSTANT_SUFFIX = "_ENGINE_VERSION"
VERSION_CONSTANT_BARE = "ENGINE_VERSION"
"""Module-level constants matching ``*_ENGINE_VERSION`` (or the bare
``ENGINE_VERSION``) are version stamps: VAB021 requires every one of
them to flow into an ``engine_versions={...}`` manifest stamp site."""

STAMP_KEYWORD = "engine_versions"
"""Keyword argument naming the manifest's version-stamp dict."""
