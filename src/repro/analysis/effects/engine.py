"""Flow-sensitive, interprocedural effect/purity analysis (VAB017–VAB022).

The engine mirrors the three-layer architecture of the units and shapes
engines, reusing their symbol tables
(:class:`~repro.analysis.units.symbols.ModuleInfo`) verbatim:

1. **Seeding** — every function gets an :class:`EffectSummary` whose
   declared contract comes from ``Pure[...]`` / ``Effectful[...]`` /
   ``Annotated[T, TAG]`` annotations
   (:mod:`repro.analysis.effects.vocab`) read straight off the
   annotation AST, plus flags for memoization decorators and
   ``rng``-style parameters.  Stamp sites — ``engine_versions={...}``
   dict literals — become pseudo-summaries so VAB021 sees them across
   files and cache runs.
2. **Flow analysis** — each body is walked once: calls are matched
   against the curated effect signature database
   (:mod:`repro.analysis.effects.sigdb`) and against callee summaries;
   module-global and argument mutations are detected syntactically;
   process-pool objects, nested callables and host-tainted values are
   tracked through a name environment.
3. **Fixed point** — each function's *propagatable* effect set feeds
   back into the summary table and analysis repeats until stable, so an
   un-annotated caller inherits the effects of everything it calls.

A declared contract (``Pure``/``Effectful``) is a trusted boundary:
callers inherit nothing from an annotated function, and the annotated
body is verified instead (VAB017/VAB018 for memoized/pure functions).

The rules:

* **VAB017** ``hidden-cache-input`` — a hidden input (environ, clock,
  filesystem, host config, mutable global, ambient RNG) reaches a
  memoized or content-addressed computation that its cache key cannot
  see.
* **VAB018** ``cache-hit-divergence`` — a side effect (global/argument
  mutation, file write) escapes a memoized function: it happens on the
  computing call and never again on a cache hit.
* **VAB019** ``worker-rng-indiscipline`` — a callable dispatched across
  the process boundary draws from an ambient RNG stream instead of a
  passed ``SeedSequence``-derived generator.
* **VAB020** ``unpicklable-submit`` — a lambda or closure-capturing
  nested function crosses the ProcessPool submit path (it cannot
  pickle, or silently re-binds its closure in the worker).
* **VAB021** ``version-stamp-completeness`` — a ``*_ENGINE_VERSION``
  constant that does not flow into any ``engine_versions={...}``
  manifest stamp, so results computed by different engine versions
  would collide under one ``run_key``.
* **VAB022** ``host-dependent-result`` — a host-configuration read
  (``os.cpu_count()``, TTY/CI detection, locale) flowing into a return
  value without a declared ``reads:host`` grant: results must not
  depend on where they were computed, only scheduling may.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import sigdb
from repro.analysis.effects.vocab import (
    CONTRACT_FACTORIES,
    HIDDEN_INPUT_ATOMS,
    MUTATES_ARG_ATOM,
    MUTATES_GLOBAL_ATOM,
    READS_ENVIRON_ATOM,
    READS_FILE_ATOM,
    READS_GLOBAL_ATOM,
    READS_HOST_ATOM,
    RNG_AMBIENT_ATOM,
    SIDE_EFFECT_ATOMS,
    TAG_CONSTANTS,
    WRITES_FILE_ATOM,
)
from repro.analysis.findings import Finding
from repro.analysis.units.engine import method_index
from repro.analysis.units.symbols import FunctionInfo, ModuleInfo

MAX_FIXED_POINT_PASSES = 16
"""Safety bound; effect chains through the campaign runner are deeper
than the shape-inference chains (run_observed_campaign -> parallel ->
chunk -> trials -> engine) — the full tree currently converges in 8
path-ordered passes, so the bound leaves 2x headroom."""

RULE_CACHE_INPUT = "VAB017"
RULE_CACHE_DIVERGENCE = "VAB018"
RULE_WORKER_RNG = "VAB019"
RULE_UNPICKLABLE = "VAB020"
RULE_VERSION_STAMP = "VAB021"
RULE_HOST_RESULT = "VAB022"

STAMPS_MARKER = "<engine_versions>"
"""Suffix of the pseudo-summary qualname carrying a module's
``engine_versions`` stamp site (VAB021's cross-file currency)."""


@dataclass(frozen=True)
class EffectSummary:
    """The interprocedural effect contract of one function.

    ``kind == "stamps"`` marks the pseudo-summary of a module's
    ``engine_versions={...}`` stamp site(s); ``stamped`` then holds the
    canonical qualnames of every version constant it references.
    """

    qualname: str
    path: str
    effects: Tuple[Tuple[str, str], ...] = ()
    declared: Optional[Tuple[str, ...]] = None
    has_rng_param: bool = False
    memoized: bool = False
    kind: str = "function"
    stamped: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "path": self.path,
            "effects": [list(pair) for pair in self.effects],
            "declared": list(self.declared) if self.declared is not None else None,
            "has_rng_param": self.has_rng_param,
            "memoized": self.memoized,
            "kind": self.kind,
            "stamped": list(self.stamped),
        }

    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "EffectSummary":
        declared = raw.get("declared")
        return EffectSummary(
            qualname=str(raw["qualname"]),
            path=str(raw["path"]),
            effects=tuple(
                (str(a), str(o)) for a, o in raw.get("effects", [])  # type: ignore[union-attr]
            ),
            declared=tuple(str(a) for a in declared) if declared is not None else None,  # type: ignore[union-attr]
            has_rng_param=bool(raw.get("has_rng_param", False)),
            memoized=bool(raw.get("memoized", False)),
            kind=str(raw.get("kind", "function")),
            stamped=tuple(str(s) for s in raw.get("stamped", ())),  # type: ignore[union-attr]
        )


@dataclass
class EffectModuleAnalysis:
    """Per-file output of one engine pass."""

    findings: List[Finding] = field(default_factory=list)
    refs: Set[str] = field(default_factory=set)
    inferred_effects: Dict[str, Tuple[Tuple[str, str], ...]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class EffectVal:
    """What the flow knows about one bound value."""

    kind: str = "value"  # "value" | "pool" | "nested"
    host: bool = False  # carries a host/environment-derived payload


_PLAIN = EffectVal()
_HOST = EffectVal(host=True)
_POOL = EffectVal(kind="pool")
_NESTED = EffectVal(kind="nested")


@dataclass(frozen=True)
class EffectHit:
    """One effect atom observed in a function body."""

    atom: str
    origin: str
    line: int
    col: int


def annotation_effects(
    info: ModuleInfo, node: Optional[ast.AST]
) -> Optional[Tuple[str, ...]]:
    """Declared effect atoms from an annotation AST, if any.

    Recognises ``Pure[T]`` (-> ``()``), ``Effectful[T, "atom", ...]``,
    and the mypy-friendly ``Annotated[T, TAG, ...]`` spelling with the
    :data:`~repro.analysis.effects.vocab.TAG_CONSTANTS` names.
    """
    if not isinstance(node, ast.Subscript):
        return None
    resolved = info.resolve(node.value)
    if resolved is None:
        return None
    tail = resolved.rsplit(".", 1)[-1]
    if tail == "Pure" and tail in CONTRACT_FACTORIES:
        return ()
    if tail == "Effectful":
        if not isinstance(node.slice, ast.Tuple) or len(node.slice.elts) < 2:
            return None
        atoms: List[str] = []
        for item in node.slice.elts[1:]:
            if not (isinstance(item, ast.Constant) and isinstance(item.value, str)):
                return None
            atoms.append(item.value)
        return tuple(sorted(set(atoms)))
    if tail == "Annotated" and isinstance(node.slice, ast.Tuple):
        atoms = []
        matched = False
        for item in node.slice.elts[1:]:
            item_resolved = info.resolve(item)
            if item_resolved is None:
                continue
            tag = TAG_CONSTANTS.get(item_resolved.rsplit(".", 1)[-1])
            if tag is not None:
                matched = True
                atoms.extend(tag.atoms)
        if matched:
            return tuple(sorted(set(atoms)))
    return None


def _is_memo_decorated(info: ModuleInfo, fn: FunctionInfo) -> bool:
    for dec in getattr(fn.node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = info.resolve(target)
        if resolved is not None and resolved in sigdb.MEMO_DECORATORS:
            return True
    return False


def _has_rng_param(fn: FunctionInfo) -> bool:
    args = fn.node.args  # type: ignore[attr-defined]
    names = [
        a.arg
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ]
    return any(name in sigdb.RNG_PARAM_NAMES for name in names)


def _version_constants(info: ModuleInfo) -> List[Tuple[str, int]]:
    """Module-level ``*_ENGINE_VERSION`` constant definitions."""
    out: List[Tuple[str, int]] = []
    for stmt in info.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if name == sigdb.VERSION_CONSTANT_BARE or name.endswith(
            sigdb.VERSION_CONSTANT_SUFFIX
        ):
            if isinstance(stmt.value, ast.Constant):
                out.append((name, stmt.lineno))
    return out


def _canonical(info: ModuleInfo, resolved: str) -> str:
    return resolved if "." in resolved else f"{info.module}.{resolved}"


def _stamped_qualnames(info: ModuleInfo) -> Tuple[str, ...]:
    """Canonical qualnames referenced by ``engine_versions={...}`` sites."""
    stamped: Set[str] = set()
    found = False
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg != sigdb.STAMP_KEYWORD or not isinstance(kw.value, ast.Dict):
                continue
            found = True
            for value in kw.value.values:
                resolved = info.resolve(value)
                if resolved is not None:
                    stamped.add(_canonical(info, resolved))
    if not found:
        return ()
    return tuple(sorted(stamped)) or ("<empty>",)


def seed_effect_summaries(infos: Sequence[ModuleInfo]) -> Dict[str, EffectSummary]:
    """Initial summary table from contracts, decorators and stamp sites."""
    table: Dict[str, EffectSummary] = {}
    for info in infos:
        path = info.path.as_posix()
        for fn in info.functions:
            declared = annotation_effects(info, fn.node.returns)  # type: ignore[attr-defined]
            memoized = (
                _is_memo_decorated(info, fn)
                or fn.qualname in sigdb.MEMOIZED_FUNCS
                or declared == ()
            )
            table[fn.qualname] = EffectSummary(
                qualname=fn.qualname,
                path=path,
                declared=declared,
                has_rng_param=_has_rng_param(fn),
                memoized=memoized,
            )
        stamped = _stamped_qualnames(info)
        if stamped:
            qualname = f"{info.module}.{STAMPS_MARKER}"
            table[qualname] = EffectSummary(
                qualname=qualname, path=path, kind="stamps", stamped=stamped
            )
    return table


def _module_globals(info: ModuleInfo) -> Set[str]:
    names: Set[str] = set()
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _mutable_globals(info: ModuleInfo, module_globals: Set[str]) -> Set[str]:
    """Module-level names that are actually written to somewhere."""
    mutable: Set[str] = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Global):
            mutable.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                root = _root_name(target)
                if (
                    isinstance(target, (ast.Subscript, ast.Attribute))
                    and root is not None
                    and root in module_globals
                ):
                    mutable.add(root)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in sigdb.MUTATING_METHODS:
                root = _root_name(node.func.value)
                if root is not None and root in module_globals:
                    mutable.add(root)
    return mutable & module_globals | {
        n for node in ast.walk(info.tree) if isinstance(node, ast.Global)
        for n in node.names
    }


def _root_name(node: ast.AST) -> Optional[str]:
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


class _EffectFlow:
    """Walks one function body, collecting effect hits and rule findings."""

    def __init__(
        self,
        info: ModuleInfo,
        analysis: EffectModuleAnalysis,
        summaries: Dict[str, EffectSummary],
        methods: Dict[str, Tuple[str, ...]],
        fn: FunctionInfo,
        mutable_globals: Set[str],
    ) -> None:
        self.info = info
        self.analysis = analysis
        self.summaries = summaries
        self.methods = methods
        self.fn = fn
        self.mutable_globals = mutable_globals
        self.summary = summaries.get(fn.qualname)
        self.declared: Optional[Tuple[str, ...]] = (
            self.summary.declared if self.summary is not None else None
        )
        self.hits: List[EffectHit] = []
        self.env: Dict[str, EffectVal] = {}
        self.declared_globals: Set[str] = set()
        self.params: Set[str] = set()
        args = fn.node.args  # type: ignore[attr-defined]
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.params.add(arg.arg)
            self.env[arg.arg] = _PLAIN

    # -- plumbing ---------------------------------------------------------

    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.analysis.findings.append(Finding(
            path=str(self.info.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        ))

    def _hit(self, node: ast.AST, atom: str, origin: str) -> None:
        self.hits.append(EffectHit(
            atom=atom,
            origin=origin,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        ))

    # -- statement flow ---------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is a closure-capturing callable, not a new
            # scope to analyze: remember the name for VAB020.
            self.env[stmt.name] = _NESTED
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Global):
            self.declared_globals.update(stmt.names)
            return
        if isinstance(stmt, ast.Assign):
            val = self._infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, val, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            val = self._infer(stmt.value) if stmt.value is not None else _PLAIN
            self._bind(stmt.target, val, stmt)
        elif isinstance(stmt, ast.AugAssign):
            val = self._infer(stmt.value)
            self._check_store(stmt.target, stmt)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                current = self.env.get(name, _PLAIN)
                self._read_name(stmt.target)
                self.env[name] = EffectVal(host=current.host or val.host)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self._infer(stmt.value)
                self._check_host_return(stmt, val)
        elif isinstance(stmt, ast.Expr):
            self._infer(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._infer(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_val = self._infer(stmt.iter)
            self._bind(stmt.target, EffectVal(host=iter_val.host), stmt)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                val = self._infer(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, val, stmt)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(target, stmt)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._infer(child)

    def _bind(self, target: ast.expr, val: EffectVal, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                self._hit(
                    stmt, MUTATES_GLOBAL_ATOM,
                    f"{self.info.module}.{target.id}",
                )
            self.env[target.id] = val
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._check_store(target, stmt)
            if isinstance(target, ast.Subscript):
                self._infer(target.slice) if isinstance(
                    target.slice, ast.expr
                ) else None
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, EffectVal(host=val.host), stmt)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _PLAIN, stmt)

    def _check_store(self, target: ast.expr, stmt: ast.stmt) -> None:
        """A store through a Subscript/Attribute: who owns the base?"""
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_name(target)
        if root is None:
            return
        if root in ("self", "cls"):
            return
        if root in self.params and root in self.env:
            self._hit(stmt, MUTATES_ARG_ATOM, root)
        elif root in self.mutable_globals or (
            root not in self.env and root in self._module_names()
        ):
            self._hit(stmt, MUTATES_GLOBAL_ATOM, f"{self.info.module}.{root}")

    def _module_names(self) -> Set[str]:
        return self.mutable_globals

    def _read_name(self, node: ast.Name) -> EffectVal:
        name = node.id
        if name in self.declared_globals or (
            name not in self.env and name in self.mutable_globals
        ):
            self._hit(node, READS_GLOBAL_ATOM, f"{self.info.module}.{name}")
        return self.env.get(name, _PLAIN)

    def _check_host_return(self, stmt: ast.Return, val: EffectVal) -> None:
        if not val.host:
            return
        declared = self.declared or ()
        if READS_HOST_ATOM in declared:
            return
        if self.summary is not None and self.summary.memoized:
            return  # VAB017 reports hidden inputs of memoized functions
        self._emit(
            stmt, RULE_HOST_RESULT,
            f"host-dependent value flows into the return of "
            f"{self.fn.name}(); stored results must not depend on the "
            f"machine that computed them — pass the value in explicitly, "
            f'or declare Effectful[..., "reads:host"] if this only tunes '
            f"scheduling or display",
        )

    # -- expression inference ---------------------------------------------

    def _infer(self, node: Optional[ast.expr]) -> EffectVal:
        if node is None:
            return _PLAIN
        if isinstance(node, ast.Constant):
            return _PLAIN
        if isinstance(node, ast.Name):
            return self._read_name(node)
        if isinstance(node, ast.Attribute):
            return self._infer_attribute(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Lambda):
            return _NESTED
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left)
            right = self._infer(node.right)
            return EffectVal(host=left.host or right.host)
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand)
        if isinstance(node, ast.BoolOp):
            host = False
            for child in node.values:
                host = self._infer(child).host or host
            return EffectVal(host=host)
        if isinstance(node, ast.IfExp):
            self._infer(node.test)
            a = self._infer(node.body)
            b = self._infer(node.orelse)
            return EffectVal(host=a.host or b.host)
        if isinstance(node, ast.Compare):
            self._infer(node.left)
            for comp in node.comparators:
                self._infer(comp)
            return _PLAIN
        if isinstance(node, ast.Subscript):
            base = self._infer(node.value)
            if isinstance(node.slice, ast.expr):
                self._infer(node.slice)
            return EffectVal(host=base.host)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            host = False
            for elt in node.elts:
                host = self._infer(elt).host or host
            return EffectVal(host=host)
        if isinstance(node, ast.Dict):
            host = False
            for key in node.keys:
                if key is not None:
                    host = self._infer(key).host or host
            for value in node.values:
                host = self._infer(value).host or host
            return EffectVal(host=host)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._comprehension_generators(node.generators)
            self._infer(node.elt)
            return _PLAIN
        if isinstance(node, ast.DictComp):
            self._comprehension_generators(node.generators)
            self._infer(node.key)
            self._infer(node.value)
            return _PLAIN
        if isinstance(node, ast.NamedExpr):
            val = self._infer(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = val
            return val
        if isinstance(node, ast.Starred):
            return self._infer(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._infer(value.value)
            return _PLAIN
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._infer(node.value)
        if isinstance(node, ast.Yield):
            return self._infer(node.value) if node.value else _PLAIN
        if isinstance(node, ast.Slice):
            for bound in (node.lower, node.upper, node.step):
                self._infer(bound)
            return _PLAIN
        return _PLAIN

    def _comprehension_generators(
        self, generators: Sequence[ast.comprehension]
    ) -> None:
        for gen in generators:
            iter_val = self._infer(gen.iter)
            self._bind(gen.target, EffectVal(host=iter_val.host), ast.Pass())
            for cond in gen.ifs:
                self._infer(cond)

    def _infer_attribute(self, node: ast.Attribute) -> EffectVal:
        resolved = self.info.resolve(node)
        if resolved is not None and any(
            resolved == e or resolved.startswith(e + ".")
            for e in sigdb.ENVIRON_ATTRS
        ):
            self._hit(node, READS_ENVIRON_ATOM, resolved)
            return _HOST
        base = self._infer(node.value)
        return EffectVal(host=base.host)

    # -- calls ------------------------------------------------------------

    def _infer_call(self, node: ast.Call) -> EffectVal:
        resolved = self.info.resolve(node.func)
        if isinstance(node.func, ast.Attribute) and self._check_submit(
            node, node.func
        ):
            # arguments were handled by the submit check
            return _PLAIN
        arg_vals = [self._infer(arg) for arg in node.args]
        kw_vals = [self._infer(kw.value) for kw in node.keywords]
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            self._infer(node.func)

        if resolved is not None:
            handled = self._known_call(node, resolved, arg_vals, kw_vals)
            if handled is not None:
                return handled

        if isinstance(node.func, ast.Attribute):
            self._infer(node.func.value)
            self._method_effects(node, node.func)

        summary = self._resolve_summary(node, resolved)
        if summary is not None and summary.kind == "function":
            if summary.declared is not None:
                # Trust the contract: the declared grant *is* the call's
                # effect set (the body is verified separately), so it
                # propagates to callers like any inferred effect.
                for atom in summary.declared:
                    if atom == MUTATES_ARG_ATOM:
                        continue
                    self._hit(node, atom, summary.qualname)
                return _HOST if READS_HOST_ATOM in summary.declared else _PLAIN
            for atom, origin in summary.effects:
                if atom == MUTATES_ARG_ATOM:
                    continue  # argument mutation does not alias-propagate
                self._hit(node, atom, origin)
        return _PLAIN

    def _known_call(
        self,
        node: ast.Call,
        resolved: str,
        arg_vals: List[EffectVal],
        kw_vals: List[EffectVal],
    ) -> Optional[EffectVal]:
        if resolved in sigdb.POOL_CONSTRUCTORS:
            return _POOL
        atom = sigdb.EFFECT_CALLS.get(resolved)
        if atom is not None:
            self._hit(node, atom, resolved)
            host = atom in (READS_HOST_ATOM, READS_ENVIRON_ATOM)
            return _HOST if host else _PLAIN
        if any(
            resolved == e or resolved.startswith(e + ".")
            for e in sigdb.ENVIRON_ATTRS
        ):
            self._hit(node, READS_ENVIRON_ATOM, resolved)
            return _HOST
        if resolved in sigdb.AMBIENT_RNG_CALLS:
            self._hit(node, RNG_AMBIENT_ATOM, resolved)
            return _PLAIN
        if resolved == "numpy.random.default_rng":
            seeded = bool(node.args) and not (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            seeded = seeded or any(kw.arg == "seed" for kw in node.keywords)
            if not seeded:
                self._hit(node, RNG_AMBIENT_ATOM, resolved)
            return _PLAIN
        if resolved in sigdb.FALLBACK_RNG_FUNCS:
            if self.summary is None or not self.summary.has_rng_param:
                self._hit(node, RNG_AMBIENT_ATOM, resolved)
            return _PLAIN
        if resolved == "open":
            mode = ""
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = str(node.args[1].value)
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            writing = any(c in mode for c in "wax+")
            self._hit(
                node,
                WRITES_FILE_ATOM if writing else READS_FILE_ATOM,
                "open",
            )
            return _PLAIN
        if resolved in sigdb.HOST_PASSTHROUGH_CALLS:
            host = any(v.host for v in arg_vals) or any(v.host for v in kw_vals)
            return _HOST if host else _PLAIN
        return None

    def _method_effects(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        root = _root_name(func.value)
        if attr in sigdb.MUTATING_METHODS:
            if root is not None and root not in ("self", "cls"):
                if root in self.params:
                    self._hit(node, MUTATES_ARG_ATOM, root)
                elif root not in self.env and root in self.mutable_globals:
                    self._hit(
                        node, MUTATES_GLOBAL_ATOM,
                        f"{self.info.module}.{root}",
                    )
        elif attr in sigdb.FILE_READ_METHODS:
            self._hit(node, READS_FILE_ATOM, f".{attr}()")
        elif attr in sigdb.FILE_WRITE_METHODS:
            self._hit(node, WRITES_FILE_ATOM, f".{attr}()")
        elif attr == "isatty":
            self._hit(node, READS_HOST_ATOM, f".{attr}()")

    def _check_submit(self, node: ast.Call, func: ast.Attribute) -> bool:
        """VAB019/VAB020 at a ``pool.submit(f, ...)``-style call site.

        Returns True when the call was recognised as a process-boundary
        dispatch (the caller then skips generic argument inference).
        """
        if func.attr not in sigdb.SUBMIT_METHODS:
            return False
        base = self._infer(func.value)
        if base.kind != "pool":
            return False
        for arg in node.args[1:]:
            self._infer(arg)
        for kw in node.keywords:
            self._infer(kw.value)
        if not node.args:
            return True
        target = node.args[0]
        if isinstance(target, ast.Lambda):
            self._emit(
                node, RULE_UNPICKLABLE,
                f"lambda passed to .{func.attr}() crosses the process "
                f"boundary in {self.fn.name}(); lambdas do not pickle — "
                "use a module-level function",
            )
            return True
        if isinstance(target, ast.Name):
            bound = self.env.get(target.id)
            if bound is not None and bound.kind == "nested":
                self._emit(
                    node, RULE_UNPICKLABLE,
                    f"nested function {target.id!r} passed to "
                    f".{func.attr}() crosses the process boundary in "
                    f"{self.fn.name}(); closures do not pickle — hoist it "
                    "to module level and pass captured state as arguments",
                )
                return True
        summary = self._resolve_summary(node, self.info.resolve(target))
        if summary is not None and summary.kind == "function":
            if summary.declared is not None:
                atoms = [(a, summary.qualname) for a in summary.declared]
            else:
                atoms = list(summary.effects)
            for atom, origin in atoms:
                if atom == RNG_AMBIENT_ATOM:
                    callee = summary.qualname.rsplit(".", 1)[-1]
                    self._emit(
                        node, RULE_WORKER_RNG,
                        f"{callee}() is dispatched to a worker process but "
                        f"draws from an ambient RNG stream (via {origin}); "
                        "thread a SeedSequence-derived generator through "
                        "its parameters instead",
                    )
                    break
        return True

    def _resolve_summary(
        self, node: ast.Call, resolved: Optional[str]
    ) -> Optional[EffectSummary]:
        candidates: List[str] = []
        if resolved is not None:
            candidates.append(resolved)
            if "." not in resolved:
                candidates.append(f"{self.info.module}.{resolved}")
        if isinstance(node.func, ast.Attribute):
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
                and self.fn.class_name is not None
            ):
                candidates.append(
                    f"{self.info.module}.{self.fn.class_name}.{node.func.attr}"
                )
            else:
                unique = self.methods.get(node.func.attr, ())
                if len(unique) == 1:
                    candidates.append(unique[0])
        for candidate in candidates:
            summary = self.summaries.get(candidate)
            if summary is not None:
                self.analysis.refs.add(summary.qualname)
                return summary
        self.analysis.refs.update(c for c in candidates if "." in c)
        return None


def _check_memoized(
    info: ModuleInfo,
    analysis: EffectModuleAnalysis,
    fn: FunctionInfo,
    summary: Optional[EffectSummary],
    hits: Sequence[EffectHit],
) -> None:
    """VAB017/VAB018 over a memoized function's observed effects."""
    if summary is None or not summary.memoized:
        return
    declared = set(summary.declared or ())
    seen: Set[Tuple[str, str, int]] = set()
    for hit in hits:
        if hit.atom in declared:
            continue
        key = (hit.atom, hit.origin, hit.line)
        if key in seen:
            continue
        seen.add(key)
        if hit.atom in HIDDEN_INPUT_ATOMS:
            analysis.findings.append(Finding(
                path=str(info.path), line=hit.line, col=hit.col,
                rule_id=RULE_CACHE_INPUT,
                message=(
                    f"hidden input ({hit.atom} via {hit.origin}) reaches "
                    f"the memoized/content-addressed {fn.name}(); the "
                    "cache key cannot see it, so cached results go stale "
                    "silently — pass it as an argument or declare the "
                    "grant with Effectful[...]"
                ),
            ))
        elif hit.atom in SIDE_EFFECT_ATOMS:
            analysis.findings.append(Finding(
                path=str(info.path), line=hit.line, col=hit.col,
                rule_id=RULE_CACHE_DIVERGENCE,
                message=(
                    f"side effect ({hit.atom} on {hit.origin}) escapes the "
                    f"memoized {fn.name}(); it happens on the computing "
                    "call and never again on a cache hit — hoist it out "
                    "of the cached computation or declare it with "
                    "Effectful[...]"
                ),
            ))


def _check_worker_entry(
    info: ModuleInfo,
    analysis: EffectModuleAnalysis,
    fn: FunctionInfo,
    summary: Optional[EffectSummary],
    hits: Sequence[EffectHit],
) -> None:
    """VAB019 for the curated worker-dispatch entry points."""
    if fn.qualname not in sigdb.WORKER_ENTRY_FUNCS:
        return
    if summary is not None and summary.declared is not None:
        return
    seen: Set[Tuple[str, int]] = set()
    for hit in hits:
        if hit.atom != RNG_AMBIENT_ATOM:
            continue
        key = (hit.origin, hit.line)
        if key in seen:
            continue
        seen.add(key)
        analysis.findings.append(Finding(
            path=str(info.path), line=hit.line, col=hit.col,
            rule_id=RULE_WORKER_RNG,
            message=(
                f"{fn.name}() runs in worker processes but draws from an "
                f"ambient RNG stream (via {hit.origin}); worker results "
                "are only reproducible when every stream derives from "
                "the campaign's SeedSequence spawn"
            ),
        ))


def _check_version_stamps(
    info: ModuleInfo,
    analysis: EffectModuleAnalysis,
    summaries: Dict[str, EffectSummary],
) -> None:
    """VAB021: every version constant must reach a stamp site."""
    constants = _version_constants(info)
    if not constants:
        return
    sites = [
        s for s in summaries.values()
        if s.kind == "stamps" and s.qualname.endswith(STAMPS_MARKER)
    ]
    if not sites:
        return
    analysis.refs.update(s.qualname for s in sites)
    stamped: Set[str] = set()
    for site in sites:
        stamped.update(site.stamped)
    site_modules = sorted(
        s.qualname[: -len(STAMPS_MARKER) - 1] for s in sites
    )
    for name, lineno in constants:
        qualname = f"{info.module}.{name}"
        if qualname not in stamped:
            analysis.findings.append(Finding(
                path=str(info.path), line=lineno, col=0,
                rule_id=RULE_VERSION_STAMP,
                message=(
                    f"version constant {name} never reaches an "
                    f"engine_versions manifest stamp "
                    f"({', '.join(site_modules)}); results computed by "
                    "different engine versions would collide under one "
                    "run_key — add it to the stamp dict"
                ),
            ))


def analyze_effect_module(
    info: ModuleInfo,
    summaries: Dict[str, EffectSummary],
    methods: Dict[str, Tuple[str, ...]],
) -> EffectModuleAnalysis:
    """One engine pass over one module with the given summary table."""
    analysis = EffectModuleAnalysis()
    module_globals = _module_globals(info)
    mutable = _mutable_globals(info, module_globals)
    _check_version_stamps(info, analysis, summaries)
    for fn in info.functions:
        flow = _EffectFlow(info, analysis, summaries, methods, fn, mutable)
        flow.run(getattr(fn.node, "body", []))
        summary = summaries.get(fn.qualname)
        _check_memoized(info, analysis, fn, summary, flow.hits)
        _check_worker_entry(info, analysis, fn, summary, flow.hits)
        propagatable = sorted({
            (hit.atom, hit.origin)
            for hit in flow.hits
            if hit.atom != MUTATES_ARG_ATOM
        })
        analysis.inferred_effects[fn.qualname] = tuple(propagatable)
    analysis.findings.sort()
    return analysis


def run_effect_fixed_point(
    infos: Sequence[ModuleInfo],
    summaries: Dict[str, EffectSummary],
) -> Tuple[Dict[str, EffectModuleAnalysis], Dict[str, EffectSummary], int]:
    """Iterate analysis passes until the effect summaries stabilise.

    Args:
        infos: modules to (re-)analyze this run.
        summaries: global summary table (seeded; may contain cached
            summaries for modules *not* in ``infos``).  Mutated in
            place as effect sets are inferred.

    Returns:
        (per-path analyses, final summary table, passes run).
    """
    ordered = sorted(infos, key=lambda info: info.path.as_posix())
    analyses: Dict[str, EffectModuleAnalysis] = {}
    passes = 0
    for _ in range(MAX_FIXED_POINT_PASSES):
        passes += 1
        methods = method_index(summaries)
        changed = False
        for info in ordered:
            analysis = analyze_effect_module(info, summaries, methods)
            analyses[info.path.as_posix()] = analysis
            for qualname, effects in sorted(analysis.inferred_effects.items()):
                summary = summaries.get(qualname)
                if summary is not None and summary.effects != effects:
                    summaries[qualname] = EffectSummary(
                        qualname=summary.qualname,
                        path=summary.path,
                        effects=effects,
                        declared=summary.declared,
                        has_rng_param=summary.has_rng_param,
                        memoized=summary.memoized,
                        kind=summary.kind,
                        stamped=summary.stamped,
                    )
                    changed = True
        if not changed:
            break
    return analyses, summaries, passes
