"""Curated numpy/boundary signature tables for the shape engine.

Only the numpy surface the repo actually exercises is modelled —
constructors, elementwise ufuncs, broadcasting binaries, reductions,
``reshape``/``transpose``, the FFT family, and a minimal ``einsum``.
Everything else deliberately infers to *unknown*, which silences the
rules rather than guessing.

The tables also carry the determinism metadata: which project calls
return **shared** arrays (cache entries handed to many trials), which
worker entry points receive shared payloads (VAB014), and which methods
mutate their receiver in place.
"""

from __future__ import annotations

from repro.analysis.shapes.vocab import BOOL, COMPLEX, FLOAT, INT

# --- elementwise: shape preserved, dtype transformed -----------------------
# tag -> how the output dtype relates to the input dtype:
#   "keep"  : same dtype (exp, conj, sqrt, ...)
#   "float" : real-valued output (angle, degrees, ...)
#   "abs"   : complex -> float, otherwise dtype kept (np.abs)
ELEMENTWISE = {
    "numpy.exp": "keep",
    "numpy.sqrt": "keep",
    "numpy.square": "keep",
    "numpy.conj": "keep",
    "numpy.conjugate": "keep",
    "numpy.negative": "keep",
    "numpy.positive": "keep",
    "numpy.sign": "keep",
    "numpy.floor": "keep",
    "numpy.ceil": "keep",
    "numpy.rint": "keep",
    "numpy.round": "keep",
    "numpy.sin": "keep",
    "numpy.cos": "keep",
    "numpy.tan": "keep",
    "numpy.sinh": "keep",
    "numpy.cosh": "keep",
    "numpy.tanh": "keep",
    "numpy.log": "keep",
    "numpy.log2": "keep",
    "numpy.log10": "keep",
    "numpy.abs": "abs",
    "numpy.absolute": "abs",
    "numpy.angle": "float",
    "numpy.real": "float",
    "numpy.imag": "float",
    "numpy.radians": "float",
    "numpy.degrees": "float",
    "numpy.deg2rad": "float",
    "numpy.rad2deg": "float",
    "numpy.arcsin": "float",
    "numpy.arccos": "float",
    "numpy.arctan": "float",
    "numpy.isfinite": "bool",
    "numpy.isnan": "bool",
    "numpy.isinf": "bool",
}

# --- broadcasting binaries: VAB011 surface ---------------------------------
# All positional array arguments broadcast together; dtype promotes.
BROADCAST_CALLS = {
    "numpy.add",
    "numpy.subtract",
    "numpy.multiply",
    "numpy.divide",
    "numpy.true_divide",
    "numpy.maximum",
    "numpy.minimum",
    "numpy.fmax",
    "numpy.fmin",
    "numpy.arctan2",
    "numpy.hypot",
    "numpy.power",
    "numpy.mod",
    "numpy.remainder",
    "numpy.where",
}

# --- reductions: VAB012 surface --------------------------------------------
# name -> output dtype transform ("keep"/"float-or-keep"/"bool"/"int").
# Listed names are recognised both as methods (``x.sum(...)``) and as
# module functions (``np.sum(x, ...)`` with the array first).
REDUCTIONS = {
    "sum": "keep",
    "prod": "keep",
    "mean": "keep",
    "std": "float",
    "var": "float",
    "max": "keep",
    "min": "keep",
    "amax": "keep",
    "amin": "keep",
    "nansum": "keep",
    "nanmean": "keep",
    "nanmax": "keep",
    "nanmin": "keep",
    "median": "float",
    "ptp": "keep",
    "any": "bool",
    "all": "bool",
    "argmax": "int",
    "argmin": "int",
    "count_nonzero": "int",
}

# --- constructors ----------------------------------------------------------
# name -> default dtype when no dtype= keyword is given.
SHAPE_CONSTRUCTORS = {
    "numpy.zeros": FLOAT,
    "numpy.ones": FLOAT,
    "numpy.empty": FLOAT,
    "numpy.full": None,
}
LIKE_CONSTRUCTORS = {
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
}
RANGE_CONSTRUCTORS = {
    "numpy.arange": INT,
    "numpy.linspace": FLOAT,
    "numpy.logspace": FLOAT,
    "numpy.geomspace": FLOAT,
}
# passthrough of the first argument's shape; dtype= may override; the
# result is always a fresh (or at least safely-owned) array, clearing
# the shared taint.
PASSTHROUGH_CALLS = {
    "numpy.asarray",
    "numpy.array",
    "numpy.ascontiguousarray",
    "numpy.asfortranarray",
    "numpy.copy",
    "numpy.sort",
    "numpy.flip",
    "numpy.fft.fftshift",
    "numpy.fft.ifftshift",
    "copy.copy",
    "copy.deepcopy",
}

# --- FFT family ------------------------------------------------------------
# name -> output dtype.
FFT_CALLS = {
    "numpy.fft.fft": COMPLEX,
    "numpy.fft.ifft": COMPLEX,
    "numpy.fft.rfft": COMPLEX,
    "numpy.fft.irfft": FLOAT,
    "numpy.fft.fftfreq": FLOAT,
    "numpy.fft.rfftfreq": FLOAT,
}

# dotted names that evaluate to known scalars.
SCALAR_CONSTANTS = {
    "numpy.pi": FLOAT,
    "math.pi": FLOAT,
    "numpy.e": FLOAT,
    "math.e": FLOAT,
    "numpy.inf": FLOAT,
    "math.inf": FLOAT,
}

# dtype= keyword values the engine understands.
DTYPE_NAMES = {
    "numpy.complex128": COMPLEX,
    "numpy.complex64": COMPLEX,
    "numpy.cdouble": COMPLEX,
    "numpy.float64": FLOAT,
    "numpy.float32": FLOAT,
    "numpy.double": FLOAT,
    "numpy.int64": INT,
    "numpy.int32": INT,
    "numpy.intp": INT,
    "numpy.uint8": INT,
    "numpy.bool_": BOOL,
    "complex": COMPLEX,
    "float": FLOAT,
    "int": INT,
    "bool": BOOL,
}

# --- determinism metadata --------------------------------------------------
# Project calls whose return value is shared across trials/workers and
# must be treated as read-only (VAB014).  Keep in sync with the
# "returned object is shared" docstrings in repro.sim.cache.
BOUNDARY_CALLS = {
    "repro.sim.cache.cached_between",
    "repro.sim.cache.reader_node_response",
}

# Functions whose parameters arrive as shared worker payloads: the
# parent process re-reads them after (and concurrently with) the call,
# so in-place mutation inside the body is a cross-process data race
# under fork and silent divergence under spawn (VAB014).
BOUNDARY_PARAM_FUNCS = {
    "repro.sim.parallel._run_chunk",
}

# ndarray methods that mutate the receiver in place.
MUTATING_METHODS = {
    "sort",
    "fill",
    "put",
    "partition",
    "itemset",
    "resize",
}

# ufuncs whose ``.at`` form mutates its first argument in place.
AT_UFUNCS = {
    "numpy.add",
    "numpy.subtract",
    "numpy.multiply",
    "numpy.maximum",
    "numpy.minimum",
}

# calls producing set-kind values (VAB015).
SET_CALLS = {"set", "frozenset"}

# ordering wrappers that restore determinism around a set (VAB015).
# Note list()/tuple() are *not* here: they freeze the set's iteration
# order without making it deterministic.
ORDERING_CALLS = {"sorted"}
