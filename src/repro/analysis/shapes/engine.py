"""Flow-sensitive, interprocedural shape/dtype analysis (VAB011–VAB016).

The engine mirrors the three-layer architecture of
:mod:`repro.analysis.units.engine`, reusing its symbol tables
(:class:`~repro.analysis.units.symbols.ModuleInfo`) verbatim:

1. **Seeding** — every function gets a :class:`ShapeSummary` whose
   parameter/return shapes come from ``Shaped["trials", "samples"]``
   contracts (:mod:`repro.analysis.shapes.vocab`) read straight off the
   annotation AST.
2. **Flow analysis** — each body is interpreted statement by statement
   over a name -> :class:`~repro.analysis.shapes.vocab.ShapeVal`
   environment: the curated numpy signature database
   (:mod:`repro.analysis.shapes.sigdb`) models constructors,
   elementwise ufuncs, reductions, ``reshape``, the FFT family and a
   minimal ``einsum``; binary arithmetic goes through the numpy
   broadcast algebra; subscripts slice symbolic dims.
3. **Fixed point** — shapes/dtypes inferred at ``return`` statements
   feed back into the summary table and analysis repeats until stable,
   so a kernel's declared contract flows out through its delegating
   wrappers (``monostatic_field_sum`` -> ``monostatic_batch`` ->
   ``monostatic_pattern_db``).

The engine only reports what it can *prove* from the contracts and the
signature DB — an unknown shape or dtype silences every rule, so
un-annotated code stays quiet.

The rules:

* **VAB011** ``silent-broadcast`` — elementwise arithmetic whose
  operand shapes provably cannot broadcast (two different named dims,
  or two different fixed extents, in the same aligned slot). The
  classic instance is a reduction missing ``keepdims=True``.
* **VAB012** ``batch-collapsing-reduction`` — an axis-less reduction
  that collapses a named batch dimension, or an ``axis=`` that is out
  of range for the known rank.
* **VAB013** ``complex-downcast`` — ``float()``/``int()`` of a complex
  value, complex expressions stored into real-dtype buffers, ordered
  comparisons on complex data, and complex values returned/passed where
  a real contract is declared (the ``np.abs`` vs ``.real`` confusion).
* **VAB014** ``shared-array-mutation`` — in-place mutation (subscript/
  attribute stores, augmented assignment, mutating ndarray methods,
  ``ufunc.at``) of a value that crossed a worker/cache boundary.
* **VAB015** ``unordered-accumulation`` — set iteration feeding an
  accumulation or RNG draws, and ``sum()`` over a set — float addition
  is not associative and generator streams are order-sensitive.
* **VAB016** ``shape-contract-violation`` — call arguments or returns
  whose inferred dims contradict the declared ``Shaped[...]`` contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.shapes import sigdb
from repro.analysis.shapes.vocab import (
    BOOL,
    COMPLEX,
    FLOAT,
    INT,
    SCALAR_BOOL,
    SCALAR_COMPLEX,
    SCALAR_FLOAT,
    SCALAR_INT,
    SET_VAL,
    SHAPED_FACTORIES,
    SHARED_UNKNOWN,
    UNKNOWN,
    UNKNOWN_DIM,
    VARIADIC,
    Dim,
    ShapeVal,
    broadcast_dims,
    contract_conflict,
    dims_conflict,
    format_dims,
    promote_dtype,
)
from repro.analysis.units.engine import method_index
from repro.analysis.units.symbols import FunctionInfo, ModuleInfo

MAX_FIXED_POINT_PASSES = 4
"""Safety bound; the delegating-wrapper chains converge in <= 3."""

RULE_BROADCAST = "VAB011"
RULE_REDUCTION = "VAB012"
RULE_DOWNCAST = "VAB013"
RULE_SHARED_MUT = "VAB014"
RULE_UNORDERED = "VAB015"
RULE_CONTRACT = "VAB016"

_REAL_DTYPES = frozenset({FLOAT, INT})
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)
_BIT_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor)
_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
_ARRAY_CMP = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)

_MISSING = object()


@dataclass(frozen=True)
class ShapeSummary:
    """The interprocedural shape contract of one function."""

    qualname: str
    params: Tuple[Tuple[str, Optional[ShapeVal]], ...]
    returns: Optional[ShapeVal]
    return_source: str
    path: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "params": [
                [n, v.to_dict() if v is not None else None] for n, v in self.params
            ],
            "returns": self.returns.to_dict() if self.returns is not None else None,
            "return_source": self.return_source,
            "path": self.path,
        }

    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "ShapeSummary":
        returns = raw.get("returns")
        return ShapeSummary(
            qualname=str(raw["qualname"]),
            params=tuple(
                (str(n), ShapeVal.from_dict(v) if v is not None else None)
                for n, v in raw["params"]  # type: ignore[union-attr]
            ),
            returns=ShapeVal.from_dict(returns) if returns is not None else None,  # type: ignore[arg-type]
            return_source=str(raw.get("return_source", "")),
            path=str(raw["path"]),
        )


@dataclass
class ShapeModuleAnalysis:
    """Per-file output of one engine pass."""

    findings: List[Finding] = field(default_factory=list)
    refs: Set[str] = field(default_factory=set)
    inferred_returns: Dict[str, ShapeVal] = field(default_factory=dict)


def _dims_from_annotation_slice(node: ast.expr) -> Optional[Tuple[Dim, ...]]:
    items = list(node.elts) if isinstance(node, ast.Tuple) else [node]
    dims: List[Dim] = []
    for item in items:
        if not isinstance(item, ast.Constant):
            return None
        value = item.value
        if value is Ellipsis:
            dims.append(VARIADIC)
        elif isinstance(value, str):
            dims.append(value)
        elif isinstance(value, int) and not isinstance(value, bool):
            dims.append(value)
        else:
            return None
    return tuple(dims)


def annotation_shape(info: ModuleInfo, node: Optional[ast.AST]) -> Optional[ShapeVal]:
    """ShapeVal declared by a ``Shaped[...]`` annotation AST, if any."""
    if not isinstance(node, ast.Subscript):
        return None
    resolved = info.resolve(node.value)
    if resolved is None:
        return None
    tail = resolved.rsplit(".", 1)[-1]
    if tail not in SHAPED_FACTORIES:
        return None
    dims = _dims_from_annotation_slice(node.slice)
    if dims is None:
        return None
    return ShapeVal(dims=dims, dtype=SHAPED_FACTORIES[tail])


def seed_shape_summaries(infos: Sequence[ModuleInfo]) -> Dict[str, ShapeSummary]:
    """Initial summary table from the ``Shaped[...]`` contracts."""
    table: Dict[str, ShapeSummary] = {}
    for info in infos:
        for fn in info.functions:
            args = fn.node.args  # type: ignore[attr-defined]
            ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if fn.class_name is not None and ordered and ordered[0].arg in ("self", "cls"):
                ordered = ordered[1:]
            params = tuple(
                (arg.arg, annotation_shape(info, arg.annotation)) for arg in ordered
            )
            returns = annotation_shape(info, fn.node.returns)  # type: ignore[attr-defined]
            table[fn.qualname] = ShapeSummary(
                qualname=fn.qualname,
                params=params,
                returns=returns,
                return_source="contract" if returns is not None else "",
                path=info.path.as_posix(),
            )
    return table


def _elementwise_dtype(tag: str, dtype: Optional[str]) -> Optional[str]:
    if tag == "float":
        return FLOAT
    if tag == "bool":
        return BOOL
    if tag == "abs":
        if dtype == COMPLEX:
            return FLOAT
        return dtype
    # "keep": claim nothing for integral inputs (numpy often promotes
    # them to float64); complex/float survive.
    if dtype in (COMPLEX, FLOAT):
        return dtype
    return None


def _reduction_dtype(tag: str, dtype: Optional[str]) -> Optional[str]:
    if tag == "bool":
        return BOOL
    if tag == "int":
        return INT
    if tag == "float":
        return FLOAT
    return dtype


class _ShapeFlow:
    """Interprets one function (or the module top level) in order."""

    def __init__(
        self,
        info: ModuleInfo,
        analysis: ShapeModuleAnalysis,
        summaries: Dict[str, ShapeSummary],
        methods: Dict[str, Tuple[str, ...]],
        fn: Optional[FunctionInfo],
        module_env: Optional[Dict[str, ShapeVal]] = None,
    ) -> None:
        self.info = info
        self.analysis = analysis
        self.summaries = summaries
        self.methods = methods
        self.fn = fn
        self.module_env = module_env or {}
        self.env: Dict[str, ShapeVal] = {}
        self.return_vals: List[ShapeVal] = []
        self.declared_return: Optional[ShapeVal] = None
        if fn is not None:
            summary = summaries.get(fn.qualname)
            if summary is not None:
                for name, val in summary.params:
                    self.env[name] = val if val is not None else UNKNOWN
                if summary.return_source == "contract":
                    self.declared_return = summary.returns
            if fn.qualname in sigdb.BOUNDARY_PARAM_FUNCS:
                for name in list(self.env):
                    self.env[name] = ShapeVal(
                        self.env[name].dims, self.env[name].dtype, shared=True
                    )

    # -- plumbing ---------------------------------------------------------

    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.analysis.findings.append(Finding(
            path=str(self.info.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        ))

    def _where(self) -> str:
        return self.fn.name + "()" if self.fn is not None else "module level"

    # -- statement flow ---------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed separately (or skipped)
        if isinstance(stmt, ast.Assign):
            val = self._infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, val, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_shape(self.info, stmt.annotation)
            if stmt.value is not None:
                val = self._infer(stmt.value)
                if declared is not None:
                    self._check_contract_binding(stmt, declared, val, "binding")
                self._bind(stmt.target, stmt.value, declared or val, stmt)
            elif declared is not None and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = declared
        elif isinstance(stmt, ast.AugAssign):
            val = self._infer(stmt.value)
            self._check_mutation_target(stmt.target, stmt, "augmented assignment")
            if isinstance(stmt.target, ast.Name):
                current = self._lookup(stmt.target.id)
                result = self._combine_arith(stmt, current, val, stmt.op)
                self.env[stmt.target.id] = result
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self._infer(stmt.value)
                self.return_vals.append(val)
                self._check_return(stmt, val)
        elif isinstance(stmt, ast.Expr):
            self._infer(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._infer(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_val = self._infer(stmt.iter)
            self._check_unordered_iteration(stmt, iter_val)
            self._bind_loop_target(stmt.target, iter_val)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._infer(item.context_expr)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._infer(child)

    def _bind(
        self, target: ast.expr, value: ast.expr, val: ShapeVal, stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = val
        elif isinstance(target, ast.Attribute):
            self._check_mutation_target(target, stmt, "attribute assignment")
            dotted = self.info.resolve(target)
            if dotted is not None:
                self.env[dotted] = val
        elif isinstance(target, ast.Subscript):
            self._check_mutation_target(target, stmt, "subscript assignment")
            base = self._infer(target.value)
            if base.dtype in _REAL_DTYPES and val.dtype == COMPLEX:
                self._emit(target, RULE_DOWNCAST,
                           f"storing a complex expression into a {base.dtype}-dtype "
                           f"buffer silently discards the imaginary part in "
                           f"{self._where()}; take np.abs(...) for magnitude or "
                           ".real for the in-phase component explicitly")
        elif isinstance(target, (ast.Tuple, ast.List)):
            values: List[Optional[ast.expr]]
            vals: List[ShapeVal]
            if isinstance(value, (ast.Tuple, ast.List)) and (
                len(value.elts) == len(target.elts)
            ):
                values = list(value.elts)
                vals = [self._infer(v) for v in values]
            else:
                values = [None] * len(target.elts)
                vals = [UNKNOWN] * len(target.elts)
            for sub_target, sub_value, sub_val in zip(target.elts, values, vals):
                self._bind(sub_target, sub_value or target, sub_val, stmt)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, UNKNOWN, stmt)

    def _bind_loop_target(self, target: ast.expr, iter_val: ShapeVal) -> None:
        element = UNKNOWN
        if iter_val.dims is not None and len(iter_val.dims) >= 1 and (
            VARIADIC not in iter_val.dims
        ):
            element = ShapeVal(iter_val.dims[1:], iter_val.dtype, shared=iter_val.shared)
        elif iter_val.shared:
            element = SHARED_UNKNOWN
        if isinstance(target, ast.Name):
            self.env[target.id] = element
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_loop_target(elt, UNKNOWN)

    def _check_mutation_target(
        self, target: ast.expr, stmt: ast.stmt, what: str
    ) -> None:
        base: Optional[ShapeVal] = None
        label = ""
        if isinstance(target, ast.Name):
            base = self._lookup(target.id)
            label = target.id
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = self._infer(target.value)
            label = ast.unparse(target.value) if hasattr(ast, "unparse") else "value"
        if base is not None and base.shared:
            self._emit(stmt, RULE_SHARED_MUT,
                       f"{what} mutates {label!r}, which crosses a worker/cache "
                       f"boundary and is shared across trials in {self._where()}; "
                       "copy it first (.copy()) — cache entries and parallel "
                       "payloads are read-only by contract")

    def _check_contract_binding(
        self, node: ast.AST, declared: ShapeVal, val: ShapeVal, what: str
    ) -> None:
        conflict = contract_conflict(declared.dims, val.dims)
        if conflict is not None:
            self._emit(node, RULE_CONTRACT,
                       f"{what} declares {format_dims(declared.dims)} but the "
                       f"value has shape {format_dims(val.dims)} ({conflict}) "
                       f"in {self._where()}")
        elif declared.dtype in _REAL_DTYPES and val.dtype == COMPLEX:
            self._emit(node, RULE_DOWNCAST,
                       f"{what} declares {declared.dtype} but the value is "
                       f"complex in {self._where()}; use np.abs(...) or .real "
                       "to make the downcast explicit")

    def _check_return(self, node: ast.AST, val: ShapeVal) -> None:
        declared = self.declared_return
        if self.fn is None or declared is None:
            return
        conflict = contract_conflict(declared.dims, val.dims)
        if conflict is not None:
            self._emit(node, RULE_CONTRACT,
                       f"{self.fn.name}() declares a {format_dims(declared.dims)} "
                       f"return but returns {format_dims(val.dims)} ({conflict})")
        elif declared.dtype in _REAL_DTYPES and val.dtype == COMPLEX:
            self._emit(node, RULE_DOWNCAST,
                       f"{self.fn.name}() declares a {declared.dtype} return but "
                       "returns a complex expression; np.abs(...) for magnitude "
                       "or .real for the in-phase part — the implicit cast "
                       "discards phase")

    def _check_unordered_iteration(self, stmt: ast.For, iter_val: ShapeVal) -> None:
        if iter_val.kind != "set":
            return
        reason = self._order_dependent_body(stmt.body)
        if reason is not None:
            self._emit(stmt, RULE_UNORDERED,
                       f"iteration over a set {reason} in {self._where()}; set "
                       "order is arbitrary, so the result is not reproducible "
                       "— iterate over sorted(...) instead")

    def _order_dependent_body(self, body: Sequence[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign):
                    return "feeds an accumulation"
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    base = node.func.value
                    if isinstance(base, ast.Name) and (
                        "rng" in base.id.lower() or base.id in ("gen", "generator")
                    ):
                        return "drives RNG draws"
                    resolved = self.info.resolve(node.func)
                    if resolved is not None and resolved.startswith("numpy.random."):
                        return "drives RNG draws"
        return None

    # -- name resolution --------------------------------------------------

    def _lookup(self, name: str) -> ShapeVal:
        if name in self.env:
            return self.env[name]
        if name in self.module_env:
            return self.module_env[name]
        resolved = self.info.aliases.get(name)
        if resolved is not None and resolved in sigdb.SCALAR_CONSTANTS:
            return ShapeVal((), sigdb.SCALAR_CONSTANTS[resolved])
        return UNKNOWN

    # -- expression inference ---------------------------------------------

    def _infer(self, node: ast.expr) -> ShapeVal:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return SCALAR_BOOL
            if isinstance(value, int):
                return SCALAR_INT
            if isinstance(value, float):
                return SCALAR_FLOAT
            if isinstance(value, complex):
                return SCALAR_COMPLEX
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            return self._infer_attribute(node)
        if isinstance(node, ast.UnaryOp):
            operand = self._infer(node.operand)
            if isinstance(node.op, ast.Not):
                return ShapeVal(operand.dims, BOOL)
            return operand.without_taint() if not operand.shared else operand
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Compare):
            return self._infer_compare(node)
        if isinstance(node, ast.BoolOp):
            for child in node.values:
                self._infer(child)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._infer(node.test)
            a = self._infer(node.body)
            b = self._infer(node.orelse)
            if a == b:
                return a
            return ShapeVal(shared=a.shared or b.shared)
        if isinstance(node, ast.Subscript):
            return self._infer_subscript(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            if isinstance(node, ast.Set):
                for elt in node.elts:
                    self._infer(elt)
            return SET_VAL
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._infer(elt)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            self._infer(node.value)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            val = self._infer(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = val
            return val
        return UNKNOWN

    def _infer_attribute(self, node: ast.Attribute) -> ShapeVal:
        resolved = self.info.resolve(node)
        if resolved is not None:
            if resolved in sigdb.SCALAR_CONSTANTS:
                return ShapeVal((), sigdb.SCALAR_CONSTANTS[resolved])
            if resolved in self.env:
                return self.env[resolved]
            if resolved in self.module_env:
                return self.module_env[resolved]
        base = self._infer(node.value)
        attr = node.attr
        if attr == "T":
            dims = None
            if base.dims is not None and VARIADIC not in base.dims:
                dims = tuple(reversed(base.dims))
            return ShapeVal(dims, base.dtype, shared=base.shared)
        if attr in ("real", "imag"):
            dtype = FLOAT if base.dtype == COMPLEX else base.dtype
            return ShapeVal(base.dims, dtype, shared=base.shared)
        if attr in ("size", "ndim", "itemsize", "nbytes"):
            return SCALAR_INT
        # Attributes of a shared object (cache-entry fields like
        # response.taps) are views into the shared state.
        return ShapeVal(shared=base.shared)

    def _infer_binop(self, node: ast.BinOp) -> ShapeVal:
        left = self._infer(node.left)
        right = self._infer(node.right)
        return self._combine_arith(node, left, right, node.op)

    def _combine_arith(
        self, node: ast.AST, left: ShapeVal, right: ShapeVal, op: ast.operator
    ) -> ShapeVal:
        if isinstance(op, ast.MatMult):
            return self._matmul(node, left, right)
        if not isinstance(op, _ARITH_OPS + _BIT_OPS + (ast.LShift, ast.RShift)):
            return UNKNOWN
        dims, conflict = broadcast_dims(left.dims, right.dims)
        if conflict is not None:
            self._emit(node, RULE_BROADCAST,
                       f"elementwise arithmetic on incompatible shapes "
                       f"{format_dims(left.dims)} and {format_dims(right.dims)} "
                       f"(dim {conflict[0]!r} vs {conflict[1]!r}) in "
                       f"{self._where()}; a reduction feeding this usually "
                       "needs keepdims=True (or an explicit [:, None])")
            return UNKNOWN
        dtype = promote_dtype(left.dtype, right.dtype)
        if isinstance(op, ast.Div) and dtype == INT:
            dtype = FLOAT
        if isinstance(op, _BIT_OPS) and left.dtype == BOOL and right.dtype == BOOL:
            dtype = BOOL
        return ShapeVal(dims, dtype)

    def _matmul(self, node: ast.AST, left: ShapeVal, right: ShapeVal) -> ShapeVal:
        dtype = promote_dtype(left.dtype, right.dtype)
        a, b = left.dims, right.dims
        if (
            a is None or b is None or VARIADIC in a or VARIADIC in b
            or len(a) < 2 or len(b) < 2
        ):
            return ShapeVal(None, dtype)
        if dims_conflict(a[-1], b[-2]):
            self._emit(node, RULE_BROADCAST,
                       f"matmul contracts dim {a[-1]!r} of {format_dims(a)} "
                       f"against dim {b[-2]!r} of {format_dims(b)} in "
                       f"{self._where()}; the inner dimensions disagree")
            return ShapeVal(None, dtype)
        batch, conflict = broadcast_dims(a[:-2], b[:-2])
        if conflict is not None or batch is None:
            return ShapeVal(None, dtype)
        return ShapeVal(batch + (a[-2], b[-1]), dtype)

    def _infer_compare(self, node: ast.Compare) -> ShapeVal:
        operands = [node.left] + list(node.comparators)
        vals = [self._infer(operand) for operand in operands]
        if not all(isinstance(op, _ARRAY_CMP) for op in node.ops):
            return ShapeVal(None, BOOL)
        if any(isinstance(op, _ORDERED_CMP) for op in node.ops):
            for operand, val in zip(operands, vals):
                if val.dtype == COMPLEX:
                    self._emit(node, RULE_DOWNCAST,
                               f"ordered comparison on a complex value in "
                               f"{self._where()}; complex numbers are "
                               "unordered — compare np.abs(...) or .real "
                               "explicitly")
                    break
        dims = vals[0].dims
        for val in vals[1:]:
            dims, conflict = broadcast_dims(dims, val.dims)
            if conflict is not None:
                self._emit(node, RULE_BROADCAST,
                           f"comparison broadcasts incompatible shapes "
                           f"(dim {conflict[0]!r} vs {conflict[1]!r}) in "
                           f"{self._where()}")
                return ShapeVal(None, BOOL)
        return ShapeVal(dims, BOOL)

    def _infer_subscript(self, node: ast.Subscript) -> ShapeVal:
        base = self._infer(node.value)
        items = (
            list(node.slice.elts) if isinstance(node.slice, ast.Tuple) else [node.slice]
        )
        known = base.dims is not None and VARIADIC not in (base.dims or ())
        out: List[Dim] = []
        pos = 0
        advanced = not known
        for item in items:
            if isinstance(item, ast.Slice):
                for bound in (item.lower, item.upper, item.step):
                    if bound is not None:
                        self._infer(bound)
                if advanced:
                    continue
                if pos >= len(base.dims):  # type: ignore[arg-type]
                    advanced = True
                    continue
                full = item.lower is None and item.upper is None and item.step is None
                out.append(base.dims[pos] if full else UNKNOWN_DIM)  # type: ignore[index]
                pos += 1
            elif isinstance(item, ast.Constant) and item.value is None:
                if not advanced:
                    out.append(1)
            elif (
                isinstance(item, ast.Constant)
                and isinstance(item.value, int)
                and not isinstance(item.value, bool)
            ):
                if advanced:
                    continue
                if pos >= len(base.dims):  # type: ignore[arg-type]
                    advanced = True
                    continue
                pos += 1  # this dimension is dropped
            else:
                if not isinstance(item, ast.Constant):
                    self._infer(item)
                advanced = True
        if advanced:
            return ShapeVal(None, base.dtype, shared=base.shared)
        out.extend(base.dims[pos:])  # type: ignore[index]
        return ShapeVal(tuple(out), base.dtype, shared=base.shared)

    # -- calls ------------------------------------------------------------

    def _infer_call(self, node: ast.Call) -> ShapeVal:
        arg_vals = [
            self._infer(arg) for arg in node.args if not isinstance(arg, ast.Starred)
        ]
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._infer(arg.value)
        kw_vals: Dict[str, ShapeVal] = {}
        for kw in node.keywords:
            inferred = self._infer(kw.value)
            if kw.arg is not None:
                kw_vals[kw.arg] = inferred
        resolved = self.info.resolve(node.func)
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            self._infer(node.func)
        first = arg_vals[0] if arg_vals else UNKNOWN

        handled = self._infer_known_call(node, resolved, first, arg_vals, kw_vals)
        if handled is not None:
            return handled

        summary = self._resolve_summary(node, resolved)
        if summary is not None:
            self._check_call_args(node, summary, arg_vals, kw_vals)
            if summary.returns is not None:
                return summary.returns.without_taint() if not summary.returns.shared else summary.returns
            return UNKNOWN

        if isinstance(node.func, ast.Attribute):
            return self._infer_method_call(node, node.func, arg_vals, kw_vals)
        return UNKNOWN

    def _infer_known_call(
        self,
        node: ast.Call,
        resolved: Optional[str],
        first: ShapeVal,
        arg_vals: List[ShapeVal],
        kw_vals: Dict[str, ShapeVal],
    ) -> Optional[ShapeVal]:
        """Builtins + the curated numpy surface; None when unhandled."""
        if resolved is None:
            return None
        if resolved in ("float", "int"):
            if first.dtype == COMPLEX:
                self._emit(node, RULE_DOWNCAST,
                           f"{resolved}() on a complex value discards the "
                           f"imaginary part in {self._where()}; use abs() for "
                           "magnitude or .real for the real component")
            return ShapeVal((), FLOAT if resolved == "float" else INT)
        if resolved == "complex":
            return SCALAR_COMPLEX
        if resolved == "bool":
            return SCALAR_BOOL
        if resolved == "len":
            return SCALAR_INT
        if resolved == "abs":
            return ShapeVal(first.dims, _elementwise_dtype("abs", first.dtype))
        if resolved == "range":
            return ShapeVal((UNKNOWN_DIM,), INT)
        if resolved in sigdb.SET_CALLS:
            return SET_VAL
        if resolved in sigdb.ORDERING_CALLS:
            return UNKNOWN
        if resolved in ("sum", "math.fsum"):
            is_set_arg = first.kind == "set" or (
                node.args and isinstance(node.args[0], (ast.Set, ast.SetComp))
            )
            if is_set_arg:
                self._emit(node, RULE_UNORDERED,
                           f"{resolved.rsplit('.', 1)[-1]}() over a set in "
                           f"{self._where()}; float accumulation is "
                           "order-sensitive and set order is arbitrary — "
                           "sum over sorted(...) instead")
            return UNKNOWN
        if isinstance(node.func, ast.Attribute) and node.func.attr == "at":
            owner = self.info.resolve(node.func.value)
            if owner in sigdb.AT_UFUNCS and first.shared:
                self._emit(node, RULE_SHARED_MUT,
                           f"{owner}.at() mutates its first argument in place, "
                           f"but that array crosses a worker/cache boundary in "
                           f"{self._where()}; operate on a copy")
            return UNKNOWN if owner in sigdb.AT_UFUNCS else None
        if resolved in sigdb.BOUNDARY_CALLS:
            self.analysis.refs.add(resolved)
            return SHARED_UNKNOWN
        if resolved in sigdb.SHAPE_CONSTRUCTORS:
            dims = self._ctor_dims(node.args[0]) if node.args else None
            dtype = self._dtype_kw(node, default=sigdb.SHAPE_CONSTRUCTORS[resolved])
            if resolved == "numpy.full" and dtype is None and len(arg_vals) >= 2:
                dtype = arg_vals[1].dtype
            return ShapeVal(dims, dtype)
        if resolved in sigdb.LIKE_CONSTRUCTORS:
            return ShapeVal(first.dims, self._dtype_kw(node, default=first.dtype))
        if resolved in sigdb.RANGE_CONSTRUCTORS:
            default = sigdb.RANGE_CONSTRUCTORS[resolved]
            dtype = self._dtype_kw(node, default=None)
            if dtype is None:
                if resolved == "numpy.arange":
                    seen = {v.dtype for v in arg_vals}
                    dtype = FLOAT if FLOAT in seen else (INT if seen == {INT} else None)
                else:
                    dtype = default
            return ShapeVal((UNKNOWN_DIM,), dtype)
        if resolved in sigdb.PASSTHROUGH_CALLS:
            return ShapeVal(first.dims, self._dtype_kw(node, default=first.dtype))
        if resolved in sigdb.ELEMENTWISE:
            tag = sigdb.ELEMENTWISE[resolved]
            return ShapeVal(first.dims, _elementwise_dtype(tag, first.dtype))
        if resolved in sigdb.FFT_CALLS:
            if resolved.endswith("fftfreq"):
                return ShapeVal((UNKNOWN_DIM,), FLOAT)
            dims = first.dims
            if (len(node.args) >= 2 or "n" in kw_vals) and dims is not None and (
                VARIADIC not in dims
            ) and len(dims) >= 1:
                dims = dims[:-1] + (UNKNOWN_DIM,)
            return ShapeVal(dims, sigdb.FFT_CALLS[resolved])
        if resolved in sigdb.BROADCAST_CALLS:
            operands = arg_vals if resolved != "numpy.where" else arg_vals[:3]
            if resolved == "numpy.where" and len(operands) < 3:
                return UNKNOWN
            dims = operands[0].dims if operands else None
            for val in operands[1:]:
                dims, conflict = broadcast_dims(dims, val.dims)
                if conflict is not None:
                    self._emit(node, RULE_BROADCAST,
                               f"{resolved}() broadcasts incompatible shapes "
                               f"(dim {conflict[0]!r} vs {conflict[1]!r}) in "
                               f"{self._where()}; a reduction feeding this "
                               "usually needs keepdims=True")
                    return UNKNOWN
            if resolved in ("numpy.arctan2", "numpy.hypot"):
                dtype: Optional[str] = FLOAT
            elif resolved == "numpy.where":
                dtype = promote_dtype(operands[1].dtype, operands[2].dtype)
            else:
                dtype = None
                for val in operands:
                    dtype = val.dtype if dtype is None else promote_dtype(dtype, val.dtype)
                if resolved in ("numpy.divide", "numpy.true_divide") and dtype == INT:
                    dtype = FLOAT
            return ShapeVal(dims, dtype)
        if resolved == "numpy.transpose":
            dims = None
            if first.dims is not None and VARIADIC not in first.dims and (
                len(node.args) < 2 and "axes" not in kw_vals
            ):
                dims = tuple(reversed(first.dims))
            return ShapeVal(dims, first.dtype)
        if resolved == "numpy.reshape":
            dims = self._reshape_dims(node.args[1:]) if len(node.args) >= 2 else None
            return ShapeVal(dims, first.dtype)
        if resolved == "numpy.einsum":
            return self._einsum(node, arg_vals)
        if resolved.startswith("numpy."):
            tail = resolved.rsplit(".", 1)[-1]
            if tail in sigdb.REDUCTIONS:
                axis = self._call_operand(node, position=1, keyword="axis")
                keepdims = self._call_operand(node, position=None, keyword="keepdims")
                return self._reduce(node, tail, first, axis, keepdims)
        return None

    def _infer_method_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        arg_vals: List[ShapeVal],
        kw_vals: Dict[str, ShapeVal],
    ) -> ShapeVal:
        base = self._infer(func.value)
        attr = func.attr
        if attr in sigdb.MUTATING_METHODS and base.shared:
            label = ast.unparse(func.value) if hasattr(ast, "unparse") else "value"
            self._emit(node, RULE_SHARED_MUT,
                       f".{attr}() mutates {label!r} in place, but it crosses "
                       f"a worker/cache boundary and is shared across trials "
                       f"in {self._where()}; operate on a copy")
            return UNKNOWN
        if attr == "copy":
            return base.without_taint()
        if attr == "astype":
            dtype = None
            if node.args:
                dtype = self._dtype_of_node(node.args[0])
            elif "dtype" in kw_vals:
                dtype = self._dtype_kw(node, default=None)
            return ShapeVal(base.dims, dtype)
        if attr in ("conj", "conjugate"):
            return ShapeVal(base.dims, base.dtype)
        if attr == "reshape":
            args = node.args
            if len(args) == 1 and isinstance(args[0], ast.Tuple):
                args = args[0].elts
            return ShapeVal(self._reshape_dims(args), base.dtype)
        if attr == "transpose":
            dims = None
            if base.dims is not None and VARIADIC not in base.dims and not node.args:
                dims = tuple(reversed(base.dims))
            return ShapeVal(dims, base.dtype)
        if attr == "item":
            return ShapeVal((), base.dtype)
        if attr in sigdb.REDUCTIONS and base.dims is not None:
            axis = self._call_operand(node, position=0, keyword="axis")
            keepdims = self._call_operand(node, position=None, keyword="keepdims")
            return self._reduce(node, attr, base, axis, keepdims)
        return UNKNOWN

    # -- call helpers -----------------------------------------------------

    @staticmethod
    def _call_operand(
        node: ast.Call, position: Optional[int], keyword: str
    ) -> object:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        if position is not None and len(node.args) > position:
            return node.args[position]
        return _MISSING

    def _reduce(
        self,
        node: ast.Call,
        name: str,
        base: ShapeVal,
        axis: object,
        keepdims: object,
    ) -> ShapeVal:
        dtype = _reduction_dtype(sigdb.REDUCTIONS[name], base.dtype)
        dims = base.dims
        if dims is None or VARIADIC in dims:
            return ShapeVal(None, dtype)
        rank = len(dims)
        if axis is _MISSING:
            if rank >= 2 and isinstance(dims[0], str) and dims[0] != UNKNOWN_DIM:
                self._emit(node, RULE_REDUCTION,
                           f"{name}() without axis= collapses the whole "
                           f"{format_dims(dims)} block — including the "
                           f"{dims[0]!r} batch dimension — in {self._where()}; "
                           "pass axis=... (or an explicit axis=None if the "
                           "full collapse is intended)")
            return ShapeVal((), dtype)
        if isinstance(axis, ast.Constant) and axis.value is None:
            return ShapeVal((), dtype)
        axes: List[int] = []
        if isinstance(axis, ast.Constant) and isinstance(axis.value, int):
            axes = [axis.value]
        elif isinstance(axis, ast.UnaryOp) and isinstance(axis.op, ast.USub) and (
            isinstance(axis.operand, ast.Constant)
            and isinstance(axis.operand.value, int)
        ):
            axes = [-axis.operand.value]
        elif isinstance(axis, ast.Tuple) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, int)
            for e in axis.elts
        ):
            axes = [e.value for e in axis.elts]  # type: ignore[union-attr]
        else:
            return ShapeVal(None, dtype)
        resolved_axes = set()
        for ax in axes:
            actual = ax if ax >= 0 else rank + ax
            if actual < 0 or actual >= rank:
                self._emit(node, RULE_REDUCTION,
                           f"{name}(axis={ax}) is out of range for the rank-"
                           f"{rank} array {format_dims(dims)} in {self._where()}")
                return ShapeVal(None, dtype)
            resolved_axes.add(actual)
        keep = (
            isinstance(keepdims, ast.Constant) and keepdims.value is True
        )
        out: List[Dim] = []
        for i, d in enumerate(dims):
            if i in resolved_axes:
                if keep:
                    out.append(1)
            else:
                out.append(d)
        return ShapeVal(tuple(out), dtype)

    def _ctor_dims(self, node: ast.expr) -> Optional[Tuple[Dim, ...]]:
        items = list(node.elts) if isinstance(node, (ast.Tuple, ast.List)) else [node]
        dims: List[Dim] = []
        for item in items:
            if (
                isinstance(item, ast.Constant)
                and isinstance(item.value, int)
                and not isinstance(item.value, bool)
            ):
                dims.append(item.value)
            else:
                dims.append(UNKNOWN_DIM)
        return tuple(dims)

    def _reshape_dims(self, args: Sequence[ast.expr]) -> Optional[Tuple[Dim, ...]]:
        if not args:
            return None
        dims: List[Dim] = []
        for arg in args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, int)
                and not isinstance(arg.value, bool)
                and arg.value >= 0
            ):
                dims.append(arg.value)
            else:
                dims.append(UNKNOWN_DIM)
        return tuple(dims)

    def _einsum(self, node: ast.Call, arg_vals: List[ShapeVal]) -> ShapeVal:
        dtype = None
        for val in arg_vals[1:]:
            dtype = val.dtype if dtype is None else promote_dtype(dtype, val.dtype)
        spec = node.args[0] if node.args else None
        if not (isinstance(spec, ast.Constant) and isinstance(spec.value, str)):
            return ShapeVal(None, dtype)
        subscripts = spec.value.replace(" ", "")
        if "->" not in subscripts:
            return ShapeVal(None, dtype)
        output = subscripts.split("->", 1)[1]
        if "." in output:
            return ShapeVal(None, dtype)
        return ShapeVal(tuple(UNKNOWN_DIM for _ in output), dtype)

    def _dtype_of_node(self, node: ast.expr) -> Optional[str]:
        resolved = self.info.resolve(node)
        if resolved is not None:
            return sigdb.DTYPE_NAMES.get(resolved)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            value = node.value
            for name, dtype in sigdb.DTYPE_NAMES.items():
                if name.rsplit(".", 1)[-1] == value:
                    return dtype
        return None

    def _dtype_kw(self, node: ast.Call, default: Optional[str]) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._dtype_of_node(kw.value)
        return default

    def _resolve_summary(
        self, node: ast.Call, resolved: Optional[str]
    ) -> Optional[ShapeSummary]:
        candidates: List[str] = []
        if resolved is not None:
            candidates.append(resolved)
            if "." not in resolved:
                candidates.append(f"{self.info.module}.{resolved}")
        if isinstance(node.func, ast.Attribute):
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
                and self.fn is not None
                and self.fn.class_name is not None
            ):
                candidates.append(
                    f"{self.info.module}.{self.fn.class_name}.{node.func.attr}"
                )
            else:
                unique = self.methods.get(node.func.attr, ())
                if len(unique) == 1:
                    candidates.append(unique[0])
        for candidate in candidates:
            summary = self.summaries.get(candidate)
            if summary is not None:
                self.analysis.refs.add(summary.qualname)
                return summary
        # Remember unresolved candidates too: if the target appears in a
        # later run (new file), this caller must be re-analyzed.
        self.analysis.refs.update(c for c in candidates if "." in c)
        return None

    def _check_call_args(
        self,
        node: ast.Call,
        summary: ShapeSummary,
        arg_vals: List[ShapeVal],
        kw_vals: Dict[str, ShapeVal],
    ) -> None:
        params = list(summary.params)
        by_name = dict(params)
        callee = summary.qualname.rsplit(".", 1)[-1]
        for i, val in enumerate(arg_vals):
            if i >= len(params):
                break
            self._flag_arg(node, callee, params[i][0], params[i][1], val)
        for name, val in sorted(kw_vals.items()):
            if name in by_name:
                self._flag_arg(node, callee, name, by_name[name], val)

    def _flag_arg(
        self,
        node: ast.Call,
        callee: str,
        param: str,
        declared: Optional[ShapeVal],
        actual: ShapeVal,
    ) -> None:
        if declared is None:
            return
        conflict = contract_conflict(declared.dims, actual.dims)
        if conflict is not None:
            self._emit(node, RULE_CONTRACT,
                       f"call to {callee}() passes {format_dims(actual.dims)} "
                       f"for parameter {param!r} which declares "
                       f"{format_dims(declared.dims)} ({conflict}) in "
                       f"{self._where()}")
            return
        if declared.dtype in _REAL_DTYPES and actual.dtype == COMPLEX:
            self._emit(node, RULE_DOWNCAST,
                       f"call to {callee}() passes a complex value for "
                       f"parameter {param!r} which declares {declared.dtype} "
                       f"in {self._where()}; np.abs(...) or .real makes the "
                       "downcast explicit")


def analyze_shape_module(
    info: ModuleInfo,
    summaries: Dict[str, ShapeSummary],
    methods: Dict[str, Tuple[str, ...]],
) -> ShapeModuleAnalysis:
    """One engine pass over one module with the given summary table."""
    analysis = ShapeModuleAnalysis()
    module_flow = _ShapeFlow(info, analysis, summaries, methods, fn=None)
    module_flow.run(info.tree.body)
    module_env = dict(module_flow.env)
    for fn in info.functions:
        flow = _ShapeFlow(
            info, analysis, summaries, methods, fn=fn, module_env=module_env
        )
        flow.run(getattr(fn.node, "body", []))
        summary = summaries.get(fn.qualname)
        if summary is not None and summary.return_source != "contract":
            inferred = _merge_returns(flow.return_vals)
            if inferred is not None:
                analysis.inferred_returns[fn.qualname] = inferred
    analysis.findings.sort()
    return analysis


def _merge_returns(vals: Sequence[ShapeVal]) -> Optional[ShapeVal]:
    """Join of all return values; None unless something is known."""
    if not vals:
        return None
    dims = vals[0].dims
    dtype = vals[0].dtype
    shared = all(v.shared for v in vals)
    for val in vals[1:]:
        if val.dims != dims:
            dims = None
        if val.dtype != dtype:
            dtype = None
    if dims is None and dtype is None and not shared:
        return None
    return ShapeVal(dims, dtype, shared=shared)


def run_shape_fixed_point(
    infos: Sequence[ModuleInfo],
    summaries: Dict[str, ShapeSummary],
) -> Tuple[Dict[str, ShapeModuleAnalysis], Dict[str, ShapeSummary], int]:
    """Iterate analysis passes until the summary table stabilises.

    Args:
        infos: modules to (re-)analyze this run.
        summaries: global summary table (seeded; may contain cached
            summaries for modules *not* in ``infos``). Mutated in place
            as return shapes are inferred.

    Returns:
        (per-path analyses, final summary table, passes run).
    """
    ordered = sorted(infos, key=lambda info: info.path.as_posix())
    analyses: Dict[str, ShapeModuleAnalysis] = {}
    passes = 0
    for _ in range(MAX_FIXED_POINT_PASSES):
        passes += 1
        methods = method_index(summaries)
        changed = False
        for info in ordered:
            analysis = analyze_shape_module(info, summaries, methods)
            analyses[info.path.as_posix()] = analysis
            for qualname, val in sorted(analysis.inferred_returns.items()):
                summary = summaries.get(qualname)
                if summary is not None and summary.returns != val:
                    summaries[qualname] = ShapeSummary(
                        qualname=summary.qualname,
                        params=summary.params,
                        returns=val,
                        return_source="inferred",
                        path=summary.path,
                    )
                    changed = True
        if not changed:
            break
    return analyses, summaries, passes
