"""Array shape/dtype dataflow analysis for the VAB tree (VAB011–VAB016).

Where :mod:`repro.analysis.units` tracks physical units through the
call graph, this subpackage tracks **ndarray shapes, dtypes, and
determinism taints** through the batched kernels: symbolic dimension
names seeded from ``Shaped["trials", "samples"]``-style ``Annotated``
contracts (:mod:`~repro.analysis.shapes.vocab`), a curated signature
database for the numpy surface the repo uses
(:mod:`~repro.analysis.shapes.sigdb`), and a flow-sensitive,
interprocedural fixed-point engine
(:mod:`~repro.analysis.shapes.engine`) built on the same
:class:`~repro.analysis.units.symbols.ModuleInfo` symbol tables and the
same incremental cache driver (:mod:`repro.analysis.incremental`) as
the units engine.

Entry points::

    from repro.analysis.shapes import analyze_shapes

    report = analyze_shapes(discover_files(["src/repro"]))
    assert report.clean, report.findings

``analyze_shapes(files, cache_path=...)`` is incremental with the same
sha-keyed, call-graph-aware invalidation contract as ``analyze_units``.
The rules run under the same ``--units`` CLI flag as VAB006..VAB010 —
no new CLI surface.
"""

from repro.analysis.shapes.cache import (
    DEFAULT_CACHE_NAME,
    ENGINE_VERSION,
    ShapesReport,
    analyze_shapes,
    shapes_cache_path,
)
from repro.analysis.shapes.engine import (
    ShapeSummary,
    run_shape_fixed_point,
    seed_shape_summaries,
)
from repro.analysis.shapes.vocab import (
    ComplexShaped,
    FloatShaped,
    IntShaped,
    ShapeTag,
    Shaped,
    ShapeVal,
)

SHAPE_RULES = {
    "VAB011": (
        "silent-broadcast",
        "elementwise arithmetic between arrays whose symbolic shapes "
        "cannot broadcast (or broadcast to the wrong block) — the "
        "missing-keepdims / wrong-batch-axis class of bug",
    ),
    "VAB012": (
        "batch-collapsing-reduction",
        "reductions over a wrong or unspecified axis on a named batch "
        "block: an axis-less .sum()/.mean() silently collapses the "
        "batch dimension; an out-of-range axis is a latent IndexError",
    ),
    "VAB013": (
        "complex-downcast",
        "complex->real downcasts: float()/int() of a complex value, "
        "complex expressions stored into real-dtype buffers, ordered "
        "comparisons on complex arrays, complex returns declared real",
    ),
    "VAB014": (
        "shared-array-mutation",
        "in-place mutation of an array that crosses a worker/cache "
        "boundary (sim.parallel payloads, sim.cache entries are shared "
        "and read-only by contract — copy before writing)",
    ),
    "VAB015": (
        "unordered-accumulation",
        "order-dependent accumulation or RNG draws driven by set "
        "iteration — float sums and generator streams are only "
        "reproducible over a deterministic order (sort first)",
    ),
    "VAB016": (
        "shape-contract-violation",
        "interprocedural shape-contract conflicts: arguments whose "
        "inferred shape/dtype contradicts the callee's Shaped[...] "
        "contract, or returns contradicting the declared contract",
    ),
}
"""rule id -> (name, summary) for the shape engine's findings."""

SHAPE_RULE_IDS = tuple(sorted(SHAPE_RULES))

__all__ = [
    "analyze_shapes",
    "shapes_cache_path",
    "ShapesReport",
    "ENGINE_VERSION",
    "DEFAULT_CACHE_NAME",
    "SHAPE_RULES",
    "SHAPE_RULE_IDS",
    "ShapeSummary",
    "ShapeTag",
    "ShapeVal",
    "Shaped",
    "ComplexShaped",
    "FloatShaped",
    "IntShaped",
    "seed_shape_summaries",
    "run_shape_fixed_point",
]
