"""Shape-contract vocabulary for the shape/dtype dataflow engine.

The batched APIs in :mod:`repro.phy.batch`, :mod:`repro.vanatta.fastfield`
and :mod:`repro.sim.engine` annotate ndarray parameters and returns with
symbolic shape contracts::

    from repro.analysis.shapes.vocab import ComplexShaped, FloatShaped

    def suppress_carrier_batch(
        self, records: ComplexShaped["trials", "samples"]
    ) -> ComplexShaped["trials", "samples"]: ...

``Shaped[...]`` subscription produces ``Annotated[Any, ShapeTag(...)]``,
so at runtime the annotations are inert (every annotated module uses
``from __future__ import annotations``; nothing is evaluated) and the
static engine reads them straight off the AST.  The vocabulary is
stdlib-only on purpose — the analysis framework must import without
numpy.

Dimension tokens
----------------
* a ``str`` name (``"trials"``) — a symbolic dimension; two *different*
  names in the same broadcast slot are a conflict,
* an ``int`` literal (``3``) — a fixed extent; ``1`` broadcasts,
* ``UNKNOWN_DIM`` (``"?"``) — a dimension of unknown extent; matches
  anything,
* ``VARIADIC`` (``"..."``, spelled ``Shaped["...", "D"]`` or with a
  literal ``...``) — any number of leading dimensions; disables
  positional checks for the block it covers.

dtype tokens are the coarse lattice ``complex > float > int > bool``;
``None`` means unknown.  The engine only ever *narrows* claims it can
prove, so an unknown dtype or dimension silences the rules rather than
guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Annotated, Optional, Tuple, Union

Dim = Union[str, int]

UNKNOWN_DIM = "?"
VARIADIC = "..."

COMPLEX = "complex"
FLOAT = "float"
INT = "int"
BOOL = "bool"

DTYPES = (COMPLEX, FLOAT, INT, BOOL)

SHAPED_FACTORIES = {
    "Shaped": None,
    "ComplexShaped": COMPLEX,
    "FloatShaped": FLOAT,
    "IntShaped": INT,
}
"""Factory name -> dtype claim, as the engine matches them in the AST."""


@dataclass(frozen=True)
class ShapeTag:
    """Metadata payload carried inside ``Annotated[Any, ShapeTag(...)]``."""

    dims: Tuple[Dim, ...]
    dtype: Optional[str] = None


class _ShapedFactory:
    """``Shaped["trials", "samples"]`` -> ``Annotated[Any, ShapeTag(...)]``."""

    def __init__(self, name: str, dtype: Optional[str]) -> None:
        self._name = name
        self._dtype = dtype

    def __getitem__(self, dims: Any) -> Any:
        if not isinstance(dims, tuple):
            dims = (dims,)
        canon = tuple(VARIADIC if d is Ellipsis else d for d in dims)
        for d in canon:
            if not isinstance(d, (str, int)):
                raise TypeError(
                    f"{self._name}[...] dimensions must be str names, int "
                    f"literals, '?', or '...'; got {d!r}"
                )
        return Annotated[Any, ShapeTag(canon, self._dtype)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self._name


Shaped = _ShapedFactory("Shaped", None)
ComplexShaped = _ShapedFactory("ComplexShaped", COMPLEX)
FloatShaped = _ShapedFactory("FloatShaped", FLOAT)
IntShaped = _ShapedFactory("IntShaped", INT)


@dataclass(frozen=True)
class ShapeVal:
    """What the engine knows about one value.

    ``dims is None`` means the shape is entirely unknown (it may not even
    be an array).  ``dims == ()`` is a known scalar.  ``dtype`` is one of
    :data:`DTYPES` or ``None`` for unknown.  ``kind`` distinguishes
    ordinary values from ``set``/``frozenset`` objects (VAB015), and
    ``shared`` is the worker/cache-boundary taint (VAB014).
    """

    dims: Optional[Tuple[Dim, ...]] = None
    dtype: Optional[str] = None
    kind: str = "value"
    shared: bool = False

    @property
    def known(self) -> bool:
        return self.dims is not None or self.dtype is not None

    def with_dims(self, dims: Optional[Tuple[Dim, ...]]) -> "ShapeVal":
        return ShapeVal(dims, self.dtype, self.kind, self.shared)

    def with_dtype(self, dtype: Optional[str]) -> "ShapeVal":
        return ShapeVal(self.dims, dtype, self.kind, self.shared)

    def without_taint(self) -> "ShapeVal":
        if not self.shared:
            return self
        return ShapeVal(self.dims, self.dtype, self.kind, False)

    def to_dict(self) -> dict:
        return {
            "dims": list(self.dims) if self.dims is not None else None,
            "dtype": self.dtype,
            "kind": self.kind,
            "shared": self.shared,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShapeVal":
        dims = payload.get("dims")
        return cls(
            dims=tuple(dims) if dims is not None else None,
            dtype=payload.get("dtype"),
            kind=payload.get("kind", "value"),
            shared=bool(payload.get("shared", False)),
        )


UNKNOWN = ShapeVal()
SHARED_UNKNOWN = ShapeVal(shared=True)
SET_VAL = ShapeVal(kind="set")

SCALAR_COMPLEX = ShapeVal((), COMPLEX)
SCALAR_FLOAT = ShapeVal((), FLOAT)
SCALAR_INT = ShapeVal((), INT)
SCALAR_BOOL = ShapeVal((), BOOL)


def promote_dtype(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """dtype of an arithmetic combination; complex survives unknowns."""
    if COMPLEX in (a, b):
        return COMPLEX
    if a is None or b is None:
        return None
    if FLOAT in (a, b):
        return FLOAT
    return INT


def format_dims(dims: Optional[Tuple[Dim, ...]]) -> str:
    if dims is None:
        return "(unknown)"
    return "(" + ", ".join(str(d) for d in dims) + ")"


def dims_conflict(a: Dim, b: Dim) -> bool:
    """True when two aligned dimension tokens provably disagree.

    Only same-kind tokens can conflict: two distinct names, or two
    distinct fixed extents.  A name against a literal (or anything
    against ``"?"``) is merely unproven.
    """
    if a == b or UNKNOWN_DIM in (a, b):
        return False
    if isinstance(a, str) and isinstance(b, str):
        return True
    if isinstance(a, int) and isinstance(b, int):
        return True
    return False


def broadcast_dims(
    a: Optional[Tuple[Dim, ...]], b: Optional[Tuple[Dim, ...]]
) -> Tuple[Optional[Tuple[Dim, ...]], Optional[Tuple[Dim, Dim]]]:
    """Numpy-align two shapes; return ``(result_dims, conflict_pair)``.

    ``result_dims`` is ``None`` when the result is unknown (either input
    unknown or variadic).  ``conflict_pair`` is the offending ``(a, b)``
    token pair when the shapes provably cannot broadcast.
    """
    if a is None or b is None:
        return None, None
    if VARIADIC in a or VARIADIC in b:
        return None, None
    out: list = []
    for i in range(1, max(len(a), len(b)) + 1):
        da: Dim = a[-i] if i <= len(a) else 1
        db: Dim = b[-i] if i <= len(b) else 1
        if da == 1:
            out.append(db)
            continue
        if db == 1:
            out.append(da)
            continue
        if UNKNOWN_DIM in (da, db):
            out.append(UNKNOWN_DIM)
            continue
        if da == db:
            out.append(da)
            continue
        if dims_conflict(da, db):
            return None, (da, db)
        out.append(UNKNOWN_DIM)
    return tuple(reversed(out)), None


def contract_conflict(
    declared: Optional[Tuple[Dim, ...]], actual: Optional[Tuple[Dim, ...]]
) -> Optional[str]:
    """Describe a provable violation of ``declared`` by ``actual``.

    Returns ``None`` when ``actual`` could satisfy the contract.  A
    leading ``"..."`` in the declaration matches any number of leading
    dimensions; only the trailing fixed block is checked.
    """
    if declared is None or actual is None:
        return None
    if VARIADIC in actual:
        return None
    if VARIADIC in declared:
        fixed = declared[max(i for i, d in enumerate(declared) if d == VARIADIC) + 1 :]
        if len(actual) < len(fixed):
            return (
                f"rank {len(actual)} cannot satisfy trailing dims "
                f"{format_dims(fixed)}"
            )
        for d, a in zip(fixed, actual[len(actual) - len(fixed) :]):
            if dims_conflict(d, a):
                return f"dim {a!r} where contract requires {d!r}"
        return None
    if len(declared) != len(actual):
        return (
            f"rank {len(actual)} {format_dims(actual)} where contract "
            f"declares rank {len(declared)} {format_dims(declared)}"
        )
    for d, a in zip(declared, actual):
        if dims_conflict(d, a):
            return f"dim {a!r} where contract requires {d!r}"
    return None


def shape_from_tag(tag: ShapeTag) -> ShapeVal:
    return ShapeVal(dims=tag.dims, dtype=tag.dtype)


__all__ = [
    "Dim",
    "UNKNOWN_DIM",
    "VARIADIC",
    "COMPLEX",
    "FLOAT",
    "INT",
    "BOOL",
    "DTYPES",
    "SHAPED_FACTORIES",
    "ShapeTag",
    "Shaped",
    "ComplexShaped",
    "FloatShaped",
    "IntShaped",
    "ShapeVal",
    "UNKNOWN",
    "SHARED_UNKNOWN",
    "SET_VAL",
    "SCALAR_COMPLEX",
    "SCALAR_FLOAT",
    "SCALAR_INT",
    "SCALAR_BOOL",
    "promote_dtype",
    "format_dims",
    "dims_conflict",
    "broadcast_dims",
    "contract_conflict",
    "shape_from_tag",
]
