"""Shared driver behind ``tools/vablint.py`` and ``repro lint``.

Both CLIs parse the same flags; the actual flow — discover, lint,
optionally run the units engine, optionally diff against a baseline,
render — lives here once so the two entry points cannot drift.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.analysis.linter import (
    DEFAULT_EXCLUDES,
    EXIT_CLEAN,
    EXIT_ERROR,
    LintReport,
    discover_files,
    lint_paths,
)
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_stats,
    render_text,
)


def rule_list(raw: Optional[str]) -> Optional[List[str]]:
    """Parse a comma-separated rule-id CLI argument."""
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def add_lint_flags(parser: argparse.ArgumentParser) -> None:
    """Install the shared lint flag set on an argparse parser.

    Used by both ``tools/vablint.py`` and the ``repro lint`` subcommand
    so the two CLIs accept identical options.
    """
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--disable", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--exclude", action="append", default=None,
                        metavar="GLOB",
                        help="glob pattern to skip during directory "
                             "recursion (repeatable; added to the default "
                             "tests/lint_fixtures/** exclude)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the per-file rules")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="REF",
                        help="lint only files changed relative to the given "
                             "git ref (default HEAD) plus untracked files")
    parser.add_argument("--units", action="store_true",
                        help="run the interprocedural dataflow engines: "
                             "dimensional analysis (VAB006..VAB010), "
                             "shape/dtype analysis (VAB011..VAB016) and "
                             "effect/purity analysis (VAB017..VAB022)")
    parser.add_argument("--units-cache", default=".vablint_units_cache.json",
                        metavar="PATH", dest="units_cache",
                        help="cache file for incremental --units runs")
    parser.add_argument("--no-units-cache", action="store_true",
                        dest="no_units_cache",
                        help="force a cold --units run (no cache read/write)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="differential mode: fail only on findings not "
                             "in this baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        dest="update_baseline",
                        help="rewrite --baseline from the current findings "
                             "and exit 0")
    parser.add_argument("--stats", action="store_true",
                        help="print per-engine timing and incremental-cache "
                             "hit/miss counts after the run (embedded in the "
                             "JSON report under \"stats\")")
    parser.add_argument("--sarif", default=None, metavar="PATH",
                        help="also write a SARIF 2.1.0 log to PATH (for the "
                             "GitHub code-scanning upload)")
    parser.add_argument("--catalogue", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--fingerprint", action="store_true",
                        help="print the lint fingerprint JSON of the tree "
                             "and exit (0 clean / 1 dirty)")


def changed_files(ref: str, cwd: Optional[Path] = None) -> List[Path]:
    """Files changed relative to ``ref`` plus untracked files.

    Asks git for the union of ``diff --name-only REF`` and the
    untracked-but-not-ignored set, resolved against the repository
    top level so the result is independent of the working directory.

    Raises:
        RuntimeError: when git is unavailable, the directory is not a
            repository, or ``ref`` does not resolve.
    """
    base = Path(cwd) if cwd is not None else Path.cwd()

    def _git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], cwd=base, capture_output=True, text=True
            )
        except OSError as exc:
            raise RuntimeError(f"git unavailable: {exc}") from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"git {' '.join(argv)} failed"
            raise RuntimeError(detail)
        return proc.stdout

    top = Path(_git("rev-parse", "--show-toplevel").strip())
    names = set(_git("diff", "--name-only", ref, "--").splitlines())
    names |= set(_git("ls-files", "--others", "--exclude-standard").splitlines())
    return sorted(top / name for name in names if name)


def run_lint(
    paths: Sequence[str],
    select: Optional[List[str]] = None,
    disable: Optional[List[str]] = None,
    exclude: Optional[Sequence[str]] = None,
    jobs: int = 1,
    changed: Optional[str] = None,
    units: bool = False,
    units_cache: Optional[str] = None,
    baseline: Optional[str] = None,
    update_baseline: bool = False,
    as_json: bool = False,
    stats: bool = False,
    sarif: Optional[str] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Run one lint invocation end to end; returns the process exit code.

    Args:
        paths: files/directories to lint.
        select, disable: rule-id filters.
        exclude: extra glob patterns *added to* the default excludes
            (the lint-fixture tree is always skipped unless the file is
            named explicitly).
        jobs: worker processes for the per-file rules.
        changed: git ref — restrict the lint to discovered files that
            differ from this ref (or are untracked). A git failure is
            an :data:`EXIT_ERROR`, not a silent full run.
        units: run the dataflow engines (VAB006..VAB016).
        units_cache: cache file for incremental units runs (implies
            nothing when ``units`` is off).
        baseline: differential mode — only findings *not* covered by
            this baseline file count against the exit code.
        update_baseline: rewrite ``baseline`` from the current findings
            and exit clean (requires ``baseline``).
        as_json: JSON report instead of text.
        stats: append per-engine timing / cache hit-miss stats to the
            text report (or embed them in the JSON one).
        sarif: also write a SARIF 2.1.0 log to this path.
        out: stream to write the report to (default stdout).
    """
    stream = out if out is not None else sys.stdout
    patterns = list(DEFAULT_EXCLUDES) + [p for p in (exclude or []) if p]
    lint_targets: Sequence[str] = paths
    engine_paths: Optional[Sequence[str]] = None
    engine_force_dirty: Optional[set] = None
    if changed is not None:
        try:
            touched = {p.resolve() for p in changed_files(changed)}
        except RuntimeError as exc:
            print(f"vablint: --changed: {exc}", file=sys.stderr)
            return EXIT_ERROR
        try:
            discovered = discover_files(paths, exclude=patterns)
        except FileNotFoundError as exc:
            print(f"vablint: {exc}", file=sys.stderr)
            return EXIT_ERROR
        lint_targets = [
            p.as_posix() for p in discovered if p.resolve() in touched
        ]
        # The per-file rules scope to the touched files, but the
        # interprocedural engines must keep the whole call graph in
        # view: a touched callee invalidates its callers' call-site
        # checks even when the callers did not change.  The engines get
        # the full discovery set, with the touched files forced dirty
        # so dependent invalidation re-summarizes their callers.
        engine_paths = list(paths)
        engine_force_dirty = set(lint_targets)
    try:
        report: LintReport = lint_paths(
            lint_targets,
            select=select,
            disable=disable,
            exclude=patterns,
            jobs=jobs,
            units=units,
            units_cache=units_cache if units else None,
            engine_paths=engine_paths if units else None,
            engine_force_dirty=engine_force_dirty if units else None,
        )
    except FileNotFoundError as exc:
        print(f"vablint: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except KeyError as exc:
        print(f"vablint: {exc.args[0]}", file=sys.stderr)
        return EXIT_ERROR

    if baseline is not None:
        from repro.analysis.units.baseline import apply_baseline, write_baseline

        if update_baseline:
            entries = write_baseline(report.findings, Path(baseline))
            print(
                f"vablint: wrote baseline {baseline} "
                f"({sum(entries.values())} finding(s), {len(entries)} key(s))",
                file=sys.stderr,
            )
            return EXIT_CLEAN
        if Path(baseline).is_file():
            try:
                grandfathered, resolved = apply_baseline(report, Path(baseline))
            except ValueError as exc:
                print(f"vablint: {exc}", file=sys.stderr)
                return EXIT_ERROR
            if grandfathered or resolved:
                print(
                    f"vablint: baseline absorbed {grandfathered} finding(s); "
                    f"{resolved} allowance(s) resolved"
                    + (" (run --update-baseline to shrink it)" if resolved else ""),
                    file=sys.stderr,
                )
        else:
            print(
                f"vablint: baseline {baseline} not found; "
                "treating every finding as new",
                file=sys.stderr,
            )
    elif update_baseline:
        print("vablint: --update-baseline requires --baseline PATH",
              file=sys.stderr)
        return EXIT_ERROR

    if sarif is not None:
        Path(sarif).write_text(render_sarif(report), encoding="utf-8")
    if as_json:
        stream.write(render_json(report, stats=stats))
    else:
        stream.write(render_text(report))
        if stats:
            stream.write(render_stats(report))
    return report.exit_code
