"""Shared incremental driver for the interprocedural analysis engines.

Both dataflow engines — units (:mod:`repro.analysis.units`) and shapes
(:mod:`repro.analysis.shapes`) — have the same incremental structure:
per-file results keyed on the sha256 of the file's bytes plus an engine
version, function summaries as the interprocedural currency, and
call-graph dependent invalidation via each file's cached reference set.
This module holds that machinery once; the engines plug in their
extract/seed/fixed-point callables and summary codecs.

A warm run:

1. hashes every file (cheap),
2. marks changed files dirty,
3. expands the dirty set with the **call-graph dependents** of every
   dirty file (transitively, via the cached reference sets — a caller's
   call-site checks depend on its callees' summaries),
4. re-parses and re-analyzes only the dirty set, against the cached
   summaries of everything else,
5. reuses cached findings verbatim for untouched files.

Findings are stored suppression-filtered, so cache hits and cold runs
produce byte-identical reports — the determinism tests lock this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.analysis.findings import PARSE_ERROR_RULE, Finding
from repro.analysis.suppressions import SuppressionIndex


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class CacheEntry:
    """Everything remembered about one analyzed file."""

    sha: str
    findings: List[Dict[str, object]] = field(default_factory=list)
    summaries: List[Dict[str, object]] = field(default_factory=list)
    refs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sha": self.sha,
            "findings": self.findings,
            "summaries": self.summaries,
            "refs": self.refs,
        }

    @staticmethod
    def from_dict(raw: Dict[str, object]) -> "CacheEntry":
        return CacheEntry(
            sha=str(raw["sha"]),
            findings=list(raw.get("findings", [])),  # type: ignore[arg-type]
            summaries=list(raw.get("summaries", [])),  # type: ignore[arg-type]
            refs=list(raw.get("refs", [])),  # type: ignore[arg-type]
        )


class AnalysisCache:
    """On-disk store of per-file analysis results for one engine."""

    def __init__(self, entries: Optional[Dict[str, CacheEntry]] = None) -> None:
        self.entries: Dict[str, CacheEntry] = entries or {}

    @classmethod
    def load(cls, path: Optional[Path], engine_version: str) -> "AnalysisCache":
        """Read a cache file; any mismatch or damage yields an empty cache."""
        if path is None or not Path(path).is_file():
            return cls()
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        if raw.get("engine") != engine_version:
            return cls()
        entries = {
            str(key): CacheEntry.from_dict(value)
            for key, value in raw.get("files", {}).items()
        }
        return cls(entries)

    def save(self, path: Path, engine_version: str) -> None:
        """Persist the cache (deterministic JSON; sorted keys)."""
        payload = {
            "engine": engine_version,
            "files": {
                key: self.entries[key].to_dict() for key in sorted(self.entries)
            },
        }
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )


def _filtered(findings: Sequence[Finding], source: str) -> List[Finding]:
    index = SuppressionIndex.from_source(source)
    return [f for f in findings if not index.is_suppressed(f.line, f.rule_id)]


def _dependent_closure(
    dirty: Set[str],
    cache: AnalysisCache,
    qualname_owner: Dict[str, str],
) -> Set[str]:
    """Dirty files plus every cached file that (transitively) refers to
    a function defined in a dirty file."""
    ref_edges: Dict[str, Set[str]] = {}
    for path, entry in cache.entries.items():
        deps = {qualname_owner[q] for q in entry.refs if q in qualname_owner}
        deps.discard(path)
        ref_edges[path] = deps
    closed = set(dirty)
    changed = True
    while changed:
        changed = False
        for path, deps in ref_edges.items():
            if path not in closed and deps & closed:
                closed.add(path)
                changed = True
    return closed


def analyze_incremental(
    files: Sequence[Path],
    cache_path: Optional[Path],
    *,
    engine_version: str,
    report: Any,
    extract: Callable[[Path, str], Any],
    seed: Callable[[Sequence[Any]], Dict[str, Any]],
    fixed_point: Callable[..., Any],
    summary_from_dict: Callable[[Dict[str, object]], Any],
    force_dirty: Optional[Set[str]] = None,
) -> Any:
    """Run one engine over ``files``, incrementally when ``cache_path``.

    ``report`` is the engine's report object (``UnitsReport`` /
    ``ShapesReport``); its ``findings``/``errors``/``analyzed``/
    ``reused``/``files``/``passes`` fields are filled in place and the
    same object is returned.  ``extract`` parses one file (raising
    ``SyntaxError`` for VAB000), ``seed`` builds the initial summary
    table from the parsed modules, ``fixed_point`` is the engine's
    ``run_*_fixed_point``, and ``summary_from_dict`` decodes one cached
    summary record.  Summaries must expose ``qualname``, ``path`` and
    ``to_dict()``; analyses must expose ``findings`` and ``refs``.

    ``force_dirty`` (posix path strings) marks files dirty regardless of
    their content hash; their call-graph dependents are invalidated the
    same way sha-changed files are.  ``--changed`` runs use this so the
    engines re-check every dependent of a touched file even when the
    dependents themselves did not change.
    """
    sources: Dict[str, str] = {}
    shas: Dict[str, str] = {}
    ordered: List[str] = []
    for file_path in files:
        key = Path(file_path).as_posix()
        try:
            data = Path(file_path).read_bytes()
        except OSError as exc:
            report.errors.append(Finding(
                path=key, line=1, col=0, rule_id=PARSE_ERROR_RULE,
                message=f"could not read file: {exc}",
            ))
            continue
        ordered.append(key)
        shas[key] = _sha256(data)
        sources[key] = data.decode("utf-8", errors="replace")

    cache = AnalysisCache.load(cache_path, engine_version)
    cache.entries = {k: v for k, v in cache.entries.items() if k in shas}

    qualname_owner: Dict[str, str] = {}
    for path, entry in cache.entries.items():
        for raw in entry.summaries:
            qualname_owner[str(raw["qualname"])] = path

    dirty = {
        key for key in ordered
        if key not in cache.entries or cache.entries[key].sha != shas[key]
    }
    if force_dirty:
        dirty |= force_dirty & set(ordered)
    dirty = _dependent_closure(dirty, cache, qualname_owner) & set(ordered)

    infos: List[Any] = []
    for key in sorted(dirty):
        try:
            infos.append(extract(Path(key), sources[key]))
        except SyntaxError as exc:
            report.errors.append(Finding(
                path=key, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse file: {exc.msg}",
            ))
            dirty.discard(key)
            cache.entries.pop(key, None)

    summaries: Dict[str, Any] = {}
    for path, entry in cache.entries.items():
        if path in dirty:
            continue
        for raw in entry.summaries:
            summary = summary_from_dict(raw)
            summaries[summary.qualname] = summary
    summaries.update(seed(infos))

    analyses, summaries, passes = fixed_point(infos, summaries)
    report.passes = passes

    summary_by_path: Dict[str, List[Any]] = {}
    for summary in summaries.values():
        summary_by_path.setdefault(summary.path, []).append(summary)

    for key in ordered:
        if key in dirty:
            analysis = analyses.get(key)
            fresh = _filtered(analysis.findings if analysis else [], sources[key])
            report.findings.extend(fresh)
            report.analyzed.append(key)
            cache.entries[key] = CacheEntry(
                sha=shas[key],
                findings=[f.to_dict() for f in fresh],
                summaries=[
                    s.to_dict() for s in sorted(
                        summary_by_path.get(key, []), key=lambda s: s.qualname
                    )
                ],
                refs=sorted(analysis.refs) if analysis else [],
            )
        elif key in cache.entries:
            entry = cache.entries[key]
            report.findings.extend(
                Finding(
                    path=str(raw["path"]), line=int(raw["line"]),  # type: ignore[arg-type]
                    col=int(raw["col"]), rule_id=str(raw["rule"]),  # type: ignore[arg-type]
                    message=str(raw["message"]),
                )
                for raw in entry.findings
            )
            report.reused.append(key)

    report.files = len(report.analyzed) + len(report.reused)
    report.findings.sort()
    report.errors.sort()
    if cache_path is not None:
        cache.save(Path(cache_path), engine_version)
    return report
