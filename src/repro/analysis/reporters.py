"""Render a :class:`~repro.analysis.linter.LintReport` for humans or CI.

Two formats: a compact text listing (default) and a JSON document with
a stable schema (``{"files", "rules", "clean", "findings": [...],
"errors": [...], "counts"}``) that the CI lint job and the perf-harness
gate parse.
"""

from __future__ import annotations

import json

from repro.analysis.linter import LintReport
from repro.analysis.registry import rule_catalogue


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable listing; one line per finding plus a summary."""
    lines = [f.render() for f in report.errors + report.findings]
    if report.clean:
        lines.append(
            f"clean: {report.files} files, "
            f"{len(report.rules)} rules ({', '.join(report.rules)})"
        )
    else:
        total = len(report.findings) + len(report.errors)
        by_rule = ", ".join(
            f"{rule}={n}" for rule, n in report.counts_by_rule().items()
        )
        lines.append(f"{total} finding(s) in {report.files} files"
                     + (f" [{by_rule}]" if by_rule else ""))
    if report.units_stats is not None:
        stats = report.units_stats
        lines.append(
            f"units: engine {stats['engine_version']}, "
            f"{stats['analyzed']} analyzed, {stats['reused']} cached, "
            f"{stats['passes']} passes"
        )
    if report.shapes_stats is not None:
        stats = report.shapes_stats
        lines.append(
            f"shapes: engine {stats['engine_version']}, "
            f"{stats['analyzed']} analyzed, {stats['reused']} cached, "
            f"{stats['passes']} passes"
        )
    if verbose:
        lines.append("")
        lines.append(render_catalogue())
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload = {
        "files": report.files,
        "rules": report.rules,
        "clean": report.clean,
        "findings": [f.to_dict() for f in report.findings],
        "errors": [f.to_dict() for f in report.errors],
        "counts": report.counts_by_rule(),
    }
    if report.units_stats is not None:
        payload["units"] = report.units_stats
    if report.shapes_stats is not None:
        payload["shapes"] = report.shapes_stats
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_catalogue() -> str:
    """The rule catalogue as ``VABxxx name — summary`` lines.

    Covers the per-file registry (VAB001..VAB005), the
    dimensional-analysis engine's rules (VAB006..VAB010), and the
    shape/dtype dataflow engine's rules (VAB011..VAB016); the engine
    rules run only under ``--units`` and live outside the registry.
    """
    from repro.analysis.shapes import SHAPE_RULES
    from repro.analysis.units import UNIT_RULES

    lines = []
    for rule_id, cls in rule_catalogue().items():
        lines.append(f"{rule_id} {cls.name} — {cls.summary}")
    for rule_id in sorted(UNIT_RULES):
        name, summary = UNIT_RULES[rule_id]
        lines.append(f"{rule_id} {name} — {summary} (requires --units)")
    for rule_id in sorted(SHAPE_RULES):
        name, summary = SHAPE_RULES[rule_id]
        lines.append(f"{rule_id} {name} — {summary} (requires --units)")
    return "\n".join(lines)
