"""Render a :class:`~repro.analysis.linter.LintReport` for humans or CI.

Three formats: a compact text listing (default), a JSON document with
a stable schema (``{"files", "rules", "clean", "findings": [...],
"errors": [...], "counts"}``) that the CI lint job and the perf-harness
gate parse, and a SARIF 2.1.0 log (:func:`render_sarif`) for the
GitHub code-scanning upload.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.analysis.linter import LintReport
from repro.analysis.registry import rule_catalogue

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
TOOL_NAME = "vablint"
TOOL_VERSION = "1.0.0"


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-readable listing; one line per finding plus a summary."""
    lines = [f.render() for f in report.errors + report.findings]
    if report.clean:
        lines.append(
            f"clean: {report.files} files, "
            f"{len(report.rules)} rules ({', '.join(report.rules)})"
        )
    else:
        total = len(report.findings) + len(report.errors)
        by_rule = ", ".join(
            f"{rule}={n}" for rule, n in report.counts_by_rule().items()
        )
        lines.append(f"{total} finding(s) in {report.files} files"
                     + (f" [{by_rule}]" if by_rule else ""))
    if report.units_stats is not None:
        stats = report.units_stats
        lines.append(
            f"units: engine {stats['engine_version']}, "
            f"{stats['analyzed']} analyzed, {stats['reused']} cached, "
            f"{stats['passes']} passes"
        )
    if report.shapes_stats is not None:
        stats = report.shapes_stats
        lines.append(
            f"shapes: engine {stats['engine_version']}, "
            f"{stats['analyzed']} analyzed, {stats['reused']} cached, "
            f"{stats['passes']} passes"
        )
    if report.effects_stats is not None:
        stats = report.effects_stats
        lines.append(
            f"effects: engine {stats['engine_version']}, "
            f"{stats['analyzed']} analyzed, {stats['reused']} cached, "
            f"{stats['passes']} passes"
        )
    if verbose:
        lines.append("")
        lines.append(render_catalogue())
    return "\n".join(lines) + "\n"


def render_json(report: LintReport, stats: bool = False) -> str:
    """Machine-readable report (stable schema, sorted findings).

    ``stats=True`` adds a ``"stats"`` block with per-engine timings and
    cache hit/miss counts; it is opt-in because the timings are
    wall-clock and would break the report's byte determinism.
    """
    payload = {
        "files": report.files,
        "rules": report.rules,
        "clean": report.clean,
        "findings": [f.to_dict() for f in report.findings],
        "errors": [f.to_dict() for f in report.errors],
        "counts": report.counts_by_rule(),
    }
    if report.units_stats is not None:
        payload["units"] = report.units_stats
    if report.shapes_stats is not None:
        payload["shapes"] = report.shapes_stats
    if report.effects_stats is not None:
        payload["effects"] = report.effects_stats
    if stats:
        payload["stats"] = stats_payload(report)
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_catalogue() -> str:
    """The rule catalogue as ``VABxxx name — summary`` lines.

    Covers the per-file registry (VAB001..VAB005), the
    dimensional-analysis engine's rules (VAB006..VAB010), the
    shape/dtype dataflow engine's rules (VAB011..VAB016), and the
    effect/purity engine's rules (VAB017..VAB022); the engine rules run
    only under ``--units`` and live outside the registry.
    """
    lines = []
    for rule_id, cls in rule_catalogue().items():
        lines.append(f"{rule_id} {cls.name} — {cls.summary}")
    for rule_id, name, summary in _engine_rules():
        lines.append(f"{rule_id} {name} — {summary} (requires --units)")
    return "\n".join(lines)


def _engine_rules() -> List[Tuple[str, str, str]]:
    """(rule_id, name, summary) for every ``--units`` engine rule."""
    from repro.analysis.effects import EFFECT_RULES
    from repro.analysis.shapes import SHAPE_RULES
    from repro.analysis.units import UNIT_RULES

    rows: List[Tuple[str, str, str]] = []
    for table in (UNIT_RULES, SHAPE_RULES, EFFECT_RULES):
        for rule_id in sorted(table):
            name, summary = table[rule_id]
            rows.append((rule_id, name, summary))
    return rows


def render_stats(report: LintReport) -> str:
    """Per-engine timing and incremental-cache hit/miss lines.

    Rendered only under ``--stats``: the timing values are wall-clock
    and must never enter the deterministic report payload.
    """
    lines = ["--- lint stats ---"]
    lines.append(
        f"rules: {report.files} files in "
        f"{report.timings.get('rules', 0.0):.3f}s"
    )
    for label, stats in (
        ("units", report.units_stats),
        ("shapes", report.shapes_stats),
        ("effects", report.effects_stats),
    ):
        if stats is None:
            continue
        lines.append(
            f"{label}: {stats['analyzed']} analyzed (cache miss), "
            f"{stats['reused']} reused (cache hit), "
            f"{stats['passes']} passes in "
            f"{report.timings.get(label, 0.0):.3f}s"
        )
    return "\n".join(lines) + "\n"


def stats_payload(report: LintReport) -> Dict[str, object]:
    """The ``--stats`` block embedded in the JSON report on request."""
    payload: Dict[str, object] = {
        "timings_s": {
            k: round(v, 6) for k, v in sorted(report.timings.items())
        },
    }
    for label, stats in (
        ("units", report.units_stats),
        ("shapes", report.shapes_stats),
        ("effects", report.effects_stats),
    ):
        if stats is not None:
            payload[label] = {
                "hits": stats["reused"],
                "misses": stats["analyzed"],
                "passes": stats["passes"],
            }
    return payload


def _sarif_rules() -> List[Dict[str, object]]:
    """The full VAB catalogue as SARIF ``reportingDescriptor`` objects."""
    rules: List[Dict[str, object]] = [{
        "id": "VAB000",
        "name": "parse-error",
        "shortDescription": {"text": "file could not be parsed"},
    }]
    for rule_id, cls in rule_catalogue().items():
        rules.append({
            "id": rule_id,
            "name": cls.name,
            "shortDescription": {"text": cls.summary},
        })
    for rule_id, name, summary in _engine_rules():
        rules.append({
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": summary},
        })
    return rules


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for the GitHub code-scanning upload.

    One run, one result per finding; parse errors (VAB000) map to
    ``level: error``, rule findings to ``level: warning``.  Paths are
    emitted as given to the linter (repo-relative in CI), which is the
    ``artifactLocation.uri`` form ``upload-sarif`` expects.
    """
    results: List[Dict[str, object]] = []
    for finding in list(report.errors) + list(report.findings):
        results.append({
            "ruleId": finding.rule_id,
            "level": "error" if finding.is_error else "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; findings are 0-based.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "rules": _sarif_rules(),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=False) + "\n"
