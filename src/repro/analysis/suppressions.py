"""Per-line suppression of lint findings.

A violation is silenced by a trailing (or same-line) comment::

    rng = np.random.default_rng()  # vablint: disable=VAB001
    t0 = time.time()               # vablint: disable=VAB004,VAB002
    anything_goes()                # vablint: disable=all
    anything_goes()                # vablint: disable

A bare ``disable`` (no ``=`` and no rule list) is shorthand for
``disable=all`` — every rule is silenced on that line. The same
shorthand works for ``disable-file``.

The directive applies to findings reported on any physical line of the
*logical* line carrying the comment: for a statement continued across
backslashes or open parentheses, a trailing directive on any of its
physical lines silences the whole statement (findings are reported on
the statement's first line, which is rarely where the comment fits). A
file-level opt-out exists for generated or fixture code::

    # vablint: disable-file=VAB003
    # vablint: disable-file=all

Comments are located with :mod:`tokenize`, so directives inside string
literals are ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set

_LINE_RE = re.compile(r"#\s*vablint:\s*disable(?!-)(?:=([A-Za-z0-9_,\s]+))?")
_FILE_RE = re.compile(r"#\s*vablint:\s*disable-file(?:=([A-Za-z0-9_,\s]+))?")

ALL = "all"
"""Sentinel rule name matching every rule id."""


class SuppressionIndex:
    """Which rules are suppressed on which lines of one file."""

    def __init__(
        self,
        by_line: Dict[int, FrozenSet[str]],
        file_wide: FrozenSet[str],
    ) -> None:
        self._by_line = by_line
        self._file_wide = file_wide

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan a module's comments for ``vablint:`` directives.

        Unreadable sources (tokenize errors on top of a syntax error)
        yield an empty index — the parse failure is reported elsewhere.
        """
        by_line: Dict[int, Set[str]] = {}
        file_wide: Set[str] = set()
        # Directives on a continuation line (backslash or open-paren)
        # must cover the whole logical line: findings anchor on the
        # statement's *first* physical line. Track where the current
        # logical line started and spread pending rules over its full
        # physical extent when the NEWLINE token closes it.
        _skip = {tokenize.NL, tokenize.INDENT, tokenize.DEDENT,
                 tokenize.ENDMARKER}
        logical_start: "int | None" = None
        last_line = 0
        pending: Set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                last_line = max(last_line, tok.end[0])
                if tok.type == tokenize.COMMENT:
                    match = _FILE_RE.search(tok.string)
                    if match:
                        file_wide.update(_parse_rule_list(match.group(1)))
                        continue
                    match = _LINE_RE.search(tok.string)
                    if match:
                        rules = _parse_rule_list(match.group(1))
                        by_line.setdefault(tok.start[0], set()).update(rules)
                        if logical_start is not None:
                            pending.update(rules)
                elif tok.type == tokenize.NEWLINE:
                    if pending and logical_start is not None:
                        for line in range(logical_start, tok.end[0] + 1):
                            by_line.setdefault(line, set()).update(pending)
                    pending.clear()
                    logical_start = None
                elif tok.type not in _skip and logical_start is None:
                    logical_start = tok.start[0]
        except (tokenize.TokenizeError, IndentationError, SyntaxError):
            pass
        if pending and logical_start is not None:
            # Unterminated final logical line (no trailing newline).
            for line in range(logical_start, last_line + 1):
                by_line.setdefault(line, set()).update(pending)
        return cls(
            {line: frozenset(rules) for line, rules in by_line.items()},
            frozenset(file_wide),
        )

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` findings on ``line`` are silenced."""
        if ALL in self._file_wide or rule_id in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return ALL in rules or rule_id in rules

    @property
    def empty(self) -> bool:
        """True when the file carries no directives at all."""
        return not self._by_line and not self._file_wide


def _parse_rule_list(raw: "str | None") -> Set[str]:
    """Split a ``VAB001,VAB002`` / ``all`` directive payload.

    A missing payload (bare ``disable``) suppresses everything.
    """
    if raw is None:
        return {ALL}
    out: Set[str] = set()
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        out.add(ALL if part.lower() == ALL else part.upper())
    return out
