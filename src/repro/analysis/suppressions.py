"""Per-line suppression of lint findings.

A violation is silenced by a trailing (or same-line) comment::

    rng = np.random.default_rng()  # vablint: disable=VAB001
    t0 = time.time()               # vablint: disable=VAB004,VAB002
    anything_goes()                # vablint: disable=all
    anything_goes()                # vablint: disable

A bare ``disable`` (no ``=`` and no rule list) is shorthand for
``disable=all`` — every rule is silenced on that line. The same
shorthand works for ``disable-file``.

The directive applies to findings *reported on that physical line* —
for a multi-line statement, put it on the line the finding names. A
file-level opt-out exists for generated or fixture code::

    # vablint: disable-file=VAB003
    # vablint: disable-file=all

Comments are located with :mod:`tokenize`, so directives inside string
literals are ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set

_LINE_RE = re.compile(r"#\s*vablint:\s*disable(?!-)(?:=([A-Za-z0-9_,\s]+))?")
_FILE_RE = re.compile(r"#\s*vablint:\s*disable-file(?:=([A-Za-z0-9_,\s]+))?")

ALL = "all"
"""Sentinel rule name matching every rule id."""


class SuppressionIndex:
    """Which rules are suppressed on which lines of one file."""

    def __init__(
        self,
        by_line: Dict[int, FrozenSet[str]],
        file_wide: FrozenSet[str],
    ) -> None:
        self._by_line = by_line
        self._file_wide = file_wide

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan a module's comments for ``vablint:`` directives.

        Unreadable sources (tokenize errors on top of a syntax error)
        yield an empty index — the parse failure is reported elsewhere.
        """
        by_line: Dict[int, Set[str]] = {}
        file_wide: Set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _FILE_RE.search(tok.string)
                if match:
                    file_wide.update(_parse_rule_list(match.group(1)))
                    continue
                match = _LINE_RE.search(tok.string)
                if match:
                    line = tok.start[0]
                    by_line.setdefault(line, set()).update(
                        _parse_rule_list(match.group(1))
                    )
        except (tokenize.TokenizeError, IndentationError, SyntaxError):
            pass
        return cls(
            {line: frozenset(rules) for line, rules in by_line.items()},
            frozenset(file_wide),
        )

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``rule_id`` findings on ``line`` are silenced."""
        if ALL in self._file_wide or rule_id in self._file_wide:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return ALL in rules or rule_id in rules

    @property
    def empty(self) -> bool:
        """True when the file carries no directives at all."""
        return not self._by_line and not self._file_wide


def _parse_rule_list(raw: "str | None") -> Set[str]:
    """Split a ``VAB001,VAB002`` / ``all`` directive payload.

    A missing payload (bare ``disable``) suppresses everything.
    """
    if raw is None:
        return {ALL}
    out: Set[str] = set()
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        out.add(ALL if part.lower() == ALL else part.upper())
    return out
