"""The project-specific lint rules (``VAB001`` .. ``VAB005``).

These encode the invariants the reproduction's headline guarantees rest
on — determinism of the campaign engine, unit discipline in the physics,
and a typed public API:

* **VAB001** — unseeded RNG in library code. Every stochastic entry
  point must thread an explicit ``np.random.Generator``; the documented
  fallback is :func:`repro.rng.fallback_rng`, never a bare
  ``np.random.default_rng()`` or legacy ``np.random.*`` global state.
* **VAB002** — generator construction inside loop bodies (per-trial hot
  paths). Generators are derived once from centralized seeds
  (``TrialCampaign.trial_seeds``) and threaded in; constructing them
  per-iteration hides the seeding contract and costs time under spans.
* **VAB003** — unit-suffix hygiene: dB/linear, Hz/rad, m/km mixing, and
  dB-valued expressions bound to names not marked ``_db``.
* **VAB004** — wall-clock reads (``time.time``, ``datetime.now``) in
  simulation code. Wall time is telemetry; it lives in :mod:`repro.obs`
  (exempt) so physics stays replayable.
* **VAB005** — API hygiene: mutable default arguments anywhere, and
  missing type annotations on the public surface.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

RNG_FACTORY = "numpy.random.default_rng"

LEGACY_RANDOM_CALLS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "laplace", "logistic",
    "lognormal", "multinomial", "multivariate_normal", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_integers", "random_sample", "ranf", "rayleigh", "sample",
    "seed", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
}
"""numpy legacy global-state API: nondeterministic unless globally seeded."""

GENERATOR_CONSTRUCTORS = {
    RNG_FACTORY,
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}

WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

LOG10_CALLS = {"math.log10", "numpy.log10"}

DB_SUFFIXES = ("_db", "_dbm")
"""Name endings that mark a decibel-valued quantity."""

CONFLICTING_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("db", "lin"),
    ("hz", "rad"),
    ("m", "km"),
    ("deg", "rad"),
    ("s", "ms"),
)
"""Unit families that must not meet in additive arithmetic."""

_SUFFIX_TOKENS = {s for pair in CONFLICTING_SUFFIXES for s in pair}


def _terminal_names(node: ast.AST) -> Iterator[str]:
    """Identifiers carrying unit suffixes inside an expression.

    Yields plain names, the final attribute of attribute chains, and the
    names of called functions — anything whose trailing ``_db``-style
    token marks the unit of the value it stands for.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _unit_suffix(name: str) -> Optional[str]:
    """The trailing unit token of ``name`` (``snr_db`` -> ``db``)."""
    token = name.rsplit("_", 1)[-1].lower()
    if token != name.lower() and token in _SUFFIX_TOKENS:
        return token
    return None


def _is_db_marked(name: str) -> bool:
    """True when the name declares a decibel quantity.

    Accepts trailing markers (``snr_db``), mid-name markers with a
    per-unit tail (``alpha_db_per_km``, ``loss_db_per_bounce``), and the
    bare conversion-helper spellings ``db``/``dbm``.
    """
    lowered = name.lower()
    return (
        lowered.endswith(DB_SUFFIXES)
        or "_db_" in lowered
        or lowered in ("db", "dbm")
    )


def _constant_value(node: ast.AST) -> Optional[float]:
    """Numeric literal value, seeing through unary minus; else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _constant_value(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


@register
class UnseededRngRule(Rule):
    """VAB001: unseeded or legacy global-state RNG in library code."""

    rule_id = "VAB001"
    name = "unseeded-rng"
    summary = (
        "library code must thread an explicit np.random.Generator; "
        "no unseeded default_rng() and no legacy np.random.* global state"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved == RNG_FACTORY and not node.args and not node.keywords:
                yield ctx.finding(
                    self, node,
                    "unseeded np.random.default_rng(); thread an explicit "
                    "Generator or use repro.rng.fallback_rng()",
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved.rsplit(".", 1)[-1] in LEGACY_RANDOM_CALLS
            ):
                yield ctx.finding(
                    self, node,
                    f"legacy global-state call {resolved}(); "
                    "use a threaded np.random.Generator",
                )


@register
class RngInLoopRule(Rule):
    """VAB002: RNG constructed inside a loop body / per-trial hot path."""

    rule_id = "VAB002"
    name = "rng-in-loop"
    summary = (
        "derive all generators up front (e.g. from TrialCampaign.trial_seeds) "
        "and thread them; do not construct Generators inside loop bodies"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        rule = self

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.loop_depth = 0
                self.found: List[Finding] = []

            def _visit_loop(self, node: ast.AST) -> None:
                self.loop_depth += 1
                self.generic_visit(node)
                self.loop_depth -= 1

            visit_For = _visit_loop
            visit_While = _visit_loop

            def visit_Call(self, node: ast.Call) -> None:
                resolved = ctx.resolve(node.func)
                if self.loop_depth and resolved in GENERATOR_CONSTRUCTORS:
                    self.found.append(ctx.finding(
                        rule, node,
                        f"{resolved.rsplit('.', 1)[-1]}() constructed inside "
                        "a loop body; hoist generator construction out of "
                        "the hot path and thread it as a parameter",
                    ))
                self.generic_visit(node)

        visitor = Visitor()
        visitor.visit(ctx.tree)
        yield from visitor.found


@register
class UnitSuffixRule(Rule):
    """VAB003: unit-suffix arithmetic and naming mismatches."""

    rule_id = "VAB003"
    name = "unit-suffix-mismatch"
    summary = (
        "dB/linear, Hz/rad, m/km quantities must not meet in additive "
        "arithmetic; dB-valued expressions must bind to *_db names"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_double_db(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_db_binding(ctx, node)
            elif isinstance(node, ast.BinOp):
                if isinstance(node.op, (ast.Add, ast.Sub)):
                    yield from self._check_suffix_conflict(ctx, node)
                elif isinstance(node.op, ast.Pow):
                    yield from self._check_db_to_linear(ctx, node)

    def _check_double_db(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        """``log10`` applied to an already-dB quantity."""
        if ctx.resolve(node.func) not in LOG10_CALLS or not node.args:
            return
        for name in _terminal_names(node.args[0]):
            if _is_db_marked(name):
                yield ctx.finding(
                    self, node,
                    f"log10 applied to dB-marked quantity {name!r} "
                    "(double dB conversion)",
                )
                return

    def _check_db_binding(self, ctx: FileContext, node: ast.Assign) -> Iterator[Finding]:
        """``x = 20 * log10(...)`` must bind to a ``*_db`` name."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        if _is_db_marked(target) or not self._is_db_expression(ctx, node.value):
            return
        yield ctx.finding(
            self, node,
            f"dB-valued expression assigned to {target!r}; "
            f"name it {target}_db (unit suffix discipline)",
        )

    def _is_db_expression(self, ctx: FileContext, node: ast.AST) -> bool:
        """Does the expression contain a ``10|20 * log10(...)`` term?"""
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult)):
                continue
            for factor, other in ((sub.left, sub.right), (sub.right, sub.left)):
                if _constant_value(factor) in (10.0, 20.0) and any(
                    isinstance(c, ast.Call) and ctx.resolve(c.func) in LOG10_CALLS
                    for c in ast.walk(other)
                ):
                    return True
        return False

    def _check_db_to_linear(self, ctx: FileContext, node: ast.BinOp) -> Iterator[Finding]:
        """``10 ** (x / 10|20)`` where nothing in ``x`` is dB-marked."""
        if _constant_value(node.left) != 10.0:
            return
        exponent = node.right
        if isinstance(exponent, ast.UnaryOp) and isinstance(exponent.op, ast.USub):
            exponent = exponent.operand
        if not (isinstance(exponent, ast.BinOp) and isinstance(exponent.op, ast.Div)):
            return
        if _constant_value(exponent.right) not in (10.0, 20.0):
            return
        names = list(_terminal_names(exponent.left))
        if names and not any(_is_db_marked(n) for n in names):
            yield ctx.finding(
                self, node,
                "dB-to-linear conversion 10**(x/{:d}) applied to {!r}, which "
                "is not marked _db".format(int(_constant_value(exponent.right)),
                                           names[0]),
            )

    def _check_suffix_conflict(self, ctx: FileContext, node: ast.BinOp) -> Iterator[Finding]:
        """``a_db + b_lin``-style additive mixing of unit families."""
        left = self._operand_suffixes(node.left)
        right = self._operand_suffixes(node.right)
        for a, b in CONFLICTING_SUFFIXES:
            if (a in left and b in right) or (b in left and a in right):
                yield ctx.finding(
                    self, node,
                    f"additive arithmetic mixes _{a} and _{b} quantities; "
                    "convert to one unit first",
                )
                return

    @staticmethod
    def _operand_suffixes(node: ast.AST) -> Set[str]:
        """Unit tokens present among an operand's *direct* value names.

        Only names at the top of the operand (not buried inside calls,
        whose return units differ from their arguments') count.
        """
        suffixes: Set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Name):
                token = _unit_suffix(current.id)
                if token:
                    suffixes.add(token)
            elif isinstance(current, ast.Attribute):
                token = _unit_suffix(current.attr)
                if token:
                    suffixes.add(token)
            elif isinstance(current, ast.BinOp):
                stack.extend([current.left, current.right])
            elif isinstance(current, ast.UnaryOp):
                stack.append(current.operand)
        return suffixes


@register
class WallClockRule(Rule):
    """VAB004: wall-clock reads outside the telemetry layer."""

    rule_id = "VAB004"
    name = "wall-clock-in-sim"
    summary = (
        "time.time/datetime.now make simulation state depend on when it "
        "runs; wall-clock reads belong in repro.obs (exempt)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "obs" in ctx.path_parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self, node,
                    f"wall-clock read {resolved}() outside repro.obs; "
                    "route timestamps through the telemetry layer "
                    "(repro.obs.manifest.wall_clock_unix)",
                )


@register
class ApiHygieneRule(Rule):
    """VAB005: mutable defaults and missing public type annotations."""

    rule_id = "VAB005"
    name = "api-hygiene"
    summary = (
        "no mutable default arguments; public repro.* functions and "
        "methods carry full parameter and return annotations"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_mutable_defaults(ctx, node)
        yield from self._walk_body(ctx, ctx.tree.body, public_scope=True)

    def _walk_body(
        self, ctx: FileContext, body: Sequence[ast.stmt], public_scope: bool
    ) -> Iterator[Finding]:
        """Annotation checks on the public surface (nested defs exempt)."""
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._walk_body(
                    ctx, node.body,
                    public_scope=public_scope and not node.name.startswith("_"),
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dunder = node.name.startswith("__") and node.name.endswith("__")
                private = node.name.startswith("_")
                if public_scope and not private and not dunder:
                    yield from self._check_annotations(ctx, node)

    def _check_mutable_defaults(
        self, ctx: FileContext, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                yield ctx.finding(
                    self, default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and construct inside the body",
                )

    def _check_annotations(
        self, ctx: FileContext, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        decorators = {
            name.rsplit(".", 1)[-1]
            for name in (ctx.resolve(d) for d in node.decorator_list)
            if name is not None
        }
        args = list(node.args.posonlyargs) + list(node.args.args)
        if args and args[0].arg in ("self", "cls") and "staticmethod" not in decorators:
            args = args[1:]
        missing = [a.arg for a in args + list(node.args.kwonlyargs)
                   if a.annotation is None]
        if node.returns is None:
            missing.append("return")
        if missing:
            yield ctx.finding(
                self, node,
                f"public function {node.name}() missing type annotations "
                f"for: {', '.join(missing)}",
            )


def _module_docstring_rules() -> Dict[str, str]:  # pragma: no cover - docs helper
    """rule_id -> summary for documentation generators."""
    from repro.analysis.registry import rule_catalogue

    return {rid: cls.summary for rid, cls in rule_catalogue().items()}
