"""Lint orchestration: file discovery, rule execution, fingerprints.

The flow is ``paths -> files -> FileContext -> rules -> findings``,
with the suppression filter applied last so a ``# vablint: disable=``
comment silences any rule. :func:`lint_paths` is the everything
entry point used by ``tools/vablint.py``, the ``repro lint`` CLI
subcommand, and the perf harness's dirty-tree gate.

A :func:`tree_fingerprint` hashes the exact sources linted together
with the rule catalogue, so a campaign manifest can record *which* tree
was clean under *which* rules — byte-level provenance for the
determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import PARSE_ERROR_RULE, Finding
from repro.analysis.registry import FileContext, Rule, make_rules, rule_catalogue
from repro.analysis.suppressions import SuppressionIndex

# Importing the rules module populates the registry as a side effect.
from repro.analysis import rules as _rules  # noqa: F401

PathLike = Union[str, Path]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
"""The CLI exit-code contract: clean / rule findings / unusable input."""

DEFAULT_EXCLUDES: Tuple[str, ...] = ("tests/lint_fixtures/**",)
"""Glob patterns dropped from discovery unless the caller overrides
``exclude``: the lint fixtures are *deliberately* dirty."""


@dataclass
class LintReport:
    """Everything one lint run produced.

    Attributes:
        findings: rule findings after suppression, sorted by location.
        errors: parse failures (``VAB000``) — these mean the run could
            not fully evaluate the tree.
        files: number of Python files inspected.
        rules: rule ids that ran.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: List[str] = field(default_factory=list)
    units_stats: Optional[Dict[str, object]] = None
    """Units-engine run stats (:meth:`UnitsReport.stats`) when the
    dimensional analysis ran; None for suffix-only lint runs."""
    shapes_stats: Optional[Dict[str, object]] = None
    """Shapes-engine run stats (:meth:`ShapesReport.stats`) when the
    shape/dtype dataflow analysis ran (it rides the ``--units`` flag);
    None for suffix-only lint runs."""
    effects_stats: Optional[Dict[str, object]] = None
    """Effects-engine run stats (:meth:`EffectsReport.stats`) when the
    effect/purity analysis ran (it rides the ``--units`` flag); None
    for suffix-only lint runs."""
    timings: Dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per stage (``rules``/``units``/``shapes``/
    ``effects``).  Only rendered under ``--stats`` — the timing values
    are run-dependent and must stay out of the deterministic report
    payload."""

    @property
    def clean(self) -> bool:
        """True when no findings and no parse errors."""
        return not self.findings and not self.errors

    @property
    def exit_code(self) -> int:
        """The CLI exit code this report maps to."""
        if self.errors:
            return EXIT_ERROR
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN

    def counts_by_rule(self) -> Dict[str, int]:
        """rule_id -> number of findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _excluded(path: Path, patterns: Sequence[str]) -> bool:
    """True when ``path`` matches any exclude glob.

    Patterns are matched against the posix form of the path both as
    given and anchored at any directory boundary, so
    ``tests/lint_fixtures/**`` excludes the fixture tree whether the
    lint was invoked from the repo root or with absolute paths.
    """
    posix = path.as_posix()
    for pattern in patterns:
        if fnmatch(posix, pattern) or fnmatch(posix, f"*/{pattern}"):
            return True
    return False


def discover_files(
    paths: Sequence[PathLike],
    exclude: Optional[Sequence[str]] = None,
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Args:
        paths: files and/or directories (directories recurse).
        exclude: glob patterns to drop (see :func:`_excluded`); defaults
            to :data:`DEFAULT_EXCLUDES`. Pass ``[]`` to exclude nothing.
            Explicitly named files are never excluded — only files found
            by directory recursion.

    Raises:
        FileNotFoundError: when a named path does not exist.
    """
    patterns = DEFAULT_EXCLUDES if exclude is None else tuple(exclude)
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
                and not _excluded(p, patterns)
            )
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen = set()
    unique: List[Path] = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def lint_source(
    source: str,
    path: PathLike = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source; returns suppression-filtered findings.

    A syntax error yields a single ``VAB000`` finding rather than
    raising, so one broken file doesn't hide the rest of a tree.
    """
    active = list(rules) if rules is not None else make_rules()
    try:
        ctx = FileContext.parse(Path(path), source)
    except SyntaxError as exc:
        return [Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_RULE,
            message=f"could not parse file: {exc.msg}",
        )]
    suppressions = SuppressionIndex.from_source(source)
    findings: List[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.line, finding.rule_id):
                findings.append(finding)
    return sorted(findings)


def _lint_one(
    args: Tuple[str, Optional[List[str]], Optional[List[str]]],
) -> Tuple[bool, List[Finding]]:
    """Worker for the parallel front-end: lint one file.

    Returns ``(read_ok, findings)``; module-level so it pickles into a
    :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    path_str, select, disable = args
    file_path = Path(path_str)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return False, [Finding(
            path=str(file_path), line=1, col=0,
            rule_id=PARSE_ERROR_RULE, message=f"could not read file: {exc}",
        )]
    rules = make_rules(select=select, disable=disable)
    return True, lint_source(source, file_path, rules=rules)


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[List[str]] = None,
    disable: Optional[List[str]] = None,
    exclude: Optional[Sequence[str]] = None,
    jobs: int = 1,
    units: bool = False,
    units_cache: Optional[PathLike] = None,
    engine_paths: Optional[Sequence[PathLike]] = None,
    engine_force_dirty: Optional[Set[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the registered rules.

    Args:
        paths: files and/or directories (directories recurse).
        select: run only these rule ids (per-file rules only).
        disable: drop these rule ids (applies to unit rules too).
        exclude: glob patterns to skip during directory recursion;
            defaults to :data:`DEFAULT_EXCLUDES`.
        jobs: worker processes for the per-file rules; ``1`` keeps
            everything in-process.
        units: also run the interprocedural dataflow engines — the
            dimensional analysis (VAB006..VAB010,
            :mod:`repro.analysis.units`), the shape/dtype analysis
            (VAB011..VAB016, :mod:`repro.analysis.shapes`) and the
            effect/purity analysis (VAB017..VAB022,
            :mod:`repro.analysis.effects`).
        units_cache: optional cache file for incremental units runs;
            the shapes and effects engines derive sibling cache files
            from it.
        engine_paths: when given, the interprocedural engines analyze
            this (usually wider) file set instead of ``paths`` — a
            ``--changed`` run scopes the per-file rules to the touched
            files but must keep the whole call graph visible to the
            engines, or dependents' call-site checks go stale.
        engine_force_dirty: posix paths the engines must re-analyze
            (with their call-graph dependents) even when unchanged on
            disk; the ``--changed`` dependent-invalidation hook.

    Returns:
        The aggregate :class:`LintReport`.
    """
    # Engine rules (VAB006..VAB022) live outside the per-file registry,
    # so select/disable lists are validated against the union and split.
    from repro.analysis.effects import EFFECT_RULE_IDS
    from repro.analysis.shapes import SHAPE_RULE_IDS
    from repro.analysis.units import UNIT_RULE_IDS

    registry_ids = set(rule_catalogue())
    unit_ids_all = set(UNIT_RULE_IDS)
    shape_ids_all = set(SHAPE_RULE_IDS)
    effect_ids_all = set(EFFECT_RULE_IDS)

    def _split(ids: Optional[List[str]], label: str) -> Optional[List[str]]:
        if ids is None:
            return None
        upper = [i.upper() for i in ids]
        unknown = sorted(
            set(upper) - registry_ids - unit_ids_all - shape_ids_all
            - effect_ids_all
        )
        if unknown:
            raise KeyError(f"unknown rule id(s) in {label}: {', '.join(unknown)}")
        return [i for i in upper if i in registry_ids]

    reg_select = _split(select, "select")
    reg_disable = _split(disable, "disable")
    active = make_rules(select=reg_select, disable=reg_disable)
    report = LintReport(rules=[r.rule_id for r in active])
    files = discover_files(paths, exclude=exclude)
    work = [(f.as_posix(), reg_select, reg_disable) for f in files]
    t0 = time.monotonic()
    if jobs > 1 and len(work) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_lint_one, work, chunksize=8))
    else:
        results = [_lint_one(item) for item in work]
    report.timings["rules"] = time.monotonic() - t0
    for read_ok, findings in results:
        report.files += 1 if read_ok else 0
        for finding in findings:
            (report.errors if finding.is_error else report.findings).append(finding)
    if units:
        # Imported lazily: the dataflow engines are optional machinery
        # and most lint_paths callers (fingerprints, the perf gate)
        # never need them.
        from repro.analysis.effects import analyze_effects, effects_cache_path
        from repro.analysis.shapes import analyze_shapes, shapes_cache_path
        from repro.analysis.units import UNIT_RULE_IDS, analyze_units

        dropped = {r.upper() for r in disable or []}
        wanted = {r.upper() for r in select} if select is not None else None

        def _active(all_ids: Sequence[str]) -> List[str]:
            ids = [r for r in all_ids if r not in dropped]
            if wanted is not None:
                ids = [r for r in ids if r in wanted]
            return ids

        engine_files = (
            discover_files(engine_paths, exclude=exclude)
            if engine_paths is not None
            else files
        )

        unit_ids = _active(UNIT_RULE_IDS)
        t0 = time.monotonic()
        units_report = analyze_units(
            engine_files,
            cache_path=Path(units_cache) if units_cache else None,
            force_dirty=engine_force_dirty,
        )
        report.timings["units"] = time.monotonic() - t0
        report.rules.extend(unit_ids)
        report.units_stats = units_report.stats()
        keep = set(unit_ids)
        report.findings.extend(
            f for f in units_report.findings if f.rule_id in keep
        )
        report.errors.extend(units_report.errors)

        # The shapes pass rides the same flag with a sibling cache file.
        shape_ids = _active(SHAPE_RULE_IDS)
        t0 = time.monotonic()
        shapes_report = analyze_shapes(
            engine_files,
            cache_path=shapes_cache_path(Path(units_cache))
            if units_cache
            else None,
            force_dirty=engine_force_dirty,
        )
        report.timings["shapes"] = time.monotonic() - t0
        report.rules.extend(shape_ids)
        report.shapes_stats = shapes_report.stats()
        keep_shapes = set(shape_ids)
        report.findings.extend(
            f for f in shapes_report.findings if f.rule_id in keep_shapes
        )
        report.errors.extend(shapes_report.errors)

        # So does the effect/purity pass.
        effect_ids = _active(EFFECT_RULE_IDS)
        t0 = time.monotonic()
        effects_report = analyze_effects(
            engine_files,
            cache_path=effects_cache_path(Path(units_cache))
            if units_cache
            else None,
            force_dirty=engine_force_dirty,
        )
        report.timings["effects"] = time.monotonic() - t0
        report.rules.extend(effect_ids)
        report.effects_stats = effects_report.stats()
        keep_effects = set(effect_ids)
        report.findings.extend(
            f for f in effects_report.findings if f.rule_id in keep_effects
        )
        report.errors.extend(effects_report.errors)
        # A syntax-broken file surfaces VAB000 from every pass; keep one.
        unique = {
            (f.path, f.line, f.col, f.rule_id, f.message): f
            for f in report.errors
        }
        report.errors = list(unique.values())
    report.findings.sort()
    report.errors.sort()
    return report


def tree_fingerprint(paths: Sequence[PathLike]) -> Dict[str, object]:
    """Hash the linted tree + rule catalogue + verdict into one record.

    The fingerprint covers the byte content of every file linted and the
    ids of the rules that ran, so two identical fingerprints mean "the
    same sources were judged by the same catalogue with the same
    outcome". Campaign manifests persist this as lint provenance.
    """
    report = lint_paths(paths)
    digest = hashlib.sha256()
    file_hashes = []
    for file_path in discover_files(paths):
        try:
            data = file_path.read_bytes()
        except OSError:
            continue
        file_hashes.append(
            (file_path.as_posix(), hashlib.sha256(data).hexdigest())
        )
    payload = json.dumps(
        {"rules": report.rules, "files": file_hashes}, sort_keys=True
    )
    digest.update(payload.encode("utf-8"))
    return {
        "fingerprint": digest.hexdigest(),
        "clean": report.clean,
        "files": report.files,
        "findings": len(report.findings) + len(report.errors),
        "rules": report.rules,
    }
