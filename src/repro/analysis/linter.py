"""Lint orchestration: file discovery, rule execution, fingerprints.

The flow is ``paths -> files -> FileContext -> rules -> findings``,
with the suppression filter applied last so a ``# vablint: disable=``
comment silences any rule. :func:`lint_paths` is the everything
entry point used by ``tools/vablint.py``, the ``repro lint`` CLI
subcommand, and the perf harness's dirty-tree gate.

A :func:`tree_fingerprint` hashes the exact sources linted together
with the rule catalogue, so a campaign manifest can record *which* tree
was clean under *which* rules — byte-level provenance for the
determinism contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.findings import PARSE_ERROR_RULE, Finding
from repro.analysis.registry import FileContext, Rule, make_rules, rule_catalogue
from repro.analysis.suppressions import SuppressionIndex

# Importing the rules module populates the registry as a side effect.
from repro.analysis import rules as _rules  # noqa: F401

PathLike = Union[str, Path]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2
"""The CLI exit-code contract: clean / rule findings / unusable input."""


@dataclass
class LintReport:
    """Everything one lint run produced.

    Attributes:
        findings: rule findings after suppression, sorted by location.
        errors: parse failures (``VAB000``) — these mean the run could
            not fully evaluate the tree.
        files: number of Python files inspected.
        rules: rule ids that ran.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no findings and no parse errors."""
        return not self.findings and not self.errors

    @property
    def exit_code(self) -> int:
        """The CLI exit code this report maps to."""
        if self.errors:
            return EXIT_ERROR
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN

    def counts_by_rule(self) -> Dict[str, int]:
        """rule_id -> number of findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def discover_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: when a named path does not exist.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen = set()
    unique: List[Path] = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def lint_source(
    source: str,
    path: PathLike = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source; returns suppression-filtered findings.

    A syntax error yields a single ``VAB000`` finding rather than
    raising, so one broken file doesn't hide the rest of a tree.
    """
    active = list(rules) if rules is not None else make_rules()
    try:
        ctx = FileContext.parse(Path(path), source)
    except SyntaxError as exc:
        return [Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_RULE,
            message=f"could not parse file: {exc.msg}",
        )]
    suppressions = SuppressionIndex.from_source(source)
    findings: List[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.line, finding.rule_id):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[List[str]] = None,
    disable: Optional[List[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the registered rules.

    Args:
        paths: files and/or directories (directories recurse).
        select: run only these rule ids.
        disable: drop these rule ids.

    Returns:
        The aggregate :class:`LintReport`.
    """
    active = make_rules(select=select, disable=disable)
    report = LintReport(rules=[r.rule_id for r in active])
    for file_path in discover_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.errors.append(Finding(
                path=str(file_path), line=1, col=0,
                rule_id=PARSE_ERROR_RULE, message=f"could not read file: {exc}",
            ))
            continue
        report.files += 1
        for finding in lint_source(source, file_path, rules=active):
            (report.errors if finding.is_error else report.findings).append(finding)
    report.findings.sort()
    report.errors.sort()
    return report


def tree_fingerprint(paths: Sequence[PathLike]) -> Dict[str, object]:
    """Hash the linted tree + rule catalogue + verdict into one record.

    The fingerprint covers the byte content of every file linted and the
    ids of the rules that ran, so two identical fingerprints mean "the
    same sources were judged by the same catalogue with the same
    outcome". Campaign manifests persist this as lint provenance.
    """
    report = lint_paths(paths)
    digest = hashlib.sha256()
    file_hashes = []
    for file_path in discover_files(paths):
        try:
            data = file_path.read_bytes()
        except OSError:
            continue
        file_hashes.append(
            (file_path.as_posix(), hashlib.sha256(data).hexdigest())
        )
    payload = json.dumps(
        {"rules": report.rules, "files": file_hashes}, sort_keys=True
    )
    digest.update(payload.encode("utf-8"))
    return {
        "fingerprint": digest.hexdigest(),
        "clean": report.clean,
        "files": report.files,
        "findings": len(report.findings) + len(report.errors),
        "rules": report.rules,
    }
