"""Rule registry and the per-file context rules run against.

A rule is a class with a ``rule_id`` (``VABxxx``), a one-line
``summary``, and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.findings.Finding` objects. Registering is one
decorator::

    @register
    class MyRule(Rule):
        rule_id = "VAB042"
        name = "no-spherical-cows"
        summary = "reject frictionless approximations"

        def check(self, ctx: FileContext) -> Iterator[Finding]:
            ...

The linter instantiates every registered rule once per process and runs
each against every file's :class:`FileContext` — parsed AST, source
lines, and an import-alias map that lets rules resolve dotted call names
(``nr.default_rng`` -> ``numpy.random.default_rng``) without guessing
at aliasing conventions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.analysis.findings import Finding


@dataclass
class FileContext:
    """Everything a rule may inspect about one file.

    Attributes:
        path: the file's path as reported in findings.
        source: full module source.
        tree: parsed ``ast`` module.
        lines: source split into lines (1-based access via index-1).
        aliases: local name -> fully qualified module/symbol, built from
            the module's import statements.
    """

    path: Path
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, source: str) -> "FileContext":
        """Parse ``source``; raises ``SyntaxError`` on unparsable files."""
        tree = ast.parse(source, filename=str(path))
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        ctx.aliases = _import_aliases(tree)
        return ctx

    @property
    def path_parts(self) -> Tuple[str, ...]:
        """The path's components (rules use these for package exemptions)."""
        return self.path.parts

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a Name/Attribute chain.

        ``np.random.default_rng`` resolves through the module's import
        aliases to ``numpy.random.default_rng``; unresolvable shapes
        (calls on call results, subscripts, ...) return None.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` for ``rule``."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,
            message=message,
        )


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (override)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the override a generator


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Raises:
        ValueError: on a missing or duplicate ``rule_id``.
    """
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def rule_catalogue() -> Dict[str, Type[Rule]]:
    """rule_id -> rule class, sorted by id (a fresh dict)."""
    return {rule_id: _REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)}


def make_rules(
    select: Optional[List[str]] = None,
    disable: Optional[List[str]] = None,
) -> List[Rule]:
    """Instantiate the registered rules, honouring select/disable lists.

    Args:
        select: when given, only these rule ids run.
        disable: rule ids to drop (applied after ``select``).

    Raises:
        KeyError: when a named rule id is not registered.
    """
    catalogue = rule_catalogue()
    wanted = list(catalogue) if select is None else list(select)
    for rule_id in list(wanted) + list(disable or []):
        if rule_id not in catalogue:
            raise KeyError(f"unknown rule id {rule_id!r}")
    dropped = set(disable or [])
    return [catalogue[r]() for r in wanted if r not in dropped]


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to fully qualified origins from import statements."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.name if item.asname else item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases
