"""Lint findings: the unit of output of every :mod:`repro.analysis` rule.

A :class:`Finding` pins one violation to a ``(path, line, column)`` and
names the rule that produced it. Findings are plain values — hashable,
orderable, JSON-safe — so reporters, tests, and the suppression filter
all work on the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

PARSE_ERROR_RULE = "VAB000"
"""Pseudo-rule id attached to files the linter could not parse."""


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation.

    Attributes:
        path: file the violation is in (as given to the linter).
        line: 1-based line number.
        col: 0-based column offset.
        rule_id: ``VABxxx`` identifier of the rule that fired.
        message: human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe mapping (the ``--json`` reporter's record shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line ``path:line:col: VABxxx message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    @property
    def is_error(self) -> bool:
        """True for parse failures (exit-code 2 class), not rule hits."""
        return self.rule_id == PARSE_ERROR_RULE
