"""Static analysis for the reproduction's own invariants (``vablint``).

The campaign engine guarantees parallel runs bit-identical to serial;
the physics guarantees unit consistency (dB vs linear, Hz vs rad). Both
rest on conventions — an explicit ``rng`` threaded everywhere, unit
suffixes on names — that documentation alone cannot hold. This package
machine-checks them with a stdlib-``ast`` lint framework plus five
per-file rules (``VAB001``..``VAB005``; see
:mod:`repro.analysis.rules`), a flow-sensitive, interprocedural
dimensional-analysis engine (``VAB006``..``VAB010``; see
:mod:`repro.analysis.units`) that tracks units through assignments,
arithmetic, and call boundaries, and a shape/dtype dataflow engine
(``VAB011``..``VAB016``; see :mod:`repro.analysis.shapes`) that tracks
symbolic ndarray shapes, dtypes, and determinism taints through the
batched kernels.

Run it via ``python tools/vablint.py src/repro``, the ``repro lint``
CLI subcommand, or the API::

    from repro.analysis import lint_paths

    report = lint_paths(["src/repro"])
    assert report.clean, report.findings

Suppress a deliberate violation inline with
``# vablint: disable=VAB001`` (see :mod:`repro.analysis.suppressions`),
and add rules by subclassing :class:`~repro.analysis.registry.Rule`
under the :func:`~repro.analysis.registry.register` decorator.
"""

from repro.analysis.findings import Finding
from repro.analysis.linter import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    LintReport,
    discover_files,
    lint_paths,
    lint_source,
    tree_fingerprint,
)
from repro.analysis.registry import FileContext, Rule, make_rules, register, rule_catalogue
from repro.analysis.reporters import render_catalogue, render_json, render_text
from repro.analysis.suppressions import SuppressionIndex

__all__ = [
    "Finding",
    "LintReport",
    "lint_paths",
    "lint_source",
    "discover_files",
    "tree_fingerprint",
    "Rule",
    "register",
    "rule_catalogue",
    "make_rules",
    "FileContext",
    "SuppressionIndex",
    "render_text",
    "render_json",
    "render_catalogue",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
]
