"""The library-wide random-number contract.

Every stochastic entry point in :mod:`repro` takes an explicit
``numpy.random.Generator`` (``rng=``) parameter. Campaign code *must*
thread generators derived from :meth:`repro.sim.trials.TrialCampaign.trial_seeds`
— that is the contract the parallel runner's bit-identical guarantee
rests on, and :mod:`repro.analysis` rule **VAB001** enforces it by
rejecting unseeded ``np.random.default_rng()`` fallbacks in library
code.

For interactive or exploratory use the ``rng`` parameter may still be
omitted. Instead of silently handing out OS entropy, omitted generators
draw from one *documented, process-global* stream seeded with
:data:`DEFAULT_FALLBACK_SEED`:

* successive unseeded calls draw different values (the stream advances),
  so statistical behaviour matches the old ``default_rng()`` fallback;
* two runs of the same process are identical, so "I didn't pass a seed"
  is no longer a reproducibility leak.

Tests and notebooks that want a fresh, independent stream should pass
their own generator; :func:`reseed_fallback` exists to reset the shared
stream between independent experiments in one process.
"""

from __future__ import annotations

from typing import Annotated, Optional

import numpy as np

from repro.analysis.effects.vocab import (
    MUTATES_GLOBAL,
    READS_GLOBAL,
    RNG_AMBIENT,
)

DEFAULT_FALLBACK_SEED = 0x5EEDAB5
"""Seed of the process-global fallback stream (arbitrary, documented)."""

_fallback: Optional[np.random.Generator] = None


def fallback_rng() -> Annotated[
    np.random.Generator, READS_GLOBAL, MUTATES_GLOBAL, RNG_AMBIENT
]:
    """The process-global generator backing omitted ``rng`` parameters.

    Library code uses this instead of a bare ``np.random.default_rng()``
    so that unseeded use is reproducible run-to-run. The generator is
    created lazily on first use and shared for the process lifetime;
    every call advances the same stream.
    """
    global _fallback
    if _fallback is None:
        _fallback = np.random.default_rng(DEFAULT_FALLBACK_SEED)
    return _fallback


def reseed_fallback(
    seed: int = DEFAULT_FALLBACK_SEED,
) -> Annotated[np.random.Generator, MUTATES_GLOBAL]:
    """Reset the fallback stream (e.g. between independent experiments).

    Args:
        seed: new seed for the shared stream.

    Returns:
        The freshly seeded generator (also installed as the fallback).
    """
    global _fallback
    _fallback = np.random.default_rng(seed)
    return _fallback


__all__ = ["DEFAULT_FALLBACK_SEED", "fallback_rng", "reseed_fallback"]
