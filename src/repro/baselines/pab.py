"""PAB: the prior state-of-the-art underwater backscatter node.

Models a first-generation piezo-acoustic backscatter system (in the style
of the SIGCOMM'19 underwater backscatter work the paper compares against):

* a **single** transducer — no aperture, no retrodirective gain, and the
  re-radiation spreads omnidirectionally instead of beaming back;
* an **unmatched** modulation switch — without the co-designed matching
  network the ON/OFF reflection contrast is small (weak sidebands);
* a **non-coherent** reader — envelope detection without the Van Atta
  system's phase-tracked matched filter, costing detection sensitivity;
* a reader with an ordinary self-interference canceller, whose residual
  floor — not ambient noise — is what actually caps its range.

The numbers below are calibration constants chosen so the simulated PAB
dies near the ~20 m the measured system achieved; the paper's 15x claim
is then an *output* of the head-to-head benchmark, not an input.
"""

from __future__ import annotations

from repro.sim.linkbudget import LinkBudget
from repro.sim.scenario import Scenario
from repro.vanatta.array import VanAttaArray
from repro.vanatta.node import VanAttaNode
from repro.vanatta.switching import ModulationSwitch

PAB_MODULATION_DEPTH = 0.25
"""ON/OFF amplitude contrast of the unmatched single-element switch."""

PAB_NODE_LOSS_DB = 5.5
"""Round-trip conversion losses of the first-generation node."""

PAB_SI_SUPPRESSION_DB = 95.0
"""Residual self-interference floor of the first-generation reader."""


def pab_switch() -> ModulationSwitch:
    """Switch whose contrast matches the unmatched PAB front end.

    Insertion loss and poor OFF isolation combine to the calibrated
    modulation depth: on = 0.708, off = 0.458, depth ~ 0.25.
    """
    return ModulationSwitch(
        insertion_loss_db=3.0,
        off_isolation_db=3.8,
        transition_time_s=40e-6,
        gate_energy_j=2.5e-9,
    )


def pab_node(node_id: int = 1) -> VanAttaNode:
    """A single-element PAB node (drop-in for the waveform simulator)."""
    return VanAttaNode(
        array=VanAttaArray.uniform(num_elements=1),
        switch=pab_switch(),
        node_id=node_id,
    )


def pab_link_budget(scenario: Scenario) -> LinkBudget:
    """Analytic budget for PAB in a scenario (the E4 comparator).

    Same source level, same water, same noise — only the node and reader
    deficits differ, which is what "same throughput and power" means in
    the paper's comparison.
    """
    return LinkBudget(
        scenario=scenario,
        array_gain_db=0.0,
        modulation_depth=PAB_MODULATION_DEPTH,
        node_loss_db=PAB_NODE_LOSS_DB,
        coherent=False,
        chips_per_bit=2,
        si_suppression_db=PAB_SI_SUPPRESSION_DB,
    )
