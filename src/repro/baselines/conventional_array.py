"""A conventional (non-Van-Atta) reflecting array.

Same elements, same aperture, same switch — but each element re-radiates
the signal *it* received instead of its mirror twin's. The incident phase
gradient is then doubled rather than conjugated on re-transmission, so the
reflection is coherent only at broadside and collapses as ``theta`` moves
off axis. This is the "flat reflector" curve in the paper's
retrodirectivity figure, and the null hypothesis the Van Atta design is
measured against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.vanatta.node import VanAttaNode


def conventional_monostatic_gain(
    positions_m: np.ndarray,
    frequency_hz: float,
    theta_deg: float,
    sound_speed: float = 1500.0,
    element_gain: float = 1.0,
    line_gain: float = 1.0,
) -> complex:
    """Monostatic response of a self-reflecting array.

    Element ``i`` contributes ``exp(j 2 k x_i sin(theta))`` — the incident
    phase is *repeated*, not conjugated, so off-broadside terms decohere.
    """
    if frequency_hz <= 0 or sound_speed <= 0:
        raise ValueError("frequency and sound speed must be positive")
    k = 2.0 * math.pi * frequency_hz / sound_speed
    u = math.sin(math.radians(theta_deg))
    phases = 2.0 * k * np.asarray(positions_m, dtype=np.float64) * u
    total = np.exp(1j * phases).sum()
    return complex(total * line_gain * element_gain**2)


def conventional_monostatic_gain_db(
    positions_m: np.ndarray,
    frequency_hz: float,
    theta_deg: float,
    sound_speed: float = 1500.0,
) -> float:
    """Monostatic gain of the self-reflecting array, dB re one element."""
    mag = abs(
        conventional_monostatic_gain(positions_m, frequency_hz, theta_deg, sound_speed)
    )
    return 20.0 * math.log10(max(mag, 1e-15))


@dataclass
class ConventionalNode(VanAttaNode):
    """A node whose array reflects conventionally (no pair wiring).

    Drop-in replacement for :class:`~repro.vanatta.node.VanAttaNode` in
    the waveform simulator; only the reflection physics differs.
    """

    def reflect(
        self,
        incident: np.ndarray,
        modulation: np.ndarray,
        frequency_hz: float,
        theta_deg: float,
        sound_speed: float = 1500.0,
    ) -> np.ndarray:
        """Re-radiate with the self-reflecting (non-retrodirective) gain."""
        incident = np.asarray(incident, dtype=np.complex128)
        modulation = np.asarray(modulation, dtype=np.float64)
        if len(modulation) < len(incident):
            pad = modulation[-1] if len(modulation) else 0.0
            modulation = np.concatenate(
                [modulation, np.full(len(incident) - len(modulation), pad)]
            )
        modulation = modulation[: len(incident)]
        g_elem = self.array.element.element_gain(theta_deg)
        gain = conventional_monostatic_gain(
            self.array.positions_m,
            frequency_hz,
            theta_deg,
            sound_speed,
            element_gain=g_elem,
            line_gain=self.array.line_gain(),
        )
        return incident * modulation * gain
