"""Comparison systems for the head-to-head and ablation experiments.

* :mod:`repro.baselines.pab` — the prior state of the art: a
  single-element piezo-acoustic backscatter node (SIGCOMM'19-style),
  evaluated through the *same* channel and reader as VAB (E4).
* :mod:`repro.baselines.conventional_array` — an equal-aperture array
  *without* the Van Atta pairing: each element re-radiates its own signal,
  so the reflection is only coherent at broadside (the E1 comparison).
* :mod:`repro.baselines.mirror` — the ideal phase-conjugating reflector,
  an upper bound no passive hardware can beat.
"""

from repro.baselines.pab import pab_link_budget, pab_node
from repro.baselines.conventional_array import (
    ConventionalNode,
    conventional_monostatic_gain,
    conventional_monostatic_gain_db,
)
from repro.baselines.mirror import ideal_monostatic_gain_db

__all__ = [
    "pab_node",
    "pab_link_budget",
    "ConventionalNode",
    "conventional_monostatic_gain",
    "conventional_monostatic_gain_db",
    "ideal_monostatic_gain_db",
]
