"""The ideal phase-conjugating mirror (upper bound).

A hypothetical reflector that conjugates the incident field perfectly and
re-radiates it losslessly: field gain exactly ``N`` at every angle, with
no line loss, no element roll-off, no polarity error. Real Van Atta
hardware approaches this bound at broadside and trails it off-axis by the
element pattern — plotting both makes the implementation loss visible.
"""

from __future__ import annotations

import math


def ideal_monostatic_gain(num_elements: int) -> float:
    """Field gain of the ideal conjugating mirror (angle-independent)."""
    if num_elements < 1:
        raise ValueError("need at least one element")
    return float(num_elements)


def ideal_monostatic_gain_db(num_elements: int) -> float:
    """Ideal field gain in dB re one element."""
    return 20.0 * math.log10(ideal_monostatic_gain(num_elements))


def implementation_loss_db(measured_gain_db: float, num_elements: int) -> float:
    """How far a measured array gain sits below the ideal bound, dB."""
    return ideal_monostatic_gain_db(num_elements) - measured_gain_db
