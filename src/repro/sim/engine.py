"""The end-to-end waveform simulator.

One trial simulates a complete uplink frame exchange at sample level:

1. the reader transmits a CW carrier at its source level;
2. the carrier propagates through the multipath channel to the node;
3. the node keys its Van Atta connection with the frame's chip waveform,
   re-radiating toward the reader with the array's monostatic gain;
4. the reflection propagates back through the (animated) channel;
5. the hydrophone record adds carrier self-interference leakage, its
   post-cancellation residual, and Wenz-spectrum ambient noise;
6. the reader DSP chain demodulates and the trial is scored bit-by-bit.

Amplitudes are carried in absolute micro-pascals so the Wenz noise, the
source level, and the transducer models all agree on units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.acoustics.channel import ChannelResponse
from repro.analysis.shapes.vocab import IntShaped
from repro.acoustics.doppler import apply_doppler
from repro.dsp.noisegen import (
    colored_noise,
    colored_noise_batch,
    white_noise,
    white_noise_batch,
)
from repro.obs.probes import probe_signal, probe_unit_interval
from repro.phy.batch import BatchedReaderReceiver
from repro.phy.ber import ber as ber_of
from repro.phy.bits import bits_from_bytes
from repro.phy.frame import FrameConfig, build_frame, build_frames_batch
from repro.phy.receiver import DemodResult, ReaderReceiver
from repro.rng import fallback_rng
from repro.sim.cache import reader_node_response
from repro.sim.profiling import stage
from repro.sim.scenario import Scenario
from repro.vanatta.node import VanAttaNode
from repro.vanatta.switching import chips_to_waveform_batch

IDLE_CHIPS_BEFORE = 24
"""OFF-state chips simulated before the frame (noise for the detector)."""

IDLE_CHIPS_AFTER = 8
"""OFF-state chips after the frame (lets channel tails flush through)."""


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one simulated frame exchange.

    Attributes:
        detected: the preamble search succeeded.
        frame_ok: a frame parsed and passed CRC.
        ber: payload bit error rate (undetected frames score 0.5 — the
            receiver knows nothing, equivalent to guessing).
        snr_db: receiver eye-SNR estimate (-inf when undetected).
        range_m: reader-node slant range of the trial.
        incidence_deg: reader direction off the node broadside.
        payload_bits: number of payload bits scored.
    """

    detected: bool
    frame_ok: bool
    ber: float
    snr_db: float
    range_m: float
    incidence_deg: float
    payload_bits: int

    @property
    def success(self) -> bool:
        """Frame delivered intact."""
        return self.frame_ok


def simulate_trial(
    scenario: Scenario,
    node: Optional[VanAttaNode] = None,
    payload: Optional[bytes] = None,
    rng: Optional[np.random.Generator] = None,
    frame_config: Optional[FrameConfig] = None,
    receiver: Optional[ReaderReceiver] = None,
    si_leak_db: float = 40.0,
    si_suppression_db: Optional[float] = 130.0,
    system_noise_figure_db: float = 10.0,
    include_noise: bool = True,
    response: Optional[ChannelResponse] = None,
) -> TrialResult:
    """Simulate one uplink frame end to end.

    Args:
        scenario: environment and geometry.
        node: the backscatter node (default VAB node facing the reader).
        payload: payload bytes (default: 8 random bytes).
        rng: random generator. Campaigns must thread one derived from
            ``TrialCampaign.trial_seeds`` (the bit-identical parallel
            guarantee depends on it); omitted, draws come from the
            documented process-global stream
            (:func:`repro.rng.fallback_rng`).
        frame_config: PHY framing (FM0 default).
        receiver: reader receive chain (built from the scenario if omitted).
        si_leak_db: how far below the source level the static carrier
            leak sits at the hydrophone (removed by mean subtraction; it
            exercises stage 1 of the receiver).
        si_suppression_db: post-cancellation residual floor below the
            source level (enters as in-band noise); None = perfect.
        system_noise_figure_db: receiver noise figure applied on top of
            the ambient Wenz level (hydrophone preamp and ADC noise).
        include_noise: disable to get a noise-free functional check.
        response: precomputed reader->node multipath response. Campaigns
            hoist this out of the trial loop (it is a per-point
            invariant); omitted, it is fetched from the process-local
            channel cache.

    Returns:
        The scored trial.
    """
    if rng is None:
        rng = fallback_rng()
    if node is None:
        node = VanAttaNode()
    if frame_config is None:
        frame_config = FrameConfig()
    if payload is None:
        payload = bytes(rng.integers(0, 256, size=8, dtype=np.uint8))

    fs = scenario.fs
    sps = scenario.samples_per_chip
    theta = scenario.incidence_deg

    # --- node chip waveform (idle guard, frame, idle tail) ---
    chips = build_frame(node.node_id, payload, frame_config)
    idle = np.zeros(IDLE_CHIPS_BEFORE, dtype=np.int64)
    tail = np.zeros(IDLE_CHIPS_AFTER, dtype=np.int64)
    all_chips = np.concatenate([idle, chips, tail])
    modulation = node.modulation_waveform(all_chips, sps, fs)

    # --- propagate: reader -> node ---
    amplitude_tx = 10.0 ** (scenario.source_level_db / 20.0)
    n_samples = len(modulation)
    with stage("channel"):
        tx = np.full(n_samples, amplitude_tx, dtype=np.complex128)
        if response is None:
            response = reader_node_response(scenario)
        incident = response.apply(tx, fs, start_time_s=0.0)[:n_samples]

    # --- reflect off the modulated array ---
    with stage("reflect"):
        reflected = node.reflect(
            incident, modulation, scenario.carrier_hz, theta,
            scenario.water.sound_speed,
        )

    # --- propagate back: node -> reader (surface animation continues) ---
    with stage("channel"):
        received = response.apply(
            reflected, fs, start_time_s=response.direct_path.delay_s
        )[:n_samples]

        # Platform drift Doppler on the round trip (boat swing / current);
        # the backscatter round trip doubles the one-way shift.
        if scenario.platform_drift_mps:
            received = apply_doppler(
                received,
                fs,
                scenario.carrier_hz,
                2.0 * scenario.platform_drift_mps,
                scenario.water.sound_speed,
            )

    # --- reader-side impairments ---
    record = received
    leak = amplitude_tx * 10.0 ** (-si_leak_db / 20.0)
    record = record + leak
    if include_noise:
        with stage("noise"):
            ambient = colored_noise(
                n_samples, fs, scenario.noise.psd_db, scenario.carrier_hz, rng
            )
            record = record + ambient * 10.0 ** (system_noise_figure_db / 20.0)
            if si_suppression_db is not None:
                residual_level_db = scenario.source_level_db - si_suppression_db
                # Residual power spread across the chip bandwidth, then
                # scaled to the simulated bandwidth so in-band density is
                # right.
                in_band_power = (10.0 ** (residual_level_db / 20.0)) ** 2
                total_power = in_band_power * fs / scenario.chip_rate
                record = record + white_noise(n_samples, total_power, rng)

    # --- demodulate and score ---
    with stage("demod"):
        probe_signal(
            "sim.engine.record",
            record,
            level_limit_db=scenario.source_level_db,
            stage="noise" if include_noise else "reflect",
            stage_arrays=(
                ("channel", incident),
                ("reflect", reflected),
                ("channel", received),
            ),
        )
        if receiver is None:
            receiver = ReaderReceiver.for_scenario(scenario, frame_config)
        result = receiver.demodulate(record)
        sent_bits = bits_from_bytes(bytes(payload))
        return _score(result, sent_bits, scenario, theta)


def simulate_point_batch(
    scenario: Scenario,
    payloads: Sequence[bytes],
    rngs: Sequence[np.random.Generator],
    node: Optional[VanAttaNode] = None,
    frame_config: Optional[FrameConfig] = None,
    receiver: Optional[ReaderReceiver] = None,
    si_leak_db: float = 40.0,
    si_suppression_db: Optional[float] = 130.0,
    system_noise_figure_db: float = 10.0,
    include_noise: bool = True,
    response: Optional[ChannelResponse] = None,
) -> List[TrialResult]:
    """Simulate every trial of one operating point as one batch.

    The batched counterpart of :func:`simulate_trial`: all trials share
    the scenario, node, and channel response, so the whole point runs as
    a ``(trials, samples)`` block — one channel application, one noise
    draw shaped per trial stream, one batched demodulation
    (:class:`repro.phy.batch.BatchedReaderReceiver`). Per-trial results
    are bitwise-equal to looping :func:`simulate_trial` with the same
    payloads and generators: every stage either broadcasts a
    trial-invariant operand or reduces along the sample axis, and the
    per-trial noise streams draw in the same order as the scalar engine.

    Args:
        scenario: environment and geometry (shared by all trials).
        payloads: payload bytes per trial; all the same length.
        rngs: one generator per trial, already advanced past any draws
            the caller made (campaigns draw the payloads first, exactly
            like the per-trial loop).
        node: the backscatter node. Nodes that override
            ``modulation_waveform`` or ``reflect`` fall back to per-row
            calls of those methods, keeping subclass behaviour intact.
        frame_config: PHY framing (FM0 default).
        receiver: reader receive chain; must satisfy
            :func:`repro.phy.batch.batch_supported` (campaigns check
            this before dispatching here).
        si_leak_db: static carrier leak below source level.
        si_suppression_db: post-cancellation residual floor; None = perfect.
        system_noise_figure_db: receiver noise figure over ambient.
        include_noise: disable for noise-free functional checks.
        response: precomputed reader->node multipath response.

    Returns:
        The scored trials, in ``payloads`` order.
    """
    if len(payloads) != len(rngs):
        raise ValueError("payloads and rngs must have the same length")
    trials = len(payloads)
    if trials == 0:
        return []
    if node is None:
        node = VanAttaNode()
    if frame_config is None:
        frame_config = FrameConfig()

    fs = scenario.fs
    sps = scenario.samples_per_chip
    theta = scenario.incidence_deg

    # --- node chip waveforms (idle guard, frame, idle tail) ---
    frames = build_frames_batch(node.node_id, payloads, frame_config)
    idle = np.zeros((trials, IDLE_CHIPS_BEFORE), dtype=np.int64)
    tail = np.zeros((trials, IDLE_CHIPS_AFTER), dtype=np.int64)
    all_chips = np.concatenate([idle, frames, tail], axis=1)
    if type(node).modulation_waveform is VanAttaNode.modulation_waveform:
        modulation = chips_to_waveform_batch(all_chips, sps, node.switch, fs)
    else:
        modulation = np.stack(
            [node.modulation_waveform(row, sps, fs) for row in all_chips]
        )

    # --- propagate: reader -> node (trial-invariant: computed once) ---
    amplitude_tx = 10.0 ** (scenario.source_level_db / 20.0)
    n_samples = modulation.shape[1]
    with stage("channel"):
        tx = np.full(n_samples, amplitude_tx, dtype=np.complex128)
        if response is None:
            response = reader_node_response(scenario)
        incident = response.apply(tx, fs, start_time_s=0.0)[:n_samples]

    # --- reflect off the modulated array ---
    with stage("reflect"):
        if type(node) is VanAttaNode:
            reflected = node.reflect(
                incident, modulation, scenario.carrier_hz, theta,
                scenario.water.sound_speed,
            )
        else:
            reflected = np.stack(
                [
                    node.reflect(
                        incident, modulation[t], scenario.carrier_hz, theta,
                        scenario.water.sound_speed,
                    )
                    for t in range(trials)
                ]
            )

    # --- propagate back: node -> reader (surface animation continues) ---
    with stage("channel"):
        received = response.apply(
            reflected, fs, start_time_s=response.direct_path.delay_s
        )[..., :n_samples]
        if scenario.platform_drift_mps:
            received = apply_doppler(
                received,
                fs,
                scenario.carrier_hz,
                2.0 * scenario.platform_drift_mps,
                scenario.water.sound_speed,
            )

    # --- reader-side impairments ---
    record = received
    leak = amplitude_tx * 10.0 ** (-si_leak_db / 20.0)
    record = record + leak
    if include_noise:
        with stage("noise"):
            # Per-trial streams draw in the scalar engine's order
            # (colored bins first, then the residual-SI white draw), so
            # a trial's noise is bitwise-equal to its per-trial run.
            ambient = colored_noise_batch(
                n_samples, fs, scenario.noise.psd_db, scenario.carrier_hz, rngs
            )
            record = record + ambient * 10.0 ** (system_noise_figure_db / 20.0)
            if si_suppression_db is not None:
                residual_level_db = scenario.source_level_db - si_suppression_db
                in_band_power = (10.0 ** (residual_level_db / 20.0)) ** 2
                total_power = in_band_power * fs / scenario.chip_rate
                record = record + white_noise_batch(n_samples, total_power, rngs)

    # --- demodulate and score ---
    with stage("demod"):
        # One cheap reduction over the whole (trials, samples) block:
        # NaN/Inf anywhere and gross level errors are caught here, and
        # (on the failure path only) attributed to the first corrupt
        # stage output.
        probe_signal(
            "sim.engine.record",
            record,
            level_limit_db=scenario.source_level_db,
            stage="noise" if include_noise else "reflect",
            stage_arrays=(
                ("channel", incident),
                ("reflect", reflected),
                ("channel", received),
            ),
        )
        if receiver is None:
            receiver = ReaderReceiver.for_scenario(scenario, frame_config)
        demods = BatchedReaderReceiver(receiver).demodulate_batch(record)
        return [
            _score(
                demod, bits_from_bytes(bytes(payload)), scenario, theta
            )
            for demod, payload in zip(demods, payloads)
        ]


def _score(
    result: DemodResult,
    sent_bits: IntShaped["payload_bits"],
    scenario: Scenario,
    theta: float,
) -> TrialResult:
    """Turn a demod result into a scored trial."""
    if result.detection is None:
        return TrialResult(
            detected=False,
            frame_ok=False,
            ber=0.5,
            snr_db=-math.inf,
            range_m=scenario.range_m,
            incidence_deg=theta,
            payload_bits=len(sent_bits),
        )
    if result.frame is None:
        received_bits = np.zeros(0, dtype=np.int64)
    else:
        received_bits = bits_from_bytes(result.frame.payload)
    trial_ber = ber_of(sent_bits, received_bits) if len(sent_bits) else 0.0
    probe_unit_interval("sim.engine.ber", trial_ber, stage="demod")
    return TrialResult(
        detected=True,
        frame_ok=bool(result.frame is not None and result.frame.crc_ok),
        ber=min(trial_ber, 1.0),
        snr_db=result.snr_db,
        range_m=scenario.range_m,
        incidence_deg=theta,
        payload_bits=len(sent_bits),
    )
