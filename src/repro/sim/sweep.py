"""Parameter-sweep helpers for the standard experiment axes."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sim.scenario import Scenario


def sweep_range(
    base: Scenario, ranges_m: Sequence[float]
) -> List[Scenario]:
    """Scenarios with the node stepped through a list of ranges."""
    return [base.at_range(float(r)) for r in ranges_m]


def sweep_angles(
    base: Scenario, offsets_deg: Sequence[float]
) -> List[Scenario]:
    """Scenarios with the node rotated through orientation offsets."""
    return [base.with_node_rotation(float(a)) for a in offsets_deg]


def sweep_grid(
    base: Scenario,
    ranges_m: Sequence[float],
    offsets_deg: Sequence[float],
) -> List[List[Scenario]]:
    """The full range x orientation grid, one scenario row per offset.

    This is the shape of the paper's headline evaluation (BER vs range
    at each node orientation) and the natural unit of work for the
    parallel campaign runner: flatten the rows into one campaign and
    every grid cell becomes an independent operating point.
    """
    rows: List[List[Scenario]] = []
    for offset in offsets_deg:
        row = [
            s.with_node_rotation(float(offset))
            for s in sweep_range(base, ranges_m)
        ]
        rows.append(row)
    return rows


def log_ranges(
    start_m: float, stop_m: float, points: int
) -> np.ndarray:
    """Logarithmically spaced ranges (the natural axis for range sweeps)."""
    if start_m <= 0 or stop_m <= start_m:
        raise ValueError("need 0 < start < stop")
    if points < 2:
        raise ValueError("need at least two points")
    return np.logspace(np.log10(start_m), np.log10(stop_m), points)


def linear_angles(
    max_offset_deg: float = 60.0, step_deg: float = 15.0
) -> np.ndarray:
    """Symmetric orientation offsets: -max..+max in fixed steps."""
    if max_offset_deg <= 0 or step_deg <= 0:
        raise ValueError("offsets must be positive")
    n = int(max_offset_deg / step_deg)
    return np.arange(-n, n + 1) * step_deg
