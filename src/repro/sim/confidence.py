"""Statistical rigour for Monte-Carlo campaigns.

A BER measured from N trials is an estimate, and near the cliff the
uncertainty is the whole story ("0 errors in 10 frames" is not BER 0).
This module provides the standard tools:

* Wilson score intervals for proportions (frame success, detection) —
  well-behaved at 0/N and N/N where the naive normal interval collapses;
* the rule-of-three upper bound for zero-error BER measurements;
* trial-count planning: how many trials pin a BER at a target precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.phy.ber import q_inverse


@dataclass(frozen=True)
class ProportionEstimate:
    """A proportion with its confidence interval.

    Attributes:
        value: the point estimate k/n.
        lower: interval lower bound.
        upper: interval upper bound.
        successes: k.
        trials: n.
        confidence: the confidence level used.
    """

    value: float
    lower: float
    upper: float
    successes: int
    trials: int
    confidence: float

    @property
    def width(self) -> float:
        """Interval width."""
        return self.upper - self.lower

    def contains(self, p: float) -> bool:
        """True when ``p`` lies inside the interval."""
        return self.lower <= p <= self.upper


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ProportionEstimate:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: observed successes k.
        trials: trials n (> 0).
        confidence: confidence level in (0, 1).

    Returns:
        The estimate with bounds clamped to [0, 1].
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in 0..trials")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = q_inverse((1.0 - confidence) / 2.0)
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    # Clamp to [0, 1] and guarantee the point estimate lies inside
    # (floating point can land centre+half a few ulp below p at p=1).
    return ProportionEstimate(
        value=p,
        lower=max(min(centre - half, p), 0.0),
        upper=min(max(centre + half, p), 1.0),
        successes=successes,
        trials=trials,
        confidence=confidence,
    )


def zero_error_ber_bound(bits_observed: int, confidence: float = 0.95) -> float:
    """Upper BER bound after observing zero errors ("rule of three").

    ``BER <= -ln(1 - confidence) / n`` — at 95% this is the familiar
    ``3 / n``. The honest caption for every "BER = 0" table cell.
    """
    if bits_observed <= 0:
        raise ValueError("need at least one observed bit")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return -math.log(1.0 - confidence) / bits_observed


def trials_for_ber_confidence(
    target_ber: float, relative_precision: float = 0.5, confidence: float = 0.95
) -> int:
    """Bits needed to estimate a BER within a relative precision.

    Normal approximation of the binomial: ``n ~ z^2 (1-p) / (p eps^2)``.
    Verifying BER 1e-3 within +-50% at 95% needs ~15k bits — the reason
    the paper ran 1,500+ trials.
    """
    if not 0.0 < target_ber < 1.0:
        raise ValueError("target BER must be in (0, 1)")
    if relative_precision <= 0:
        raise ValueError("precision must be positive")
    z = q_inverse((1.0 - confidence) / 2.0)
    n = z * z * (1.0 - target_ber) / (target_ber * relative_precision**2)
    return int(math.ceil(n))
