"""Seeded Monte-Carlo campaigns over the waveform simulator.

A campaign fixes everything except the RNG and runs ``n`` independent
trials per operating point. Seeding uses ``numpy.random.SeedSequence``
spawning, so campaigns are reproducible and every trial draws independent
noise/payloads — the same discipline the paper's 1,500-trial evaluation
needs to make BER-vs-range curves trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.obs.metrics import counter
from repro.obs.probes import probe_invariant, probe_mode
from repro.obs.spans import span
from repro.phy.batch import batch_supported
from repro.phy.frame import FrameConfig
from repro.phy.receiver import ReaderReceiver
from repro.sim.cache import reader_node_response
from repro.sim.engine import TrialResult, simulate_point_batch, simulate_trial
from repro.sim.results import BERPoint, CampaignResult
from repro.sim.scenario import Scenario
from repro.vanatta.node import VanAttaNode

BATCHED_TRIALS_COUNTER = counter(
    "repro.sim.trials.batched_trials",
    "trials run through the batched point engine",
)
FALLBACK_TRIALS_COUNTER = counter(
    "repro.sim.trials.fallback_trials",
    "trials run through the per-trial fallback loop",
)


def _probe_trial_accounting(results: Sequence[TrialResult]) -> None:
    """Runtime consistency probe over one slice of scored trials.

    A frame cannot pass CRC without detection, an undetected trial
    scores exactly BER 0.5 (the guessing convention), and every BER
    lies in [0, 1]. One pass per chunk — negligible next to the trials
    themselves.
    """
    if probe_mode() == "off" or not results:
        return
    bad = [
        r
        for r in results
        if (r.frame_ok and not r.detected)
        or (not r.detected and r.ber != 0.5)
        or not (0.0 <= r.ber <= 1.0)
    ]
    probe_invariant(
        "sim.trials.accounting",
        not bad,
        f"{len(bad)}/{len(results)} trials violate frame/BER accounting",
        stage="demod",
    )


@dataclass
class TrialCampaign:
    """Configuration for a Monte-Carlo campaign.

    Attributes:
        trials_per_point: independent trials per operating point.
        seed: master seed for the campaign.
        payload_bytes: payload size per frame.
        frame_config: PHY framing.
        node_factory: builds the node for each point (lets sweeps vary
            array size or switch design per point).
        si_suppression_db: reader residual-SI floor (see the engine).
        receiver_factory: builds the reader receive chain per scenario;
            None uses the engine's default (lets studies switch on the
            equaliser, rake, or custom thresholds).
        engine: trial execution engine. ``"auto"`` (default) runs each
            point as one batched ``(trials, samples)`` computation when
            the receive chain supports it
            (:func:`repro.phy.batch.batch_supported`) and no custom
            ``receiver_factory`` is set, falling back to the per-trial
            loop otherwise; ``"batched"`` requires the batched path
            (raises if the receiver cannot run on it); ``"per-trial"``
            forces the scalar loop. Both engines are bit-identical, so
            the choice is purely a speed/compatibility knob.
    """

    trials_per_point: int = 25
    seed: int = 2023
    payload_bytes: int = 8
    frame_config: FrameConfig = field(default_factory=FrameConfig)
    node_factory: Callable[[], VanAttaNode] = VanAttaNode
    si_suppression_db: Optional[float] = 130.0
    receiver_factory: Optional[Callable[[Scenario], "object"]] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "batched", "per-trial"):
            raise ValueError(
                "engine must be 'auto', 'batched', or 'per-trial'"
            )

    def uses_batched_engine(self) -> bool:
        """Whether points will (likely) run on the batched engine.

        A scheduling hint for :mod:`repro.sim.parallel` — batched points
        should be sharded whole, not split into per-trial chunks. For
        ``engine="auto"`` this predicts from the campaign alone (custom
        ``receiver_factory`` means per-trial); the authoritative check
        against the constructed receiver happens in :meth:`run_trials`.
        """
        if self.engine == "per-trial":
            return False
        if self.engine == "batched":
            return True
        return self.receiver_factory is None

    def trial_seeds(self, point_index: int) -> List[np.random.SeedSequence]:
        """The spawned per-trial seed sequences for one operating point.

        Centralised so every execution strategy — the serial loop below,
        the process-pool runner in :mod:`repro.sim.parallel`, or a
        sliced re-run of a few trials — derives the *same* per-trial
        entropy and stays bit-identical.
        """
        seq = np.random.SeedSequence(entropy=(self.seed, point_index))
        return seq.spawn(self.trials_per_point)

    def run_trials(
        self,
        scenario: Scenario,
        point_index: int = 0,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> List[TrialResult]:
        """Run a contiguous slice of a point's trials.

        Per-point invariants (the node, the receive chain, the traced
        multipath response) are constructed once here and passed down:
        the seed engine rebuilt all three inside every trial, which is
        where most of a campaign's non-noise time went.
        """
        # Generator derivation is hoisted out of the traced per-trial
        # loop: every trial's stream exists before the first trial runs,
        # which keeps the seeding contract in one visible place (VAB002).
        generators = [
            np.random.default_rng(child)
            for child in self.trial_seeds(point_index)[start:stop]
        ]
        node = self.node_factory()
        receiver = (
            self.receiver_factory(scenario)
            if self.receiver_factory is not None
            else ReaderReceiver.for_scenario(scenario, self.frame_config)
        )
        response = reader_node_response(scenario)

        if self.engine == "batched" and not batch_supported(receiver):
            raise ValueError(
                "engine='batched' needs a receive chain the batched "
                "kernel supports (stock ReaderReceiver, no rake/"
                "equaliser/timing search); use engine='auto' to fall "
                "back automatically"
            )
        use_batched = self.engine == "batched" or (
            self.engine == "auto"
            and self.receiver_factory is None
            and batch_supported(receiver)
        )
        if use_batched:
            # Whole-point batched path: payloads draw first from each
            # trial's stream (same order as the loop below), then the
            # batch engine advances every stream through its noise
            # draws.
            with span("batch"):
                payloads = [
                    bytes(
                        rng.integers(
                            0, 256, size=self.payload_bytes, dtype=np.uint8
                        )
                    )
                    for rng in generators
                ]
                results = simulate_point_batch(
                    scenario,
                    payloads,
                    generators,
                    node=node,
                    frame_config=self.frame_config,
                    receiver=receiver,
                    si_suppression_db=self.si_suppression_db,
                    response=response,
                )
            BATCHED_TRIALS_COUNTER.inc(len(results))
            _probe_trial_accounting(results)
            return results

        # Per-trial fallback: custom receive chains (factories often
        # enable rake/equaliser extensions or subclass the receiver) and
        # campaigns pinned to engine="per-trial".
        FALLBACK_TRIALS_COUNTER.inc(len(generators))
        results: List[TrialResult] = []
        for rng in generators:
            with span("trial"):
                payload = bytes(
                    rng.integers(0, 256, size=self.payload_bytes, dtype=np.uint8)
                )
                results.append(
                    simulate_trial(
                        scenario,
                        node=node,
                        payload=payload,
                        rng=rng,
                        frame_config=self.frame_config,
                        receiver=receiver,
                        si_suppression_db=self.si_suppression_db,
                        response=response,
                    )
                )
        _probe_trial_accounting(results)
        return results

    def run_point(self, scenario: Scenario, point_index: int = 0) -> BERPoint:
        """Run all trials at one operating point and aggregate."""
        with span("point"):
            return BERPoint.from_trials(self.run_trials(scenario, point_index))


def run_campaign(
    scenarios: Sequence[Scenario],
    campaign: Optional[TrialCampaign] = None,
    label: str = "campaign",
) -> CampaignResult:
    """Run a campaign across a sequence of operating points.

    Args:
        scenarios: one scenario per operating point (e.g. a range sweep).
        campaign: campaign configuration (defaults if omitted).
        label: name recorded on the result.

    Returns:
        Aggregated results, one :class:`BERPoint` per scenario, in order.
    """
    if campaign is None:
        campaign = TrialCampaign()
    out = CampaignResult(label=label)
    with span("campaign"):
        for i, scenario in enumerate(scenarios):
            out.add(campaign.run_point(scenario, point_index=i))
    return out
