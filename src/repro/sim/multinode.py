"""Multi-node waveform simulation: what collisions actually look like.

The MAC layer assumes collided slots are unrecoverable and staggered
slots are clean. This module checks that assumption at sample level: all
nodes illuminated by the same carrier reflect simultaneously, the
hydrophone sums their returns (each through its own channel), and the
reader demodulates the superposition.

Findings the tests pin down: same-slot contenders partially
*self-stagger* — their round-trip delays differ, so the chip streams
interleave rather than align — making the outcome a geometry/phase
lottery of losses and captures (hence the MAC retries rather than
assumes); one node per slot decodes cleanly even with neighbours
present-but-silent; and a strong near node reliably captures over a
weak far one (the capture effect ALOHA designs quietly rely on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dsp.noisegen import colored_noise
from repro.phy.frame import FrameConfig, build_frame
from repro.phy.receiver import ReaderReceiver
from repro.rng import fallback_rng
from repro.sim.cache import cached_between
from repro.sim.engine import IDLE_CHIPS_AFTER, IDLE_CHIPS_BEFORE
from repro.sim.scenario import Scenario
from repro.vanatta.node import VanAttaNode


@dataclass(frozen=True)
class NodePlacement:
    """One participant in a multi-node exchange.

    Attributes:
        node: the backscatter node (its node_id labels the frame).
        range_m: down-range distance from the reader.
        payload: frame payload.
        start_chip: chip offset at which this node begins its frame
            (slot boundaries in chips; nodes in different slots use
            offsets at least a frame apart).
        responds: False models an inventoried/sleeping node.
    """

    node: VanAttaNode
    range_m: float
    payload: bytes = b"hello"
    start_chip: int = 0
    responds: bool = True


@dataclass(frozen=True)
class MultiNodeResult:
    """Outcome of a multi-node slot.

    Attributes:
        decoded_node_id: id of the frame the reader recovered (None when
            nothing decoded).
        decoded_payload: its payload.
        crc_ok: CRC state of the decoded frame.
        num_transmitting: how many nodes actually reflected.
    """

    decoded_node_id: Optional[int]
    decoded_payload: Optional[bytes]
    crc_ok: bool
    num_transmitting: int


def simulate_slot(
    scenario: Scenario,
    placements: Sequence[NodePlacement],
    rng: Optional[np.random.Generator] = None,
    frame_config: Optional[FrameConfig] = None,
    si_leak_db: float = 40.0,
    system_noise_figure_db: float = 10.0,
    include_noise: bool = True,
    receiver: Optional[ReaderReceiver] = None,
) -> MultiNodeResult:
    """Simulate one listening window with several nodes in the water.

    All responding nodes reflect the same carrier; the hydrophone record
    is the sum of their returns plus leak and ambient noise. Each node's
    channel response comes from the process-local cache, so Monte-Carlo
    sweeps over contention patterns pay for ray tracing once per
    placement geometry, not once per slot.

    Args:
        scenario: environment; each placement overrides the node range.
        placements: the nodes and their slot offsets.
        rng: noise generator; thread one from campaign seeds, or the
            documented process-global fallback stream is used
            (:func:`repro.rng.fallback_rng`).
        frame_config: PHY framing shared by all nodes.
        si_leak_db: static carrier leak below the source level.
        system_noise_figure_db: receiver noise figure over ambient.
        include_noise: disable for deterministic functional checks.
        receiver: reader receive chain; campaigns hoist one across slots
            (built per call when omitted).

    Returns:
        What the reader decoded from the superposition.
    """
    if not placements:
        raise ValueError("need at least one placement")
    if rng is None:
        rng = fallback_rng()
    if frame_config is None:
        frame_config = FrameConfig()

    fs = scenario.fs
    sps = scenario.samples_per_chip
    amplitude_tx = 10.0 ** (scenario.source_level_db / 20.0)

    # Window long enough for the latest frame plus guards plus the
    # slowest round trip (nodes at different ranges land their frames at
    # genuinely different times — the slot-guard problem the MAC sizes).
    longest = max(
        p.start_chip + frame_config.frame_chips(len(p.payload))
        for p in placements
    )
    max_rt_s = 2.0 * max(p.range_m for p in placements) / scenario.water.sound_speed
    total_chips = IDLE_CHIPS_BEFORE + longest + IDLE_CHIPS_AFTER
    n_samples = total_chips * sps + int(np.ceil(max_rt_s * fs)) + sps

    record = np.full(n_samples, amplitude_tx * 10.0 ** (-si_leak_db / 20.0),
                     dtype=np.complex128)
    transmitting = 0
    for p in placements:
        if not p.responds:
            continue
        transmitting += 1
        sc = scenario.at_range(p.range_m)
        frame_chips = build_frame(p.node.node_id, p.payload, frame_config)
        chips = np.zeros(total_chips, dtype=np.int64)
        start = IDLE_CHIPS_BEFORE + p.start_chip
        chips[start : start + len(frame_chips)] = frame_chips
        modulation = p.node.modulation_waveform(chips, sps, fs)

        response = cached_between(
            sc.channel(), sc.reader.position, sc.node.position
        )
        # The node hears the query one propagation delay late; its
        # reflection takes another trip back: its frame lands a full
        # round trip after its own slot clock.
        one_way = int(round(response.direct_path.delay_s * fs))
        modulation = np.concatenate([np.zeros(one_way), modulation])

        tx = np.full(len(modulation), amplitude_tx, dtype=np.complex128)
        incident = response.apply(tx, fs)[: len(modulation)]
        reflected = p.node.reflect(
            incident, modulation, sc.carrier_hz, sc.incidence_deg,
            sc.water.sound_speed,
        )
        echo = response.apply(reflected, fs, include_delay=True)[:n_samples]
        record[: len(echo)] = record[: len(echo)] + echo

    if include_noise:
        ambient = colored_noise(
            n_samples, fs, scenario.noise.psd_db, scenario.carrier_hz, rng
        )
        record = record + ambient * 10.0 ** (system_noise_figure_db / 20.0)

    if receiver is None:
        receiver = ReaderReceiver.for_scenario(scenario, frame_config)
    result = receiver.demodulate(record)
    if result.frame is None:
        return MultiNodeResult(None, None, False, transmitting)
    return MultiNodeResult(
        decoded_node_id=result.frame.node_id,
        decoded_payload=result.frame.payload if result.frame.crc_ok else None,
        crc_ok=result.frame.crc_ok,
        num_transmitting=transmitting,
    )
