"""Deployment scenarios: everything an experiment needs in one object.

The two presets mirror the paper's testbeds:

* :meth:`Scenario.river` — the Charles-River-style shallow fresh-water
  site: calm surface, 4 m water column, moderate urban noise.
* :meth:`Scenario.ocean` — the coastal Atlantic site: deeper column,
  wind-driven sea state, salt-water absorption, moving surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.constants import WaterProperties
from repro.acoustics.noise import NoiseConditions
from repro.acoustics.spreading import SPHERICAL_EXPONENT
from repro.acoustics.surface import SeaSurface
from repro.geometry.placement import Pose, incidence_angle_deg
from repro.geometry.vec3 import Vec3


@dataclass(frozen=True)
class Scenario:
    """A complete experiment environment.

    Attributes:
        water: water-column properties.
        surface: sea-surface state.
        noise: ambient-noise conditions.
        carrier_hz: reader carrier frequency.
        source_level_db: reader source level, dB re 1 uPa @ 1 m.
        chip_rate: uplink chip rate, chips/s.
        samples_per_chip: waveform-simulator oversampling.
        spreading_exponent: geometric spreading exponent for the site.
        reader: reader pose.
        node: node pose (single-node experiments).
        max_bounces: multipath bounce budget. The river/ocean presets use
            0 (free-field reference condition — the geometry the paper's
            link-budget analysis assumes and the calibration targets);
            the multipath-robustness experiment (E11) raises it.
        platform_drift_mps: radial drift of the reader platform (boat
            swing / current); shows up as Doppler on the round trip.
        name: label used in benchmark tables.
    """

    water: WaterProperties = field(default_factory=WaterProperties.river)
    surface: SeaSurface = field(default_factory=SeaSurface.calm)
    noise: NoiseConditions = field(default_factory=NoiseConditions.quiet_river)
    carrier_hz: float = 18_500.0
    source_level_db: float = 185.0
    chip_rate: float = 2_000.0
    samples_per_chip: int = 8
    spreading_exponent: float = SPHERICAL_EXPONENT
    reader: Pose = field(default_factory=lambda: Pose(Vec3(0.0, 0.0, 2.0)))
    node: Pose = field(default_factory=lambda: Pose(Vec3(50.0, 0.0, 2.0), 180.0))
    max_bounces: int = 2
    platform_drift_mps: float = 0.0
    name: str = "custom"

    # -- presets ---------------------------------------------------------------

    @staticmethod
    def river(range_m: float = 50.0, node_heading_offset_deg: float = 0.0) -> "Scenario":
        """Charles-River-style site with the node ``range_m`` down-range."""
        depth = 2.0
        return Scenario(
            water=WaterProperties.river(depth_m=4.0),
            surface=SeaSurface.calm(),
            noise=NoiseConditions.quiet_river(),
            reader=Pose(Vec3(0.0, 0.0, depth)),
            node=Pose(Vec3(range_m, 0.0, depth), 180.0 + node_heading_offset_deg),
            spreading_exponent=SPHERICAL_EXPONENT,
            max_bounces=0,
            platform_drift_mps=0.02,
            name="river",
        )

    @staticmethod
    def ocean(
        range_m: float = 50.0,
        sea_state: int = 3,
        node_heading_offset_deg: float = 0.0,
    ) -> "Scenario":
        """Coastal-ocean site at a WMO sea state."""
        depth = 6.0
        return Scenario(
            water=WaterProperties.ocean(depth_m=15.0),
            surface=SeaSurface.from_sea_state(sea_state),
            noise=NoiseConditions.coastal_ocean(sea_state),
            reader=Pose(Vec3(0.0, 0.0, depth)),
            node=Pose(Vec3(range_m, 0.0, depth), 180.0 + node_heading_offset_deg),
            spreading_exponent=SPHERICAL_EXPONENT,
            max_bounces=0,
            platform_drift_mps=0.15,
            name=f"ocean-ss{sea_state}",
        )

    # -- derived -----------------------------------------------------------------

    @property
    def fs(self) -> float:
        """Waveform-simulator sample rate, Hz."""
        return self.chip_rate * self.samples_per_chip

    @property
    def range_m(self) -> float:
        """Reader-to-node slant range, metres."""
        return self.reader.position.distance_to(self.node.position)

    @property
    def incidence_deg(self) -> float:
        """Angle of the reader direction off the node's broadside."""
        return incidence_angle_deg(self.node, self.reader.position)

    def channel(self, direct_only: bool = False) -> AcousticChannel:
        """The acoustic channel factory for this site."""
        return AcousticChannel(
            carrier_hz=self.carrier_hz,
            water=self.water,
            surface=self.surface,
            max_bounces=0 if direct_only else self.max_bounces,
            spreading_exponent=self.spreading_exponent,
        )

    def at_range(self, range_m: float) -> "Scenario":
        """Copy with the node moved to a new down-range distance."""
        if range_m <= 0:
            raise ValueError("range must be positive")
        new_node = Pose(
            Vec3(range_m, self.node.position.y, self.node.position.z),
            self.node.heading_deg,
            self.node.tilt_deg,
        )
        return replace(self, node=new_node)

    def with_node_rotation(self, offset_deg: float) -> "Scenario":
        """Copy with the node rotated away from facing the reader."""
        base = Pose(self.node.position, 180.0, self.node.tilt_deg)
        return replace(self, node=base.rotated(offset_deg))

    def carrier_wavelength(self) -> float:
        """Carrier wavelength at this site, metres."""
        return self.water.sound_speed / self.carrier_hz
