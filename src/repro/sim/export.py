"""Saving and loading campaign results and run manifests.

Benchmarks print their tables, but longitudinal studies (comparing runs
across code versions, aggregating trials across machines) need results on
disk. Plain JSON, schema-versioned, round-trip tested. Two record kinds:

* **Campaign results** (:func:`save_campaign` / :func:`load_campaign`) —
  just the aggregated numbers.
* **Run manifests** (:func:`save_manifest` / :func:`load_manifest`) —
  the full observability record of a run (seed, scenario snapshots,
  package version, span timings, metrics, results, event-log pointer);
  see :class:`repro.obs.manifest.RunManifest`. The manifest codec
  itself lives in :mod:`repro.obs.manifest` (the ledger needs it below
  the sim layer) and is re-exported here unchanged.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from repro.obs.manifest import (  # noqa: F401 - re-exported API
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    load_manifest,
    manifest_from_dict,
    manifest_to_dict,
    save_manifest,
)
from repro.sim.results import BERPoint, CampaignResult

SCHEMA_VERSION = 1


def campaign_to_dict(result: CampaignResult) -> dict:
    """Serialise a campaign to a plain dict (JSON-safe)."""
    return {
        "schema": SCHEMA_VERSION,
        "label": result.label,
        "points": [
            {
                "range_m": p.range_m,
                "incidence_deg": p.incidence_deg,
                "trials": p.trials,
                "ber": p.ber,
                "frame_success_rate": p.frame_success_rate,
                "detection_rate": p.detection_rate,
                # -inf is not valid JSON; use None on the wire.
                "mean_snr_db": (
                    p.mean_snr_db if math.isfinite(p.mean_snr_db) else None
                ),
            }
            for p in result.points
        ],
    }


def campaign_from_dict(data: dict) -> CampaignResult:
    """Rebuild a campaign from its serialised form."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {data.get('schema')!r}; "
            f"this build reads {SCHEMA_VERSION}"
        )
    result = CampaignResult(label=data["label"])
    for p in data["points"]:
        snr = p["mean_snr_db"]
        result.add(
            BERPoint(
                range_m=float(p["range_m"]),
                incidence_deg=float(p["incidence_deg"]),
                trials=int(p["trials"]),
                ber=float(p["ber"]),
                frame_success_rate=float(p["frame_success_rate"]),
                detection_rate=float(p["detection_rate"]),
                mean_snr_db=float(snr) if snr is not None else -math.inf,
            )
        )
    return result


def save_campaign(result: CampaignResult, path: Union[str, Path]) -> None:
    """Write a campaign to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(campaign_to_dict(result), indent=2))


def load_campaign(path: Union[str, Path]) -> CampaignResult:
    """Read a campaign from a JSON file."""
    return campaign_from_dict(json.loads(Path(path).read_text()))


