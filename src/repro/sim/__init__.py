"""End-to-end simulation: scenarios, link budgets, waveform engine, trials.

Two complementary fidelities:

* :mod:`repro.sim.linkbudget` — analytic sonar-equation budget. Instant,
  used for range sweeps, scaling studies, and anywhere a closed form is
  trustworthy.
* :mod:`repro.sim.engine` — full waveform simulation (carrier → multipath
  channel → modulated Van Atta reflection → channel → reader DSP). Used
  for BER-vs-range campaigns, where sync, phase tracking, and multipath
  actually bite.

:mod:`repro.sim.trials` runs seeded Monte-Carlo campaigns over either,
and :mod:`repro.sim.parallel` fans their trials out across worker
processes (bit-identical to the serial runner) with per-point invariants
memoized by :mod:`repro.sim.cache`.
"""

from repro.sim.scenario import Scenario
from repro.sim.linkbudget import LinkBudget
from repro.sim.engine import TrialResult, simulate_trial
from repro.sim.downlink import DownlinkResult, simulate_downlink
from repro.sim.multinode import MultiNodeResult, NodePlacement, simulate_slot
from repro.sim.trials import TrialCampaign, run_campaign
from repro.sim.parallel import (
    run_campaign_parallel,
    run_observed_campaign,
    default_workers,
)
from repro.sim.cache import (
    channel_cache_info,
    clear_channel_cache,
    reader_node_response,
    set_channel_cache_enabled,
)
from repro.sim.profiling import StageTimings, collect_stage_timings
from repro.sim.sweep import sweep_range, sweep_angles, sweep_grid
from repro.sim.results import BERPoint, CampaignResult
from repro.sim.confidence import (
    ProportionEstimate,
    trials_for_ber_confidence,
    wilson_interval,
    zero_error_ber_bound,
)
from repro.sim.export import (
    load_campaign,
    load_manifest,
    save_campaign,
    save_manifest,
)

__all__ = [
    "Scenario",
    "LinkBudget",
    "TrialResult",
    "simulate_trial",
    "DownlinkResult",
    "simulate_downlink",
    "MultiNodeResult",
    "NodePlacement",
    "simulate_slot",
    "TrialCampaign",
    "run_campaign",
    "run_campaign_parallel",
    "run_observed_campaign",
    "default_workers",
    "reader_node_response",
    "clear_channel_cache",
    "channel_cache_info",
    "set_channel_cache_enabled",
    "StageTimings",
    "collect_stage_timings",
    "sweep_range",
    "sweep_angles",
    "sweep_grid",
    "BERPoint",
    "CampaignResult",
    "ProportionEstimate",
    "wilson_interval",
    "zero_error_ber_bound",
    "trials_for_ber_confidence",
    "load_campaign",
    "save_campaign",
    "load_manifest",
    "save_manifest",
]
