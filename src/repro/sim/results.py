"""Result containers for Monte-Carlo campaigns."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.sim.engine import TrialResult


@dataclass(frozen=True)
class BERPoint:
    """Aggregated trials at one operating point.

    Attributes:
        range_m: slant range of the point.
        incidence_deg: node orientation of the point.
        trials: number of trials aggregated.
        ber: mean payload BER across trials.
        frame_success_rate: fraction of trials delivering an intact frame.
        detection_rate: fraction of trials with preamble lock.
        mean_snr_db: mean eye SNR over detected trials (-inf if none).
    """

    range_m: float
    incidence_deg: float
    trials: int
    ber: float
    frame_success_rate: float
    detection_rate: float
    mean_snr_db: float

    @staticmethod
    def from_trials(results: Sequence[TrialResult]) -> "BERPoint":
        """Aggregate a set of trials at one operating point."""
        if not results:
            raise ValueError("need at least one trial")
        n = len(results)
        detected = [r for r in results if r.detected]
        snrs = [r.snr_db for r in detected if math.isfinite(r.snr_db)]
        return BERPoint(
            range_m=results[0].range_m,
            incidence_deg=results[0].incidence_deg,
            trials=n,
            ber=sum(r.ber for r in results) / n,
            frame_success_rate=sum(1 for r in results if r.frame_ok) / n,
            detection_rate=len(detected) / n,
            mean_snr_db=(sum(snrs) / len(snrs)) if snrs else -math.inf,
        )


@dataclass
class CampaignResult:
    """An ordered collection of operating points (one sweep)."""

    label: str
    points: List[BERPoint] = field(default_factory=list)

    def add(self, point: BERPoint) -> None:
        """Append an operating point."""
        self.points.append(point)

    @property
    def total_trials(self) -> int:
        """Trials across all points."""
        return sum(p.trials for p in self.points)

    def max_range_at_ber(self, target_ber: float = 1e-3) -> float:
        """Largest swept range whose measured BER meets the target.

        Returns 0.0 when no point meets it. Points must have been swept
        in increasing range for the answer to be meaningful.
        """
        best = 0.0
        for p in self.points:
            if p.ber <= target_ber and p.range_m > best:
                best = p.range_m
        return best

    def as_rows(self) -> List[dict]:
        """Plain-dict rows for printing benchmark tables."""
        return [
            {
                "range_m": p.range_m,
                "incidence_deg": p.incidence_deg,
                "trials": p.trials,
                "ber": p.ber,
                "frame_success_rate": p.frame_success_rate,
                "detection_rate": p.detection_rate,
                "mean_snr_db": p.mean_snr_db,
            }
            for p in self.points
        ]
