"""Waveform-level downlink simulation: command delivery to the node.

The node's downlink receiver is an envelope detector and a comparator —
no mixer, no ADC worth the name. This module pushes a PIE-gated carrier
through the actual channel and demodulates it the way the node's
analog front end does:

1. reader transmits the PIE envelope on the carrier at source level;
2. the multipath channel smears the envelope (delay-spread ISI is the
   real enemy of PIE underwater — a surface echo fills in the OFF gaps);
3. the node sees |pressure| + ambient noise, low-pass filters it with its
   detector time constant, and slices at a threshold;
4. the recovered bits go to the command decoder / FSM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.filters import fir_filter, lowpass_fir
from repro.dsp.noisegen import colored_noise
from repro.link.commands import Command, decode_command, encode_command
from repro.phy.downlink import PIEConfig, pie_decode, pie_encode
from repro.rng import fallback_rng
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class DownlinkResult:
    """Outcome of one simulated command delivery.

    Attributes:
        sent: the command transmitted.
        decoded: what the node's decoder produced (None = lost).
        delivered: True when decoded equals sent.
        incident_level_db: carrier level at the node.
        envelope_contrast: ON/OFF level ratio the comparator saw.
    """

    sent: Command
    decoded: Optional[Command]
    delivered: bool
    incident_level_db: float
    envelope_contrast: float


def simulate_downlink(
    scenario: Scenario,
    command: Command,
    pie: Optional[PIEConfig] = None,
    rng: Optional[np.random.Generator] = None,
    detector_bandwidth_hz: float = 400.0,
    include_noise: bool = True,
) -> DownlinkResult:
    """Deliver one command from reader to node at waveform level.

    Args:
        scenario: environment and geometry.
        command: the command to send.
        pie: downlink timing (defaults chosen for the detector bandwidth).
        rng: noise generator; thread one from campaign seeds, or the
            documented process-global fallback stream is used
            (:func:`repro.rng.fallback_rng`).
        detector_bandwidth_hz: node envelope-detector bandwidth.
        include_noise: add ambient noise at the node.

    Returns:
        The delivery outcome.
    """
    if pie is None:
        pie = PIEConfig()
    if rng is None:
        rng = fallback_rng()
    fs = scenario.fs

    bits = encode_command(command)
    envelope = pie_encode(bits, fs, pie)
    # Pad so channel tails land inside the record.
    pad = int(0.02 * fs)
    envelope = np.concatenate([np.zeros(pad), envelope, np.zeros(pad)])

    amplitude = 10.0 ** (scenario.source_level_db / 20.0)
    tx = amplitude * envelope.astype(np.complex128)

    response = scenario.channel().between(
        scenario.reader.position, scenario.node.position
    )
    incident = response.apply(tx, fs)[: len(tx)]
    if include_noise:
        incident = incident + colored_noise(
            len(incident), fs, scenario.noise.psd_db, scenario.carrier_hz, rng
        )

    # Node-side envelope detection: rectify + RC low-pass + threshold.
    taps = lowpass_fir(detector_bandwidth_hz, fs, num_taps=65)
    detected = np.maximum(fir_filter(np.abs(incident), taps), 0.0)

    on_level = float(np.percentile(detected, 90))
    off_level = float(np.percentile(detected, 10))
    contrast = on_level / max(off_level, 1e-12)

    decoded_bits = pie_decode(detected, fs, pie)
    decoded = decode_command(decoded_bits) if len(decoded_bits) else None

    incident_level_db = 20.0 * np.log10(max(on_level, 1e-12))
    return DownlinkResult(
        sent=command,
        decoded=decoded,
        delivered=bool(decoded == command),
        incident_level_db=float(incident_level_db),
        envelope_contrast=contrast,
    )
