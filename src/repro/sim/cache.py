"""Memoized per-site invariants for Monte-Carlo campaigns.

Every trial at an operating point sees the *same* deployment geometry:
ray tracing the multipath response and building the reader receive chain
are pure functions of the scenario, yet the seed engine recomputed them
per trial. This module caches those invariants so a 1,500-trial campaign
pays for them once per operating point — the enabling step for
paper-scale trial counts.

The cache is process-local (each worker of the parallel runner warms its
own) and keyed by *value*, so equal-but-distinct scenario objects share
entries. Entries are immutable by convention: :class:`ChannelResponse`
is never mutated by the engine, and arrays returned by the cached
accessors (:func:`cached_between`, :func:`reader_node_response`) are the
cache's own storage — every caller of an operating point receives the
*same* ndarray objects, so an in-place write corrupts all later trials.
The shape/dtype lint pass enforces this statically (rule ``VAB014``,
:mod:`repro.analysis.shapes`): copy before writing. Invalidate
explicitly with :func:`clear_channel_cache` after monkey-patching
propagation models or editing water/surface tables in place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Tuple

from repro.acoustics.channel import AcousticChannel, ChannelResponse
from repro.analysis.effects.vocab import Effectful, Pure
from repro.geometry.vec3 import Vec3
from repro.obs.metrics import counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scenario import Scenario

_RESPONSE_CACHE: "OrderedDict[tuple, ChannelResponse]" = OrderedDict()
_RESPONSE_CACHE_MAX = 256
_ENABLED = True
_HITS = 0
_MISSES = 0

# Mirrored into the active metrics registry so campaign manifests and
# BENCH_*.json surface cache behavior (the module counters below feed
# the process-wide channel_cache_info view).
HITS_COUNTER = counter(
    "repro.sim.cache.hits", "channel-response cache hits"
)
MISSES_COUNTER = counter(
    "repro.sim.cache.misses", "channel-response cache misses (traces)"
)
EVICTIONS_COUNTER = counter(
    "repro.sim.cache.evictions", "LRU evictions from the response cache"
)


def set_channel_cache_enabled(
    enabled: bool,
) -> Effectful[bool, "reads:global", "mutates:global"]:
    """Enable/disable response memoization; returns the old state."""
    global _ENABLED
    old = _ENABLED
    _ENABLED = bool(enabled)
    return old


def clear_channel_cache() -> Effectful[None, "mutates:global"]:
    """Explicitly invalidate all memoized channel responses."""
    global _HITS, _MISSES
    _RESPONSE_CACHE.clear()
    _HITS = 0
    _MISSES = 0


def channel_cache_info() -> Effectful[
    Tuple[int, int, int, int], "reads:global"
]:
    """(hits, misses, entries, capacity) of the response cache."""
    return _HITS, _MISSES, len(_RESPONSE_CACHE), _RESPONSE_CACHE_MAX


def _site_key(
    channel: AcousticChannel, source: Vec3, receiver: Vec3
) -> Pure[tuple]:
    """Value-equality key over everything trace_paths consumes."""
    return (
        channel.carrier_hz,
        channel.water,
        channel.surface,
        channel.max_bounces,
        channel.spreading_exponent,
        channel.direct_only,
        channel.bottom_density_kg_m3,
        channel.bottom_sound_speed_mps,
        channel.bottom_loss_db_per_bounce,
        source,
        receiver,
    )


def cached_between(
    channel: AcousticChannel, source: Vec3, receiver: Vec3
) -> Effectful[ChannelResponse, "reads:global", "mutates:global"]:
    """Memoized :meth:`AcousticChannel.between`.

    Returns the cached response for this (site, endpoints) pair, tracing
    it on first use. The returned object is shared — treat it as
    read-only.  The effect grant covers exactly the memo store and its
    hit/miss counters: the *computation* (``channel.between``) must stay
    pure, and VAB017/VAB018 police any effect beyond the grant.
    """
    global _HITS, _MISSES
    if not _ENABLED:
        return channel.between(source, receiver)
    key = _site_key(channel, source, receiver)
    response = _RESPONSE_CACHE.get(key)
    if response is not None:
        _HITS += 1
        HITS_COUNTER.inc()
        _RESPONSE_CACHE.move_to_end(key)
        return response
    _MISSES += 1
    MISSES_COUNTER.inc()
    response = channel.between(source, receiver)
    _RESPONSE_CACHE[key] = response
    if len(_RESPONSE_CACHE) > _RESPONSE_CACHE_MAX:
        _RESPONSE_CACHE.popitem(last=False)
        EVICTIONS_COUNTER.inc()
    return response


def reader_node_response(
    scenario: "Scenario",
) -> Effectful[ChannelResponse, "reads:global", "mutates:global"]:
    """The (cached) reader->node multipath response of a scenario."""
    return cached_between(
        scenario.channel(), scenario.reader.position, scenario.node.position
    )
