"""Analytic backscatter link budget (the sonar equation, round trip).

Signal chain, in dB:

::

    reader TX           SL
    -> one-way loss     - TL(d)
    -> node reflection  + G_array(theta) + 20 log10(depth / 2) - L_node
    -> one-way loss     - TL(d)
    = data level at the hydrophone (the *sideband* level: an OOK switch
      with amplitude contrast `depth` puts `depth/2` of the incident
      amplitude into the data component)

    SNR = data level - NL(B) + PG

where NL is the Wenz in-band noise and PG the processing gain of the
coherent chip matched filter accumulated over the chips of one bit.

The budget powers every fast sweep (E2, E4, E5, E8) and is validated
against the waveform simulator by the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.acoustics.noise import noise_level_db
from repro.acoustics.spreading import transmission_loss_db
from repro.analysis.units.vocab import DB, METERS
from repro.phy.ber import ber_ook_coherent, ber_ook_noncoherent, required_snr_db
from repro.sim.scenario import Scenario
from repro.vanatta.array import VanAttaArray
from repro.vanatta.retrodirective import monostatic_gain


@dataclass(frozen=True)
class LinkBudget:
    """Analytic round-trip budget for one backscatter configuration.

    Attributes:
        scenario: environment and geometry defaults.
        array_gain_db: node monostatic field gain over one ideal element
            (``20 log10 N`` for an N-element Van Atta at broadside).
        modulation_depth: ON/OFF reflection amplitude contrast in (0, 1].
        node_loss_db: miscellaneous node losses (switch insertion, line,
            transducer conversion inefficiency), round trip.
        coherent: reader detection style (coherent matched filter vs
            envelope).
        chips_per_bit: line-code spreading (2 for FM0) — contributes
            ``10 log10`` of processing gain at fixed chip rate.
        si_suppression_db: how far below the source level the reader's
            residual self-interference sits after cancellation. Backscatter
            readers are classically limited by this floor, not by ambient
            noise; ``None`` models a perfect canceller.
        system_loss_db: receiver-side noise figure plus implementation
            loss (hydrophone preamp noise, imperfect sync/phase tracking).
    """

    scenario: Scenario
    array_gain_db: float = 12.0
    modulation_depth: float = 0.85
    node_loss_db: float = 3.0
    coherent: bool = True
    chips_per_bit: int = 2
    si_suppression_db: Optional[float] = 130.0
    system_loss_db: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 < self.modulation_depth <= 1.0:
            raise ValueError("modulation depth must be in (0, 1]")
        if self.chips_per_bit < 1:
            raise ValueError("chips_per_bit must be >= 1")

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def for_array(
        scenario: Scenario,
        array: VanAttaArray,
        theta_deg: float = 0.0,
        modulation_depth: float = 0.85,
        node_loss_db: float = 3.0,
        coherent: bool = True,
    ) -> "LinkBudget":
        """Budget with the array gain evaluated from a real array model."""
        gain = abs(
            monostatic_gain(
                array, scenario.carrier_hz, theta_deg, scenario.water.sound_speed
            )
        )
        return LinkBudget(
            scenario=scenario,
            array_gain_db=20.0 * math.log10(max(gain, 1e-12)),
            modulation_depth=modulation_depth,
            node_loss_db=node_loss_db,
            coherent=coherent,
        )

    # -- budget terms --------------------------------------------------------------

    def one_way_loss_db(self, range_m: METERS) -> DB:
        """One-way transmission loss at a range, dB."""
        return transmission_loss_db(
            range_m,
            self.scenario.carrier_hz,
            self.scenario.water,
            self.scenario.spreading_exponent,
        )

    def incident_level_db(self, range_m: METERS) -> DB:
        """Carrier level arriving at the node, dB re 1 uPa."""
        return self.scenario.source_level_db - self.one_way_loss_db(range_m)

    def reflection_gain_db(self) -> DB:
        """Node's conversion from incident carrier to data sideband, dB.

        ``20 log10(G_array * depth / 2) - L_node``.
        """
        return (
            self.array_gain_db
            + 20.0 * math.log10(self.modulation_depth / 2.0)
            - self.node_loss_db
        )

    def received_data_level_db(self, range_m: METERS) -> DB:
        """Data-sideband level back at the hydrophone, dB re 1 uPa."""
        return (
            self.scenario.source_level_db
            - 2.0 * self.one_way_loss_db(range_m)
            + self.reflection_gain_db()
        )

    def ambient_noise_db(self) -> DB:
        """Ambient noise in the chip-rate bandwidth, dB re 1 uPa."""
        return noise_level_db(
            self.scenario.carrier_hz, self.scenario.chip_rate, self.scenario.noise
        )

    def residual_si_db(self) -> Optional[float]:
        """Residual self-interference level after cancellation, dB re 1 uPa."""
        if self.si_suppression_db is None:
            return None
        return self.scenario.source_level_db - self.si_suppression_db

    def noise_level_in_band_db(self) -> DB:
        """Effective in-band noise: ambient plus residual SI (linear sum)."""
        ambient_db = self.ambient_noise_db()
        si_db = self.residual_si_db()
        if si_db is None:
            return ambient_db
        linear = 10.0 ** (ambient_db / 10.0) + 10.0 ** (si_db / 10.0)
        return 10.0 * math.log10(linear)

    def processing_gain_db(self) -> DB:
        """Coherent accumulation across the chips of one bit."""
        return 10.0 * math.log10(self.chips_per_bit)

    def snr_db(self, range_m: Optional[float] = None) -> DB:
        """Post-processing SNR at a range (scenario range if omitted)."""
        d = self.scenario.range_m if range_m is None else range_m
        return (
            self.received_data_level_db(d)
            - self.noise_level_in_band_db()
            + self.processing_gain_db()
            - self.system_loss_db
        )

    # -- link metrics -------------------------------------------------------------

    def ber(self, range_m: Optional[float] = None) -> float:
        """Predicted bit error rate at a range."""
        snr = self.snr_db(range_m)
        if self.coherent:
            return ber_ook_coherent(snr)
        return ber_ook_noncoherent(snr)

    def max_range_m(
        self,
        target_ber: float = 1e-3,
        lo: float = 1.5,
        hi: float = 20_000.0,
        tol: float = 0.1,
    ) -> float:
        """Largest range meeting a target BER (bisection on the budget).

        Returns ``lo`` if even the shortest range fails, and ``hi`` if the
        target holds everywhere in the bracket.
        """
        snr_needed = required_snr_db(target_ber, self.coherent)
        if self.snr_db(lo) < snr_needed:
            return lo
        if self.snr_db(hi) >= snr_needed:
            return hi
        a, b = lo, hi
        while b - a > tol:
            mid = 0.5 * (a + b)
            if self.snr_db(mid) >= snr_needed:
                a = mid
            else:
                b = mid
        return 0.5 * (a + b)

    def margin_db(self, range_m: METERS, target_ber: float = 1e-3) -> DB:
        """SNR margin above the target-BER requirement at a range."""
        return self.snr_db(range_m) - required_snr_db(target_ber, self.coherent)

    def with_(self, **kwargs) -> "LinkBudget":
        """Copy with selected fields replaced (sweep helper)."""
        return replace(self, **kwargs)
