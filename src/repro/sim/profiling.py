"""Per-stage wall-clock accounting for the waveform engine.

Since the observability layer landed, this module is a thin
compatibility facade over :mod:`repro.obs.spans`: :func:`stage` *is* a
hierarchical span (the engine's ``channel``/``reflect``/``noise``/
``demod`` brackets nest under the ``trial``/``point``/``campaign``
spans the campaign runners open), and :func:`collect_stage_timings`
installs a tracer and folds its leaf totals into the familiar flat
:class:`StageTimings` view. When no tracer is installed, a bracket is a
single global read — campaigns pay nothing for the instrumentation.

Usage::

    with collect_stage_timings() as timings:
        simulate_trial(scenario, ...)
    print(timings.as_dict())

Collectors are process-local. The parallel campaign runner installs one
per worker chunk and merges the results (see
:func:`repro.sim.parallel.run_campaign_parallel`). For the full
hierarchical view (per-path rather than per-stage), collect with
:func:`repro.obs.spans.collect_spans` instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.obs.spans import SpanTracer, collect_spans, span

stage = span
"""Bracket one engine stage; no-op when no collector is installed."""


@dataclass
class StageTimings:
    """Accumulated wall-clock per engine stage (flat, leaf-name keyed).

    Attributes:
        totals_s: stage name -> accumulated seconds.
        counts: stage name -> number of bracketed executions.
    """

    totals_s: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, elapsed_s: float) -> None:
        """Accumulate one bracketed execution."""
        self.totals_s[name] = self.totals_s.get(name, 0.0) + elapsed_s
        self.counts[name] = self.counts.get(name, 0) + 1

    def merge(self, other: "StageTimings") -> None:
        """Fold another collector (e.g. from a worker process) into this one."""
        for name, total in other.totals_s.items():
            self.totals_s[name] = self.totals_s.get(name, 0.0) + total
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def merge_tracer(self, tracer: SpanTracer) -> None:
        """Fold a span tracer's leaf-aggregated totals into this view."""
        totals, counts = tracer.leaf_totals()
        for name, total in totals.items():
            self.totals_s[name] = self.totals_s.get(name, 0.0) + total
        for name, count in counts.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly view: {stage: {total_s, count, mean_ms}}."""
        return {
            name: {
                "total_s": round(self.totals_s[name], 6),
                "count": self.counts.get(name, 0),
                "mean_ms": round(
                    1e3 * self.totals_s[name] / max(self.counts.get(name, 1), 1), 6
                ),
            }
            for name in sorted(self.totals_s)
        }


@contextmanager
def collect_stage_timings(
    timings: Optional[StageTimings] = None,
) -> Iterator[StageTimings]:
    """Install a collector for the duration of the block (re-entrant).

    Spans entered inside the block land in a fresh tracer (shadowing
    any outer collector, as before); on exit the tracer's leaf totals
    are folded into ``timings``.
    """
    if timings is None:
        timings = StageTimings()
    tracer = SpanTracer()
    try:
        with collect_spans(tracer):
            yield timings
    finally:
        timings.merge_tracer(tracer)
