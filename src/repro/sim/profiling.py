"""Per-stage wall-clock accounting for the waveform engine.

The perf harness needs to know *where* a trial's time goes — channel
application, array reflection, noise synthesis, or reader DSP — both to
verify an optimization landed and to localize a regression. The engine
brackets each stage with :func:`stage`; when no collector is installed
that is a single global read, so campaigns pay nothing for the
instrumentation.

Usage::

    with collect_stage_timings() as timings:
        simulate_trial(scenario, ...)
    print(timings.as_dict())

Collectors are process-local. The parallel campaign runner installs one
per worker chunk and merges the results (see
:func:`repro.sim.parallel.run_campaign_parallel`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class StageTimings:
    """Accumulated wall-clock per engine stage.

    Attributes:
        totals_s: stage name -> accumulated seconds.
        counts: stage name -> number of bracketed executions.
    """

    totals_s: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, elapsed_s: float) -> None:
        """Accumulate one bracketed execution."""
        self.totals_s[name] = self.totals_s.get(name, 0.0) + elapsed_s
        self.counts[name] = self.counts.get(name, 0) + 1

    def merge(self, other: "StageTimings") -> None:
        """Fold another collector (e.g. from a worker process) into this one."""
        for name, total in other.totals_s.items():
            self.totals_s[name] = self.totals_s.get(name, 0.0) + total
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly view: {stage: {total_s, count, mean_ms}}."""
        return {
            name: {
                "total_s": round(self.totals_s[name], 6),
                "count": self.counts.get(name, 0),
                "mean_ms": round(
                    1e3 * self.totals_s[name] / max(self.counts.get(name, 1), 1), 6
                ),
            }
            for name in sorted(self.totals_s)
        }


_ACTIVE: Optional[StageTimings] = None


@contextmanager
def collect_stage_timings(
    timings: Optional[StageTimings] = None,
) -> Iterator[StageTimings]:
    """Install a collector for the duration of the block (re-entrant)."""
    global _ACTIVE
    if timings is None:
        timings = StageTimings()
    previous = _ACTIVE
    _ACTIVE = timings
    try:
        yield timings
    finally:
        _ACTIVE = previous


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Bracket one engine stage; no-op when no collector is installed."""
    collector = _ACTIVE
    if collector is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        collector.add(name, time.perf_counter() - t0)
