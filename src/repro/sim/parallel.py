"""Parallel, cache-warm, observable execution of Monte-Carlo campaigns.

The paper's evidence rests on >1,500 field trials; reproducing that
statistical weight in simulation means running campaigns orders of
magnitude larger than the seed's serial loop allowed. This module
distributes a campaign's trials across a ``ProcessPoolExecutor`` while
keeping the results **bit-identical** to the serial runner:

* Seeding stays on the ``SeedSequence.spawn`` discipline — trial ``t``
  of point ``p`` always draws from ``SeedSequence((seed, p)).spawn(n)[t]``
  regardless of which worker runs it or in what order chunks finish
  (see :meth:`TrialCampaign.trial_seeds`).
* Results are re-assembled in trial order before aggregation, so the
  floating-point reductions in :meth:`BERPoint.from_trials` see the same
  operand order as the serial loop.
* Campaigns on the batched point engine (see
  :attr:`TrialCampaign.engine`) are sharded by whole operating point —
  one ``(trials, samples)`` computation per worker chunk — while
  per-trial campaigns keep the finer trial-slice chunking. Both shard
  shapes reassemble to the same trial order.

Workers warm their own process-local caches (channel responses, Wenz
shaping filters), so per-point invariants are computed once per worker,
not once per trial. ``workers=1`` short-circuits to the in-process
serial path — no pool, no pickling — which is also the fallback when a
campaign carries a non-picklable factory.

Telemetry rides the same machinery: pass ``tracer=`` (hierarchical
spans), ``metrics=`` (a registry), and/or ``events=`` (a JSONL event
log) and each worker chunk collects process-locally, ships its tracer
and metrics snapshot home with the results, and the parent merges them
in trial order — so telemetry, like the results, is independent of
scheduling. :func:`run_observed_campaign` bundles all of it and emits a
:class:`~repro.obs.manifest.RunManifest`.

Example::

    scenarios = sweep_range(Scenario.river(), log_ranges(50, 600, 8))
    result, manifest = run_observed_campaign(
        scenarios, TrialCampaign(trials_per_point=250), workers=4,
        manifest_path="river.manifest.json",
        events_path="river.events.jsonl",
    )
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.analysis.effects.vocab import Effectful
from repro.obs.ledger import Ledger
from repro.obs.manifest import EventLog, RunManifest, scenario_snapshot, wall_clock_unix
from repro.obs.metrics import MetricsRegistry, counter, gauge, use_registry
from repro.obs.progress import ProgressReporter
from repro.obs.spans import SpanTracer, collect_spans
from repro.sim.engine import TrialResult
from repro.sim.profiling import StageTimings
from repro.sim.results import BERPoint, CampaignResult
from repro.sim.scenario import Scenario
from repro.sim.trials import TrialCampaign

CHUNKS_COUNTER = counter(
    "repro.sim.parallel.chunks", "worker chunks dispatched to the pool"
)
CAMPAIGNS_COUNTER = counter(
    "repro.sim.parallel.campaigns", "campaigns executed by the runner"
)
WORKERS_GAUGE = gauge(
    "repro.sim.parallel.workers", "worker processes of the last campaign"
)
UTILIZATION_GAUGE = gauge(
    "repro.sim.parallel.worker_utilization",
    "pool busy-fraction of the last campaign (chunk-seconds / wall * workers)",
)


def default_workers() -> Effectful[int, "reads:host"]:
    """Worker count when unspecified: all cores, capped at 8.

    The host read only tunes scheduling (chunk fan-out), never results:
    trial outcomes are seeded per-trial, so any worker count replays the
    same numbers.  The ``reads:host`` grant records exactly that.
    """
    return max(1, min(os.cpu_count() or 1, 8))


def split_evenly(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into up to ``parts`` contiguous (start, stop) chunks.

    Chunk sizes differ by at most one, larger chunks first — the same
    deal ``numpy.array_split`` makes — so no worker idles more than one
    trial's worth at a barrier.
    """
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def _run_chunk(
    campaign: TrialCampaign,
    scenario: Scenario,
    point_index: int,
    start: int,
    stop: int,
    collect: bool,
) -> Tuple[int, int, List[TrialResult], Optional[dict]]:
    """Worker entry: run one contiguous slice of one point's trials.

    When collecting, the chunk's spans land in a fresh tracer and its
    metrics in a fresh registry; both cross the process boundary with
    the results so the parent can merge in trial order.
    """
    if not collect:
        return point_index, start, campaign.run_trials(
            scenario, point_index, start, stop
        ), None
    tracer = SpanTracer()
    registry = MetricsRegistry()
    t0 = time.perf_counter()
    with use_registry(registry), collect_spans(tracer):
        results = campaign.run_trials(scenario, point_index, start, stop)
    telemetry = {
        "tracer": tracer,
        "metrics": registry.as_dict(),
        "elapsed_s": time.perf_counter() - t0,
    }
    return point_index, start, results, telemetry


def _is_picklable(campaign: TrialCampaign) -> bool:
    """Whether the campaign can cross a process boundary."""
    try:
        pickle.dumps(campaign)
        return True
    except Exception:
        return False


def _emit(events: Optional[EventLog], event: str, **fields) -> None:
    if events is not None:
        events.emit(event, **fields)


def _point_fields(point: BERPoint) -> dict:
    return {
        "range_m": point.range_m,
        "trials": point.trials,
        "ber": point.ber,
        "frame_success_rate": point.frame_success_rate,
        "detection_rate": point.detection_rate,
    }


def run_campaign_parallel(
    scenarios: Sequence[Scenario],
    campaign: Optional[TrialCampaign] = None,
    label: str = "campaign",
    workers: Optional[int] = None,
    timings: Optional[StageTimings] = None,
    pool: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    progress: Optional[ProgressReporter] = None,
) -> CampaignResult:
    """Run a campaign with trials fanned out across worker processes.

    Args:
        scenarios: one scenario per operating point (e.g. a range sweep).
        campaign: campaign configuration (defaults if omitted).
        label: name recorded on the result.
        workers: process count; ``None`` = :func:`default_workers`,
            ``1`` = serial in-process execution (no pool).
        timings: optional flat per-stage timing accumulator (legacy
            view); when given, workers time their engine stages and the
            leaf totals are merged into it.
        pool: an existing executor to reuse (left open on return).
            Back-to-back campaigns — sweeps over sweeps, the perf
            harness's timed arms — amortise worker startup and keep
            worker caches warm by sharing one pool. Omitted, a pool is
            created and torn down per call.
        tracer: optional hierarchical span tracer; worker-chunk spans
            are merged into it in trial order.
        metrics: optional metrics registry; worker-chunk metric
            snapshots are merged into it in trial order, and the runner
            records its own instruments (chunks, workers, utilization)
            there too.
        events: optional JSONL event log; the runner emits
            ``campaign_start`` / ``chunk_done`` / ``point_end`` /
            ``campaign_end`` events as the run progresses.
        progress: optional live progress reporter; advanced as trial
            chunks *complete* (from executor callbacks, not the
            deterministic harvest loop), so the display is live while
            results and telemetry stay scheduling-independent.

    Returns:
        Aggregated results, one :class:`BERPoint` per scenario, in
        order — bit-identical to :func:`repro.sim.trials.run_campaign`
        for the same campaign seed, with or without telemetry.
    """
    if campaign is None:
        campaign = TrialCampaign()
    if workers is None:
        workers = default_workers()

    # Telemetry sinks. The flat `timings` view folds out of a span
    # tracer, so one chunk-side collection feeds every sink.
    span_sinks: List[SpanTracer] = []
    if tracer is not None:
        span_sinks.append(tracer)
    fold_tracer = SpanTracer() if timings is not None else None
    if fold_tracer is not None:
        span_sinks.append(fold_tracer)
    collect = bool(span_sinks) or metrics is not None
    t_start = time.perf_counter()

    serial = pool is None and (
        workers <= 1 or len(scenarios) == 0 or not _is_picklable(campaign)
    )
    effective_workers = 1 if serial else workers
    if progress is not None:
        progress.start()
    _emit(
        events,
        "campaign_start",
        label=label,
        points=len(scenarios),
        trials_per_point=campaign.trials_per_point,
        seed=campaign.seed,
        workers=effective_workers,
    )

    try:
        if serial:
            out = CampaignResult(label=label)
            for i, scenario in enumerate(scenarios):
                t0 = time.perf_counter()
                if collect:
                    point_tracer = SpanTracer()
                    metrics_ctx = (
                        use_registry(metrics)
                        if metrics is not None
                        else nullcontext()
                    )
                    with metrics_ctx, collect_spans(point_tracer):
                        point = campaign.run_point(scenario, point_index=i)
                    for sink in span_sinks:
                        sink.merge(point_tracer)
                else:
                    point = campaign.run_point(scenario, point_index=i)
                out.add(point)
                if progress is not None:
                    progress.advance(point.trials)
                _emit(
                    events,
                    "point_end",
                    point=i,
                    elapsed_s=round(time.perf_counter() - t0, 6),
                    **_point_fields(point),
                )
        else:
            own_pool = pool is None
            if own_pool:
                pool = ProcessPoolExecutor(max_workers=workers)
            busy_s = 0.0
            point_busy_s = {i: 0.0 for i in range(len(scenarios))}
            try:
                if campaign.uses_batched_engine():
                    # Batched campaigns amortise per-trial overhead over
                    # whole-point batches, so shard by whole point: one
                    # chunk = one (trials, samples) computation. This
                    # also keeps span counts scheduling-independent —
                    # every chunking emits exactly one `batch` span per
                    # point. (Sub-point splits would still be bit-exact:
                    # the kernel is batch-size invariant.)
                    chunks_per_point = 1
                else:
                    # Oversplit so a straggling chunk (one worker
                    # hitting a detection-failure-heavy slice) doesn't
                    # serialise the campaign behind it — but keep the
                    # total future count near 4x the worker count:
                    # every chunk pays a pickle/dispatch round trip,
                    # and on multi-point sweeps the points themselves
                    # already provide interleaving.
                    chunk_budget = max(workers * 4, 1)
                    chunks_per_point = max(
                        1,
                        min(
                            campaign.trials_per_point,
                            workers * 2,
                            -(-chunk_budget // max(len(scenarios), 1)),
                        ),
                    )
                def _advance_on_done(future) -> None:
                    # Runs on the executor's callback thread the moment
                    # a chunk lands — independent of the ordered harvest
                    # below, which is what keeps results deterministic.
                    if future.cancelled() or future.exception() is not None:
                        return
                    _, _, chunk_results, _ = future.result()
                    progress.advance(len(chunk_results))

                jobs = []
                for i, scenario in enumerate(scenarios):
                    for start, stop in split_evenly(
                        campaign.trials_per_point, chunks_per_point
                    ):
                        job = pool.submit(
                            _run_chunk, campaign, scenario, i, start,
                            stop, collect,
                        )
                        if progress is not None:
                            job.add_done_callback(_advance_on_done)
                        jobs.append(job)
                per_point: dict = {i: [] for i in range(len(scenarios))}
                # Iterate in submission (= trial) order so telemetry
                # merges are as deterministic as the results.
                for job in jobs:
                    point_index, start, results, telemetry = job.result()
                    per_point[point_index].append((start, results))
                    chunk_elapsed = None
                    if telemetry is not None:
                        for sink in span_sinks:
                            sink.merge(telemetry["tracer"])
                        if metrics is not None:
                            metrics.merge_snapshot(telemetry["metrics"])
                        chunk_elapsed = telemetry["elapsed_s"]
                        busy_s += chunk_elapsed
                        point_busy_s[point_index] += chunk_elapsed
                    _emit(
                        events,
                        "chunk_done",
                        point=point_index,
                        start=start,
                        trials=len(results),
                        elapsed_s=chunk_elapsed,
                    )
            finally:
                if own_pool:
                    pool.shutdown()

            out = CampaignResult(label=label)
            for i in range(len(scenarios)):
                ordered: List[TrialResult] = []
                for _, results in sorted(per_point[i], key=lambda item: item[0]):
                    ordered.extend(results)
                point = BERPoint.from_trials(ordered)
                out.add(point)
                _emit(
                    events,
                    "point_end",
                    point=i,
                    elapsed_s=(
                        round(point_busy_s[i], 6) if collect else None
                    ),
                    **_point_fields(point),
                )
            if metrics is not None:
                wall = time.perf_counter() - t_start
                with use_registry(metrics):
                    CHUNKS_COUNTER.inc(len(jobs))
                    UTILIZATION_GAUGE.set(
                        busy_s / (wall * workers) if wall > 0 else 0.0
                    )
    finally:
        if progress is not None:
            progress.finish()
        if timings is not None and fold_tracer is not None:
            timings.merge_tracer(fold_tracer)

    if metrics is not None:
        with use_registry(metrics):
            CAMPAIGNS_COUNTER.inc()
            WORKERS_GAUGE.set(effective_workers)
    _emit(
        events,
        "campaign_end",
        label=label,
        elapsed_s=round(time.perf_counter() - t_start, 6),
        total_trials=out.total_trials,
    )
    return out


def run_observed_campaign(
    scenarios: Sequence[Scenario],
    campaign: Optional[TrialCampaign] = None,
    label: str = "campaign",
    workers: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
    manifest_path: Optional[Union[str, Path]] = None,
    events_path: Optional[Union[str, Path]] = None,
    lint_fingerprint: bool = False,
    progress: Optional[bool] = None,
    ledger: Optional[Union[bool, str, Path, Ledger]] = None,
) -> Tuple[CampaignResult, RunManifest]:
    """Run a campaign with full telemetry and return (result, manifest).

    The manifest captures the seed, scenario snapshots, package and
    numeric-engine versions, span timings, and metrics of the run;
    pass ``manifest_path`` to persist it (JSON, see
    :func:`repro.sim.export.save_manifest`) and ``events_path`` to
    stream a JSONL event log alongside. Results remain bit-identical
    to the unobserved runners.

    ``progress`` controls the live stderr progress line (``None`` =
    on in a TTY, off in CI/pipes; see :mod:`repro.obs.progress`).
    Heartbeat events always land in the event log when one is open.

    ``ledger`` files the finished manifest in a content-addressed run
    store (:class:`repro.obs.ledger.Ledger`): ``True`` uses the
    default root (``$VAB_LEDGER_DIR`` or ``~/.repro/ledger``), a path
    uses that root, a :class:`Ledger` is used as-is.

    With ``lint_fingerprint=True`` the manifest also records the
    :func:`repro.analysis.tree_fingerprint` of the installed ``repro``
    tree — a hash of the exact library sources plus a clean/dirty lint
    verdict, so a result can later be traced to a tree that provably
    honoured the determinism contract.
    """
    from repro import __version__
    from repro.analysis.effects.cache import ENGINE_VERSION as EFFECTS_ENGINE_VERSION
    from repro.analysis.shapes.cache import ENGINE_VERSION as SHAPES_ENGINE_VERSION
    from repro.analysis.units.cache import ENGINE_VERSION as UNITS_ENGINE_VERSION
    from repro.phy.batch import BATCHED_ENGINE_VERSION
    from repro.sim.export import campaign_to_dict, save_manifest
    from repro.vanatta.fastfield import FASTFIELD_ENGINE_VERSION

    if campaign is None:
        campaign = TrialCampaign()
    if workers is None:
        workers = default_workers()
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    events = EventLog(events_path) if events_path is not None else None
    reporter = ProgressReporter(
        total_trials=len(scenarios) * campaign.trials_per_point,
        label=label,
        enabled=progress,
        events=events,
    )
    if not reporter.enabled and events is None:
        reporter = None  # nothing to display, nowhere to heartbeat
    created = wall_clock_unix()
    t0 = time.perf_counter()
    try:
        result = run_campaign_parallel(
            scenarios,
            campaign,
            label=label,
            workers=workers,
            pool=pool,
            tracer=tracer,
            metrics=metrics,
            events=events,
            progress=reporter,
        )
    finally:
        if events is not None:
            events.close()
    lint_record = None
    if lint_fingerprint:
        from repro.analysis import tree_fingerprint

        lint_record = tree_fingerprint([Path(__file__).resolve().parent.parent])
    manifest = RunManifest(
        label=label,
        seed=campaign.seed,
        version=__version__,
        created_unix=round(created, 6),
        elapsed_s=round(time.perf_counter() - t0, 6),
        workers=workers,
        campaign={
            "trials_per_point": campaign.trials_per_point,
            "payload_bytes": campaign.payload_bytes,
            "si_suppression_db": campaign.si_suppression_db,
            "engine": campaign.engine,
        },
        scenarios=[scenario_snapshot(s) for s in scenarios],
        timings=tracer.as_dict(),
        metrics=metrics.as_dict(),
        results=campaign_to_dict(result),
        events_path=str(events_path) if events_path is not None else None,
        lint=lint_record,
        engine_versions={
            "phy.batch": BATCHED_ENGINE_VERSION,
            "analysis.units": UNITS_ENGINE_VERSION,
            "analysis.shapes": SHAPES_ENGINE_VERSION,
            "analysis.effects": EFFECTS_ENGINE_VERSION,
            "vanatta.fastfield": FASTFIELD_ENGINE_VERSION,
        },
    )
    if manifest_path is not None:
        save_manifest(manifest, manifest_path)
    if ledger is not None and ledger is not False:
        store = (
            ledger
            if isinstance(ledger, Ledger)
            else Ledger(None if ledger is True else ledger)
        )
        store.record(manifest)
    return result, manifest
