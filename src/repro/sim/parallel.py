"""Parallel, cache-warm execution of Monte-Carlo campaigns.

The paper's evidence rests on >1,500 field trials; reproducing that
statistical weight in simulation means running campaigns orders of
magnitude larger than the seed's serial loop allowed. This module
distributes a campaign's trials across a ``ProcessPoolExecutor`` while
keeping the results **bit-identical** to the serial runner:

* Seeding stays on the ``SeedSequence.spawn`` discipline — trial ``t``
  of point ``p`` always draws from ``SeedSequence((seed, p)).spawn(n)[t]``
  regardless of which worker runs it or in what order chunks finish
  (see :meth:`TrialCampaign.trial_seeds`).
* Results are re-assembled in trial order before aggregation, so the
  floating-point reductions in :meth:`BERPoint.from_trials` see the same
  operand order as the serial loop.

Workers warm their own process-local caches (channel responses, Wenz
shaping filters), so per-point invariants are computed once per worker,
not once per trial. ``workers=1`` short-circuits to the in-process
serial path — no pool, no pickling — which is also the fallback when a
campaign carries a non-picklable factory.

Example::

    scenarios = sweep_range(Scenario.river(), log_ranges(50, 600, 8))
    result = run_campaign_parallel(
        scenarios, TrialCampaign(trials_per_point=250), workers=4
    )
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.sim.engine import TrialResult
from repro.sim.profiling import StageTimings, collect_stage_timings
from repro.sim.results import BERPoint, CampaignResult
from repro.sim.scenario import Scenario
from repro.sim.trials import TrialCampaign


def default_workers() -> int:
    """Worker count when unspecified: all cores, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def split_evenly(n: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into up to ``parts`` contiguous (start, stop) chunks.

    Chunk sizes differ by at most one, larger chunks first — the same
    deal ``numpy.array_split`` makes — so no worker idles more than one
    trial's worth at a barrier.
    """
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def _run_chunk(
    campaign: TrialCampaign,
    scenario: Scenario,
    point_index: int,
    start: int,
    stop: int,
    collect_timings: bool,
) -> Tuple[int, int, List[TrialResult], Optional[StageTimings]]:
    """Worker entry: run one contiguous slice of one point's trials."""
    if collect_timings:
        with collect_stage_timings() as timings:
            results = campaign.run_trials(scenario, point_index, start, stop)
        return point_index, start, results, timings
    results = campaign.run_trials(scenario, point_index, start, stop)
    return point_index, start, results, None


def _is_picklable(campaign: TrialCampaign) -> bool:
    """Whether the campaign can cross a process boundary."""
    try:
        pickle.dumps(campaign)
        return True
    except Exception:
        return False


def run_campaign_parallel(
    scenarios: Sequence[Scenario],
    campaign: Optional[TrialCampaign] = None,
    label: str = "campaign",
    workers: Optional[int] = None,
    timings: Optional[StageTimings] = None,
    pool: Optional[ProcessPoolExecutor] = None,
) -> CampaignResult:
    """Run a campaign with trials fanned out across worker processes.

    Args:
        scenarios: one scenario per operating point (e.g. a range sweep).
        campaign: campaign configuration (defaults if omitted).
        label: name recorded on the result.
        workers: process count; ``None`` = :func:`default_workers`,
            ``1`` = serial in-process execution (no pool).
        timings: optional per-stage timing accumulator; when given,
            workers time their engine stages and the totals are merged
            into it (serial path collects in-process).
        pool: an existing executor to reuse (left open on return).
            Back-to-back campaigns — sweeps over sweeps, the perf
            harness's timed arms — amortise worker startup and keep
            worker caches warm by sharing one pool. Omitted, a pool is
            created and torn down per call.

    Returns:
        Aggregated results, one :class:`BERPoint` per scenario, in
        order — bit-identical to :func:`repro.sim.trials.run_campaign`
        for the same campaign seed.
    """
    if campaign is None:
        campaign = TrialCampaign()
    if workers is None:
        workers = default_workers()
    collect = timings is not None

    if (
        pool is None
        and (workers <= 1 or len(scenarios) == 0 or not _is_picklable(campaign))
    ):
        out = CampaignResult(label=label)
        for i, scenario in enumerate(scenarios):
            if collect:
                with collect_stage_timings() as point_timings:
                    point = campaign.run_point(scenario, point_index=i)
                timings.merge(point_timings)
            else:
                point = campaign.run_point(scenario, point_index=i)
            out.add(point)
        return out

    own_pool = pool is None
    if own_pool:
        pool = ProcessPoolExecutor(max_workers=workers)
    try:
        # Oversplit so a straggling chunk (one worker hitting a
        # detection-failure-heavy slice) doesn't serialise the campaign
        # behind it — but keep the total future count near 4x the worker
        # count: every chunk pays a pickle/dispatch round trip, and on
        # multi-point sweeps the points themselves already provide
        # interleaving.
        chunk_budget = max(workers * 4, 1)
        chunks_per_point = max(
            1,
            min(
                campaign.trials_per_point,
                workers * 2,
                -(-chunk_budget // max(len(scenarios), 1)),
            ),
        )
        jobs = []
        for i, scenario in enumerate(scenarios):
            for start, stop in split_evenly(
                campaign.trials_per_point, chunks_per_point
            ):
                jobs.append(
                    pool.submit(
                        _run_chunk, campaign, scenario, i, start, stop, collect
                    )
                )
        per_point: dict = {i: [] for i in range(len(scenarios))}
        for job in jobs:
            point_index, start, results, chunk_timings = job.result()
            per_point[point_index].append((start, results))
            if collect and chunk_timings is not None:
                timings.merge(chunk_timings)
    finally:
        if own_pool:
            pool.shutdown()

    out = CampaignResult(label=label)
    for i in range(len(scenarios)):
        ordered: List[TrialResult] = []
        for _, results in sorted(per_point[i], key=lambda item: item[0]):
            ordered.extend(results)
        out.add(BERPoint.from_trials(ordered))
    return out
