"""Batched reader receive chain: one pass over ``(trials, samples)``.

The per-trial receive chain spends most of a Monte-Carlo campaign's time
dispatching small numpy kernels and Python loops per record. This module
runs every stage across the whole trial axis at once:

1. **SI suppression** — mean removal and the DC-blocking IIR along the
   sample axis of the full ``(trials, samples)`` block.
2. **Preamble search** — one FFT-based batched normalised correlation
   (:func:`repro.phy.preamble.detect_preamble_batch`).
3. **CFO estimation** — the lag-autocorrelation of every detected
   record's modulation-stripped preamble, as one gather + reduction.
4. **Coherent chip slicing** — integrate-and-dump via a gather/reshape/
   sum, with the decision-directed phase loop advanced chip-by-chip over
   the whole batch (the loop is sequential in time but vector across
   trials).
5. **Frame parse + scoring stats** — FM0/CRC per record (vectorised
   decoders in :mod:`repro.phy.coding` / :mod:`repro.phy.crc`).

**Bit-identity contract.** Every stage uses elementwise operations,
last-axis reductions, or row-independent gathers, so a record's result
does not depend on its batch neighbours: demodulating a batch of 25 and
demodulating each record in a batch of 1 produce bitwise-equal results.
:meth:`repro.phy.receiver.ReaderReceiver.demodulate` exploits this by
delegating standard-configuration records to this kernel with batch
size 1 — the per-trial and batched campaign paths therefore share one
implementation and agree bit-for-bit by construction.

Receivers with rake combining, decision-feedback equalisation, or
timing search enabled — and ``ReaderReceiver`` subclasses — are *not*
supported here; campaigns fall back to the per-trial loop for them
(see :meth:`BatchedReaderReceiver.supports`).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.analysis.shapes.vocab import (
    ComplexShaped,
    FloatShaped,
    IntShaped,
    Shaped,
)
from repro.dsp.filters import dc_block_fast
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.probes import probe_finite, probe_invariant
from repro.phy.frame import parse_frames_batch
from repro.phy.preamble import (
    detect_preamble_batch,
    preamble_chips,
    preamble_template,
)
from repro.phy.receiver import (
    CRC_FAILURES_COUNTER,
    DEMODS_COUNTER,
    DETECT_FAILURES_COUNTER,
    SNR_HISTOGRAM,
    DemodResult,
    ReaderReceiver,
    _eye_snr_db,
)

BATCHED_ENGINE_VERSION = 1
"""Version stamp of the batched kernel, recorded in BENCH_* files so a
benchmark result pins the exact batched-path generation it measured."""

BATCHES_COUNTER = counter(
    "repro.phy.batch.batches", "record batches run through the batched chain"
)
BATCH_SIZE_GAUGE = gauge(
    "repro.phy.batch.size", "records in the last demodulated batch"
)
BATCH_SIZE_HISTOGRAM = histogram(
    "repro.phy.batch.demods",
    bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
    help="batch-size distribution of batched demodulations",
)


def batch_supported(receiver: object) -> bool:
    """Whether a receiver can run on the batched kernel.

    True only for a stock :class:`ReaderReceiver` (not a subclass — an
    override of any stage method would silently be skipped) with the
    rake, equaliser, and timing-search extensions disabled. Campaigns
    use this to decide between the batched point path and the per-trial
    fallback.
    """
    return (
        type(receiver) is ReaderReceiver
        and receiver.rake_taps == 0
        and receiver.equalizer_taps == 0
        and receiver.timing_search == 0
    )


class BatchedReaderReceiver:
    """Vectorised receive chain over a stock :class:`ReaderReceiver`.

    Wraps an existing receiver configuration and demodulates a whole
    ``(trials, samples)`` block per call; per-record results are
    bitwise-equal to the wrapped receiver's :meth:`~ReaderReceiver.demodulate`
    (which itself delegates here for supported configurations).
    """

    def __init__(self, receiver: ReaderReceiver) -> None:
        if not batch_supported(receiver):
            raise ValueError(
                "batched demodulation needs a stock ReaderReceiver with "
                "rake_taps == equalizer_taps == timing_search == 0"
            )
        self.receiver = receiver

    supports = staticmethod(batch_supported)

    # -- stages -------------------------------------------------------------

    def suppress_carrier_batch(
        self, records: ComplexShaped["trials", "samples"]
    ) -> ComplexShaped["trials", "samples"]:
        """Stage 1 over the batch: mean removal + DC blocker per row."""
        rx = self.receiver
        centred = records - records.mean(axis=1, keepdims=True)
        if rx.dc_pole and 0.0 < rx.dc_pole < 1.0:
            # dc_block_fast is an lfilter along the last axis; rows are
            # filtered independently.
            centred = dc_block_fast(centred, rx.dc_pole)
        return centred

    def _estimate_cfo_batch(
        self,
        centred: ComplexShaped["trials", "samples"],
        rows: IntShaped["detected"],
        start: IntShaped["detected"],
    ) -> FloatShaped["detected"]:
        """Stage 3 over the detected rows ``rows``: CFO per record, Hz."""
        rx = self.receiver
        n = centred.shape[1]
        cfo = np.zeros(len(rows))
        template = preamble_template(rx.sps, rx.frame_config.preamble_repeats)
        length = len(template)
        lag = 13 * rx.sps  # one Barker period
        if length <= lag:
            return cfo
        can = np.flatnonzero(start + length <= n)
        if not len(can):
            return cfo
        region = centred[
            rows[can, None], start[can, None] + np.arange(length)[None, :]
        ]
        stripped = region * template[None, :]  # template is real: conj-free
        acc = (np.conj(stripped[:, :-lag]) * stripped[:, lag:]).sum(axis=1)
        # angle(0) is 0, so the |acc| == 0 guard of the scalar chain is
        # implicit here.
        cfo[can] = np.angle(acc) * rx.fs / (2.0 * np.pi * lag)
        return cfo

    def _slice_chips_batch(
        self,
        centred: ComplexShaped["trials", "samples"],
        rows: IntShaped["detected"],
        start: IntShaped["detected"],
        phase0: FloatShaped["detected"],
        cfo: FloatShaped["detected"],
    ) -> tuple:
        """Stage 4 over the detected rows ``rows`` of ``centred``.

        Returns ``(soft, n_dumps)``: soft chip values as a padded
        ``(rows, max_dumps)`` block plus the valid dump count per row.
        CFO derotation happens here, on the gathered data region only —
        the preamble samples are never consumed after CFO estimation, so
        derotating them would be wasted transcendentals. Each gathered
        sample is rotated by the same per-sample-index phasor the full-
        record form would apply, so the dumps are bitwise-unchanged.
        """
        rx = self.receiver
        k = len(rows)
        n = centred.shape[1]
        n_preamble = len(preamble_chips(rx.frame_config.preamble_repeats))
        data_start = start + n_preamble * rx.sps
        n_dumps = np.maximum(n - data_start, 0) // rx.sps
        max_dumps = int(n_dumps.max()) if k else 0
        if max_dumps == 0:
            return np.zeros((k, 0)), n_dumps

        # Integrate-and-dump: gather each row's data region (clipped
        # indices only ever land in dumps past that row's valid count,
        # which are masked below) and sum along the chip axis.
        region = max_dumps * rx.sps
        idx = np.minimum(
            data_start[:, None] + np.arange(region)[None, :], n - 1
        )
        gathered = centred[rows[:, None], idx]
        shifted = np.flatnonzero(cfo != 0.0)
        if len(shifted):
            # Derotation phase is linear in the region sample index
            # (theta_j = -2 pi cfo (n_preamble sps + j) / fs — the
            # data region starts a fixed preamble length after the
            # detected start), so the phasor is a geometric sequence
            # per row: one complex cumprod instead of a full complex
            # exp over the region. Phasor magnitude drifts ~1e-14 over
            # a frame — far below channel noise. Clipped tail indices
            # would flatten theta in the exact form, but those samples
            # only ever land in masked dumps.
            alpha = -2j * np.pi * cfo[shifted] / rx.fs
            steps = np.empty((len(shifted), region), dtype=np.complex128)
            steps[:, 0] = np.exp(alpha * (n_preamble * rx.sps))
            steps[:, 1:] = np.exp(alpha)[:, None]
            gathered[shifted] = gathered[shifted] * np.cumprod(steps, axis=1)
        dumps = gathered.reshape(k, max_dumps, rx.sps).sum(axis=2)

        gain = rx.phase_loop_gain
        if gain <= 0:
            # No tracking: one constant derotation per row.
            rot = np.cos(-phase0) + 1j * np.sin(-phase0)
            return (dumps * rot[:, None]).real, n_dumps

        # Decision-directed first-order loop: sequential over chips,
        # vector over rows. Transposed, contiguous views keep the
        # per-chip slices cache-friendly, and every step writes into a
        # preallocated buffer — the loop body is pure ufunc dispatch.
        dump_re = np.ascontiguousarray(dumps.real.T)
        dump_im = np.ascontiguousarray(dumps.imag.T)
        soft = np.empty((max_dumps, k))
        phase = phase0.copy()
        # Update gate, hoisted: a dump drives the loop only while within
        # its row's valid count and non-zero (a zero dump carries no
        # phase information; rotation cannot make one non-zero). As a
        # float mask it gates by multiply: the masked error is +-0.0 and
        # adding +-0.0 leaves the phase bitwise unchanged.
        # Loop gain folded into the gate ((g*e)*t == g*(e*t) exactly for
        # t in {0, 1}), and the rotation written via the even/odd trig
        # symmetries so the -phase negation drops out of the loop body.
        gate = (
            (np.arange(max_dumps)[:, None] < n_dumps[None, :])
            & ((dump_re != 0.0) | (dump_im != 0.0))
        ).astype(np.float64)
        gate *= gain
        cos = np.empty(k)
        sin = np.empty(k)
        t1 = np.empty(k)
        t2 = np.empty(k)
        imag = np.empty(k)
        pos = np.empty(k, dtype=bool)
        err = np.empty(k)
        for i in range(max_dumps):
            real = soft[i]
            np.cos(phase, out=cos)
            np.sin(phase, out=sin)
            # rotated = dump * exp(-j phase)
            np.multiply(dump_re[i], cos, out=t1)
            np.multiply(dump_im[i], sin, out=t2)
            np.add(t1, t2, out=real)
            np.multiply(dump_im[i], cos, out=t1)
            np.multiply(dump_re[i], sin, out=t2)
            np.subtract(t1, t2, out=imag)
            # err = atan2(imag * sign(decision), |real| + eps), gated.
            np.greater_equal(real, 0.0, out=pos)
            np.negative(imag, out=t1)
            np.absolute(real, out=t2)
            np.add(t2, 1e-30, out=t2)
            np.arctan2(np.where(pos, imag, t1), t2, out=err)
            np.multiply(err, gate[i], out=err)
            np.add(phase, err, out=phase)
        return soft.T, n_dumps

    # -- top level ----------------------------------------------------------

    def demodulate_batch(
        self, records: Shaped["trials", "samples"]
    ) -> List[DemodResult]:
        """Run the full chain on a ``(trials, samples)`` block.

        Returns one :class:`DemodResult` per row, in row (= trial)
        order; receiver metrics (demod/failure counters, the eye-SNR
        histogram) are recorded exactly as the per-record chain would.
        """
        rx = self.receiver
        records = np.asarray(records, dtype=np.complex128)
        if records.ndim != 2:
            raise ValueError("records must be a (trials, samples) array")
        trials, n = records.shape
        BATCHES_COUNTER.inc()
        BATCH_SIZE_GAUGE.set(trials)
        BATCH_SIZE_HISTOGRAM.observe(trials)
        if trials == 0:
            return []
        DEMODS_COUNTER.inc(trials)

        no_frame = DemodResult(
            frame=None,
            detection=None,
            chip_soft=np.zeros(0),
            snr_db=-math.inf,
            success=False,
        )
        results: List[DemodResult] = [no_frame] * trials
        if n == 0:
            DETECT_FAILURES_COUNTER.inc(trials)
            return results

        centred = self.suppress_carrier_batch(records)
        detection = detect_preamble_batch(
            centred,
            rx.sps,
            repeats=rx.frame_config.preamble_repeats,
            threshold=rx.preamble_threshold,
        )
        rows = np.flatnonzero(detection.ok)
        misses = trials - len(rows)
        if misses:
            DETECT_FAILURES_COUNTER.inc(misses)
        if not len(rows):
            return results

        start = detection.start_index[rows]
        cfo = np.zeros(len(rows))
        if rx.cfo_compensation:
            cfo = self._estimate_cfo_batch(centred, rows, start)

        phase0 = np.arctan2(
            detection.phase[rows].imag, detection.phase[rows].real
        )
        soft, n_dumps = self._slice_chips_batch(
            centred, rows, start, phase0, cfo
        )
        # Soft chips are the last analog quantity before hard decisions;
        # a NaN here would silently slice to arbitrary bits.
        probe_finite("phy.batch.soft_chips", soft, stage="demod")

        frames = parse_frames_batch(
            (soft >= 0.0).astype(np.int64), n_dumps, rx.frame_config
        )
        crc_failures = 0
        for j, t in enumerate(rows):
            soft_row = np.ascontiguousarray(soft[j, : n_dumps[j]])
            frame = frames[j]
            snr_db = _eye_snr_db(soft_row)
            success = bool(frame is not None and frame.crc_ok)
            if not success:
                crc_failures += 1
            if math.isfinite(snr_db):
                SNR_HISTOGRAM.observe(snr_db)
            results[t] = DemodResult(
                frame=frame,
                detection=detection.at(t),
                chip_soft=soft_row,
                snr_db=snr_db,
                success=success,
                cfo_hz=float(cfo[j]),
            )
        if crc_failures:
            CRC_FAILURES_COUNTER.inc(crc_failures)
        probe_invariant(
            "phy.batch.accounting",
            len(rows) + misses == trials and 0 <= crc_failures <= len(rows),
            f"demod accounting mismatch: {trials} records, "
            f"{len(rows)} detected, {misses} missed, "
            f"{crc_failures} CRC failures",
            stage="demod",
        )
        return results
