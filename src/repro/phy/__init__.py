"""Physical layer: framing, line coding, modulation, and the reader DSP.

The uplink is switched-reflection OOK: the node keys its Van Atta
connection per *chip*, chips carry FM0-coded bits (DC-free, so the data
survives the reader's carrier-leakage suppression), and bits are packed
into CRC-protected frames behind a Barker-sequence preamble.

The downlink (reader to node) uses pulse-interval encoding (PIE) on the
carrier so the node can decode commands with a passive envelope detector.
"""

from repro.phy.bits import (
    bits_from_bytes,
    bits_to_bytes,
    pn_sequence,
    random_bits,
)
from repro.phy.crc import crc16_ccitt, crc16_check
from repro.phy.coding import (
    LineCode,
    fm0_decode,
    fm0_encode,
    manchester_decode,
    manchester_encode,
    miller_decode,
    miller_encode,
    nrz_decode,
    nrz_encode,
)
from repro.phy.preamble import BARKER13, preamble_chips, detect_preamble
from repro.phy.fec import (
    FECScheme,
    code_rate,
    deinterleave,
    fec_decode,
    fec_encode,
    hamming74_decode,
    hamming74_encode,
    interleave,
)
from repro.phy.frame import FrameConfig, ParsedFrame, build_frame, parse_frame
from repro.phy.downlink import (
    PIEConfig,
    pie_decode,
    pie_encode,
)
from repro.phy.transmitter import ReaderTransmitter
from repro.phy.receiver import DemodResult, ReaderReceiver
from repro.phy.batch import (
    BATCHED_ENGINE_VERSION,
    BatchedReaderReceiver,
    batch_supported,
)
from repro.phy.rake import ChannelEstimate, estimate_channel, rake_combine
from repro.phy.scrambler import descramble, scramble
from repro.phy.ber import (
    ber_ook_noncoherent,
    count_bit_errors,
    required_snr_db,
)

__all__ = [
    "bits_from_bytes",
    "bits_to_bytes",
    "pn_sequence",
    "random_bits",
    "crc16_ccitt",
    "crc16_check",
    "LineCode",
    "fm0_encode",
    "fm0_decode",
    "manchester_encode",
    "manchester_decode",
    "miller_encode",
    "miller_decode",
    "nrz_encode",
    "nrz_decode",
    "BARKER13",
    "preamble_chips",
    "detect_preamble",
    "FECScheme",
    "code_rate",
    "fec_encode",
    "fec_decode",
    "hamming74_encode",
    "hamming74_decode",
    "interleave",
    "deinterleave",
    "ParsedFrame",
    "FrameConfig",
    "build_frame",
    "parse_frame",
    "PIEConfig",
    "pie_encode",
    "pie_decode",
    "ReaderTransmitter",
    "ReaderReceiver",
    "DemodResult",
    "BATCHED_ENGINE_VERSION",
    "BatchedReaderReceiver",
    "batch_supported",
    "ChannelEstimate",
    "estimate_channel",
    "rake_combine",
    "scramble",
    "descramble",
    "ber_ook_noncoherent",
    "count_bit_errors",
    "required_snr_db",
]
