"""Forward error correction for the backscatter uplink.

Long-range backscatter lives at single-digit SNR where a few corrected
bits decide whether a frame survives; the encoder must also cost the node
essentially nothing. Two codes that an FSM/MCU node can afford:

* **Hamming(7,4)** — corrects one error per 7-chip block; the classic
  low-power choice. ~1.8 dB of coding gain at BER 1e-3 for a rate-4/7
  cost.
* **Repetition-3** — majority vote; simplest possible decoder, rate 1/3.

Plus a **block interleaver**: underwater errors burst (surface-motion
fades span many chips), and an interleaver converts bursts into the
scattered single errors Hamming can fix.

All functions operate on 0/1 bit arrays and compose with the line codes
in :mod:`repro.phy.coding` (FEC first, then FM0).
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

import numpy as np

# Generator matrix for systematic Hamming(7,4): codeword = [d1..d4 p1..p3].
_G = np.array(
    [
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=np.int64,
)

# Parity-check matrix consistent with _G.
_H = np.array(
    [
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ],
    dtype=np.int64,
)

# Syndrome (as integer) -> error position in the 7-bit codeword.
_SYNDROME_TO_POSITION = {}
for _pos in range(7):
    _e = np.zeros(7, dtype=np.int64)
    _e[_pos] = 1
    _s = (_H @ _e) % 2
    _SYNDROME_TO_POSITION[int("".join(map(str, _s)), 2)] = _pos


class FECScheme(enum.Enum):
    """Available FEC schemes."""

    NONE = "none"
    HAMMING74 = "hamming74"
    REPETITION3 = "repetition3"


def _as_bits(bits: Sequence[int]) -> np.ndarray:
    arr = np.asarray(list(bits), dtype=np.int64)
    if arr.size and not ((arr == 0) | (arr == 1)).all():
        raise ValueError("bits must be 0/1")
    return arr


# --------------------------------------------------------------------------
# Hamming(7,4)
# --------------------------------------------------------------------------


def hamming74_encode(bits: Sequence[int]) -> np.ndarray:
    """Encode bits with Hamming(7,4); pads to a multiple of 4 with zeros.

    The pad is removed on decode only if the caller tracks the original
    length — framing already carries a length field, so the PHY simply
    rounds payloads up.
    """
    bits = _as_bits(bits)
    if bits.size % 4:
        bits = np.concatenate([bits, np.zeros(4 - bits.size % 4, dtype=np.int64)])
    blocks = bits.reshape(-1, 4)
    coded = (blocks @ _G) % 2
    return coded.reshape(-1)


def hamming74_decode(coded: Sequence[int]) -> Tuple[np.ndarray, int]:
    """Decode Hamming(7,4), correcting one error per block.

    Returns:
        ``(bits, corrections)`` — decoded data bits and how many blocks
        had an error corrected (an SNR telemetry signal for the reader).
    """
    coded = _as_bits(coded)
    if coded.size % 7:
        raise ValueError("Hamming(7,4) stream length must be a multiple of 7")
    blocks = coded.reshape(-1, 7).copy()
    corrections = 0
    syndromes = (blocks @ _H.T) % 2
    for i, s in enumerate(syndromes):
        key = int("".join(map(str, s)), 2)
        if key:
            pos = _SYNDROME_TO_POSITION.get(key)
            if pos is not None:
                blocks[i, pos] ^= 1
                corrections += 1
    return blocks[:, :4].reshape(-1), corrections


# --------------------------------------------------------------------------
# Repetition-3
# --------------------------------------------------------------------------


def repetition3_encode(bits: Sequence[int]) -> np.ndarray:
    """Repeat each bit three times."""
    return np.repeat(_as_bits(bits), 3)


def repetition3_decode(coded: Sequence[int]) -> Tuple[np.ndarray, int]:
    """Majority-vote decode; returns (bits, corrected_votes)."""
    coded = _as_bits(coded)
    if coded.size % 3:
        raise ValueError("repetition-3 stream length must be a multiple of 3")
    triples = coded.reshape(-1, 3)
    sums = triples.sum(axis=1)
    bits = (sums >= 2).astype(np.int64)
    # A "correction" is any non-unanimous triple.
    corrections = int(np.count_nonzero((sums != 0) & (sums != 3)))
    return bits, corrections


# --------------------------------------------------------------------------
# Interleaving
# --------------------------------------------------------------------------


def interleave(bits: Sequence[int], depth: int) -> np.ndarray:
    """Block interleaver: write row-wise into ``depth`` rows, read column-wise.

    Pads with zeros to fill the block; the deinterleaver needs the
    original length to strip the pad.
    """
    bits = _as_bits(bits)
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if depth == 1 or bits.size == 0:
        return bits.copy()
    cols = -(-bits.size // depth)
    padded = np.concatenate(
        [bits, np.zeros(depth * cols - bits.size, dtype=np.int64)]
    )
    return padded.reshape(depth, cols).T.reshape(-1)


def deinterleave(bits: Sequence[int], depth: int, original_length: int) -> np.ndarray:
    """Invert :func:`interleave`, trimming back to ``original_length``."""
    bits = _as_bits(bits)
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if depth == 1 or bits.size == 0:
        return bits[:original_length].copy()
    cols = bits.size // depth
    if cols * depth != bits.size:
        raise ValueError("interleaved length must be a multiple of depth")
    out = bits.reshape(cols, depth).T.reshape(-1)
    return out[:original_length]


# --------------------------------------------------------------------------
# Scheme dispatch
# --------------------------------------------------------------------------


def fec_encode(bits: Sequence[int], scheme: FECScheme) -> np.ndarray:
    """Encode with a named scheme (identity for NONE)."""
    if scheme is FECScheme.NONE:
        return _as_bits(bits).copy()
    if scheme is FECScheme.HAMMING74:
        return hamming74_encode(bits)
    if scheme is FECScheme.REPETITION3:
        return repetition3_encode(bits)
    raise ValueError(f"unknown FEC scheme: {scheme}")


def fec_decode(coded: Sequence[int], scheme: FECScheme) -> Tuple[np.ndarray, int]:
    """Decode with a named scheme; returns (bits, corrections)."""
    if scheme is FECScheme.NONE:
        return _as_bits(coded).copy(), 0
    if scheme is FECScheme.HAMMING74:
        return hamming74_decode(coded)
    if scheme is FECScheme.REPETITION3:
        return repetition3_decode(coded)
    raise ValueError(f"unknown FEC scheme: {scheme}")


def code_rate(scheme: FECScheme) -> float:
    """Information bits per coded bit."""
    if scheme is FECScheme.NONE:
        return 1.0
    if scheme is FECScheme.HAMMING74:
        return 4.0 / 7.0
    if scheme is FECScheme.REPETITION3:
        return 1.0 / 3.0
    raise ValueError(f"unknown FEC scheme: {scheme}")
