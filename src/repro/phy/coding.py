"""Line codes for the backscatter uplink.

The uplink rides on switched-reflection OOK, and the reader must suppress
the enormous un-modulated carrier reflection (self-interference) before it
can see data. That suppression is a notch at DC in baseband, so the line
code must be **DC-free**: FM0 (the paper's choice, and the classic
backscatter code), Manchester, and Miller are implemented; plain NRZ is
kept as the negative control the E7/E9 ablations need.

All coders map bit arrays to *chip* arrays of 0/1 (2 chips per bit for
FM0/Manchester/Miller) and are exact inverses of their decoders.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

import numpy as np


class LineCode(enum.Enum):
    """Available uplink line codes."""

    FM0 = "fm0"
    MANCHESTER = "manchester"
    MILLER = "miller"
    NRZ = "nrz"


def _as_bits(bits: Sequence[int]) -> np.ndarray:
    if isinstance(bits, np.ndarray):
        # Fast path: no Python-level list round trip. Hot in the frame
        # build/parse loops of large campaigns.
        arr = bits if bits.dtype == np.int64 else bits.astype(np.int64)
    else:
        arr = np.asarray(list(bits), dtype=np.int64)
    if arr.size and not ((arr == 0) | (arr == 1)).all():
        raise ValueError("bits must be 0/1")
    return arr


# --------------------------------------------------------------------------
# FM0 (bi-phase space)
# --------------------------------------------------------------------------


def fm0_encode(bits: Sequence[int], start_level: int = 1) -> np.ndarray:
    """FM0-encode bits into chips (2 chips/bit).

    Rules: the level always inverts at a bit boundary; a ``0`` bit inverts
    again mid-bit, a ``1`` holds through the bit.

    Args:
        bits: data bits.
        start_level: line level before the first bit (0 or 1).

    Returns:
        Chip array of length ``2 * len(bits)``.
    """
    bits = _as_bits(bits)
    if start_level not in (0, 1):
        raise ValueError("start_level must be 0 or 1")
    chips = np.empty(2 * bits.size, dtype=np.int64)
    if bits.size == 0:
        return chips
    # The line level toggles over a bit exactly when the bit is 1 (one
    # boundary inversion for a 1, boundary + mid-bit for a 0), so the
    # level entering bit i is start_level XOR (parity of bits before i).
    level_before = np.empty_like(bits)
    level_before[0] = start_level
    level_before[1:] = start_level ^ (np.cumsum(bits)[:-1] & 1)
    first = 1 - level_before  # invert at the boundary
    second = np.where(bits == 0, level_before, first)
    chips[0::2] = first
    chips[1::2] = second
    return chips


def fm0_decode(chips: Sequence[int]) -> Tuple[np.ndarray, int]:
    """Decode FM0 chips back to bits.

    A bit is ``1`` when its two chips match, ``0`` when they differ. The
    boundary-inversion rule is also checked: each violation (consecutive
    bits whose adjacent chips fail to invert) is counted as a coding error,
    which gives the receiver a free integrity signal before the CRC.

    Args:
        chips: chip array (even length).

    Returns:
        ``(bits, violations)`` — decoded bits and the number of
        boundary-rule violations observed.
    """
    chips = _as_bits(chips)
    if chips.size % 2 != 0:
        raise ValueError("FM0 chip count must be even")
    pairs = chips.reshape(-1, 2)
    bits = (pairs[:, 0] == pairs[:, 1]).astype(np.int64)
    violations = int((pairs[1:, 0] == pairs[:-1, 1]).sum())
    return bits, violations


def fm0_encode_batch(bits: np.ndarray, start_level: int = 1) -> np.ndarray:
    """FM0-encode every row of a ``(rows, n)`` bit matrix at once.

    Integer-exact against :func:`fm0_encode` row by row; the level
    parity runs as a row-wise cumulative sum. Used by the batched frame
    builder so a whole campaign point encodes in one pass.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("bits must be a (rows, n) matrix")
    if bits.size and not ((bits == 0) | (bits == 1)).all():
        raise ValueError("bits must be 0/1")
    if start_level not in (0, 1):
        raise ValueError("start_level must be 0 or 1")
    rows, n = bits.shape
    chips = np.empty((rows, 2 * n), dtype=np.int64)
    if n == 0:
        return chips
    bits = bits.astype(np.int64, copy=False)
    level_before = np.empty((rows, n), dtype=np.int64)
    level_before[:, 0] = start_level
    level_before[:, 1:] = start_level ^ (np.cumsum(bits[:, :-1], axis=1) & 1)
    first = 1 - level_before
    second = np.where(bits == 0, level_before, first)
    chips[:, 0::2] = first
    chips[:, 1::2] = second
    return chips


def fm0_decode_batch(chips: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Decode every row of a ``(rows, 2n)`` FM0 chip matrix at once.

    Integer-exact against :func:`fm0_decode` row by row. Returns
    ``(bits, violations)`` as a ``(rows, n)`` bit matrix and a
    ``(rows,)`` violation count vector.
    """
    chips = np.asarray(chips)
    if chips.ndim != 2:
        raise ValueError("chips must be a (rows, n) matrix")
    if chips.size and not ((chips == 0) | (chips == 1)).all():
        raise ValueError("bits must be 0/1")
    if chips.shape[1] % 2 != 0:
        raise ValueError("FM0 chip count must be even")
    pairs = chips.reshape(chips.shape[0], -1, 2)
    bits = (pairs[:, :, 0] == pairs[:, :, 1]).astype(np.int64)
    violations = (pairs[:, 1:, 0] == pairs[:, :-1, 1]).sum(axis=1)
    return bits, violations


# --------------------------------------------------------------------------
# Manchester (IEEE convention: 1 -> high-low, 0 -> low-high)
# --------------------------------------------------------------------------


def manchester_encode(bits: Sequence[int]) -> np.ndarray:
    """Manchester-encode bits into chips (2 chips/bit)."""
    bits = _as_bits(bits)
    chips = np.empty(2 * bits.size, dtype=np.int64)
    chips[0::2] = bits
    chips[1::2] = 1 - bits
    return chips


def manchester_decode(chips: Sequence[int]) -> np.ndarray:
    """Decode Manchester chips; raises on invalid (flat) symbols."""
    chips = _as_bits(chips)
    if chips.size % 2 != 0:
        raise ValueError("Manchester chip count must be even")
    pairs = chips.reshape(-1, 2)
    if np.any(pairs[:, 0] == pairs[:, 1]):
        raise ValueError("invalid Manchester symbol (no mid-bit transition)")
    return pairs[:, 0].copy()


# --------------------------------------------------------------------------
# Miller (delay modulation)
# --------------------------------------------------------------------------


def miller_encode(bits: Sequence[int], start_level: int = 1) -> np.ndarray:
    """Miller-encode bits into chips (2 chips/bit).

    Rules: ``1`` transitions mid-bit; ``0`` holds, except a ``0`` that
    follows a ``0`` transitions at the bit boundary.
    """
    bits = _as_bits(bits)
    if start_level not in (0, 1):
        raise ValueError("start_level must be 0 or 1")
    chips = np.empty(2 * bits.size, dtype=np.int64)
    level = start_level
    prev_bit = None
    for i, b in enumerate(bits):
        if b == 1:
            first = level
            second = 1 - level
        else:
            if prev_bit == 0:
                first = 1 - level
            else:
                first = level
            second = first
        chips[2 * i] = first
        chips[2 * i + 1] = second
        level = second
        prev_bit = int(b)
    return chips


def miller_decode(chips: Sequence[int]) -> np.ndarray:
    """Decode Miller chips: mid-bit transition = 1, none = 0."""
    chips = _as_bits(chips)
    if chips.size % 2 != 0:
        raise ValueError("Miller chip count must be even")
    pairs = chips.reshape(-1, 2)
    return (pairs[:, 0] != pairs[:, 1]).astype(np.int64)


# --------------------------------------------------------------------------
# NRZ (negative control — not DC-free)
# --------------------------------------------------------------------------


def nrz_encode(bits: Sequence[int]) -> np.ndarray:
    """NRZ: one chip per bit, identity mapping."""
    return _as_bits(bits).copy()


def nrz_decode(chips: Sequence[int]) -> np.ndarray:
    """NRZ decode: identity mapping."""
    return _as_bits(chips).copy()


# --------------------------------------------------------------------------
# Dispatch helpers
# --------------------------------------------------------------------------


def encode(bits: Sequence[int], code: LineCode) -> np.ndarray:
    """Encode with a named line code."""
    if code is LineCode.FM0:
        return fm0_encode(bits)
    if code is LineCode.MANCHESTER:
        return manchester_encode(bits)
    if code is LineCode.MILLER:
        return miller_encode(bits)
    if code is LineCode.NRZ:
        return nrz_encode(bits)
    raise ValueError(f"unknown line code: {code}")


def decode(chips: Sequence[int], code: LineCode) -> np.ndarray:
    """Decode with a named line code (FM0 violations are discarded)."""
    if code is LineCode.FM0:
        bits, _ = fm0_decode(chips)
        return bits
    if code is LineCode.MANCHESTER:
        return manchester_decode(chips)
    if code is LineCode.MILLER:
        return miller_decode(chips)
    if code is LineCode.NRZ:
        return nrz_decode(chips)
    raise ValueError(f"unknown line code: {code}")


def chips_per_bit(code: LineCode) -> int:
    """Chips consumed per data bit for a line code."""
    return 1 if code is LineCode.NRZ else 2
