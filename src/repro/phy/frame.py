"""Uplink frame format.

::

    +-----------+-----------------+-------------------------------+
    | preamble  | header (FM0)    | body (FEC + interleave + FM0) |
    | (chips)   | id:8, length:8  | payload + CRC-16              |
    +-----------+-----------------+-------------------------------+

The header stays uncoded so the parser can learn the body length before
committing to a (possibly interleaved) FEC decode; the CRC covers header
*and* payload, so header corruption is still caught. The body is
optionally FEC-encoded (Hamming(7,4) / repetition-3) and block-interleaved
— underwater errors burst with surface-motion fades, and the interleaver
turns bursts into the isolated errors the FEC can fix.

Everything is line-coded (FM0 by default) after FEC. The length field
counts payload *bytes*, capping payloads at 255 bytes — generous for
sensor readings, and short frames are how backscatter survives
time-varying channels anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy import coding
from repro.phy.bits import bits_from_bytes, bits_to_bytes
from repro.phy.coding import LineCode
from repro.phy.crc import crc16_ccitt
from repro.phy.fec import (
    FECScheme,
    code_rate,
    deinterleave,
    fec_decode,
    fec_encode,
    interleave,
)
from repro.phy.preamble import preamble_chips

MAX_PAYLOAD_BYTES = 255


@dataclass(frozen=True)
class FrameConfig:
    """Static PHY framing parameters shared by node and reader.

    Attributes:
        line_code: uplink line code.
        preamble_repeats: Barker-13 repeats in the preamble.
        fec: FEC scheme applied to the body (payload + CRC).
        interleave_depth: block-interleaver rows over the coded body
            (1 disables interleaving).
        scramble: XOR-whiten the payload bits with the frame-aligned PN
            sequence before the CRC/FEC (see :mod:`repro.phy.scrambler`).
    """

    line_code: LineCode = LineCode.FM0
    preamble_repeats: int = 2
    fec: FECScheme = FECScheme.NONE
    interleave_depth: int = 1
    scramble: bool = False

    def __post_init__(self) -> None:
        if self.interleave_depth < 1:
            raise ValueError("interleave depth must be >= 1")

    @property
    def preamble(self) -> np.ndarray:
        """Preamble chip pattern."""
        return preamble_chips(self.preamble_repeats)

    def header_bits(self) -> int:
        """Bits of uncoded header (node id + length)."""
        return 16

    def body_bits(self, payload_bytes: int) -> int:
        """Information bits in the body (payload + CRC-16)."""
        return payload_bytes * 8 + 16

    def coded_body_bits(self, payload_bytes: int) -> int:
        """Body bits after FEC expansion and interleaver padding."""
        info = self.body_bits(payload_bytes)
        if self.fec is FECScheme.HAMMING74:
            coded = -(-info // 4) * 7
        elif self.fec is FECScheme.REPETITION3:
            coded = info * 3
        else:
            coded = info
        if self.interleave_depth > 1:
            cols = -(-coded // self.interleave_depth)
            coded = self.interleave_depth * cols
        return coded

    def frame_bits(self, payload_bytes: int) -> int:
        """Line-coded bit count: header plus (coded) body."""
        return self.header_bits() + self.coded_body_bits(payload_bytes)

    def frame_chips(self, payload_bytes: int) -> int:
        """Total chips in a frame including the preamble."""
        return len(self.preamble) + self.frame_bits(payload_bytes) * coding.chips_per_bit(
            self.line_code
        )

    def effective_code_rate(self) -> float:
        """Information rate of the body coding (1.0 when FEC is off)."""
        return code_rate(self.fec)


@dataclass(frozen=True)
class ParsedFrame:
    """A successfully parsed frame.

    Attributes:
        node_id: 8-bit source identifier.
        payload: payload bytes.
        crc_ok: whether the CRC checked out.
        fm0_violations: FM0 boundary violations seen while decoding
            (0 for other line codes).
        fec_corrections: FEC blocks corrected while decoding the body.
    """

    node_id: int
    payload: bytes
    crc_ok: bool
    fm0_violations: int = 0
    fec_corrections: int = 0


def build_frame(
    node_id: int, payload: bytes, config: Optional[FrameConfig] = None
) -> np.ndarray:
    """Build the full chip sequence for a frame (preamble + coded bits).

    Args:
        node_id: 8-bit source identifier.
        payload: payload bytes (<= 255).
        config: framing parameters.

    Returns:
        Chip array ready for :func:`repro.vanatta.switching.chips_to_waveform`.
    """
    if config is None:
        config = FrameConfig()
    if not 0 <= node_id <= 255:
        raise ValueError("node_id must fit in 8 bits")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(f"payload exceeds {MAX_PAYLOAD_BYTES} bytes")

    header_bytes = bytes([node_id, len(payload)])
    header_bits = bits_from_bytes(header_bytes)
    payload_bits = bits_from_bytes(bytes(payload))
    if config.scramble:
        from repro.phy.scrambler import scramble

        payload_bits = scramble(payload_bits)
    fcs = crc16_ccitt(np.concatenate([header_bits, payload_bits]))

    body = np.concatenate([payload_bits, fcs])
    body = fec_encode(body, config.fec)
    if config.interleave_depth > 1:
        body = interleave(body, config.interleave_depth)

    coded = coding.encode(np.concatenate([header_bits, body]), config.line_code)
    return np.concatenate([config.preamble, coded])


def parse_frame(
    chips: np.ndarray, config: Optional[FrameConfig] = None
) -> Optional[ParsedFrame]:
    """Parse the coded region of a frame (chips *after* the preamble).

    The chip stream may be longer than one frame (the receiver slices on
    detection and hands over everything it has); the header's length
    field decides how much is consumed.

    Returns:
        The parsed frame, or None when the stream is too short. CRC
        failures still return a frame (with ``crc_ok=False``) so callers
        can count them.
    """
    if config is None:
        config = FrameConfig()
    cpb = coding.chips_per_bit(config.line_code)
    header_chips = config.header_bits() * cpb
    if len(chips) < header_chips:
        return None

    violations = 0
    if config.line_code is LineCode.FM0:
        header_bits, violations = coding.fm0_decode(chips[:header_chips])
    else:
        header_bits = coding.decode(chips[:header_chips], config.line_code)
    header = bits_to_bytes(header_bits)
    node_id, length = header[0], header[1]

    total_chips = config.frame_bits(length) * cpb
    if len(chips) < total_chips:
        return None
    body_chips = chips[header_chips:total_chips]
    if config.line_code is LineCode.FM0:
        # Decode the full coded region once so boundary accounting spans
        # the header/body seam correctly.
        all_bits, violations = coding.fm0_decode(chips[:total_chips])
        body_coded = all_bits[config.header_bits():]
    else:
        body_coded = coding.decode(body_chips, config.line_code)

    info_bits = config.body_bits(length)
    if config.interleave_depth > 1:
        pre_pad = config.coded_body_bits(length)
        # Length before interleaver padding (= after FEC expansion).
        if config.fec is FECScheme.HAMMING74:
            fec_len = -(-info_bits // 4) * 7
        elif config.fec is FECScheme.REPETITION3:
            fec_len = info_bits * 3
        else:
            fec_len = info_bits
        body_coded = deinterleave(body_coded[:pre_pad], config.interleave_depth, fec_len)
    body_bits, corrections = fec_decode(body_coded, config.fec)
    body_bits = body_bits[:info_bits]

    payload_bits = body_bits[: length * 8]
    fcs = body_bits[length * 8 : length * 8 + 16]
    # The CRC covers the scrambled (on-air) payload bits.
    ok = bool(
        np.array_equal(
            crc16_ccitt(np.concatenate([header_bits, payload_bits])), fcs
        )
    )
    if config.scramble:
        from repro.phy.scrambler import descramble

        payload_bits = descramble(payload_bits)
    payload = bits_to_bytes(payload_bits)
    return ParsedFrame(
        node_id=node_id,
        payload=payload,
        crc_ok=ok,
        fm0_violations=violations,
        fec_corrections=corrections,
    )
