"""Uplink frame format.

::

    +-----------+-----------------+-------------------------------+
    | preamble  | header (FM0)    | body (FEC + interleave + FM0) |
    | (chips)   | id:8, length:8  | payload + CRC-16              |
    +-----------+-----------------+-------------------------------+

The header stays uncoded so the parser can learn the body length before
committing to a (possibly interleaved) FEC decode; the CRC covers header
*and* payload, so header corruption is still caught. The body is
optionally FEC-encoded (Hamming(7,4) / repetition-3) and block-interleaved
— underwater errors burst with surface-motion fades, and the interleaver
turns bursts into the isolated errors the FEC can fix.

Everything is line-coded (FM0 by default) after FEC. The length field
counts payload *bytes*, capping payloads at 255 bytes — generous for
sensor readings, and short frames are how backscatter survives
time-varying channels anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.phy import coding
from repro.phy.bits import bits_from_bytes, bits_to_bytes
from repro.phy.coding import LineCode
from repro.phy.crc import crc16_ccitt, crc16_ccitt_batch
from repro.phy.fec import (
    FECScheme,
    code_rate,
    deinterleave,
    fec_decode,
    fec_encode,
    interleave,
)
from repro.phy.preamble import preamble_chips

MAX_PAYLOAD_BYTES = 255


@dataclass(frozen=True)
class FrameConfig:
    """Static PHY framing parameters shared by node and reader.

    Attributes:
        line_code: uplink line code.
        preamble_repeats: Barker-13 repeats in the preamble.
        fec: FEC scheme applied to the body (payload + CRC).
        interleave_depth: block-interleaver rows over the coded body
            (1 disables interleaving).
        scramble: XOR-whiten the payload bits with the frame-aligned PN
            sequence before the CRC/FEC (see :mod:`repro.phy.scrambler`).
    """

    line_code: LineCode = LineCode.FM0
    preamble_repeats: int = 2
    fec: FECScheme = FECScheme.NONE
    interleave_depth: int = 1
    scramble: bool = False

    def __post_init__(self) -> None:
        if self.interleave_depth < 1:
            raise ValueError("interleave depth must be >= 1")

    @property
    def preamble(self) -> np.ndarray:
        """Preamble chip pattern."""
        return preamble_chips(self.preamble_repeats)

    def header_bits(self) -> int:
        """Bits of uncoded header (node id + length)."""
        return 16

    def body_bits(self, payload_bytes: int) -> int:
        """Information bits in the body (payload + CRC-16)."""
        return payload_bytes * 8 + 16

    def coded_body_bits(self, payload_bytes: int) -> int:
        """Body bits after FEC expansion and interleaver padding."""
        info = self.body_bits(payload_bytes)
        if self.fec is FECScheme.HAMMING74:
            coded = -(-info // 4) * 7
        elif self.fec is FECScheme.REPETITION3:
            coded = info * 3
        else:
            coded = info
        if self.interleave_depth > 1:
            cols = -(-coded // self.interleave_depth)
            coded = self.interleave_depth * cols
        return coded

    def frame_bits(self, payload_bytes: int) -> int:
        """Line-coded bit count: header plus (coded) body."""
        return self.header_bits() + self.coded_body_bits(payload_bytes)

    def frame_chips(self, payload_bytes: int) -> int:
        """Total chips in a frame including the preamble."""
        return len(self.preamble) + self.frame_bits(payload_bytes) * coding.chips_per_bit(
            self.line_code
        )

    def effective_code_rate(self) -> float:
        """Information rate of the body coding (1.0 when FEC is off)."""
        return code_rate(self.fec)


@dataclass(frozen=True)
class ParsedFrame:
    """A successfully parsed frame.

    Attributes:
        node_id: 8-bit source identifier.
        payload: payload bytes.
        crc_ok: whether the CRC checked out.
        fm0_violations: FM0 boundary violations seen while decoding
            (0 for other line codes).
        fec_corrections: FEC blocks corrected while decoding the body.
    """

    node_id: int
    payload: bytes
    crc_ok: bool
    fm0_violations: int = 0
    fec_corrections: int = 0


def build_frame(
    node_id: int, payload: bytes, config: Optional[FrameConfig] = None
) -> np.ndarray:
    """Build the full chip sequence for a frame (preamble + coded bits).

    Args:
        node_id: 8-bit source identifier.
        payload: payload bytes (<= 255).
        config: framing parameters.

    Returns:
        Chip array ready for :func:`repro.vanatta.switching.chips_to_waveform`.
    """
    if config is None:
        config = FrameConfig()
    if not 0 <= node_id <= 255:
        raise ValueError("node_id must fit in 8 bits")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(f"payload exceeds {MAX_PAYLOAD_BYTES} bytes")

    header_bytes = bytes([node_id, len(payload)])
    header_bits = bits_from_bytes(header_bytes)
    payload_bits = bits_from_bytes(bytes(payload))
    if config.scramble:
        from repro.phy.scrambler import scramble

        payload_bits = scramble(payload_bits)
    fcs = crc16_ccitt(np.concatenate([header_bits, payload_bits]))

    body = np.concatenate([payload_bits, fcs])
    body = fec_encode(body, config.fec)
    if config.interleave_depth > 1:
        body = interleave(body, config.interleave_depth)

    coded = coding.encode(np.concatenate([header_bits, body]), config.line_code)
    return np.concatenate([config.preamble, coded])


def _batchable(config: FrameConfig) -> bool:
    """Whether the vectorised frame codecs cover this config."""
    return (
        config.line_code is LineCode.FM0
        and config.fec is FECScheme.NONE
        and config.interleave_depth == 1
        and not config.scramble
    )


def build_frames_batch(
    node_id: int,
    payloads: Sequence[bytes],
    config: Optional[FrameConfig] = None,
) -> np.ndarray:
    """Build the chip sequences of many frames as one ``(rows, chips)`` block.

    Integer-exact against :func:`build_frame` row by row. Payloads must
    all be the same length (one campaign point transmits one frame
    shape); the default FM0/no-FEC/no-interleave config runs fully
    vectorised — CRC, FM0 encode, and bit packing sweep the row axis —
    and any other config falls back to per-frame :func:`build_frame`.

    Raises:
        ValueError: if the payload lengths differ.
    """
    if config is None:
        config = FrameConfig()
    payloads = [bytes(p) for p in payloads]
    if len({len(p) for p in payloads}) > 1:
        raise ValueError("all payloads in a batch must frame to one length")
    if not payloads:
        return np.zeros((0, 0), dtype=np.int64)
    if not _batchable(config):
        return np.stack(
            [build_frame(node_id, p, config) for p in payloads]
        )
    if not 0 <= node_id <= 255:
        raise ValueError("node_id must fit in 8 bits")
    length = len(payloads[0])
    if length > MAX_PAYLOAD_BYTES:
        raise ValueError(f"payload exceeds {MAX_PAYLOAD_BYTES} bytes")
    rows = len(payloads)

    header_bits = bits_from_bytes(bytes([node_id, length]))
    header = np.broadcast_to(header_bits, (rows, 16))
    if length:
        raw = np.frombuffer(b"".join(payloads), dtype=np.uint8)
        payload_bits = np.unpackbits(raw.reshape(rows, length), axis=1).astype(
            np.int64
        )
    else:
        payload_bits = np.zeros((rows, 0), dtype=np.int64)
    fcs = crc16_ccitt_batch(np.concatenate([header, payload_bits], axis=1))
    coded = coding.fm0_encode_batch(
        np.concatenate([header, payload_bits, fcs], axis=1)
    )
    preamble = np.broadcast_to(config.preamble, (rows, len(config.preamble)))
    return np.concatenate([preamble, coded], axis=1)


def parse_frames_batch(
    chips: np.ndarray,
    n_chips: np.ndarray,
    config: Optional[FrameConfig] = None,
) -> List[Optional[ParsedFrame]]:
    """Parse many frames' coded regions at once.

    ``chips`` is a padded ``(rows, max_chips)`` 0/1 matrix; row ``t`` is
    valid through ``n_chips[t]``. Result ``t`` equals
    ``parse_frame(chips[t, :n_chips[t]], config)`` exactly — the chip
    decode, CRC, and packing are integer operations, vectorised here
    over rows grouped by their decoded length byte (corrupt headers can
    disagree on length, so each distinct length parses as its own
    sub-batch). Configs outside the vectorised set (non-FM0, FEC,
    interleaving, scrambling) fall back to per-row :func:`parse_frame`.
    """
    if config is None:
        config = FrameConfig()
    chips = np.asarray(chips)
    n_chips = np.asarray(n_chips)
    rows = chips.shape[0]
    results: List[Optional[ParsedFrame]] = [None] * rows
    if not _batchable(config):
        return [
            parse_frame(chips[t, : n_chips[t]], config) for t in range(rows)
        ]
    header_chips = config.header_bits() * 2
    have_header = np.flatnonzero(n_chips >= header_chips)
    if not len(have_header):
        return results
    hdr_pairs = chips[have_header, :header_chips].reshape(-1, 16, 2)
    header_bits = (hdr_pairs[:, :, 0] == hdr_pairs[:, :, 1]).astype(np.int64)
    header_bytes = np.packbits(header_bits.astype(np.uint8), axis=1)
    node_ids = header_bytes[:, 0]
    lengths = header_bytes[:, 1]
    for length in np.unique(lengths).tolist():
        total_chips = config.frame_bits(length) * 2
        sel = np.flatnonzero(
            (lengths == length) & (n_chips[have_header] >= total_chips)
        )
        if not len(sel):
            continue
        g_rows = have_header[sel]
        pairs = chips[g_rows, :total_chips].reshape(len(sel), -1, 2)
        all_bits = (pairs[:, :, 0] == pairs[:, :, 1]).astype(np.int64)
        violations = (pairs[:, 1:, 0] == pairs[:, :-1, 1]).sum(axis=1)
        payload_bits = all_bits[:, 16 : 16 + length * 8]
        fcs = all_bits[:, 16 + length * 8 : 16 + length * 8 + 16]
        crc = crc16_ccitt_batch(
            np.concatenate([all_bits[:, :16], payload_bits], axis=1)
        )
        ok = (crc == fcs).all(axis=1)
        packed = (
            np.packbits(payload_bits.astype(np.uint8), axis=1)
            if length
            else None
        )
        for j, t in enumerate(g_rows.tolist()):
            results[t] = ParsedFrame(
                node_id=int(node_ids[sel[j]]),
                payload=packed[j].tobytes() if packed is not None else b"",
                crc_ok=bool(ok[j]),
                fm0_violations=int(violations[j]),
                fec_corrections=0,
            )
    return results


def parse_frame(
    chips: np.ndarray, config: Optional[FrameConfig] = None
) -> Optional[ParsedFrame]:
    """Parse the coded region of a frame (chips *after* the preamble).

    The chip stream may be longer than one frame (the receiver slices on
    detection and hands over everything it has); the header's length
    field decides how much is consumed.

    Returns:
        The parsed frame, or None when the stream is too short. CRC
        failures still return a frame (with ``crc_ok=False``) so callers
        can count them.
    """
    if config is None:
        config = FrameConfig()
    cpb = coding.chips_per_bit(config.line_code)
    header_chips = config.header_bits() * cpb
    if len(chips) < header_chips:
        return None

    violations = 0
    if config.line_code is LineCode.FM0:
        header_bits, violations = coding.fm0_decode(chips[:header_chips])
    else:
        header_bits = coding.decode(chips[:header_chips], config.line_code)
    header = bits_to_bytes(header_bits)
    node_id, length = header[0], header[1]

    total_chips = config.frame_bits(length) * cpb
    if len(chips) < total_chips:
        return None
    body_chips = chips[header_chips:total_chips]
    if config.line_code is LineCode.FM0:
        # Decode the full coded region once so boundary accounting spans
        # the header/body seam correctly.
        all_bits, violations = coding.fm0_decode(chips[:total_chips])
        body_coded = all_bits[config.header_bits():]
    else:
        body_coded = coding.decode(body_chips, config.line_code)

    info_bits = config.body_bits(length)
    if config.interleave_depth > 1:
        pre_pad = config.coded_body_bits(length)
        # Length before interleaver padding (= after FEC expansion).
        if config.fec is FECScheme.HAMMING74:
            fec_len = -(-info_bits // 4) * 7
        elif config.fec is FECScheme.REPETITION3:
            fec_len = info_bits * 3
        else:
            fec_len = info_bits
        body_coded = deinterleave(body_coded[:pre_pad], config.interleave_depth, fec_len)
    body_bits, corrections = fec_decode(body_coded, config.fec)
    body_bits = body_bits[:info_bits]

    payload_bits = body_bits[: length * 8]
    fcs = body_bits[length * 8 : length * 8 + 16]
    # The CRC covers the scrambled (on-air) payload bits.
    ok = bool(
        np.array_equal(
            crc16_ccitt(np.concatenate([header_bits, payload_bits])), fcs
        )
    )
    if config.scramble:
        from repro.phy.scrambler import descramble

        payload_bits = descramble(payload_bits)
    payload = bits_to_bytes(payload_bits)
    return ParsedFrame(
        node_id=node_id,
        payload=payload,
        crc_ok=ok,
        fm0_violations=violations,
        fec_corrections=corrections,
    )
