"""Payload scrambling (whitening).

Sensor payloads are pathological bit patterns: long runs of zeros
(idle registers), repeated bytes (stuck readings). FM0 bounds chip runs
regardless, but biased *bit* statistics still shape the spectrum and — in
long frames — starve the decision-directed loops of transitions on one
side of the eye. XOR-ing the payload with a fixed PN sequence whitens it
at zero hardware cost (the node's LFSR already exists for slot draws),
and descrambling is the same XOR.

Scrambling is self-synchronising here because frames are short and the
PN offset restarts at every frame.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.phy.bits import pn_sequence

SCRAMBLER_TAPS = (7, 6)
SCRAMBLER_SEED = 0b1011011


def scramble(bits: Sequence[int]) -> np.ndarray:
    """XOR bits with the frame-aligned PN sequence."""
    bits = np.asarray(list(bits), dtype=np.int64)
    if bits.size and not ((bits == 0) | (bits == 1)).all():
        raise ValueError("bits must be 0/1")
    pn = pn_sequence(bits.size, taps=SCRAMBLER_TAPS, seed=SCRAMBLER_SEED)
    return bits ^ pn


def descramble(bits: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`scramble` (XOR is an involution)."""
    return scramble(bits)


def run_length_max(bits: Sequence[int]) -> int:
    """Longest run of identical bits (0 for an empty stream)."""
    bits = np.asarray(list(bits), dtype=np.int64)
    if bits.size == 0:
        return 0
    boundaries = np.flatnonzero(np.diff(bits) != 0)
    edges = np.concatenate([[-1], boundaries, [bits.size - 1]])
    return int(np.diff(edges).max())


def bias(bits: Sequence[int]) -> float:
    """How far the ones-density sits from 1/2 (0 = perfectly balanced)."""
    bits = np.asarray(list(bits), dtype=np.int64)
    if bits.size == 0:
        return 0.0
    return abs(float(bits.mean()) - 0.5)
