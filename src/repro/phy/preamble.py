"""Preamble generation and detection.

The uplink frame leads with a fixed chip pattern built from the Barker-13
sequence: Barker codes have the lowest possible correlation sidelobes, so
a normalised correlator can pick the frame start out of noise at the low
SNRs the 300 m experiments operate at. The pattern is transmitted at the
chip rate like the data, so a detection also pins chip timing and gives a
phase reference for coherent slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.dsp.correlate import (
    normalized_correlation,
    normalized_correlation_batch,
    peak_to_sidelobe,
)

BARKER13 = np.array([1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=np.int64)
"""The length-13 Barker code (as 0/1 chips)."""


@lru_cache(maxsize=16)
def preamble_chips(repeats: int = 2) -> np.ndarray:
    """The frame preamble: ``repeats`` Barker-13 codes back to back.

    Two repeats (26 chips) is the default: long enough for a -3 dB-SNR
    detection, short enough to cost only ~26 ms at 1 kchip/s.

    The returned array is memoized and marked read-only — every frame
    build and every demodulation asks for the same pattern, so it is
    built once per (repeats), not once per trial.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    chips = np.tile(BARKER13, repeats)
    chips.setflags(write=False)
    return chips


@lru_cache(maxsize=32)
def preamble_template(
    samples_per_chip: int, repeats: int = 2, depth: float = 1.0
) -> np.ndarray:
    """Sample-rate correlation template (zero-mean, +-depth/2 levels).

    Zero-mean because the receiver strips DC before correlating; the
    template must live in the same subspace or the correlation peak
    shifts. Memoized (read-only) like :func:`preamble_chips`.
    """
    chips = preamble_chips(repeats)
    # Barker-13 is unbalanced (9 ones / 4 zeros): subtract the true mean,
    # not 0.5, or the template leaks into the suppressed-DC subspace.
    levels = (chips.astype(np.float64) - chips.mean()) * depth
    template = np.repeat(levels, samples_per_chip)
    template.setflags(write=False)
    return template


@dataclass(frozen=True)
class PreambleDetection:
    """Result of a preamble search.

    Attributes:
        start_index: sample index where the preamble starts.
        score: normalised correlation in [0, 1] at the peak.
        psl: peak-to-sidelobe ratio of the correlation.
        phase: complex rotation of the received preamble relative to the
            template (use ``conj(phase)/|phase|`` to derotate the frame).
    """

    start_index: int
    score: float
    psl: float
    phase: complex


def detect_preamble(
    signal: np.ndarray,
    samples_per_chip: int,
    repeats: int = 2,
    threshold: float = 0.5,
) -> Optional[PreambleDetection]:
    """Search a baseband record for the frame preamble.

    Correlation is done per Barker repeat and combined *non-coherently*
    (sum of magnitudes): a carrier offset that rotates the signal across
    the full preamble barely rotates it within one 13-chip segment, so
    detection stays solid through the Doppler range the CFO estimator
    can fix (~+-50 Hz at the default rates).

    Args:
        signal: complex baseband record (DC already suppressed).
        samples_per_chip: receiver oversampling per chip.
        repeats: Barker repeats the transmitter used.
        threshold: minimum normalised correlation to accept.

    Returns:
        The detection, or None when nothing clears the threshold.
    """
    segment = preamble_template(samples_per_chip, repeats=1)
    period = len(segment)
    total_len = period * repeats
    if len(signal) < total_len:
        return None
    seg_corr = normalized_correlation(signal, segment.astype(np.complex128))
    if len(seg_corr) == 0:
        return None

    # Combined score at start k: mean of per-segment scores.
    n_starts = len(signal) - total_len + 1
    if n_starts <= 0:
        return None
    combined = np.zeros(n_starts)
    for r in range(repeats):
        combined += seg_corr[r * period : r * period + n_starts]
    combined /= repeats

    peak = int(np.argmax(combined))
    score = float(combined[peak])
    if score < threshold:
        return None
    raw = np.vdot(
        segment.astype(np.complex128),
        np.asarray(signal[peak : peak + period], dtype=np.complex128),
    )
    return PreambleDetection(
        start_index=peak,
        score=score,
        psl=peak_to_sidelobe(combined, guard=samples_per_chip),
        phase=complex(raw),
    )


@dataclass(frozen=True)
class BatchDetection:
    """Per-record preamble search results for a batch of records.

    Column ``t`` of every array describes record ``t``; fields of rows
    where ``ok`` is False are zero and must be ignored.
    """

    ok: np.ndarray
    start_index: np.ndarray
    score: np.ndarray
    psl: np.ndarray
    phase: np.ndarray

    def at(self, t: int) -> Optional[PreambleDetection]:
        """Record ``t``'s detection in the scalar result type."""
        if not self.ok[t]:
            return None
        return PreambleDetection(
            start_index=int(self.start_index[t]),
            score=float(self.score[t]),
            psl=float(self.psl[t]),
            phase=complex(self.phase[t]),
        )


def detect_preamble_batch(
    signals: np.ndarray,
    samples_per_chip: int,
    repeats: int = 2,
    threshold: float = 0.5,
) -> BatchDetection:
    """Search a ``(trials, n)`` batch of records for the frame preamble.

    The batched counterpart of :func:`detect_preamble`: the per-segment
    correlations run as one FFT-based batch
    (:func:`repro.dsp.correlate.normalized_correlation_batch`) and the
    non-coherent combining, peak pick, and threshold test vectorize over
    the trial axis. The combining and phase-reference arithmetic uses
    row-wise elementwise ops and last-axis reductions only, so each
    record's result is independent of its batch neighbours.
    """
    signals = np.asarray(signals, dtype=np.complex128)
    if signals.ndim != 2:
        raise ValueError("signals must be a (trials, n) array")
    trials, n = signals.shape
    empty = BatchDetection(
        ok=np.zeros(trials, dtype=bool),
        start_index=np.zeros(trials, dtype=np.int64),
        score=np.zeros(trials),
        psl=np.zeros(trials),
        phase=np.zeros(trials, dtype=np.complex128),
    )
    segment = preamble_template(samples_per_chip, repeats=1)
    period = len(segment)
    total_len = period * repeats
    if trials == 0 or n < total_len:
        return empty
    seg_corr = normalized_correlation_batch(signals, segment)
    n_starts = n - total_len + 1
    if seg_corr.shape[1] == 0 or n_starts <= 0:
        return empty

    combined = np.zeros((trials, n_starts))
    for r in range(repeats):
        combined += seg_corr[:, r * period : r * period + n_starts]
    combined /= repeats

    peak = np.argmax(combined, axis=1)
    score = combined[np.arange(trials), peak]
    ok = score >= threshold
    start_index = np.where(ok, peak, 0).astype(np.int64)
    psl = np.zeros(trials)
    phase = np.zeros(trials, dtype=np.complex128)
    hits = np.flatnonzero(ok)
    if len(hits):
        # Phase reference: the (real) segment against each record's
        # preamble window, reduced along the sample axis.
        gather = signals[
            hits[:, None], peak[hits, None] + np.arange(period)[None, :]
        ]
        phase[hits] = (segment[None, :] * gather).sum(axis=1)
        # Peak-to-sidelobe, vectorised: blank each row's guard window
        # (correlation scores are non-negative, so -1 never wins a max)
        # and take the row max as the sidelobe. Matches
        # :func:`repro.dsp.correlate.peak_to_sidelobe` row by row: the
        # peak/sidelobe division is the same float op, and an all-
        # blanked or all-zero sidelobe maps to inf either way.
        masked = combined[hits].copy()
        guard_span = (
            np.abs(np.arange(n_starts)[None, :] - peak[hits, None])
            <= samples_per_chip
        )
        masked[guard_span] = -1.0
        side = masked.max(axis=1)
        with np.errstate(divide="ignore"):
            psl[hits] = np.where(
                side > 0.0,
                score[hits] / np.where(side > 0.0, side, 1.0),
                np.inf,
            )
    return BatchDetection(
        ok=ok,
        start_index=start_index,
        score=np.where(ok, score, 0.0),
        psl=psl,
        phase=phase,
    )
