"""CRC-16/CCITT-FALSE frame check sequence.

Polynomial 0x1021, initial value 0xFFFF, no reflection, no final XOR —
the variant used by most low-power telemetry framings. Implemented over
bit arrays because the PHY works in bits end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_POLY = 0x1021
_INIT = 0xFFFF


def _build_table() -> tuple:
    """256-entry byte-at-a-time table from the bit recurrence.

    Entry ``b`` is the register after shifting the byte ``b`` through
    the MSB-first bit loop with a zero starting register, so one table
    step is integer-exact against eight bit steps.
    """
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()
_TABLE_NP = np.array(_TABLE, dtype=np.int64)


def _as_bit_array(bits: Sequence[int]) -> np.ndarray:
    if isinstance(bits, np.ndarray):
        arr = bits if bits.dtype == np.int64 else bits.astype(np.int64)
    else:
        arr = np.asarray(list(bits), dtype=np.int64)
    if arr.size and not ((arr == 0) | (arr == 1)).all():
        raise ValueError("bits must be 0/1")
    return arr


def crc16_ccitt(bits: Sequence[int]) -> np.ndarray:
    """CRC-16/CCITT-FALSE of a bit sequence, returned as 16 bits (MSB first)."""
    bits = _as_bit_array(bits)
    crc = _INIT
    # Whole bytes go through the table (packbits is MSB-first, matching
    # the bit loop); a sub-byte tail finishes bit by bit.
    full = bits.size & ~7
    if full:
        for byte in np.packbits(bits[:full].astype(np.uint8)).tolist():
            crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    for b in bits[full:].tolist():
        crc ^= b << 15
        if crc & 0x8000:
            crc = ((crc << 1) ^ _POLY) & 0xFFFF
        else:
            crc = (crc << 1) & 0xFFFF
    return np.array([(crc >> (15 - i)) & 1 for i in range(16)], dtype=np.int64)


def crc16_ccitt_batch(bits: np.ndarray) -> np.ndarray:
    """CRC-16/CCITT-FALSE of every row of a ``(rows, n)`` bit matrix.

    Integer-exact against :func:`crc16_ccitt` row by row — the register
    recurrence runs vectorised over the row axis, one table step per
    byte column — so the batched frame codecs can use it without any
    parity caveat. Returns a ``(rows, 16)`` bit matrix (MSB first).
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("bits must be a (rows, n) matrix")
    if bits.size and not ((bits == 0) | (bits == 1)).all():
        raise ValueError("bits must be 0/1")
    rows, n = bits.shape
    crc = np.full(rows, _INIT, dtype=np.int64)
    full = n & ~7
    if full:
        data = np.packbits(bits[:, :full].astype(np.uint8), axis=1).astype(
            np.int64
        )
        for j in range(data.shape[1]):
            crc = ((crc << 8) & 0xFFFF) ^ _TABLE_NP[((crc >> 8) ^ data[:, j]) & 0xFF]
    for j in range(full, n):
        crc = crc ^ (bits[:, j].astype(np.int64) << 15)
        crc = np.where(
            crc & 0x8000, ((crc << 1) ^ _POLY) & 0xFFFF, (crc << 1) & 0xFFFF
        )
    return ((crc[:, None] >> (15 - np.arange(16))[None, :]) & 1).astype(np.int64)


def crc16_check(bits_with_fcs: Sequence[int]) -> bool:
    """Verify a bit sequence whose last 16 bits are its CRC."""
    bits = _as_bit_array(bits_with_fcs)
    if bits.size < 16:
        return False
    payload, fcs = bits[:-16], bits[-16:]
    return bool(np.array_equal(crc16_ccitt(payload), fcs))
