"""CRC-16/CCITT-FALSE frame check sequence.

Polynomial 0x1021, initial value 0xFFFF, no reflection, no final XOR —
the variant used by most low-power telemetry framings. Implemented over
bit arrays because the PHY works in bits end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_POLY = 0x1021
_INIT = 0xFFFF


def crc16_ccitt(bits: Sequence[int]) -> np.ndarray:
    """CRC-16/CCITT-FALSE of a bit sequence, returned as 16 bits (MSB first)."""
    bits = np.asarray(list(bits), dtype=np.int64)
    if bits.size and not ((bits == 0) | (bits == 1)).all():
        raise ValueError("bits must be 0/1")
    crc = _INIT
    for b in bits:
        crc ^= int(b) << 15
        if crc & 0x8000:
            crc = ((crc << 1) ^ _POLY) & 0xFFFF
        else:
            crc = (crc << 1) & 0xFFFF
    return np.array([(crc >> (15 - i)) & 1 for i in range(16)], dtype=np.int64)


def crc16_check(bits_with_fcs: Sequence[int]) -> bool:
    """Verify a bit sequence whose last 16 bits are its CRC."""
    bits = np.asarray(list(bits_with_fcs), dtype=np.int64)
    if bits.size < 16:
        return False
    payload, fcs = bits[:-16], bits[-16:]
    return bool(np.array_equal(crc16_ccitt(payload), fcs))
