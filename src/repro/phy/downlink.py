"""Downlink: pulse-interval encoding (PIE) of reader commands.

The node has no radio — its downlink receiver is a passive envelope
detector plus a comparator, so commands must be decodable from carrier
amplitude timing alone. PIE encodes each bit as a high interval followed
by a fixed low pulse; a ``1`` holds high longer than a ``0``. The scheme
is self-clocking (every bit ends with the same low pulse) and keeps the
carrier mostly ON so the node harvests through its own downlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class PIEConfig:
    """PIE timing parameters.

    Attributes:
        tari_s: reference interval ("Type A Reference Interval") — the
            high time of a data-0, seconds.
        one_ratio: data-1 high time as a multiple of tari (1.5–2 typical).
        low_s: the fixed OFF pulse ending every bit, seconds.
    """

    tari_s: float = 2e-3
    one_ratio: float = 2.0
    low_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.tari_s <= 0 or self.low_s <= 0:
            raise ValueError("intervals must be positive")
        if self.one_ratio <= 1.0:
            raise ValueError("one_ratio must exceed 1")

    def bit_duration_s(self, bit: int) -> float:
        """Total duration of one encoded bit, seconds."""
        high = self.tari_s * (self.one_ratio if bit else 1.0)
        return high + self.low_s

    def average_bitrate_bps(self) -> float:
        """Bitrate assuming equiprobable bits."""
        avg = (self.bit_duration_s(0) + self.bit_duration_s(1)) / 2.0
        return 1.0 / avg


def pie_encode(
    bits: Sequence[int], fs: float, config: Optional[PIEConfig] = None
) -> np.ndarray:
    """Encode bits into a carrier amplitude envelope (0/1 values).

    Args:
        bits: command bits.
        fs: sample rate of the envelope, Hz.
        config: PIE timing.

    Returns:
        Real array of 0.0/1.0 amplitude values.
    """
    if config is None:
        config = PIEConfig()
    segments = []
    low_n = max(int(round(config.low_s * fs)), 1)
    for b in bits:
        if b not in (0, 1):
            raise ValueError("bits must be 0/1")
        high_s = config.tari_s * (config.one_ratio if b else 1.0)
        high_n = max(int(round(high_s * fs)), 1)
        segments.append(np.ones(high_n))
        segments.append(np.zeros(low_n))
    if not segments:
        return np.zeros(0)
    return np.concatenate(segments)


def pie_decode(
    envelope: np.ndarray,
    fs: float,
    config: Optional[PIEConfig] = None,
    threshold: float = 0.5,
) -> np.ndarray:
    """Decode a PIE envelope back to bits (the node's comparator + timer).

    Measures the duration of each high interval between low pulses and
    thresholds at the midpoint between the 0 and 1 durations.

    Args:
        envelope: received amplitude envelope (any positive scale).
        fs: sample rate, Hz.
        config: PIE timing used by the encoder.
        threshold: comparator level as a fraction of the envelope maximum.

    Returns:
        Decoded bit array (possibly empty).
    """
    if config is None:
        config = PIEConfig()
    env = np.asarray(envelope, dtype=np.float64)
    if env.size == 0:
        return np.zeros(0, dtype=np.int64)
    peak = env.max()
    if peak <= 0:
        return np.zeros(0, dtype=np.int64)
    digital = env > threshold * peak

    # Run-length extract the high intervals.
    bits = []
    decision_s = config.tari_s * (1.0 + config.one_ratio) / 2.0
    run_start = None
    for i, level in enumerate(digital):
        if level and run_start is None:
            run_start = i
        elif not level and run_start is not None:
            duration = (i - run_start) / fs
            bits.append(1 if duration > decision_s else 0)
            run_start = None
    # A trailing high run with no terminating low pulse is not a complete
    # bit; PIE always ends bits with the low pulse, so it is discarded.
    return np.array(bits, dtype=np.int64)
