"""Rake combining: turning multipath from an enemy into a gain.

Shallow-water channels deliver the frame several times — direct path
plus surface/bottom echoes a few hundred microseconds apart. A plain
slicer treats the echoes as ISI; a rake receiver estimates the tap gains
from the known preamble and coherently recombines the delayed copies
(maximal-ratio combining), recovering the echo energy.

Taps are sample-spaced. The estimator correlates the received preamble
against the template at successive delays; MRC then filters the record
with the time-reversed conjugate channel estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.phy.preamble import PreambleDetection, preamble_template


@dataclass(frozen=True)
class ChannelEstimate:
    """Sample-spaced channel taps estimated from the preamble.

    Attributes:
        taps: complex tap gains, tap 0 at the detected arrival.
        noise_floor: magnitude below which taps were zeroed.
    """

    taps: np.ndarray
    noise_floor: float

    @property
    def active_taps(self) -> int:
        """Taps that survived the noise gate."""
        return int(np.count_nonzero(self.taps))

    def delay_spread_samples(self) -> int:
        """Index of the last active tap (0 when only the main tap)."""
        nz = np.flatnonzero(self.taps)
        return int(nz[-1]) if len(nz) else 0


def estimate_channel(
    centred: np.ndarray,
    detection: PreambleDetection,
    samples_per_chip: int,
    repeats: int = 2,
    max_taps: int = 16,
    gate: float = 0.25,
) -> ChannelEstimate:
    """Estimate sample-spaced taps from the received preamble.

    Correlates the template at successive one-sample delays after the
    detected arrival. Taps below ``gate`` of the strongest tap are zeroed
    (they would combine more noise than signal).

    Args:
        centred: DC-suppressed baseband record.
        detection: the preamble detection anchoring tap 0.
        samples_per_chip: receiver oversampling.
        repeats: preamble repeats in the template.
        max_taps: how many delays to probe.
        gate: relative magnitude gate for keeping a tap.

    Returns:
        The channel estimate (normalised to unit main tap energy).
    """
    template = preamble_template(samples_per_chip, repeats)
    energy = float(np.sum(template**2))
    start = detection.start_index
    taps = np.zeros(max_taps, dtype=np.complex128)
    for k in range(max_taps):
        seg = centred[start + k : start + k + len(template)]
        if len(seg) < len(template):
            break
        taps[k] = np.dot(template, np.asarray(seg)) / energy
    peak = np.abs(taps).max()
    if peak <= 0:
        return ChannelEstimate(taps=taps, noise_floor=0.0)
    floor = gate * peak
    gated = np.where(np.abs(taps) >= floor, taps, 0.0)
    # The chip-rate template cannot resolve delays finer than a chip,
    # and it leaves an autocorrelation sidelobe one chip either side of
    # every real tap. Keep only taps that are local maxima within a
    # +-1-chip window: sidelobes (always weaker than their parent) are
    # pruned, genuine echoes >= 1.5 chips away survive.
    pruned = np.zeros_like(gated)
    mags = np.abs(gated)
    for k in range(len(gated)):
        lo = max(0, k - samples_per_chip)
        hi = min(len(gated), k + samples_per_chip + 1)
        if mags[k] > 0 and mags[k] == mags[lo:hi].max():
            pruned[k] = gated[k]
    return ChannelEstimate(taps=pruned, noise_floor=floor)


def rake_combine(
    centred: np.ndarray,
    estimate: ChannelEstimate,
) -> np.ndarray:
    """Maximal-ratio combine the delayed copies of the record.

    ``y[n] = sum_k conj(h[k]) x[n + k] / sum_k |h[k]|^2`` — each echo is
    advanced back to the main arrival, derotated by its tap phase, and
    weighted by its amplitude.

    Args:
        centred: DC-suppressed baseband record.
        estimate: taps from :func:`estimate_channel`.

    Returns:
        Combined record, same length (tail zero-padded).
    """
    centred = np.asarray(centred, dtype=np.complex128)
    total = float(np.sum(np.abs(estimate.taps) ** 2))
    if total <= 0:
        return centred.copy()
    out = np.zeros_like(centred)
    for k, h in enumerate(estimate.taps):
        if h == 0:
            continue
        shifted = np.empty_like(centred)
        if k == 0:
            shifted[:] = centred
        else:
            shifted[:-k] = centred[k:]
            shifted[-k:] = 0.0
        out += np.conj(h) * shifted
    return out / total
