"""The reader's receive chain.

Stages, in order:

1. **Self-interference suppression.** The hydrophone hears the projector's
   own carrier and every static reflection ~40–60 dB above the data. In
   baseband all of that is a complex constant, so subtracting the record
   mean (plus a slow DC-blocking pole for drift) removes it. This is why
   the line code must be DC-free.
2. **Preamble search.** Normalised correlation against the Barker
   template; the peak pins the frame start to a sample and yields a phase
   reference.
3. **Carrier-offset estimation.** Platform drift Doppler shifts the
   backscatter return by tens of hertz; the preamble's known chips let
   the receiver measure the residual rotation rate (lag-autocorrelation
   of the modulation-stripped preamble) and derotate the whole record.
4. **Coherent chip slicing.** Derotate by the preamble phase, integrate
   each chip, track residual phase drift with a decision-directed
   first-order loop (the ocean's surface motion shows up here), and
   threshold at zero (the DC-free code guarantees a centred eye).
5. **Frame parse.** FM0 decode, CRC check.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from repro.dsp.filters import dc_block_fast
from repro.dsp.timing import symbol_samples, symbol_sum
from repro.obs.metrics import counter, histogram
from repro.obs.probes import probe_finite
from repro.phy.frame import FrameConfig, ParsedFrame, parse_frame
from repro.phy.preamble import (
    PreambleDetection,
    detect_preamble,
    preamble_chips,
    preamble_template,
)


class SupportsRates(Protocol):
    """Anything exposing the sample and chip rates a receiver needs.

    :class:`repro.sim.scenario.Scenario` satisfies this; so does any
    test double with the two attributes (the receiver is deliberately
    not coupled to the scenario class).
    """

    @property
    def fs(self) -> float: ...  # pragma: no cover - protocol

    @property
    def chip_rate(self) -> float: ...  # pragma: no cover - protocol


DEMODS_COUNTER = counter(
    "repro.phy.receiver.demods", "records run through the receive chain"
)
DETECT_FAILURES_COUNTER = counter(
    "repro.phy.receiver.detect_failures", "records with no preamble lock"
)
CRC_FAILURES_COUNTER = counter(
    "repro.phy.receiver.crc_failures",
    "detected records that yielded no CRC-clean frame",
)
SNR_HISTOGRAM = histogram(
    "repro.phy.receiver.snr_db",
    help="eye-SNR distribution of detected records, dB",
)


@dataclass(frozen=True)
class DemodResult:
    """Everything the receiver learned from one record.

    Attributes:
        frame: the parsed frame, or None when no frame was recovered.
        detection: preamble detection details, or None when the search
            failed.
        chip_soft: soft chip values (real, derotated) after the preamble.
        snr_db: post-processing SNR estimate from the chip eye.
        cfo_hz: estimated residual carrier offset (0 when compensation
            is disabled or no preamble was found).
        success: True when a frame parsed *and* its CRC checked out.
    """

    frame: Optional[ParsedFrame]
    detection: Optional[PreambleDetection]
    chip_soft: np.ndarray
    snr_db: float
    success: bool
    cfo_hz: float = 0.0


@dataclass
class ReaderReceiver:
    """Reader receive chain configuration.

    Attributes:
        fs: baseband sample rate, Hz.
        chip_rate: uplink chip rate, chips/s.
        frame_config: framing parameters shared with the node.
        preamble_threshold: normalised-correlation acceptance level.
        dc_pole: DC-blocker pole (0 disables the blocker; the mean is
            always removed).
        phase_loop_gain: first-order phase-tracking gain per chip
            (0 disables tracking).
        cfo_compensation: estimate and remove carrier frequency offset
            from the preamble before slicing (platform-drift Doppler).
        rake_taps: when > 0, estimate up to this many sample-spaced
            channel taps from the preamble and maximal-ratio combine the
            multipath echoes before slicing (see :mod:`repro.phy.rake`).
            Helps in the noise-limited regime with strong echoes.
        equalizer_taps: when > 0, estimate up to this many sample-spaced
            taps and run a chip-spaced decision-feedback equaliser during
            slicing — cancels inter-chip interference from echoes, the
            dominant impairment of unspread OOK in shallow water. Keep
            the span physical (a few chips): probing far delays invites
            spurious data-correlation taps.
        timing_search: try start offsets within +- this many samples
            around the detected preamble position and keep the first
            candidate whose frame passes CRC (best eye otherwise).
            Multipath superposition can pull the correlation peak a few
            samples off the true chip boundary; this wins them back.
    """

    fs: float = 16_000.0
    chip_rate: float = 2_000.0
    frame_config: FrameConfig = field(default_factory=FrameConfig)
    preamble_threshold: float = 0.5
    dc_pole: float = 0.95
    phase_loop_gain: float = 0.15
    cfo_compensation: bool = True
    rake_taps: int = 0
    equalizer_taps: int = 0
    timing_search: int = 0

    def __post_init__(self) -> None:
        self.sps = symbol_samples(self.fs, self.chip_rate)

    @classmethod
    def for_scenario(
        cls,
        scenario: "SupportsRates",
        frame_config: Optional[FrameConfig] = None,
        **overrides,
    ) -> "ReaderReceiver":
        """The default receive chain for a scenario's rates.

        This is the single construction path campaigns use to hoist the
        receiver out of the per-trial loop: build it once per operating
        point, reuse it for every trial (the chain is stateless across
        :meth:`demodulate` calls). ``scenario`` only needs ``fs`` and
        ``chip_rate`` attributes; ``overrides`` forward to the
        constructor (e.g. ``equalizer_taps=24``).
        """
        if frame_config is None:
            frame_config = FrameConfig()
        return cls(
            fs=scenario.fs,
            chip_rate=scenario.chip_rate,
            frame_config=frame_config,
            **overrides,
        )

    # -- stages -------------------------------------------------------------

    def suppress_carrier(self, record: np.ndarray) -> np.ndarray:
        """Stage 1: remove the static carrier leak and slow drift."""
        record = np.asarray(record, dtype=np.complex128)
        if len(record) == 0:
            return record.copy()
        centred = record - record.mean()
        if self.dc_pole and 0.0 < self.dc_pole < 1.0:
            centred = dc_block_fast(centred, self.dc_pole)
        return centred

    def find_preamble(self, centred: np.ndarray) -> Optional[PreambleDetection]:
        """Stage 2: locate the frame start."""
        return detect_preamble(
            centred,
            self.sps,
            repeats=self.frame_config.preamble_repeats,
            threshold=self.preamble_threshold,
        )

    def estimate_cfo_hz(
        self, centred: np.ndarray, detection: PreambleDetection
    ) -> float:
        """Stage 3: carrier-offset estimate from the known preamble.

        Multiplying the received preamble by the (real) template strips
        the chip modulation, leaving ``exp(j(phi + 2 pi f n / fs))``; the
        angle of the lag-L autocorrelation is then ``2 pi f L / fs``.
        L of one Barker period keeps the unambiguous range at
        ``+- fs / (2 L)`` (~+-59 Hz at the default rates), well beyond
        boat-drift Doppler.
        """
        template = preamble_template(self.sps, self.frame_config.preamble_repeats)
        start = detection.start_index
        region = np.asarray(
            centred[start : start + len(template)], dtype=np.complex128
        )
        if len(region) < len(template):
            return 0.0
        stripped = region * template  # template is real: conj-free strip
        lag = 13 * self.sps  # one Barker period
        if len(stripped) <= lag:
            return 0.0
        acc = np.vdot(stripped[:-lag], stripped[lag:])
        if abs(acc) == 0:
            return 0.0
        return float(np.angle(acc) * self.fs / (2.0 * math.pi * lag))

    def slice_chips(
        self,
        centred: np.ndarray,
        detection: PreambleDetection,
        initial_phase: Optional[float] = None,
        feedback_taps: Optional[dict] = None,
    ) -> np.ndarray:
        """Stage 4: coherent integrate-and-dump with phase tracking.

        Returns soft chip values (real part after derotation) for the
        region following the preamble.

        Args:
            centred: DC-suppressed (possibly rake-combined) record.
            detection: the preamble anchor.
            initial_phase: starting phase reference; defaults to the
                detection phase (pass 0 after rake combining, which
                already derotates by the main tap).
            feedback_taps: chip-delay -> complex relative tap (h_d/h_0)
                map for decision-feedback ISI cancellation; None or empty
                disables the DFE.
        """
        n_preamble = len(preamble_chips(self.frame_config.preamble_repeats))
        data_start = detection.start_index + n_preamble * self.sps
        region = centred[data_start:]
        dumps = symbol_sum(region, self.sps)
        if len(dumps) == 0:
            return np.zeros(0)

        if initial_phase is None:
            phase = math.atan2(detection.phase.imag, detection.phase.real)
        else:
            phase = initial_phase
        feedback = feedback_taps or {}
        feedback_items = list(feedback.items())
        decided = np.zeros(len(dumps))
        amplitude = 0.0  # running estimate of the eye half-opening
        soft = np.empty(len(dumps))
        # Hot loop of the whole receive chain (runs per chip, per timing
        # candidate) — bind everything loop-invariant to locals.
        loop_gain = self.phase_loop_gain
        cos, sin, atan2 = math.cos, math.sin, math.atan2
        dump_list = dumps.tolist()
        for i, dump in enumerate(dump_list):
            rotated = dump * complex(cos(-phase), sin(-phase))
            if feedback_items:
                isi = 0.0 + 0.0j
                for delay, tap in feedback_items:
                    j = i - delay
                    if j >= 0:
                        isi += tap * decided[j]
                rotated = rotated - isi
            real = rotated.real
            soft[i] = real
            decision = 1.0 if real >= 0 else -1.0
            amplitude += (abs(real) - amplitude) / (i + 1)
            decided[i] = decision * amplitude
            if loop_gain > 0 and (real != 0.0 or rotated.imag != 0.0):
                err = atan2(rotated.imag * decision, abs(real) + 1e-30)
                phase += loop_gain * err
        return soft

    # -- top level ------------------------------------------------------------

    def demodulate(self, record: np.ndarray) -> DemodResult:
        """Run the full chain on a baseband record.

        Standard configurations (no rake/equaliser/timing search, stock
        class) are delegated to the batched kernel in
        :mod:`repro.phy.batch` with batch size 1: the per-record and
        batched campaign paths share one implementation, which is what
        makes the batched engine's bit-identity contract hold by
        construction rather than by parallel maintenance of two DSP
        chains.
        """
        from repro.phy.batch import BatchedReaderReceiver, batch_supported

        if batch_supported(self):
            record = np.asarray(record, dtype=np.complex128)
            if record.ndim == 1:
                batched = BatchedReaderReceiver(self)
                return batched.demodulate_batch(record[None, :])[0]
        DEMODS_COUNTER.inc()
        centred = self.suppress_carrier(record)
        detection = self.find_preamble(centred)
        if detection is None:
            DETECT_FAILURES_COUNTER.inc()
            return DemodResult(
                frame=None,
                detection=None,
                chip_soft=np.zeros(0),
                snr_db=-math.inf,
                success=False,
            )
        cfo_hz = 0.0
        if self.cfo_compensation:
            cfo_hz = self.estimate_cfo_hz(centred, detection)
            if cfo_hz != 0.0:
                n = np.arange(len(centred)) - detection.start_index
                centred = centred * np.exp(-2j * math.pi * cfo_hz * n / self.fs)
        initial_phase = None
        if self.rake_taps > 0:
            from repro.phy.rake import estimate_channel, rake_combine

            estimate = estimate_channel(
                centred,
                detection,
                self.sps,
                repeats=self.frame_config.preamble_repeats,
                max_taps=self.rake_taps,
            )
            if estimate.active_taps >= 1:
                centred = rake_combine(centred, estimate)
                initial_phase = 0.0
        feedback = None
        if self.equalizer_taps > 0:
            from repro.phy.rake import estimate_channel

            estimate = estimate_channel(
                centred,
                detection,
                self.sps,
                repeats=self.frame_config.preamble_repeats,
                max_taps=self.equalizer_taps,
            )
            main = estimate.taps[0]
            if abs(main) > 0:
                # An echo at sample delay k = d*sps + f overlaps two chip
                # windows: fraction f/sps of chip n-d-1 and (sps-f)/sps of
                # chip n-d leak into dump n. Only whole-chip-delayed
                # contributions are past decisions the DFE can subtract;
                # the d = 0 part rides with the signal and stays.
                feedback = {}
                for k in np.flatnonzero(estimate.taps):
                    if k == 0:
                        continue
                    rel = complex(estimate.taps[k] / main)
                    d, f = divmod(int(k), self.sps)
                    if d >= 1:
                        feedback[d] = feedback.get(d, 0.0) + rel * (
                            (self.sps - f) / self.sps
                        )
                    if f > 0:
                        feedback[d + 1] = feedback.get(d + 1, 0.0) + rel * (
                            f / self.sps
                        )
                feedback = {
                    d: w for d, w in feedback.items() if abs(w) > 0.05
                } or None

        # Candidate start offsets, nearest first, so clean channels pay
        # only one pass.
        offsets = [0]
        for k in range(1, self.timing_search + 1):
            offsets.extend((k, -k))
        best: Optional[DemodResult] = None
        for offset in offsets:
            shifted = dataclasses.replace(
                detection, start_index=detection.start_index + offset
            )
            if shifted.start_index < 0:
                continue
            soft = self.slice_chips(centred, shifted, initial_phase, feedback)
            chips = (soft >= 0.0).astype(np.int64)
            frame = parse_frame(chips, self.frame_config)
            result = DemodResult(
                frame=frame,
                detection=shifted,
                chip_soft=soft,
                snr_db=_eye_snr_db(soft),
                success=bool(frame is not None and frame.crc_ok),
                cfo_hz=cfo_hz,
            )
            if result.success:
                if math.isfinite(result.snr_db):
                    SNR_HISTOGRAM.observe(result.snr_db)
                probe_finite(
                    "phy.receiver.soft_chips", soft, stage="demod"
                )
                return result
            if best is None or result.snr_db > best.snr_db:
                best = result
        CRC_FAILURES_COUNTER.inc()
        if best is not None and math.isfinite(best.snr_db):
            SNR_HISTOGRAM.observe(best.snr_db)
        if best is not None:
            probe_finite(
                "phy.receiver.soft_chips", best.chip_soft, stage="demod"
            )
        return best


def _eye_snr_db(soft: np.ndarray) -> float:
    """SNR estimate from sliced soft values (two-cluster eye statistics).

    Per-cluster mean and variance are spelled out as the exact ufunc
    sequence ``ndarray.mean`` / ``ndarray.var`` reduce to (pairwise sum,
    divide; subtract, square, pairwise sum, divide) — bitwise-equal
    results without the method-dispatch overhead, which matters because
    this runs once per demodulated record.
    """
    if len(soft) < 4:
        return -math.inf
    pos = soft >= 0
    hi = soft[pos]
    lo = soft[~pos]
    if len(hi) < 2 or len(lo) < 2:
        return -math.inf
    hi_mean = np.add.reduce(hi) / hi.size
    lo_mean = np.add.reduce(lo) / lo.size
    separation = hi_mean - lo_mean
    hi_dev = hi - hi_mean
    lo_dev = lo - lo_mean
    hi_var = np.add.reduce(hi_dev * hi_dev) / hi.size
    lo_var = np.add.reduce(lo_dev * lo_dev) / lo.size
    spread = math.sqrt((hi_var + lo_var) / 2.0)
    if spread <= 0:
        return math.inf
    # Amplitude +-d/2 around zero: signal power (d/2)^2, noise power spread^2.
    ratio = (separation / 2.0) ** 2 / spread**2
    return 10.0 * math.log10(max(ratio, 1e-30))
