"""Bit-error-rate utilities and closed-form references.

The closed forms anchor the waveform simulation: the measured BER of the
end-to-end chain should track the coherent-OOK curve within implementation
loss, and tests enforce that.

SNR convention: average received *data* signal power over noise power in
the chip-rate bandwidth (the post-matched-filter SNR of the paper's
plots).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special

from repro.analysis.units.vocab import DB


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def q_inverse(p: float) -> float:
    """Inverse of the Q function."""
    if not 0.0 < p < 1.0:
        raise ValueError("probability must be in (0, 1)")
    return math.sqrt(2.0) * float(special.erfcinv(2.0 * p))


def ber_ook_coherent(snr_db: DB) -> float:
    """Coherent OOK bit error rate at an average-power SNR.

    With levels {0, A}, average power A^2/2 and complex noise power N, the
    derotated decision variable is +-A/2 with per-dimension noise N/2:
    ``Pe = Q(sqrt(SNR))``.
    """
    snr = 10.0 ** (snr_db / 10.0)
    return q_function(math.sqrt(snr))


def ber_ook_noncoherent(snr_db: DB) -> float:
    """Non-coherent (envelope) OOK approximation ``0.5 exp(-SNR/2)``.

    The classic high-SNR approximation with the optimal threshold; about
    1 dB worse than coherent at BER 1e-3.
    """
    snr = 10.0 ** (snr_db / 10.0)
    return 0.5 * math.exp(-snr / 2.0)


def required_snr_db(target_ber: float, coherent: bool = True) -> DB:
    """SNR needed to hit a target BER (inverts the closed forms)."""
    if not 0.0 < target_ber < 0.5:
        raise ValueError("target BER must be in (0, 0.5)")
    if coherent:
        snr = q_inverse(target_ber) ** 2
    else:
        snr = -2.0 * math.log(2.0 * target_ber)
    return 10.0 * math.log10(snr)


def count_bit_errors(sent: Sequence[int], received: Sequence[int]) -> int:
    """Hamming distance over the overlapping prefix; missing bits count as errors.

    Backscatter links lose whole frame tails when sync slips, so bits the
    receiver never produced are charged as errors rather than ignored —
    matching how over-water experiments score trials.
    """
    sent = np.asarray(list(sent), dtype=np.int64)
    received = np.asarray(list(received), dtype=np.int64)
    overlap = min(len(sent), len(received))
    errors = int(np.count_nonzero(sent[:overlap] != received[:overlap]))
    errors += len(sent) - overlap if len(sent) > overlap else 0
    return errors


def ber(sent: Sequence[int], received: Sequence[int]) -> float:
    """Bit error rate of a trial (errors / sent bits)."""
    sent = list(sent)
    if not sent:
        raise ValueError("need at least one sent bit")
    return count_bit_errors(sent, received) / len(sent)
