"""Bit-array utilities.

Bits are ``numpy`` int64 arrays of 0/1, most significant bit first within
each byte (network order).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.rng import fallback_rng


def bits_from_bytes(data: bytes) -> np.ndarray:
    """Unpack bytes into an MSB-first bit array."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.int64)
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr).astype(np.int64)


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack an MSB-first bit array into bytes.

    Raises:
        ValueError: if the bit count is not a multiple of 8 or any value
            is not 0/1.
    """
    if isinstance(bits, np.ndarray):
        bits = bits if bits.dtype == np.int64 else bits.astype(np.int64)
    else:
        bits = np.asarray(list(bits), dtype=np.int64)
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    if bits.size and not ((bits == 0) | (bits == 1)).all():
        raise ValueError("bits must be 0/1")
    if bits.size == 0:
        return b""
    return np.packbits(bits.astype(np.uint8)).tobytes()


def random_bits(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform random bits (deterministic when given a seeded generator).

    Args:
        n: number of bits.
        rng: random generator. Campaign code must thread one derived
            from its trial seeds; omitted, bits draw from the documented
            process-global stream (:func:`repro.rng.fallback_rng`).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if rng is None:
        rng = fallback_rng()
    return rng.integers(0, 2, size=n).astype(np.int64)


def pn_sequence(length: int, taps: Sequence[int] = (7, 6), seed: int = 0b1001011) -> np.ndarray:
    """Maximal-length LFSR (PN) sequence of 0/1 bits.

    Default taps [7, 6] give the m-sequence of period 127; longer requests
    repeat the sequence. Used for scrambling and test payloads with known
    spectral properties.

    Args:
        length: number of bits to emit.
        taps: LFSR feedback tap positions (1-indexed, descending).
        seed: non-zero initial register state.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if seed == 0:
        raise ValueError("LFSR seed must be non-zero")
    degree = max(taps)
    # Fibonacci LFSR: stages 1..degree, output taken from stage `degree`,
    # feedback = XOR of the tapped stages, inserted at stage 1.
    register = [(seed >> i) & 1 for i in range(degree)]
    if not any(register):
        register[0] = 1
    out = np.empty(length, dtype=np.int64)
    for i in range(length):
        out[i] = register[-1]
        feedback = 0
        for t in taps:
            feedback ^= register[t - 1]
        register = [feedback] + register[:-1]
    return out


def bits_to_levels(bits: Sequence[int]) -> np.ndarray:
    """Map 0/1 bits to -1/+1 levels (for correlation templates)."""
    bits = np.asarray(list(bits), dtype=np.int64)
    return 2.0 * bits - 1.0
