"""The reader's transmit side: carrier and downlink commands.

The reader is a projector driven by an SDR: for the uplink it transmits a
plain continuous wave (the node does all the modulation), and for the
downlink it gates that carrier with a PIE envelope. In the complex
baseband representation used throughout the simulator, a CW carrier is
simply a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.phy.downlink import PIEConfig, pie_encode


@dataclass(frozen=True)
class ReaderTransmitter:
    """Reader transmit chain.

    Attributes:
        carrier_hz: carrier frequency, Hz.
        fs: baseband sample rate, Hz.
        source_level_db: projector source level, dB re 1 uPa @ 1 m. The
            waveform amplitude is normalised to 1; the simulator applies
            the absolute level via the channel/link budget, keeping
            waveform dynamic range healthy.
    """

    carrier_hz: float = 18_500.0
    fs: float = 16_000.0
    source_level_db: float = 185.0

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0 or self.fs <= 0:
            raise ValueError("carrier and sample rate must be positive")

    def carrier(self, duration_s: float) -> np.ndarray:
        """Unit-amplitude CW carrier (a constant in complex baseband)."""
        n = int(round(duration_s * self.fs))
        if n < 0:
            raise ValueError("duration must be non-negative")
        return np.ones(n, dtype=np.complex128)

    def downlink(
        self, bits: Sequence[int], pie: Optional[PIEConfig] = None
    ) -> np.ndarray:
        """Carrier gated with a PIE command (complex baseband)."""
        envelope = pie_encode(bits, self.fs, pie)
        return envelope.astype(np.complex128)

    def query_waveform(
        self,
        command_bits: Sequence[int],
        listen_duration_s: float,
        pie: Optional[PIEConfig] = None,
    ) -> np.ndarray:
        """A full interrogation: PIE command, then CW while listening.

        The carrier stays ON during the listen window — the node needs it
        both as the backscatter illumination and as its power source.
        """
        return np.concatenate(
            [self.downlink(command_bits, pie), self.carrier(listen_duration_s)]
        )
