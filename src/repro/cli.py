"""Command-line interface: quick studies without writing a script.

::

    python -m repro budget --site river --range 150
    python -m repro sweep --site ocean --sea-state 3 --start 50 --stop 300
    python -m repro sweep --manifest run.json --events run.jsonl --workers 4
    python -m repro pattern --elements 4
    python -m repro trial --site river --range 250
    python -m repro inventory --nodes 8 --q 3
    python -m repro obs report run.json
    python -m repro obs ls          # content-addressed run ledger
    python -m repro obs diff a1b2 c3d4
    python -m repro obs trace run.json -o run.trace.json
    python -m repro obs timeline    # BENCH_*.json perf trajectory
    python -m repro lint            # determinism/physics linter (vablint)

Every subcommand prints a plain table to stdout and exits 0 on success;
they are thin wrappers over the same public API the examples use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _site_scenario(args: argparse.Namespace):
    from repro.core import Scenario

    if args.site == "river":
        return Scenario.river(range_m=args.range)
    return Scenario.ocean(range_m=args.range, sea_state=args.sea_state)


def cmd_budget(args: argparse.Namespace) -> int:
    """Print the analytic link budget at one operating point."""
    from repro.core import default_vab_budget

    scenario = _site_scenario(args)
    budget = default_vab_budget(scenario, num_elements=args.elements)
    print(f"site              : {scenario.name}")
    print(f"range             : {args.range:.0f} m")
    print(f"array             : {args.elements} elements "
          f"({budget.array_gain_db:.1f} dB)")
    print(f"source level      : {scenario.source_level_db:.1f} dB re 1 uPa @ 1 m")
    print(f"one-way loss      : {budget.one_way_loss_db(args.range):.1f} dB")
    print(f"reflection gain   : {budget.reflection_gain_db():.1f} dB")
    print(f"noise in band     : {budget.noise_level_in_band_db():.1f} dB")
    print(f"SNR               : {budget.snr_db(args.range):.1f} dB")
    print(f"predicted BER     : {budget.ber(args.range):.2e}")
    print(f"max range @1e-3   : {budget.max_range_m(1e-3):.0f} m")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Monte-Carlo BER sweep across range."""
    from repro.sim.parallel import run_campaign_parallel, run_observed_campaign
    from repro.sim.sweep import log_ranges, sweep_range

    from repro.sim.trials import TrialCampaign

    scenario = _site_scenario(args)
    ranges = log_ranges(args.start, args.stop, args.points)
    campaign = TrialCampaign(trials_per_point=args.trials, seed=args.seed)
    scenarios = sweep_range(scenario, ranges)
    if args.probes:
        from repro.obs.probes import set_probe_mode

        set_probe_mode(args.probes)
    observed = args.manifest or args.events or args.ledger is not None
    if observed:
        result, manifest = run_observed_campaign(
            scenarios, campaign, label=args.site, workers=args.workers,
            manifest_path=args.manifest, events_path=args.events,
            lint_fingerprint=args.lint_fingerprint,
            progress=args.progress,
            ledger=args.ledger if args.ledger is not None else None,
        )
    else:
        from repro.obs.progress import ProgressReporter

        reporter = ProgressReporter(
            total_trials=len(scenarios) * campaign.trials_per_point,
            label=args.site,
            enabled=args.progress,
        )
        result = run_campaign_parallel(
            scenarios, campaign, label=args.site, workers=args.workers,
            progress=reporter if reporter.enabled else None,
        )
    print(f"{'range_m':>8} {'ber':>9} {'frames':>7} {'snr_db':>7}")
    for p in result.points:
        print(f"{p.range_m:>8.0f} {p.ber:>9.4f} "
              f"{p.frame_success_rate:>7.2f} {p.mean_snr_db:>7.1f}")
    print(f"max range at BER<=1e-3: {result.max_range_at_ber(1e-3):.0f} m")
    if args.manifest:
        print(f"manifest: {args.manifest}")
    if args.events:
        print(f"events  : {args.events}")
    if observed and args.ledger is not None:
        from repro.obs.ledger import Ledger, run_key

        store = Ledger(None if args.ledger is True else args.ledger)
        print(f"ledger  : {store.root} "
              f"(key {run_key(manifest)[:12]})")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Render a run manifest (+ event log) as breakdown tables."""
    from repro.obs.manifest import read_events
    from repro.obs.report import render_report
    from repro.sim.export import load_manifest
    from pathlib import Path

    manifest = load_manifest(args.manifest)
    events = None
    events_path = args.events or manifest.events_path
    if events_path and Path(events_path).exists():
        events = read_events(events_path)
    print(render_report(manifest, events), end="")
    return 0


def cmd_obs_ls(args: argparse.Namespace) -> int:
    """List the content-addressed run ledger."""
    from repro.obs.ledger import Ledger, render_ledger

    print(render_ledger(Ledger(args.ledger)))
    return 0


def _load_ref(ref: str, ledger_root):
    """A manifest from a file path or a ledger key/run-id prefix."""
    from pathlib import Path

    from repro.obs.ledger import Ledger
    from repro.sim.export import load_manifest

    if Path(ref).is_file():
        return load_manifest(ref)
    return Ledger(ledger_root).load(ref)


def cmd_obs_diff(args: argparse.Namespace) -> int:
    """Diff two runs (ledger refs or manifest files): config, metrics, timings."""
    from repro.obs.ledger import diff_manifests, render_diff

    a = _load_ref(args.a, args.ledger)
    b = _load_ref(args.b, args.ledger)
    diff = diff_manifests(a, b)
    print(render_diff(diff))
    differs = bool(
        diff["config"] or diff["scenarios"] or diff["metrics"]
    )
    return 1 if differs else 0


def cmd_obs_trace(args: argparse.Namespace) -> int:
    """Export a run as Chrome trace-event JSON (chrome://tracing, Perfetto)."""
    from pathlib import Path

    from repro.obs.ledger import Ledger
    from repro.obs.manifest import read_events
    from repro.obs.trace import validate_trace_events, write_trace

    if Path(args.ref).is_file():
        manifest = _load_ref(args.ref, args.ledger)
        events_path = args.events or manifest.events_path
    else:
        record = Ledger(args.ledger).resolve(args.ref)
        manifest = _load_ref(args.ref, args.ledger)
        events_path = args.events or (
            str(record.events_path) if record.events_path else None
        )
    events = None
    if events_path and Path(events_path).exists():
        events = read_events(events_path)
    doc = write_trace(args.out, events=events, timings=manifest.timings)
    count = validate_trace_events(doc)
    print(f"wrote {args.out}: {count} trace events "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def cmd_obs_timeline(args: argparse.Namespace) -> int:
    """Performance trajectory across the repo's BENCH_*.json records."""
    from repro.obs.report import load_bench_files, render_timeline

    print(render_timeline(load_bench_files(args.root)), end="")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the vablint rules over a tree (default: the installed repro)."""
    import json as json_module
    from pathlib import Path

    from repro.analysis import render_catalogue, tree_fingerprint
    from repro.analysis.frontend import rule_list, run_lint

    if args.catalogue:
        print(render_catalogue())
        return 0
    paths = args.paths or [str(Path(__file__).resolve().parent)]
    if args.fingerprint:
        record = tree_fingerprint(paths)
        print(json_module.dumps(record, indent=2))
        return 0 if record["clean"] else 1
    return run_lint(
        paths,
        select=rule_list(args.select),
        disable=rule_list(args.disable),
        exclude=args.exclude,
        jobs=args.jobs,
        changed=args.changed,
        units=args.units,
        units_cache=None if args.no_units_cache else args.units_cache,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        as_json=args.as_json,
        stats=args.stats,
        sarif=args.sarif,
    )


def cmd_pattern(args: argparse.Namespace) -> int:
    """Monostatic gain vs incidence angle (Van Atta vs baselines)."""
    from repro.baselines.conventional_array import conventional_monostatic_gain_db
    from repro.vanatta.array import VanAttaArray
    from repro.vanatta.retrodirective import monostatic_gain_db

    arr = VanAttaArray.uniform(args.elements)
    print(f"{'angle':>6} {'van_atta_db':>12} {'conventional_db':>16}")
    for theta in np.arange(-60.0, 61.0, args.step):
        va = monostatic_gain_db(arr, 18_500.0, float(theta))
        conv = conventional_monostatic_gain_db(arr.positions_m, 18_500.0, float(theta))
        print(f"{theta:>+6.0f} {va:>12.1f} {conv:>16.1f}")
    return 0


def cmd_trial(args: argparse.Namespace) -> int:
    """One verbose waveform trial."""
    from repro.sim.engine import simulate_trial

    scenario = _site_scenario(args)
    result = simulate_trial(scenario, rng=np.random.default_rng(args.seed))
    print(f"site        : {scenario.name}")
    print(f"range       : {result.range_m:.0f} m")
    print(f"incidence   : {result.incidence_deg:.0f} deg")
    print(f"detected    : {result.detected}")
    print(f"frame ok    : {result.frame_ok}")
    print(f"payload BER : {result.ber:.3f}")
    print(f"eye SNR     : {result.snr_db:.1f} dB")
    return 0 if result.detected else 1


def cmd_adapt(args: argparse.Namespace) -> int:
    """Pick the best PHY mode for a node at a range."""
    from repro.core import default_vab_budget
    from repro.link.adaptive import (
        DEFAULT_MODES,
        frame_delivery_probability,
        mode_goodput_bps,
        select_mode,
    )

    scenario = _site_scenario(args)
    budget = default_vab_budget(scenario)
    print(f"{'mode':>14} {'rate_bps':>9} {'p(frame)':>9} {'goodput_bps':>12}")
    for mode in DEFAULT_MODES:
        p = frame_delivery_probability(budget, mode, args.range)
        goodput = mode_goodput_bps(budget, mode, args.range) if p >= 0.5 else 0.0
        print(f"{mode.name:>14} {mode.information_rate_bps():>9.0f} "
              f"{p:>9.3f} {goodput:>12.1f}")
    chosen = select_mode(budget, args.range)
    if chosen is None:
        print("no mode closes the link at this range")
        return 1
    print(f"selected: {chosen.name}")
    return 0


def cmd_inventory(args: argparse.Namespace) -> int:
    """Command-level inventory of a node population."""
    from repro.link.node_fsm import NodeController
    from repro.link.protocol import CommandLevelInventory

    nodes = [NodeController(node_id=i, seed=args.seed) for i in range(1, args.nodes + 1)]
    inventory = CommandLevelInventory(
        q=args.q,
        seed=args.seed,
        downlink_loss=args.downlink_loss,
        uplink_loss=args.uplink_loss,
    )
    trace = inventory.run(nodes)
    print(f"inventoried : {len(trace.inventoried)}/{args.nodes} "
          f"(order {trace.inventoried})")
    print(f"commands    : {trace.commands_sent}")
    print(f"slots       : {trace.slots_single} single, "
          f"{trace.slots_collided} collided, {trace.slots_idle} idle")
    return 0 if len(trace.inventoried) == args.nodes else 1


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Van Atta acoustic backscatter (SIGCOMM'23) toolbox",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_site_args(p):
        p.add_argument("--site", choices=("river", "ocean"), default="river")
        p.add_argument("--range", type=float, default=100.0)
        p.add_argument("--sea-state", type=int, default=3, dest="sea_state")
        p.add_argument("--seed", type=int, default=1)

    p_budget = sub.add_parser("budget", help="analytic link budget")
    add_site_args(p_budget)
    p_budget.add_argument("--elements", type=int, default=4)
    p_budget.set_defaults(func=cmd_budget)

    p_sweep = sub.add_parser("sweep", help="Monte-Carlo BER-vs-range sweep")
    add_site_args(p_sweep)
    p_sweep.add_argument("--start", type=float, default=50.0)
    p_sweep.add_argument("--stop", type=float, default=500.0)
    p_sweep.add_argument("--points", type=int, default=6)
    p_sweep.add_argument("--trials", type=int, default=5)
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="campaign worker processes (default 1: serial)")
    p_sweep.add_argument("--manifest", default=None, metavar="PATH",
                         help="write a run manifest (JSON) here")
    p_sweep.add_argument("--events", default=None, metavar="PATH",
                         help="write a JSONL event log here")
    p_sweep.add_argument("--lint-fingerprint", action="store_true",
                         dest="lint_fingerprint",
                         help="record the library tree's lint fingerprint "
                              "in the manifest (provenance)")
    p_sweep.add_argument("--ledger", nargs="?", const=True, default=None,
                         metavar="DIR",
                         help="file the run in the content-addressed ledger "
                              "(default root: $VAB_LEDGER_DIR or "
                              "~/.repro/ledger)")
    progress_group = p_sweep.add_mutually_exclusive_group()
    progress_group.add_argument("--progress", action="store_true",
                                default=None,
                                help="force the live progress line on")
    progress_group.add_argument("--no-progress", action="store_false",
                                dest="progress",
                                help="force the live progress line off "
                                     "(default: on in a TTY only)")
    p_sweep.add_argument("--probes",
                         choices=("off", "count", "raise"), default=None,
                         help="runtime physics-invariant probe mode "
                              "(default: count, or $VAB_PROBES)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_obs = sub.add_parser("obs", help="observability: inspect run artifacts")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="per-stage/per-point breakdown of a run manifest"
    )
    p_report.add_argument("manifest", help="path to a run manifest JSON")
    p_report.add_argument("--events", default=None, metavar="PATH",
                          help="event log (default: the manifest's, if present)")
    p_report.set_defaults(func=cmd_obs_report)

    def add_ledger_arg(p):
        p.add_argument("--ledger", default=None, metavar="DIR",
                       help="ledger root (default: $VAB_LEDGER_DIR or "
                            "~/.repro/ledger)")

    p_ls = obs_sub.add_parser(
        "ls", help="list the content-addressed run ledger"
    )
    add_ledger_arg(p_ls)
    p_ls.set_defaults(func=cmd_obs_ls)

    p_diff = obs_sub.add_parser(
        "diff", help="compare two runs: config, metrics, stage timings"
    )
    p_diff.add_argument("a", help="ledger key/run-id prefix or manifest path")
    p_diff.add_argument("b", help="ledger key/run-id prefix or manifest path")
    add_ledger_arg(p_diff)
    p_diff.set_defaults(func=cmd_obs_diff)

    p_trace = obs_sub.add_parser(
        "trace", help="export a run as Chrome trace-event JSON"
    )
    p_trace.add_argument("ref",
                         help="ledger key/run-id prefix or manifest path")
    p_trace.add_argument("-o", "--out", default="trace.json", metavar="PATH",
                         help="output trace file (default: trace.json)")
    p_trace.add_argument("--events", default=None, metavar="PATH",
                         help="event log (default: the run's, if recorded)")
    add_ledger_arg(p_trace)
    p_trace.set_defaults(func=cmd_obs_trace)

    p_timeline = obs_sub.add_parser(
        "timeline", help="perf trajectory across BENCH_*.json records"
    )
    p_timeline.add_argument("root", nargs="?", default=".",
                            help="directory holding BENCH_*.json (default: .)")
    p_timeline.set_defaults(func=cmd_obs_timeline)

    p_lint = sub.add_parser(
        "lint", help="determinism & physics-invariant linter (vablint)"
    )
    p_lint.add_argument("paths", nargs="*", default=None,
                        help="files/directories (default: the repro package)")
    from repro.analysis.frontend import add_lint_flags
    add_lint_flags(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_pattern = sub.add_parser("pattern", help="retrodirectivity pattern")
    p_pattern.add_argument("--elements", type=int, default=4)
    p_pattern.add_argument("--step", type=float, default=10.0)
    p_pattern.set_defaults(func=cmd_pattern)

    p_trial = sub.add_parser("trial", help="one verbose waveform trial")
    add_site_args(p_trial)
    p_trial.set_defaults(func=cmd_trial)

    p_adapt = sub.add_parser("adapt", help="pick the best PHY mode at a range")
    add_site_args(p_adapt)
    p_adapt.set_defaults(func=cmd_adapt)

    p_inv = sub.add_parser("inventory", help="command-level node inventory")
    p_inv.add_argument("--nodes", type=int, default=8)
    p_inv.add_argument("--q", type=int, default=3)
    p_inv.add_argument("--downlink-loss", type=float, default=0.0,
                       dest="downlink_loss")
    p_inv.add_argument("--uplink-loss", type=float, default=0.0,
                       dest="uplink_loss")
    p_inv.add_argument("--seed", type=int, default=1)
    p_inv.set_defaults(func=cmd_inventory)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
