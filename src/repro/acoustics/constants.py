"""Water properties and sound-speed models.

The sound speed model is Mackenzie (1981), the standard nine-term empirical
fit, valid for temperature 2–30 degC, salinity 25–40 ppt, depth 0–8000 m.
River water is handled by allowing salinity down to 0 (the fit degrades
gracefully and stays within a few m/s of fresh-water tables at the shallow
depths we care about).
"""

from __future__ import annotations

from dataclasses import dataclass

REFERENCE_DISTANCE_M = 1.0
"""Reference distance for source levels (dB re 1 uPa @ 1 m)."""

REFERENCE_PRESSURE_UPA = 1.0
"""Reference pressure, micro-pascals."""

DENSITY_SEAWATER_KG_M3 = 1025.0
"""Nominal sea-water density."""

DENSITY_FRESHWATER_KG_M3 = 1000.0
"""Nominal fresh-water density."""


def sound_speed_mackenzie(
    temperature_c: float, salinity_ppt: float, depth_m: float
) -> float:
    """Sound speed in water via Mackenzie (1981), m/s.

    Args:
        temperature_c: water temperature, degrees Celsius.
        salinity_ppt: salinity in parts per thousand (ocean ~35, river ~0).
        depth_m: depth below the surface, metres.

    Returns:
        Sound speed in metres per second.
    """
    t = temperature_c
    s = salinity_ppt
    d = depth_m
    return (
        1448.96
        + 4.591 * t
        - 5.304e-2 * t**2
        + 2.374e-4 * t**3
        + 1.340 * (s - 35.0)
        + 1.630e-2 * d
        + 1.675e-7 * d**2
        - 1.025e-2 * t * (s - 35.0)
        - 7.139e-13 * t * d**3
    )


@dataclass(frozen=True)
class WaterProperties:
    """Bulk properties of the water column at a deployment site.

    Defaults describe temperate coastal sea water. The :meth:`river` and
    :meth:`ocean` constructors give the two presets used throughout the
    paper's evaluation (Charles River and Atlantic coastal water).
    """

    temperature_c: float = 15.0
    salinity_ppt: float = 35.0
    ph: float = 8.0
    depth_m: float = 10.0
    density_kg_m3: float = DENSITY_SEAWATER_KG_M3

    @property
    def sound_speed(self) -> float:
        """Sound speed for these properties (Mackenzie), m/s."""
        return sound_speed_mackenzie(
            self.temperature_c, self.salinity_ppt, self.depth_m
        )

    @staticmethod
    def river(temperature_c: float = 18.0, depth_m: float = 4.0) -> "WaterProperties":
        """Fresh, shallow river water (Charles-River-like conditions)."""
        return WaterProperties(
            temperature_c=temperature_c,
            salinity_ppt=0.5,
            ph=7.0,
            depth_m=depth_m,
            density_kg_m3=DENSITY_FRESHWATER_KG_M3,
        )

    @staticmethod
    def ocean(temperature_c: float = 12.0, depth_m: float = 15.0) -> "WaterProperties":
        """Temperate coastal ocean water (Atlantic-coast-like conditions)."""
        return WaterProperties(
            temperature_c=temperature_c,
            salinity_ppt=33.0,
            ph=8.0,
            depth_m=depth_m,
            density_kg_m3=DENSITY_SEAWATER_KG_M3,
        )

    def wavelength(self, frequency_hz: float) -> float:
        """Acoustic wavelength at ``frequency_hz``, metres."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.sound_speed / frequency_hz
