"""Sound-speed profiles (SSP): how c varies with depth.

The shallow presets treat the column as iso-speed, which is fine for a
4 m river. Coastal deployments in summer are not so kind: a warm surface
layer over a thermocline refracts rays *downward*, carving shadow zones
where a moored node simply cannot hear a surface reader. This module
provides the standard profile shapes; :mod:`repro.acoustics.raytrace`
integrates rays through them.

Profiles are piecewise-linear in depth: ``(depths, speeds)`` knots with
linear interpolation between, clamped at the ends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.constants import sound_speed_mackenzie


@dataclass(frozen=True)
class SoundSpeedProfile:
    """A piecewise-linear c(z) profile.

    Attributes:
        depths_m: knot depths, strictly increasing, starting at 0.
        speeds_mps: sound speed at each knot.
    """

    depths_m: np.ndarray
    speeds_mps: np.ndarray

    def __post_init__(self) -> None:
        depths = np.asarray(self.depths_m, dtype=np.float64)
        speeds = np.asarray(self.speeds_mps, dtype=np.float64)
        if depths.ndim != 1 or depths.shape != speeds.shape or len(depths) < 1:
            raise ValueError("depths and speeds must be matching 1-D arrays")
        if len(depths) > 1 and not np.all(np.diff(depths) > 0):
            raise ValueError("depths must be strictly increasing")
        if depths[0] < 0:
            raise ValueError("depths start at or below the surface (z >= 0)")
        if np.any(speeds <= 0):
            raise ValueError("speeds must be positive")
        object.__setattr__(self, "depths_m", depths)
        object.__setattr__(self, "speeds_mps", speeds)

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def isothermal(speed_mps: float = 1480.0, max_depth_m: float = 100.0
                   ) -> "SoundSpeedProfile":
        """Constant speed (well-mixed column)."""
        return SoundSpeedProfile(
            np.array([0.0, max_depth_m]), np.array([speed_mps, speed_mps])
        )

    @staticmethod
    def linear(surface_speed_mps: float, gradient_per_m: float,
               max_depth_m: float = 100.0) -> "SoundSpeedProfile":
        """Constant gradient (e.g. the +0.017 /m pressure effect in deep
        isothermal water)."""
        return SoundSpeedProfile(
            np.array([0.0, max_depth_m]),
            np.array([
                surface_speed_mps,
                surface_speed_mps + gradient_per_m * max_depth_m,
            ]),
        )

    @staticmethod
    def summer_thermocline(
        surface_temp_c: float = 20.0,
        deep_temp_c: float = 8.0,
        salinity_ppt: float = 33.0,
        thermocline_top_m: float = 8.0,
        thermocline_bottom_m: float = 20.0,
        max_depth_m: float = 60.0,
    ) -> "SoundSpeedProfile":
        """Warm mixed layer over a sharp summer thermocline.

        Speeds at the knots come from Mackenzie so the profile stays
        physically consistent with the rest of the package.
        """
        if not 0 < thermocline_top_m < thermocline_bottom_m < max_depth_m:
            raise ValueError("need 0 < top < bottom < max depth")
        c_surf = sound_speed_mackenzie(surface_temp_c, salinity_ppt, 0.0)
        c_top = sound_speed_mackenzie(surface_temp_c, salinity_ppt, thermocline_top_m)
        c_bottom = sound_speed_mackenzie(deep_temp_c, salinity_ppt, thermocline_bottom_m)
        c_deep = sound_speed_mackenzie(deep_temp_c, salinity_ppt, max_depth_m)
        return SoundSpeedProfile(
            np.array([0.0, thermocline_top_m, thermocline_bottom_m, max_depth_m]),
            np.array([c_surf, c_top, c_bottom, c_deep]),
        )

    # -- evaluation ---------------------------------------------------------------

    def speed_at(self, depth_m: float) -> float:
        """Sound speed at a depth (clamped to the profile ends)."""
        return float(np.interp(depth_m, self.depths_m, self.speeds_mps))

    def gradient_at(self, depth_m: float) -> float:
        """dc/dz at a depth (0 beyond the profile ends)."""
        d = self.depths_m
        s = self.speeds_mps
        if len(d) < 2 or depth_m <= d[0] or depth_m >= d[-1]:
            return 0.0
        i = int(np.searchsorted(d, depth_m, side="right") - 1)
        i = min(max(i, 0), len(d) - 2)
        return float((s[i + 1] - s[i]) / (d[i + 1] - d[i]))

    @property
    def max_depth_m(self) -> float:
        """Deepest knot."""
        return float(self.depths_m[-1])

    def minimum_speed_depth(self) -> float:
        """Depth of the sound channel axis (minimum c) on a fine grid."""
        zs = np.linspace(self.depths_m[0], self.depths_m[-1], 512)
        cs = np.interp(zs, self.depths_m, self.speeds_mps)
        return float(zs[int(np.argmin(cs))])
