"""Sea-surface state: roughness loss and wave-induced Doppler.

The water surface is a near-perfect pressure-release reflector: coefficient
-1 for a mirror-flat surface. Two sea-state effects matter for backscatter:

* **Coherent loss from roughness.** A rough surface scatters energy out of
  the specular direction. The standard model attenuates the coherent
  reflection by the Rayleigh roughness factor
  ``exp(-2 (k * sigma * sin(grazing))^2)`` where ``sigma`` is the RMS wave
  height.
* **Doppler spread.** Surface-bounced paths reflect off a moving boundary;
  the path delay is modulated at the dominant wave period. The ocean
  experiments in the paper are harder than the river ones largely because
  of this time variation, so the channel simulator animates it.

Wave height and period are derived from wind speed with the fully-developed
Pierson–Moskowitz relations, or can be set explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

GRAVITY = 9.81


@dataclass(frozen=True)
class SeaSurface:
    """Statistical state of the water surface.

    Attributes:
        rms_height_m: RMS displacement of the surface, metres.
        dominant_period_s: period of the dominant wave component, seconds.
        amplitude_m: peak displacement used for the deterministic wave
            animation (defaults to sqrt(2) * rms for a sinusoidal proxy).
    """

    rms_height_m: float = 0.0
    dominant_period_s: float = 8.0

    @property
    def amplitude_m(self) -> float:
        """Peak surface displacement of the sinusoidal animation proxy."""
        return math.sqrt(2.0) * self.rms_height_m

    @staticmethod
    def calm() -> "SeaSurface":
        """Mirror-flat surface (sheltered river on a still day)."""
        return SeaSurface(rms_height_m=0.0, dominant_period_s=8.0)

    @staticmethod
    def from_wind(wind_speed_mps: float) -> "SeaSurface":
        """Fully developed sea for a given wind speed (Pierson–Moskowitz).

        Significant wave height Hs ~ 0.21 U^2 / g; RMS height is Hs / 4.
        Peak period Tp ~ 7.2 U / g (empirical fit).
        """
        if wind_speed_mps < 0:
            raise ValueError("wind speed must be non-negative")
        hs = 0.21 * wind_speed_mps**2 / GRAVITY
        tp = max(7.2 * wind_speed_mps / GRAVITY, 1.0)
        return SeaSurface(rms_height_m=hs / 4.0, dominant_period_s=tp)

    @staticmethod
    def from_sea_state(sea_state: int) -> "SeaSurface":
        """Surface for a WMO sea state code 0-6."""
        if not 0 <= sea_state <= 6:
            raise ValueError("sea state must be in 0..6")
        rms_by_state = [0.0, 0.025, 0.12, 0.3, 0.6, 1.0, 1.5]
        period_by_state = [4.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
        return SeaSurface(
            rms_height_m=rms_by_state[sea_state],
            dominant_period_s=period_by_state[sea_state],
        )

    def reflection_coefficient(
        self, frequency_hz: float, grazing_angle_rad: float, sound_speed: float = 1500.0
    ) -> complex:
        """Coherent surface reflection coefficient at a grazing angle.

        Pressure-release boundary (-1) attenuated by the Rayleigh
        roughness factor.
        """
        k = 2.0 * math.pi * frequency_hz / sound_speed
        rayleigh = 2.0 * (k * self.rms_height_m * math.sin(grazing_angle_rad)) ** 2
        return complex(-math.exp(-min(rayleigh, 60.0)), 0.0)

    def displacement(self, time_s: float, phase_rad: float = 0.0) -> float:
        """Deterministic surface displacement proxy at a time, metres."""
        if self.rms_height_m == 0.0:
            return 0.0
        omega = 2.0 * math.pi / self.dominant_period_s
        return self.amplitude_m * math.sin(omega * time_s + phase_rad)

    def vertical_velocity(self, time_s: float, phase_rad: float = 0.0) -> float:
        """Surface vertical velocity proxy at a time, m/s."""
        if self.rms_height_m == 0.0:
            return 0.0
        omega = 2.0 * math.pi / self.dominant_period_s
        return self.amplitude_m * omega * math.cos(omega * time_s + phase_rad)

    def max_doppler_shift_hz(
        self, frequency_hz: float, grazing_angle_rad: float, sound_speed: float = 1500.0
    ) -> float:
        """Peak Doppler shift a surface-bounce path sees, Hz.

        A bounce off a boundary moving at vertical velocity v changes the
        path length at rate 2 v sin(grazing); the shift is f * rate / c.
        """
        omega = 2.0 * math.pi / self.dominant_period_s
        v_peak = self.amplitude_m * omega
        rate = 2.0 * v_peak * math.sin(grazing_angle_rad)
        return frequency_hz * rate / sound_speed
