"""Doppler utilities for moving platforms.

Backscatter nodes are moored, but the reader in the paper's experiments
hangs off a boat or dock and drifts; the ocean deployment adds surface
motion. For narrowband signals the two useful operations are:

* :func:`doppler_shift_hz` — the carrier shift for a radial velocity, and
* :func:`apply_doppler` — resample a complex baseband signal for a given
  shift (time-scaling plus baseband rotation), which is exact for the
  narrowband signals VAB uses.
"""

from __future__ import annotations

import numpy as np


def doppler_shift_hz(
    carrier_hz: float, radial_velocity_mps: float, sound_speed_mps: float = 1500.0
) -> float:
    """Carrier Doppler shift for a closing velocity (positive = closing)."""
    return carrier_hz * radial_velocity_mps / sound_speed_mps


def doppler_factor(
    radial_velocity_mps: float, sound_speed_mps: float = 1500.0
) -> float:
    """Time-compression factor ``a``: received time = (1 + a) * sent time."""
    return radial_velocity_mps / sound_speed_mps


def apply_doppler(
    signal: np.ndarray,
    fs: float,
    carrier_hz: float,
    radial_velocity_mps: float,
    sound_speed_mps: float = 1500.0,
) -> np.ndarray:
    """Apply a constant-velocity Doppler to a complex baseband signal.

    Two effects are applied:

    1. carrier shift: multiply by ``exp(j 2 pi f_d t)``;
    2. time compression of the envelope by ``1 + v/c`` (resampled with
       linear interpolation — adequate at the < 1e-3 factors of interest).

    Args:
        signal: complex baseband samples.
        fs: sample rate, Hz.
        carrier_hz: carrier the baseband is centred on.
        radial_velocity_mps: closing velocity (positive shortens the path).
        sound_speed_mps: medium sound speed.

    Returns:
        Doppler-distorted complex baseband samples (same length).
    """
    signal = np.asarray(signal, dtype=np.complex128)
    n_samples = signal.shape[-1]
    if radial_velocity_mps == 0.0 or n_samples == 0:
        return signal.copy()
    a = doppler_factor(radial_velocity_mps, sound_speed_mps)
    n = np.arange(n_samples)
    # Envelope compression: sample the input at stretched positions.
    # Gathers index the last axis, so a (trials, samples) block is
    # warped row by row with identical arithmetic.
    src_pos = n / (1.0 + a)
    src_pos = np.clip(src_pos, 0, n_samples - 1)
    i0 = np.floor(src_pos).astype(int)
    i1 = np.minimum(i0 + 1, n_samples - 1)
    frac = src_pos - i0
    warped = (1.0 - frac) * signal[..., i0] + frac * signal[..., i1]
    # Carrier shift.
    f_d = doppler_shift_hz(carrier_hz, radial_velocity_mps, sound_speed_mps)
    rotation = np.exp(2j * np.pi * f_d * n / fs)
    return warped * rotation
