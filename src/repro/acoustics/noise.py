"""Ambient noise in the underwater channel (Wenz curves).

The standard decomposition models four independent sources, each with an
empirical power spectral density in dB re 1 uPa^2/Hz:

* turbulence (dominates below ~10 Hz),
* distant shipping (10–100 Hz, scaled by a shipping-activity factor),
* wind-driven surface agitation (100 Hz – 100 kHz, scaled by wind speed),
* thermal noise (dominates above ~100 kHz).

At VAB's ~18.5 kHz carrier the wind term dominates, which is why sea state
is the knob that separates the river and ocean experiments.

PSDs combine in linear power. :func:`noise_level_db` integrates the PSD
over a receiver bandwidth to get the in-band noise level used by link
budgets, and :func:`repro.dsp.noisegen` synthesises time-domain noise with
this spectrum for the waveform simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.units.vocab import DB, HZ, MPS


def wenz_turbulence_psd_db(frequency_hz: HZ) -> DB:
    """Turbulence noise PSD, dB re 1 uPa^2/Hz."""
    f_khz = max(frequency_hz, 1e-3) / 1e3
    return 17.0 - 30.0 * math.log10(f_khz)


def wenz_shipping_psd_db(frequency_hz: HZ, shipping: float) -> DB:
    """Distant-shipping noise PSD, dB re 1 uPa^2/Hz.

    Args:
        frequency_hz: frequency in Hz.
        shipping: activity factor in [0, 1]; 0 remote, 1 busy harbour.
    """
    if not 0.0 <= shipping <= 1.0:
        raise ValueError("shipping factor must be in [0, 1]")
    f_khz = max(frequency_hz, 1e-3) / 1e3
    return (
        40.0
        + 20.0 * (shipping - 0.5)
        + 26.0 * math.log10(f_khz)
        - 60.0 * math.log10(f_khz + 0.03)
    )


def wenz_wind_psd_db(frequency_hz: HZ, wind_speed_mps: MPS) -> DB:
    """Wind/surface-agitation noise PSD, dB re 1 uPa^2/Hz.

    Args:
        frequency_hz: frequency in Hz.
        wind_speed_mps: wind speed at the surface, m/s.
    """
    if wind_speed_mps < 0:
        raise ValueError("wind speed must be non-negative")
    f_khz = max(frequency_hz, 1e-3) / 1e3
    return (
        50.0
        + 7.5 * math.sqrt(wind_speed_mps)
        + 20.0 * math.log10(f_khz)
        - 40.0 * math.log10(f_khz + 0.4)
    )


def wenz_thermal_psd_db(frequency_hz: HZ) -> DB:
    """Thermal noise PSD, dB re 1 uPa^2/Hz."""
    f_khz = max(frequency_hz, 1e-3) / 1e3
    return -15.0 + 20.0 * math.log10(f_khz)


@dataclass(frozen=True)
class NoiseConditions:
    """Environmental noise parameters at a site.

    Attributes:
        wind_speed_mps: surface wind speed, m/s (sea state proxy).
        shipping: shipping-activity factor in [0, 1].
    """

    wind_speed_mps: float = 5.0
    shipping: float = 0.5

    @staticmethod
    def quiet_river() -> "NoiseConditions":
        """Calm urban river: little wind fetch, moderate vessel activity."""
        return NoiseConditions(wind_speed_mps=2.0, shipping=0.4)

    @staticmethod
    def coastal_ocean(sea_state: int = 3) -> "NoiseConditions":
        """Coastal ocean parameterised by WMO sea state 0-6."""
        if not 0 <= sea_state <= 6:
            raise ValueError("sea state must be in 0..6")
        wind_by_state = [0.5, 2.0, 4.5, 7.0, 9.5, 12.5, 16.0]
        return NoiseConditions(wind_speed_mps=wind_by_state[sea_state], shipping=0.5)

    def psd_db(self, frequency_hz: float) -> float:
        """Total ambient-noise PSD at a frequency, dB re 1 uPa^2/Hz."""
        return total_noise_psd_db(frequency_hz, self)

    def psd_db_array(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """Vectorized total PSD over an array of frequencies."""
        return total_noise_psd_db_array(frequencies_hz, self)


def total_noise_psd_db(frequency_hz: HZ, conditions: NoiseConditions) -> DB:
    """Sum the four Wenz components in linear power; return dB re 1 uPa^2/Hz."""
    components_db = (
        wenz_turbulence_psd_db(frequency_hz),
        wenz_shipping_psd_db(frequency_hz, conditions.shipping),
        wenz_wind_psd_db(frequency_hz, conditions.wind_speed_mps),
        wenz_thermal_psd_db(frequency_hz),
    )
    linear = sum(10.0 ** (c_db / 10.0) for c_db in components_db)
    return 10.0 * math.log10(linear)


def total_noise_psd_db_array(
    frequencies_hz: np.ndarray, conditions: NoiseConditions
) -> np.ndarray:
    """Vectorized :func:`total_noise_psd_db` over an array of frequencies.

    Evaluates the four Wenz components with array operations and sums
    them in linear power — the per-bin shaping of a 10k-sample noise
    record drops from tens of milliseconds to microseconds, which is the
    difference between waveform campaigns topping out at dozens of trials
    and the paper's >1,500.
    """
    if not 0.0 <= conditions.shipping <= 1.0:
        raise ValueError("shipping factor must be in [0, 1]")
    if conditions.wind_speed_mps < 0:
        raise ValueError("wind speed must be non-negative")
    f_khz = np.maximum(np.asarray(frequencies_hz, dtype=np.float64), 1e-3) / 1e3
    log_f = np.log10(f_khz)
    turbulence_db = 17.0 - 30.0 * log_f
    shipping_db = (
        40.0
        + 20.0 * (conditions.shipping - 0.5)
        + 26.0 * log_f
        - 60.0 * np.log10(f_khz + 0.03)
    )
    wind_db = (
        50.0
        + 7.5 * math.sqrt(conditions.wind_speed_mps)
        + 20.0 * log_f
        - 40.0 * np.log10(f_khz + 0.4)
    )
    thermal_db = -15.0 + 20.0 * log_f
    linear = (
        10.0 ** (turbulence_db / 10.0)
        + 10.0 ** (shipping_db / 10.0)
        + 10.0 ** (wind_db / 10.0)
        + 10.0 ** (thermal_db / 10.0)
    )
    return 10.0 * np.log10(linear)


def noise_level_db(
    center_frequency_hz: HZ,
    bandwidth_hz: HZ,
    conditions: NoiseConditions,
    points: int = 32,
) -> DB:
    """In-band ambient noise level, dB re 1 uPa.

    Integrates the total PSD across ``bandwidth_hz`` centred on
    ``center_frequency_hz`` (trapezoidal, in linear power).

    Args:
        center_frequency_hz: receiver centre frequency, Hz.
        bandwidth_hz: receiver noise bandwidth, Hz.
        conditions: site noise conditions.
        points: integration grid size.

    Returns:
        Total in-band noise level in dB re 1 uPa.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    lo = max(center_frequency_hz - bandwidth_hz / 2.0, 1.0)
    hi = center_frequency_hz + bandwidth_hz / 2.0
    freqs = np.linspace(lo, hi, points)
    psd_linear = np.array(
        [10.0 ** (total_noise_psd_db(float(f), conditions) / 10.0) for f in freqs]
    )
    power = float(np.trapezoid(psd_linear, freqs))
    return 10.0 * math.log10(power)
