"""Underwater acoustic channel substrate.

This package implements the physical-layer environment the paper's
experiments run in:

* :mod:`repro.acoustics.constants` — water properties and sound speed.
* :mod:`repro.acoustics.absorption` — frequency-dependent absorption
  (Thorp and Francois–Garrison models).
* :mod:`repro.acoustics.spreading` — geometric spreading loss.
* :mod:`repro.acoustics.noise` — Wenz ambient-noise spectra and coloured
  noise synthesis.
* :mod:`repro.acoustics.propagation` — image-method multipath ray tracing
  between two points in a shallow-water waveguide.
* :mod:`repro.acoustics.surface` — sea-surface state (roughness loss and
  wave-induced Doppler on surface-reflected paths).
* :mod:`repro.acoustics.channel` — time-domain channel application: turns a
  set of propagation paths into a tapped-delay-line filter on complex
  baseband samples.

All levels follow underwater conventions: pressures in dB re 1 µPa, source
levels in dB re 1 µPa @ 1 m, transmission loss in dB.
"""

from repro.acoustics.constants import (
    REFERENCE_DISTANCE_M,
    WaterProperties,
    sound_speed_mackenzie,
)
from repro.acoustics.absorption import (
    absorption_db_per_km,
    absorption_francois_garrison,
    absorption_thorp,
)
from repro.acoustics.spreading import (
    CYLINDRICAL_EXPONENT,
    PRACTICAL_EXPONENT,
    SPHERICAL_EXPONENT,
    amplitude_gain,
    spreading_loss_db,
    transmission_loss_db,
)
from repro.acoustics.noise import (
    NoiseConditions,
    noise_level_db,
    total_noise_psd_db,
    wenz_shipping_psd_db,
    wenz_thermal_psd_db,
    wenz_turbulence_psd_db,
    wenz_wind_psd_db,
)
from repro.acoustics.doppler import apply_doppler, doppler_factor, doppler_shift_hz
from repro.acoustics.ssp import SoundSpeedProfile
from repro.acoustics.raytrace import (
    RayPath,
    find_eigenray,
    in_shadow_zone,
    trace_ray,
)
from repro.acoustics.propagation import Path, trace_paths
from repro.acoustics.surface import SeaSurface
from repro.acoustics.channel import AcousticChannel, ChannelResponse

__all__ = [
    "REFERENCE_DISTANCE_M",
    "WaterProperties",
    "sound_speed_mackenzie",
    "absorption_db_per_km",
    "absorption_thorp",
    "absorption_francois_garrison",
    "spreading_loss_db",
    "transmission_loss_db",
    "amplitude_gain",
    "SPHERICAL_EXPONENT",
    "PRACTICAL_EXPONENT",
    "CYLINDRICAL_EXPONENT",
    "NoiseConditions",
    "noise_level_db",
    "total_noise_psd_db",
    "wenz_turbulence_psd_db",
    "wenz_shipping_psd_db",
    "wenz_wind_psd_db",
    "wenz_thermal_psd_db",
    "Path",
    "trace_paths",
    "SeaSurface",
    "AcousticChannel",
    "ChannelResponse",
    "apply_doppler",
    "doppler_factor",
    "doppler_shift_hz",
    "SoundSpeedProfile",
    "RayPath",
    "trace_ray",
    "find_eigenray",
    "in_shadow_zone",
]
