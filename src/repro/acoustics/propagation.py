"""Image-method multipath propagation in a shallow-water waveguide.

Shallow deployments (a river a few metres deep, a coastal shelf) behave as
an acoustic waveguide: energy reaches the receiver via the direct path plus
families of rays that bounce off the (pressure-release) surface and the
(lossy) bottom. The image method replaces each bounce family with a mirror
image of the source, so each path is a straight line with:

* a length (delay and spreading/absorption follow),
* a per-bounce surface coefficient (about -1, i.e. unity magnitude with a
  pi phase flip, reduced by roughness scattering), and
* a per-bounce bottom coefficient (magnitude < 1, from the sediment
  impedance contrast).

The returned :class:`Path` list is the channel's ground truth; the
tapped-delay-line in :mod:`repro.acoustics.channel` is built from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.acoustics.constants import WaterProperties
from repro.acoustics.spreading import PRACTICAL_EXPONENT, amplitude_gain
from repro.acoustics.surface import SeaSurface
from repro.geometry.vec3 import Vec3


@dataclass(frozen=True)
class Path:
    """One propagation path between two points.

    Attributes:
        length_m: geometric path length, metres.
        delay_s: propagation delay, seconds.
        gain: complex pressure gain (spreading + absorption + boundary
            coefficients), relative to unit pressure at 1 m from the source.
        surface_bounces: number of surface reflections along the path.
        bottom_bounces: number of bottom reflections along the path.
        departure_deg: elevation angle at the source (positive = upward).
        arrival_deg: elevation angle at the receiver (positive = from above).
    """

    length_m: float
    delay_s: float
    gain: complex
    surface_bounces: int
    bottom_bounces: int
    departure_deg: float
    arrival_deg: float

    @property
    def is_direct(self) -> bool:
        """True for the bounce-free line-of-sight path."""
        return self.surface_bounces == 0 and self.bottom_bounces == 0

    @property
    def gain_db(self) -> float:
        """Path gain magnitude in dB (negative: it is a loss)."""
        mag = abs(self.gain)
        if mag <= 0.0:
            return -math.inf
        return 20.0 * math.log10(mag)


def bottom_reflection_coefficient(
    grazing_angle_rad: float,
    water: WaterProperties,
    bottom_density_kg_m3: float = 1800.0,
    bottom_sound_speed_mps: float = 1700.0,
    bottom_loss_db_per_bounce: float = 2.0,
) -> complex:
    """Rayleigh reflection coefficient for a fluid sediment half-space.

    Args:
        grazing_angle_rad: angle between the ray and the bottom plane.
        water: water properties above the bottom.
        bottom_density_kg_m3: sediment density (sand ~1800).
        bottom_sound_speed_mps: sediment sound speed (sand ~1700).
        bottom_loss_db_per_bounce: additional scattering/attenuation loss
            applied per bounce on top of the Rayleigh coefficient.

    Returns:
        Complex reflection coefficient (|R| <= 1).
    """
    c1 = water.sound_speed
    c2 = bottom_sound_speed_mps
    rho1 = water.density_kg_m3
    rho2 = bottom_density_kg_m3
    theta = max(grazing_angle_rad, 1e-6)

    # Snell: cos(theta2) = (c2/c1) cos(theta1); beyond critical angle the
    # transmitted wave is evanescent and |R| -> 1.
    cos_t2 = (c2 / c1) * math.cos(theta)
    if abs(cos_t2) >= 1.0:
        sin_t2 = 1j * math.sqrt(cos_t2 * cos_t2 - 1.0)
    else:
        sin_t2 = math.sqrt(1.0 - cos_t2 * cos_t2)

    z1 = rho1 * c1 / math.sin(theta)
    z2 = rho2 * c2 / sin_t2
    r = (z2 - z1) / (z2 + z1)
    extra = 10.0 ** (-bottom_loss_db_per_bounce / 20.0)
    return r * extra


def trace_paths(
    source: Vec3,
    receiver: Vec3,
    frequency_hz: float,
    water: WaterProperties,
    surface: Optional[SeaSurface] = None,
    max_bounces: int = 2,
    spreading_exponent: float = PRACTICAL_EXPONENT,
    min_gain_db: float = -120.0,
    bottom_density_kg_m3: float = 1800.0,
    bottom_sound_speed_mps: float = 1700.0,
    bottom_loss_db_per_bounce: float = 2.0,
) -> List[Path]:
    """Enumerate image-method paths between two points.

    Images are generated for every combination of up to ``max_bounces``
    total boundary interactions, alternating surface and bottom mirrors.
    Paths weaker than ``min_gain_db`` relative to 1 m are dropped.

    Args:
        source: transmit location (z positive down, metres).
        receiver: receive location.
        frequency_hz: carrier frequency for absorption and phase.
        water: water column properties (incl. ``depth_m`` = bottom depth).
        surface: sea-surface state; default flat/calm.
        max_bounces: maximum total bounces (surface + bottom) per path.
        spreading_exponent: geometric spreading exponent.
        min_gain_db: cull threshold for weak paths.
        bottom_density_kg_m3: sediment density (sand ~1800, mud ~1400).
        bottom_sound_speed_mps: sediment sound speed (sand ~1700,
            mud ~1480 — nearly transparent).
        bottom_loss_db_per_bounce: extra scattering loss per bottom hit.

    Returns:
        Paths sorted by increasing delay; the first is the direct path.
    """
    if surface is None:
        surface = SeaSurface.calm()
    depth = water.depth_m
    if not 0.0 < source.z < depth or not 0.0 < receiver.z < depth:
        raise ValueError(
            "source and receiver must be inside the water column "
            f"(0 < z < {depth} m): got z_src={source.z}, z_rx={receiver.z}"
        )
    c = water.sound_speed
    k = 2.0 * math.pi * frequency_hz / c
    horizontal = math.hypot(receiver.x - source.x, receiver.y - source.y)

    paths: List[Path] = []
    # Image z-coordinates: standard shallow-water image expansion. For a
    # path with m "periods" and pattern p in {0,1,2,3}:
    #   z_img = 2*depth*m + s * source.z  with the four sign/offset combos.
    for total in range(0, max_bounces + 1):
        for first_surface in (True, False):
            if total == 0 and not first_surface:
                continue  # direct path counted once
            n_surf, n_bot, z_img = _image_depth(
                source.z, depth, total, first_surface
            )
            if z_img is None:
                continue
            dz = receiver.z - z_img
            length = math.hypot(horizontal, dz)
            if length < 1.0:
                length = 1.0  # clamp inside the reference distance
            grazing = math.atan2(abs(dz), horizontal) if horizontal > 0 else math.pi / 2

            gain = amplitude_gain(
                length, frequency_hz, water, spreading_exponent
            ) * complex(math.cos(-k * length), math.sin(-k * length))
            if n_surf:
                gain *= surface.reflection_coefficient(frequency_hz, grazing) ** n_surf
            if n_bot:
                gain *= (
                    bottom_reflection_coefficient(
                        grazing,
                        water,
                        bottom_density_kg_m3,
                        bottom_sound_speed_mps,
                        bottom_loss_db_per_bounce,
                    )
                    ** n_bot
                )
            is_direct = n_surf == 0 and n_bot == 0
            if (
                not is_direct
                and 20.0 * math.log10(max(abs(gain), 1e-30)) < min_gain_db
            ):
                continue  # cull weak echoes, but never the direct path

            departure = math.degrees(math.atan2(-(dz), horizontal))
            paths.append(
                Path(
                    length_m=length,
                    delay_s=length / c,
                    gain=gain,
                    surface_bounces=n_surf,
                    bottom_bounces=n_bot,
                    departure_deg=departure,
                    arrival_deg=-departure,
                )
            )

    paths.sort(key=lambda p: p.delay_s)
    return paths


def _image_depth(z_src: float, depth: float, total_bounces: int, first_surface: bool):
    """Return (surface bounces, bottom bounces, image z) for a bounce family.

    The image of the source after an alternating sequence of surface and
    bottom reflections lies at a z obtained by repeated mirroring. Sequences
    must alternate (two consecutive reflections off the same boundary are
    geometrically impossible for a monotonic ray), so the family is fully
    described by the total count and which boundary is hit first.
    """
    if total_bounces == 0:
        return 0, 0, z_src
    z = z_src
    n_surf = 0
    n_bot = 0
    next_surface = first_surface
    for _ in range(total_bounces):
        if next_surface:
            z = -z
            n_surf += 1
        else:
            z = 2.0 * depth - z
            n_bot += 1
        next_surface = not next_surface
    return n_surf, n_bot, z
