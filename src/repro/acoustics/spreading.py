"""Geometric spreading and one-way transmission loss.

Shallow coastal water sits between spherical spreading (k = 20, deep open
water) and cylindrical spreading (k = 10, ideal waveguide); the usual
engineering compromise is *practical spreading* k = 15. The spreading
exponent is exposed so scenarios can pick what matches their geometry —
the river preset, with its shallow depth relative to range, uses a lower
exponent than the short-range ocean tests.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.acoustics.absorption import absorption_db_per_km
from repro.acoustics.constants import REFERENCE_DISTANCE_M, WaterProperties
from repro.analysis.units.vocab import DB, HZ, LINEAR, METERS

SPHERICAL_EXPONENT = 20.0
PRACTICAL_EXPONENT = 15.0
CYLINDRICAL_EXPONENT = 10.0


def spreading_loss_db(distance_m: METERS, exponent: float = PRACTICAL_EXPONENT) -> DB:
    """Geometric spreading loss at ``distance_m``, dB.

    Args:
        distance_m: path length in metres (must be >= the 1 m reference).
        exponent: spreading exponent k in ``k * log10(d)``; 20 spherical,
            15 practical, 10 cylindrical.

    Returns:
        Loss in dB relative to the 1 m reference distance.
    """
    if distance_m < REFERENCE_DISTANCE_M:
        raise ValueError(
            f"distance {distance_m} m is inside the {REFERENCE_DISTANCE_M} m reference"
        )
    return exponent * math.log10(distance_m / REFERENCE_DISTANCE_M)


def transmission_loss_db(
    distance_m: METERS,
    frequency_hz: HZ,
    water: Optional[WaterProperties] = None,
    spreading_exponent: float = PRACTICAL_EXPONENT,
) -> DB:
    """One-way transmission loss: spreading plus absorption, dB.

    ``TL = k log10(d) + alpha(f) * d / 1000``

    Args:
        distance_m: path length, metres.
        frequency_hz: acoustic frequency, Hz.
        water: water properties for the absorption model (Thorp if None).
        spreading_exponent: geometric spreading exponent.

    Returns:
        One-way transmission loss in dB. A backscatter round trip pays
        this twice (minus whatever the node re-radiates coherently).
    """
    alpha = absorption_db_per_km(frequency_hz, water)
    return spreading_loss_db(distance_m, spreading_exponent) + alpha * distance_m / 1e3


def amplitude_gain(
    distance_m: METERS,
    frequency_hz: HZ,
    water: Optional[WaterProperties] = None,
    spreading_exponent: float = PRACTICAL_EXPONENT,
) -> LINEAR:
    """Linear pressure-amplitude gain (<1) over a one-way path."""
    tl_db = transmission_loss_db(distance_m, frequency_hz, water, spreading_exponent)
    return 10.0 ** (-tl_db / 20.0)
