"""Frequency-dependent acoustic absorption in water.

Two standard models are provided:

* **Thorp (1967)** — the classic sea-water fit, a function of frequency
  only. Cheap and accurate near 20 kHz where VAB operates.
* **Francois–Garrison (1982)** — the full model with boric-acid and
  magnesium-sulphate relaxation plus pure-water viscosity, parameterised by
  temperature, salinity, depth, and pH. This is what lets the simulator
  distinguish river (fresh) from ocean (salt) water: at 18.5 kHz fresh
  water absorbs roughly an order of magnitude less than sea water.

Both return absorption in **dB per kilometre**; one-way path absorption is
``alpha * distance_km`` and backscatter pays it twice.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.acoustics.constants import WaterProperties
from repro.analysis.units.vocab import DB_PER_KM, HZ


def absorption_thorp(frequency_hz: HZ) -> DB_PER_KM:
    """Thorp's absorption formula, dB/km.

    Valid for sea water, roughly 100 Hz – 1 MHz.

    Args:
        frequency_hz: acoustic frequency in Hz.

    Returns:
        Absorption coefficient in dB/km.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    f_khz = frequency_hz / 1e3
    f2 = f_khz * f_khz
    return (
        0.11 * f2 / (1.0 + f2)
        + 44.0 * f2 / (4100.0 + f2)
        + 2.75e-4 * f2
        + 0.003
    )


def absorption_francois_garrison(
    frequency_hz: HZ, water: WaterProperties
) -> DB_PER_KM:
    """Francois–Garrison (1982) absorption, dB/km.

    Accounts for boric-acid relaxation, magnesium-sulphate relaxation, and
    pure-water viscous absorption. Handles low salinity (rivers) where the
    ionic relaxation terms nearly vanish.

    Args:
        frequency_hz: acoustic frequency in Hz.
        water: bulk water properties at the site.

    Returns:
        Absorption coefficient in dB/km.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    f = frequency_hz / 1e3  # model works in kHz
    t = water.temperature_c
    s = max(water.salinity_ppt, 0.0)
    d = water.depth_m / 1e3  # km
    ph = water.ph
    c = 1412.0 + 3.21 * t + 1.19 * s + 0.0167 * water.depth_m

    theta = t + 273.0

    # Boric acid contribution (vanishes with salinity).
    if s > 0:
        a1 = (8.86 / c) * 10.0 ** (0.78 * ph - 5.0)
        p1 = 1.0
        f1 = 2.8 * math.sqrt(s / 35.0) * 10.0 ** (4.0 - 1245.0 / theta)
        boric = (a1 * p1 * f1 * f * f) / (f1 * f1 + f * f)
    else:
        boric = 0.0

    # Magnesium sulphate contribution (vanishes with salinity).
    if s > 0:
        a2 = 21.44 * (s / c) * (1.0 + 0.025 * t)
        p2 = 1.0 - 1.37e-4 * water.depth_m + 6.2e-9 * water.depth_m**2
        f2 = (8.17 * 10.0 ** (8.0 - 1990.0 / theta)) / (1.0 + 0.0018 * (s - 35.0))
        mgso4 = (a2 * p2 * f2 * f * f) / (f2 * f2 + f * f)
    else:
        mgso4 = 0.0

    # Pure water viscosity.
    if t <= 20.0:
        a3 = (
            4.937e-4
            - 2.59e-5 * t
            + 9.11e-7 * t**2
            - 1.50e-8 * t**3
        )
    else:
        a3 = (
            3.964e-4
            - 1.146e-5 * t
            + 1.45e-7 * t**2
            - 6.5e-10 * t**3
        )
    p3 = 1.0 - 3.83e-5 * water.depth_m + 4.9e-10 * water.depth_m**2
    viscous = a3 * p3 * f * f

    __ = d  # depth enters through the pressure corrections p2, p3
    return boric + mgso4 + viscous


def absorption_db_per_km(
    frequency_hz: HZ, water: Optional[WaterProperties] = None
) -> DB_PER_KM:
    """Absorption for a site, choosing the best available model.

    With no ``water`` given, falls back to Thorp (sea water). With water
    properties, uses Francois–Garrison so fresh and salt water differ.
    """
    if water is None:
        return absorption_thorp(frequency_hz)
    return absorption_francois_garrison(frequency_hz, water)
