"""Time-domain application of a multipath channel to baseband signals.

Signals in the waveform simulator are complex baseband envelopes sampled at
``fs`` around the carrier ``fc``. A set of :class:`~repro.acoustics.propagation.Path`
objects becomes a tapped delay line: each path contributes a tap with

* delay ``tau`` (applied as integer samples + linear fractional
  interpolation),
* complex gain ``g * exp(-j 2 pi fc tau)`` (the carrier phase of the
  delay shows up as a baseband rotation).

Surface-bounced taps can be animated: the wave displacement modulates the
path length, producing the slow phase wander / Doppler spread that makes
the paper's ocean experiments harder than the river ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.acoustics.constants import WaterProperties
from repro.acoustics.propagation import Path, trace_paths
from repro.acoustics.spreading import PRACTICAL_EXPONENT
from repro.acoustics.surface import SeaSurface
from repro.geometry.vec3 import Vec3


@dataclass
class ChannelResponse:
    """A concrete multipath response between two points.

    Attributes:
        paths: the propagation paths (sorted by delay).
        carrier_hz: carrier frequency the baseband is centred on.
        surface: surface state used to animate surface-bounce taps.
        sound_speed: sound speed, m/s.
    """

    paths: List[Path]
    carrier_hz: float
    surface: SeaSurface = field(default_factory=SeaSurface.calm)
    sound_speed: float = 1500.0

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError("a channel response needs at least one path")

    @property
    def direct_path(self) -> Path:
        """The earliest-arriving path."""
        return self.paths[0]

    def total_gain(self) -> complex:
        """Coherent sum of all tap gains at the carrier (narrowband gain)."""
        return complex(sum(p.gain for p in self.paths))

    def total_gain_db(self) -> float:
        """Narrowband channel gain magnitude, dB."""
        mag = abs(self.total_gain())
        return 20.0 * math.log10(max(mag, 1e-30))

    def rms_delay_spread(self) -> float:
        """Power-weighted RMS delay spread, seconds."""
        powers = np.array([abs(p.gain) ** 2 for p in self.paths])
        delays = np.array([p.delay_s for p in self.paths])
        total = powers.sum()
        if total <= 0:
            return 0.0
        mean = float((powers * delays).sum() / total)
        var = float((powers * (delays - mean) ** 2).sum() / total)
        return math.sqrt(max(var, 0.0))

    def coherence_bandwidth_hz(self) -> float:
        """Rule-of-thumb coherence bandwidth 1 / (5 * delay spread)."""
        spread = self.rms_delay_spread()
        if spread <= 0:
            return math.inf
        return 1.0 / (5.0 * spread)

    def baseband_taps(self, time_s: float = 0.0) -> List[tuple]:
        """(delay_s, complex gain) taps at an absolute time.

        The propagation gain already carries the carrier phase of the
        nominal geometry; the time argument adds the surface-motion
        perturbation on surface-bounced paths.
        """
        taps = []
        k = 2.0 * math.pi * self.carrier_hz / self.sound_speed
        for p in self.paths:
            gain = p.gain
            if p.surface_bounces > 0 and self.surface.rms_height_m > 0.0:
                grazing = math.radians(abs(p.arrival_deg)) or 0.1
                dl = (
                    2.0
                    * p.surface_bounces
                    * self.surface.displacement(time_s)
                    * math.sin(grazing)
                )
                gain = gain * complex(math.cos(-k * dl), math.sin(-k * dl))
            taps.append((p.delay_s, gain))
        return taps

    def apply(
        self,
        signal: np.ndarray,
        fs: float,
        start_time_s: float = 0.0,
        include_delay: bool = False,
        time_varying: bool = True,
        block_s: float = 0.05,
    ) -> np.ndarray:
        """Convolve a complex baseband signal with the channel.

        Args:
            signal: complex baseband samples; 1-D, or ``(..., samples)``
                to push a batch of records through the same response
                (taps apply along the last axis, rows independent).
            fs: sample rate, Hz.
            start_time_s: absolute time of the first sample (drives the
                surface animation phase).
            include_delay: if True, the output is shifted by the absolute
                direct-path delay; if False (default), delays are measured
                relative to the direct path so the output aligns with the
                input, which keeps experiment bookkeeping simple.
            time_varying: animate surface-bounce taps block-by-block.
            block_s: animation block duration, seconds.

        Returns:
            Complex baseband output, padded by the excess channel delay.
        """
        signal = np.asarray(signal, dtype=np.complex128)
        n_samples = signal.shape[-1]
        base_delay = 0.0 if include_delay else self.direct_path.delay_s
        max_excess = max(p.delay_s - base_delay for p in self.paths)
        out_len = n_samples + int(math.ceil(max_excess * fs)) + 2
        out = np.zeros(signal.shape[:-1] + (out_len,), dtype=np.complex128)

        animate = (
            time_varying
            and self.surface.rms_height_m > 0.0
            and any(p.surface_bounces for p in self.paths)
        )
        if not animate:
            for delay_s, gain in self.baseband_taps(start_time_s):
                _add_delayed(out, signal, (delay_s - base_delay) * fs, gain)
            return out

        # Animated taps, vectorized: a tap's *delay* is fixed — only its
        # gain wanders block to block — so instead of adding every
        # (block, tap) chunk separately, build the per-sample gain profile
        # of each tap (block-constant, via np.repeat) and add the whole
        # gain-modulated signal at the tap's offset in one shot.
        block = max(int(block_s * fs), 1)
        starts = np.arange(0, n_samples, block)
        times = start_time_s + starts / fs
        k = 2.0 * math.pi * self.carrier_hz / self.sound_speed
        displacement = np.array([self.surface.displacement(t) for t in times])
        for p in self.paths:
            if p.surface_bounces > 0:
                grazing = math.radians(abs(p.arrival_deg)) or 0.1
                dl = 2.0 * p.surface_bounces * displacement * math.sin(grazing)
                block_gains = p.gain * np.exp(-1j * k * dl)
                gains = np.repeat(block_gains, block)[:n_samples]
                _add_delayed(
                    out, gains * signal, (p.delay_s - base_delay) * fs, 1.0
                )
            else:
                _add_delayed(out, signal, (p.delay_s - base_delay) * fs, p.gain)
        return out


def _add_delayed(
    out: np.ndarray, signal: np.ndarray, delay_samples: float, gain: complex
) -> None:
    """Add ``gain * signal`` into ``out`` at a fractional sample offset.

    Operates along the last axis; leading (batch) axes pass through
    unchanged, so a ``(trials, samples)`` block shares one tap set.
    """
    if abs(gain) == 0.0:
        return
    n_sig = signal.shape[-1]
    n_out = out.shape[-1]
    n0 = int(math.floor(delay_samples))
    frac = delay_samples - n0
    w0 = (1.0 - frac) * gain
    w1 = frac * gain
    end0 = min(n0 + n_sig, n_out)
    if n0 < end0 and abs(w0) > 0:
        out[..., n0:end0] += w0 * signal[..., : end0 - n0]
    n1 = n0 + 1
    end1 = min(n1 + n_sig, n_out)
    if n1 < end1 and abs(w1) > 0:
        out[..., n1:end1] += w1 * signal[..., : end1 - n1]


@dataclass
class AcousticChannel:
    """Factory for channel responses at a deployment site.

    Bundles the environment (water, surface, spreading) so experiment code
    can ask for the response between any two points::

        chan = AcousticChannel(carrier_hz=18_500, water=WaterProperties.river())
        h = chan.between(reader_pos, node_pos)

    Attributes:
        carrier_hz: carrier frequency, Hz.
        water: water-column properties.
        surface: sea-surface state.
        max_bounces: image-method bounce budget.
        spreading_exponent: geometric spreading exponent.
        direct_only: if True, trace only the line-of-sight path (useful
            for isolating array effects in unit experiments).
        bottom_density_kg_m3: sediment density (sand ~1800, mud ~1400).
        bottom_sound_speed_mps: sediment sound speed (sand ~1700, mud ~1480).
        bottom_loss_db_per_bounce: extra scattering loss per bottom hit.
    """

    carrier_hz: float
    water: WaterProperties
    surface: Optional[SeaSurface] = None
    max_bounces: int = 2
    spreading_exponent: float = PRACTICAL_EXPONENT
    direct_only: bool = False
    bottom_density_kg_m3: float = 1800.0
    bottom_sound_speed_mps: float = 1700.0
    bottom_loss_db_per_bounce: float = 2.0

    def __post_init__(self) -> None:
        if self.surface is None:
            self.surface = SeaSurface.calm()

    def between(self, source: Vec3, receiver: Vec3) -> ChannelResponse:
        """Trace the multipath response from ``source`` to ``receiver``."""
        paths = trace_paths(
            source,
            receiver,
            self.carrier_hz,
            self.water,
            surface=self.surface,
            max_bounces=0 if self.direct_only else self.max_bounces,
            spreading_exponent=self.spreading_exponent,
            bottom_density_kg_m3=self.bottom_density_kg_m3,
            bottom_sound_speed_mps=self.bottom_sound_speed_mps,
            bottom_loss_db_per_bounce=self.bottom_loss_db_per_bounce,
        )
        return ChannelResponse(
            paths=paths,
            carrier_hz=self.carrier_hz,
            surface=self.surface,
            sound_speed=self.water.sound_speed,
        )

    def one_way_gain_db(self, source: Vec3, receiver: Vec3) -> float:
        """Narrowband gain of the traced response, dB."""
        return self.between(source, receiver).total_gain_db()
