"""Ray tracing through a depth-dependent sound-speed profile.

Geometric acoustics: a ray launched at grazing angle ``theta`` (positive
downward) bends according to Snell's law, ``cos(theta) / c(z)`` constant
along the ray. Integration runs the coupled ODEs

::

    dx/ds = cos(theta)
    dz/ds = sin(theta)
    dtheta/ds = -(dc/dz) * cos(theta) / c

with midpoint (RK2) steps, reflecting specularly at the surface (z = 0)
and the bottom. Downward-refracting summer profiles produce the *shadow
zones* that matter for deployment planning: a moored node below the
thermocline may be geometrically unreachable from a shallow reader, no
matter the link budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.acoustics.ssp import SoundSpeedProfile


@dataclass(frozen=True)
class RayPath:
    """One traced ray.

    Attributes:
        x_m: horizontal coordinates along the ray.
        z_m: depths along the ray.
        launch_angle_deg: initial grazing angle (positive down).
        surface_hits: surface reflections along the path.
        bottom_hits: bottom reflections along the path.
        travel_time_s: accumulated travel time.
    """

    x_m: np.ndarray
    z_m: np.ndarray
    launch_angle_deg: float
    surface_hits: int
    bottom_hits: int
    travel_time_s: float

    def depth_at(self, range_m: float) -> Optional[float]:
        """Ray depth when it first crosses a horizontal range (None if
        the ray never gets there)."""
        x = self.x_m
        if range_m < x[0] or range_m > x[-1]:
            return None
        idx = int(np.searchsorted(x, range_m))
        if idx == 0:
            return float(self.z_m[0])
        x0, x1 = x[idx - 1], x[idx]
        z0, z1 = self.z_m[idx - 1], self.z_m[idx]
        if x1 == x0:
            return float(z0)
        t = (range_m - x0) / (x1 - x0)
        return float(z0 + t * (z1 - z0))


def trace_ray(
    ssp: SoundSpeedProfile,
    source_depth_m: float,
    launch_angle_deg: float,
    max_range_m: float,
    bottom_depth_m: Optional[float] = None,
    step_m: float = 1.0,
    max_bounces: int = 10,
) -> RayPath:
    """Integrate one ray until it reaches ``max_range_m`` or bounces out.

    Args:
        ssp: the sound-speed profile.
        source_depth_m: launch depth.
        launch_angle_deg: grazing angle, positive downward, |angle| < 90.
        max_range_m: stop when the ray reaches this range.
        bottom_depth_m: reflecting bottom (profile max depth if None).
        step_m: arc-length integration step.
        max_bounces: stop after this many boundary hits.

    Returns:
        The traced path.
    """
    if abs(launch_angle_deg) >= 90.0:
        raise ValueError("launch angle must be within (-90, 90) degrees")
    if step_m <= 0:
        raise ValueError("step must be positive")
    bottom = ssp.max_depth_m if bottom_depth_m is None else bottom_depth_m
    if not 0.0 <= source_depth_m <= bottom:
        raise ValueError("source depth outside the water column")

    theta = math.radians(launch_angle_deg)
    x, z = 0.0, source_depth_m
    xs, zs = [x], [z]
    time_s = 0.0
    surface_hits = 0
    bottom_hits = 0

    max_steps = int(4 * max_range_m / step_m) + 1000
    for _ in range(max_steps):
        if x >= max_range_m:
            break
        c = ssp.speed_at(z)
        g = ssp.gradient_at(z)
        # Midpoint step.
        dtheta = -(g * math.cos(theta)) / c
        theta_mid = theta + 0.5 * step_m * dtheta
        z_mid = z + 0.5 * step_m * math.sin(theta)
        c_mid = ssp.speed_at(z_mid)
        g_mid = ssp.gradient_at(z_mid)
        theta += step_m * (-(g_mid * math.cos(theta_mid)) / c_mid)
        x += step_m * math.cos(theta_mid)
        z += step_m * math.sin(theta_mid)
        time_s += step_m / c_mid

        if z <= 0.0:
            z = -z
            theta = -theta
            surface_hits += 1
        elif z >= bottom:
            z = 2.0 * bottom - z
            theta = -theta
            bottom_hits += 1
        if surface_hits + bottom_hits > max_bounces:
            break
        xs.append(x)
        zs.append(z)

    return RayPath(
        x_m=np.array(xs),
        z_m=np.array(zs),
        launch_angle_deg=launch_angle_deg,
        surface_hits=surface_hits,
        bottom_hits=bottom_hits,
        travel_time_s=time_s,
    )


def find_eigenray(
    ssp: SoundSpeedProfile,
    source_depth_m: float,
    target_depth_m: float,
    target_range_m: float,
    bottom_depth_m: Optional[float] = None,
    angle_span_deg: float = 30.0,
    angle_step_deg: float = 1.0,
    tolerance_m: float = 1.5,
    allow_surface: bool = True,
    allow_bottom: bool = False,
    step_m: float = 2.0,
) -> Optional[RayPath]:
    """Search launch angles for a ray connecting source and target.

    Scans a fan of rays and refines around the best one by bisection on
    the depth error at the target range.

    Args:
        ssp: the profile.
        source_depth_m: source depth.
        target_depth_m: receiver depth.
        target_range_m: receiver range.
        bottom_depth_m: reflecting bottom depth.
        angle_span_deg: half-width of the launch fan.
        angle_step_deg: fan resolution.
        tolerance_m: accepted depth miss at the target.
        allow_surface: accept rays with surface reflections (the surface
            is a near-lossless mirror, so surface-duct propagation is a
            legitimate connection).
        allow_bottom: accept rays with bottom reflections (lossy mud/sand
            contact; excluded by default so "reachable" means "without
            paying bottom loss").
        step_m: ray-integration step (coarser = faster searches).

    Returns:
        A connecting ray, or None (a *shadow zone*).
    """
    def miss(angle: float) -> Optional[float]:
        ray = trace_ray(
            ssp, source_depth_m, angle, target_range_m * 1.05, bottom_depth_m,
            step_m=step_m,
        )
        if not allow_surface and ray.surface_hits:
            return None
        if not allow_bottom and ray.bottom_hits:
            return None
        depth = ray.depth_at(target_range_m)
        if depth is None:
            return None
        return depth - target_depth_m

    angles = np.arange(-angle_span_deg, angle_span_deg + 1e-9, angle_step_deg)
    evaluated = [(a, miss(float(a))) for a in angles]
    evaluated = [(a, m) for a, m in evaluated if m is not None]
    if not evaluated:
        return None

    # Bisection between adjacent fan angles whose miss changes sign.
    for (a0, m0), (a1, m1) in zip(evaluated, evaluated[1:]):
        if m0 == 0.0:
            return trace_ray(ssp, source_depth_m, a0, target_range_m * 1.05,
                             bottom_depth_m, step_m=step_m)
        if m0 * m1 > 0:
            continue
        lo, hi, mlo = a0, a1, m0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            mm = miss(mid)
            if mm is None:
                break
            if abs(mm) <= tolerance_m:
                return trace_ray(ssp, source_depth_m, mid,
                                 target_range_m * 1.05, bottom_depth_m,
                                 step_m=step_m)
            if mm * mlo <= 0:
                hi = mid
            else:
                lo, mlo = mid, mm
    # Fall back to the closest fan ray if it is within tolerance.
    best_angle, best_miss = min(evaluated, key=lambda am: abs(am[1]))
    if abs(best_miss) <= tolerance_m:
        return trace_ray(ssp, source_depth_m, best_angle,
                         target_range_m * 1.05, bottom_depth_m, step_m=step_m)
    return None


def in_shadow_zone(
    ssp: SoundSpeedProfile,
    source_depth_m: float,
    target_depth_m: float,
    target_range_m: float,
    bottom_depth_m: Optional[float] = None,
) -> bool:
    """True when no refracted/surface-duct ray reaches the target.

    Bottom-bounced connections are excluded: a node that can only be
    reached by paying repeated bottom losses is operationally dark.
    """
    return (
        find_eigenray(
            ssp,
            source_depth_m,
            target_depth_m,
            target_range_m,
            bottom_depth_m,
        )
        is None
    )
