"""Batched array-factor engine: massive Van Atta arrays in one ndarray op.

The scalar response functions (:mod:`repro.vanatta.retrodirective`,
:mod:`repro.vanatta.planar`) evaluate the far-field phasor sum with one
``np.exp`` call per pair per angle — fine for the paper's 4-element
prototype, hopeless for the thousands-of-element apertures the acoustic
RIS literature targets. This module evaluates the same sum as a single
broadcasted tensor operation.

**The term tensor.** Every pair ``(a, b)`` contributes two terms (one
per propagation direction through the pair line); a self-paired centre
element contributes one. Equivalently, *each element* ``i`` contributes
exactly one term: receive on ``i``, re-radiate from its pair partner
``perm(i)``::

    field = sum_i w_i * exp(j * k * (x_i . u_in + x_perm(i) . u_out))

with ``w_i = exp(j * phase of i's pair line)``. The engine precomputes
the ``(N, D)`` receive/re-radiate position tensors and the complex
weights once per array, then evaluates arbitrary broadcast batches of
``(frequency, angle_in, angle_out)`` with two matmuls and one ``exp``
— thousands of elements times hundreds of angles in one shot.

**One kernel, two wirings.** Passive Van Atta pairing is the engine
configured with the mirror permutation and pair-polarity weights;
an RIS-style programmable surface (:mod:`repro.vanatta.ris`) is the
*identity* permutation with per-element codebook phases. Both run the
same kernel, so benchmarks compare physics, not implementations.

**Delegation contract.** The scalar entry points in
``retrodirective``/``planar`` delegate to this kernel at batch size 1
(the ``phy.batch`` pattern): the per-pair loop survives only as
:func:`reference_response` / :func:`reference_planar_response`, the
parity baselines held to ``<= 1e-9`` complex error by
``tests/test_vanatta_fastfield.py`` and benchmarked by the
``arrayfactor`` arm of ``tools/bench_perf.py``.

For dense uniform sweeps over ``u = sin(theta)`` the engine also offers
a Bluestein chirp-Z path (:meth:`ArrayFactorEngine.bistatic_cut_czt`)
that evaluates a uniform-grid bistatic cut in ``O(N log N)`` instead of
``O(N * M)``.

**The retrodirective collapse.** Monostatic sweeps get a second
structural shortcut: with ``u_in == u_out == u`` each term's phase is
``k * (x_i + x_perm(i)) . u`` — it depends on the element only through
its *path-length sum*. Elements sharing a sum pool their weights into
one term, and a mirror-paired Van Atta pools **all** of them (every
pair straddles the centre, so every sum is the same constant — which
is exactly why its monostatic response is flat). The monostatic path
therefore costs ``O(U * M)`` with ``U`` unique sums, turning the
1024-element benchmark sweep from ~2e5 transcendental evaluations into
a few hundred. Arbitrary (RIS / random-paired) geometries degrade
gracefully to ``U = N``, i.e. the dense cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.shapes.vocab import ComplexShaped, FloatShaped
from repro.analysis.units.vocab import DB, DEG, HZ, MPS
from repro.obs.metrics import counter, gauge
from repro.obs.probes import probe_finite
from repro.obs.spans import span
from repro.piezo.transducer import Transducer
from repro.vanatta.array import VanAttaArray
from repro.vanatta.polarity import pair_phase_errors

if TYPE_CHECKING:  # planar imports fastfield; break the cycle at runtime
    from repro.vanatta.planar import PlanarVanAttaArray

FASTFIELD_ENGINE_VERSION = 1
"""Version stamp of the batched array-factor kernel; recorded in BENCH
records and run manifests so results pin the kernel generation that
produced them (the ``batched_engine_version`` pattern from the PHY)."""

EVALS_COUNTER = counter(
    "repro.vanatta.fastfield.evals",
    "field-point evaluations served by the batched array-factor kernel",
)
BATCHES_COUNTER = counter(
    "repro.vanatta.fastfield.batches",
    "batched array-factor kernel invocations",
)
BATCH_SIZE_GAUGE = gauge(
    "repro.vanatta.fastfield.batch",
    "field points in the last array-factor batch",
)

ArrayLike = Union[float, Sequence[float], np.ndarray]


def wavenumber(frequency_hz: HZ, sound_speed: MPS) -> float:
    """Acoustic wavenumber ``2 pi f / c`` (rad/m) with positivity checks."""
    if frequency_hz <= 0 or sound_speed <= 0:
        raise ValueError("frequency and sound speed must be positive")
    return 2.0 * math.pi * frequency_hz / sound_speed


def pair_permutation(num_elements: int, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Element -> pair-partner permutation (self-paired centre maps to itself)."""
    perm = np.full(num_elements, -1, dtype=np.intp)
    for a, b in pairs:
        perm[a] = b
        perm[b] = a
    if (perm < 0).any():
        raise ValueError("pairs do not cover every element")
    return perm


def element_phases_rad(
    num_elements: int,
    pairs: Sequence[Tuple[int, int]],
    pair_phases: np.ndarray,
) -> np.ndarray:
    """Spread per-pair line phases onto the elements they connect."""
    phases = np.zeros(num_elements, dtype=np.float64)
    for (a, b), extra in zip(pairs, pair_phases):
        phases[a] = extra
        phases[b] = extra
    return phases


def direction_cosine_grid(
    azimuth_deg: ArrayLike, elevation_deg: ArrayLike
) -> FloatShaped["...", 2]:
    """Face-plane direction cosines ``(sin az cos el, sin el)``, batched.

    Broadcasts azimuth against elevation; the result gains a trailing
    axis of length 2 (the ``(u, w)`` components).
    """
    az = np.radians(np.asarray(azimuth_deg, dtype=np.float64))
    el = np.radians(np.asarray(elevation_deg, dtype=np.float64))
    az, el = np.broadcast_arrays(az, el)
    return np.stack([np.sin(az) * np.cos(el), np.sin(el)], axis=-1)


def element_gain_vec(element: Transducer, theta_deg: ArrayLike) -> np.ndarray:
    """Vectorized :meth:`Transducer.element_gain` (identical semantics)."""
    e = np.abs(np.asarray(theta_deg, dtype=np.float64))
    if element.elevation_rolloff_exponent <= 0:
        return np.ones_like(e)
    with np.errstate(invalid="ignore"):
        g = np.cos(np.radians(np.minimum(e, 90.0))) ** element.elevation_rolloff_exponent
    return np.where(e >= 90.0, 0.0, g)


def off_broadside_deg(azimuth_deg: ArrayLike, elevation_deg: ArrayLike) -> np.ndarray:
    """Total off-broadside angle of an (az, el) direction, degrees, batched."""
    az = np.radians(np.asarray(azimuth_deg, dtype=np.float64))
    el = np.radians(np.asarray(elevation_deg, dtype=np.float64))
    c = np.clip(np.cos(az) * np.cos(el), -1.0, 1.0)
    return np.degrees(np.arccos(c))


@dataclass(frozen=True)
class ArrayFactorEngine:
    """Precomputed term tensors for one reflector configuration.

    Attributes:
        rx_positions_m: ``(N, D)`` receive-leg element coordinates
            (``D=1`` linear, ``D=2`` planar face coordinates).
        tx_positions_m: ``(N, D)`` re-radiate-leg coordinates — the
            pair permutation applied to ``rx_positions_m`` for a Van
            Atta, identical to it for an RIS surface.
        weights: ``(N,)`` complex per-term weights (pair polarity /
            line phase for a Van Atta, codebook phases for an RIS).
        line_gain: scalar amplitude gain of the pair/reflection path.
        element: shared transducer model for the element pattern.
    """

    rx_positions_m: np.ndarray
    tx_positions_m: np.ndarray
    weights: np.ndarray
    line_gain: float
    element: Transducer

    def __post_init__(self) -> None:
        rx = np.asarray(self.rx_positions_m, dtype=np.float64)
        tx = np.asarray(self.tx_positions_m, dtype=np.float64)
        if rx.ndim != 2 or tx.shape != rx.shape:
            raise ValueError("rx/tx position tensors must share an (N, D) shape")
        if len(self.weights) != len(rx):
            raise ValueError("need one complex weight per element term")
        object.__setattr__(self, "rx_positions_m", rx)
        object.__setattr__(self, "tx_positions_m", tx)
        object.__setattr__(
            self, "weights", np.asarray(self.weights, dtype=np.complex128)
        )

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_linear(array: VanAttaArray) -> "ArrayFactorEngine":
        """Term tensors of a linear Van Atta array."""
        positions = np.asarray(array.positions_m, dtype=np.float64)[:, None]
        perm = pair_permutation(array.num_elements, array.pairs)
        phases = element_phases_rad(
            array.num_elements, array.pairs, array.pair_phases()
        )
        return ArrayFactorEngine(
            rx_positions_m=positions,
            tx_positions_m=positions[perm],
            weights=np.exp(1j * phases),
            line_gain=array.line_gain(),
            element=array.element,
        )

    @staticmethod
    def from_planar(array: "PlanarVanAttaArray") -> "ArrayFactorEngine":
        """Term tensors of a planar (point-mirror) Van Atta array."""
        positions = np.asarray(array.positions_m, dtype=np.float64)
        n = len(positions)
        perm = pair_permutation(n, array.pairs)
        phases = element_phases_rad(
            n, array.pairs, pair_phase_errors(len(array.pairs), array.pairing)
        )
        return ArrayFactorEngine(
            rx_positions_m=positions,
            tx_positions_m=positions[perm],
            weights=np.exp(1j * phases),
            line_gain=array.line_gain(),
            element=array.element,
        )

    @staticmethod
    def from_phase_surface(
        positions_m: np.ndarray,
        phases_rad: np.ndarray,
        element: Optional[Transducer] = None,
        reflection_gain: float = 1.0,
    ) -> "ArrayFactorEngine":
        """Term tensors of a programmable (RIS-style) phase surface.

        Each element re-radiates its own capture with a programmed
        phase — the identity permutation with codebook weights.
        """
        positions = np.asarray(positions_m, dtype=np.float64)
        if positions.ndim == 1:
            positions = positions[:, None]
        phases = np.asarray(phases_rad, dtype=np.float64)
        if phases.shape != (len(positions),):
            raise ValueError("need one phase per surface element")
        return ArrayFactorEngine(
            rx_positions_m=positions,
            tx_positions_m=positions,
            weights=np.exp(1j * phases),
            line_gain=float(reflection_gain),
            element=element if element is not None else Transducer(),
        )

    # -- properties -----------------------------------------------------------

    @property
    def num_elements(self) -> int:
        """Number of element terms in the sum."""
        return len(self.rx_positions_m)

    @property
    def num_axes(self) -> int:
        """Spatial dimensionality of the face coordinates (1 or 2)."""
        return int(self.rx_positions_m.shape[1])

    # -- core kernel ----------------------------------------------------------

    def field_sum(
        self,
        wavenumber: ArrayLike,
        u_in: FloatShaped["...", "D"],
        u_out: FloatShaped["...", "D"],
    ) -> ComplexShaped["..."]:
        """The raw weighted phasor sum over element terms.

        Args:
            wavenumber: acoustic wavenumber(s), broadcastable against
                the direction batch shape.
            u_in: incident direction cosines, shape ``(..., D)``.
            u_out: observation direction cosines, shape ``(..., D)``.

        Returns:
            Complex field of the broadcast batch shape (element and
            line gains *not* applied — callers own the leg gains).
        """
        rx = self.rx_positions_m
        tx = self.tx_positions_m
        u_in = np.asarray(u_in, dtype=np.float64)
        u_out = np.asarray(u_out, dtype=np.float64)
        # (..., D) @ (D, N) -> (..., N): per-term path-length projections.
        dot = u_in @ rx.T + u_out @ tx.T
        k = np.asarray(wavenumber, dtype=np.float64)
        phase = k[..., None] * dot
        with span("fastfield"):
            field = np.exp(1j * phase) @ self.weights
        BATCHES_COUNTER.inc()
        EVALS_COUNTER.inc(max(int(np.asarray(field).size), 1))
        BATCH_SIZE_GAUGE.set(float(np.asarray(field).size))
        probe_finite("vanatta.fastfield.field", np.asarray(field), stage="fastfield")
        return field

    @cached_property
    def _monostatic_groups(self) -> Tuple[np.ndarray, np.ndarray]:
        """Unique per-term path-length sums and their pooled weights.

        The monostatic phase of term ``i`` is ``k * s_i . u`` with
        ``s_i = rx_i + tx_i``; terms with equal ``s_i`` (to 1e-12 of
        the aperture scale) are one term with summed weights. Cached on
        first monostatic call (the geometry is frozen).
        """
        sums = self.rx_positions_m + self.tx_positions_m
        scale = max(float(np.abs(sums).max(initial=0.0)), 1.0)
        keys = np.round(sums / (1e-12 * scale)).astype(np.int64)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).reshape(-1)
        pooled = np.zeros(len(uniq), dtype=np.complex128)
        np.add.at(pooled, inverse, self.weights)
        # Use an exact member of each group as its representative so
        # no quantisation enters the phase (groups span <= 1e-12*scale).
        reps = np.zeros((len(uniq), sums.shape[1]), dtype=np.float64)
        reps[inverse] = sums
        return reps, pooled

    def monostatic_field_sum(
        self, wavenumber: ArrayLike, u: FloatShaped["...", "D"]
    ) -> ComplexShaped["..."]:
        """Raw phasor sum for the monostatic case (``u_in == u_out``).

        Applies the retrodirective collapse (see the module docstring):
        the sum runs over unique path-length sums rather than elements,
        which for a mirror-paired Van Atta is a single term. Exactly
        equals ``field_sum(wavenumber, u, u)``; element and line gains
        are *not* applied.
        """
        sums, pooled = self._monostatic_groups
        u = np.asarray(u, dtype=np.float64)
        dot = u @ sums.T
        k = np.asarray(wavenumber, dtype=np.float64)
        phase = k[..., None] * dot
        with span("fastfield"):
            field = np.exp(1j * phase) @ pooled
        BATCHES_COUNTER.inc()
        EVALS_COUNTER.inc(max(int(np.asarray(field).size), 1))
        BATCH_SIZE_GAUGE.set(float(np.asarray(field).size))
        probe_finite("vanatta.fastfield.field", np.asarray(field), stage="fastfield")
        return field

    # -- linear-array sweeps --------------------------------------------------

    def response_batch(
        self,
        frequency_hz: ArrayLike,
        theta_in_deg: ArrayLike,
        theta_out_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Bistatic response of a linear engine over a broadcast batch.

        ``frequency_hz``, ``theta_in_deg``, and ``theta_out_deg``
        broadcast against each other; the result has the broadcast
        shape (0-d inputs give a 0-d complex array).
        """
        if self.num_axes != 1:
            raise ValueError("response_batch needs a linear (D=1) engine")
        if sound_speed <= 0:
            raise ValueError("frequency and sound speed must be positive")
        freq = np.asarray(frequency_hz, dtype=np.float64)
        if (freq <= 0).any():
            raise ValueError("frequency and sound speed must be positive")
        t_in = np.asarray(theta_in_deg, dtype=np.float64)
        t_out = np.asarray(theta_out_deg, dtype=np.float64)
        freq_b, t_in_b, t_out_b = np.broadcast_arrays(freq, t_in, t_out)
        k = 2.0 * np.pi * freq_b / sound_speed
        u_in = np.sin(np.radians(t_in_b))[..., None]
        u_out = np.sin(np.radians(t_out_b))[..., None]
        field = self.field_sum(k, u_in, u_out)
        gains = element_gain_vec(self.element, t_in_b) * element_gain_vec(
            self.element, t_out_b
        )
        return field * self.line_gain * gains

    def monostatic_batch(
        self,
        frequency_hz: ArrayLike,
        thetas_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Monostatic (backscatter) response at each incidence angle.

        Runs on the retrodirective-collapse path
        (:meth:`monostatic_field_sum`); equals
        ``response_batch(f, theta, theta)`` at every point.
        """
        if self.num_axes != 1:
            raise ValueError("monostatic_batch needs a linear (D=1) engine")
        if sound_speed <= 0:
            raise ValueError("frequency and sound speed must be positive")
        freq = np.asarray(frequency_hz, dtype=np.float64)
        if (freq <= 0).any():
            raise ValueError("frequency and sound speed must be positive")
        thetas = np.asarray(thetas_deg, dtype=np.float64)
        freq_b, t_b = np.broadcast_arrays(freq, thetas)
        k = 2.0 * np.pi * freq_b / sound_speed
        u = np.sin(np.radians(t_b))[..., None]
        field = self.monostatic_field_sum(k, u)
        g = element_gain_vec(self.element, t_b)
        return field * self.line_gain * g * g

    def monostatic_pattern_db(
        self,
        frequency_hz: HZ,
        thetas_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Monostatic field gain (dB re one ideal element), batched."""
        mag = np.abs(self.monostatic_batch(frequency_hz, thetas_deg, sound_speed))
        return 20.0 * np.log10(np.maximum(mag, 1e-15))

    # -- planar sweeps --------------------------------------------------------

    def planar_response_batch(
        self,
        frequency_hz: ArrayLike,
        az_in_deg: ArrayLike,
        el_in_deg: ArrayLike,
        az_out_deg: ArrayLike,
        el_out_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Bistatic response of a planar engine over a broadcast batch."""
        if self.num_axes != 2:
            raise ValueError("planar_response_batch needs a planar (D=2) engine")
        if sound_speed <= 0:
            raise ValueError("frequency and sound speed must be positive")
        freq = np.asarray(frequency_hz, dtype=np.float64)
        if (freq <= 0).any():
            raise ValueError("frequency and sound speed must be positive")
        batch = np.broadcast_arrays(
            freq,
            np.asarray(az_in_deg, dtype=np.float64),
            np.asarray(el_in_deg, dtype=np.float64),
            np.asarray(az_out_deg, dtype=np.float64),
            np.asarray(el_out_deg, dtype=np.float64),
        )
        freq_b, az_in_b, el_in_b, az_out_b, el_out_b = batch
        k = 2.0 * np.pi * freq_b / sound_speed
        u_in = direction_cosine_grid(az_in_b, el_in_b)
        u_out = direction_cosine_grid(az_out_b, el_out_b)
        field = self.field_sum(k, u_in, u_out)
        gains = element_gain_vec(
            self.element, off_broadside_deg(az_in_b, el_in_b)
        ) * element_gain_vec(self.element, off_broadside_deg(az_out_b, el_out_b))
        return field * self.line_gain * gains

    def planar_monostatic_grid_db(
        self,
        frequency_hz: HZ,
        azimuths_deg: ArrayLike,
        elevations_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Monostatic gain (dB) over an ``(az, el)`` outer-product grid.

        Runs on the retrodirective-collapse path; equals the
        ``planar_response_batch`` diagonal at every grid point.
        """
        if self.num_axes != 2:
            raise ValueError("planar_monostatic_grid_db needs a planar engine")
        k = wavenumber(frequency_hz, sound_speed)
        az = np.asarray(azimuths_deg, dtype=np.float64)[:, None]
        el = np.asarray(elevations_deg, dtype=np.float64)[None, :]
        az_b, el_b = np.broadcast_arrays(az, el)
        u = direction_cosine_grid(az_b, el_b)
        field = self.monostatic_field_sum(k, u)
        g = element_gain_vec(self.element, off_broadside_deg(az_b, el_b))
        mag = np.abs(field) * self.line_gain * g * g
        return 20.0 * np.log10(np.maximum(mag, 1e-15))

    # -- dense uniform-grid (chirp-Z) path ------------------------------------

    def bistatic_cut_czt(
        self,
        frequency_hz: HZ,
        theta_in_deg: DEG,
        u_start: float,
        u_step: float,
        num_points: int,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Bistatic cut over a dense uniform ``u = sin(theta)`` grid.

        Requires a linear engine whose re-radiate positions lie on a
        uniform grid (any uniform linear array, mirror-paired or RIS).
        Evaluates ``M`` observation points in ``O((N + M) log(N + M))``
        via Bluestein's chirp-Z transform instead of the ``O(N * M)``
        dense kernel — the classical FFT array-factor trick for grids
        too fine for the broadcast path to hold in memory.

        Element-pattern and line gains are applied, matching
        :meth:`response_batch` at every grid point to ~1e-9.
        """
        if self.num_axes != 1:
            raise ValueError("bistatic_cut_czt needs a linear (D=1) engine")
        if num_points < 1:
            raise ValueError("need at least one observation point")
        k = wavenumber(frequency_hz, sound_speed)
        tx = self.tx_positions_m[:, 0]
        if len(tx) > 1:
            steps = np.diff(np.sort(tx))
            pitch = steps.max()
            if pitch <= 0 or not np.allclose(
                np.diff(np.sort(tx)), pitch, atol=1e-9 * max(pitch, 1.0)
            ):
                raise ValueError(
                    "chirp-Z path needs uniformly spaced re-radiate positions"
                )
        u_in = math.sin(math.radians(theta_in_deg))
        # Fold the (fixed) incident-leg phase into per-term amplitudes.
        a = self.weights * np.exp(1j * k * self.rx_positions_m[:, 0] * u_in)
        # S_m = sum_n a_n exp(j k x_n (u_start + m u_step)); write
        # x_n = x0 + n*d so the m-dependence is a chirp-Z transform.
        x0 = float(tx.min())
        d = float((tx.max() - x0) / (len(tx) - 1)) if len(tx) > 1 else 0.0
        if d > 0:
            idx = np.rint((tx - x0) / d).astype(np.intp)
        else:
            idx = np.zeros(len(tx), dtype=np.intp)
        coeff = np.zeros(int(idx.max()) + 1, dtype=np.complex128)
        np.add.at(coeff, idx, a)
        # The common x0 offset is applied per observation point below.
        field = _chirp_z(coeff, k * d * u_step, k * d * u_start, num_points)
        u_grid = u_start + u_step * np.arange(num_points)
        field = field * np.exp(1j * k * x0 * u_grid)
        theta_out = np.degrees(np.arcsin(np.clip(u_grid, -1.0, 1.0)))
        gains = self.element.element_gain(theta_in_deg) * element_gain_vec(
            self.element, theta_out
        )
        probe_finite("vanatta.fastfield.czt", field, stage="fastfield")
        return field * self.line_gain * gains


def _chirp_z(
    coeff: np.ndarray, phi: float, psi: float, num_points: int
) -> np.ndarray:
    """``S_m = sum_n coeff_n e^{j n (psi + m phi)}`` via Bluestein.

    Decomposes ``n*m = (n^2 + m^2 - (m - n)^2) / 2`` so the sum becomes
    a linear convolution of chirp-premultiplied coefficients, computed
    with zero-padded FFTs.
    """
    n = len(coeff)
    b = coeff * np.exp(1j * psi * np.arange(n))
    half = phi / 2.0
    n_sq = np.arange(n, dtype=np.float64) ** 2
    m_sq = np.arange(num_points, dtype=np.float64) ** 2
    u = b * np.exp(1j * half * n_sq)
    lags = np.arange(-(n - 1), num_points, dtype=np.float64)
    v = np.exp(-1j * half * lags**2)
    size = int(2 ** math.ceil(math.log2(max(len(v) + n - 1, 1))))
    conv = np.fft.ifft(np.fft.fft(u, size) * np.fft.fft(v, size))
    picked = conv[n - 1 : n - 1 + num_points]
    return picked * np.exp(1j * half * m_sq)


# -- ensemble (Monte-Carlo) kernel -------------------------------------------


def ensemble_monostatic_db(
    arrays: Sequence[VanAttaArray],
    frequency_hz: HZ,
    theta_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Monostatic gain (dB) of many build instances in one kernel call.

    The tolerance Monte-Carlo evaluates hundreds of perturbed copies of
    one design at a single angle; stacking their geometries into an
    ``(I, N)`` tensor turns the per-instance response loop into one
    broadcasted evaluation. All instances must share the pair wiring
    and element model (they are perturbations of one design).
    """
    if not arrays:
        raise ValueError("need at least one array instance")
    base = arrays[0]
    k = wavenumber(frequency_hz, sound_speed)
    u = math.sin(math.radians(theta_deg))
    perm = pair_permutation(base.num_elements, base.pairs)
    positions = np.stack([np.asarray(a.positions_m, dtype=np.float64) for a in arrays])
    weights = np.stack(
        [
            np.exp(
                1j
                * element_phases_rad(a.num_elements, a.pairs, a.pair_phases())
            )
            for a in arrays
        ]
    )
    with span("fastfield"):
        phase = k * u * (positions + positions[:, perm])
        field = (np.exp(1j * phase) * weights).sum(axis=-1)
    BATCHES_COUNTER.inc()
    EVALS_COUNTER.inc(len(arrays))
    BATCH_SIZE_GAUGE.set(float(len(arrays)))
    probe_finite("vanatta.fastfield.ensemble", field, stage="fastfield")
    g = base.element.element_gain(theta_deg)
    mag = np.abs(field) * base.line_gain() * g * g
    return 20.0 * np.log10(np.maximum(mag, 1e-15))


# -- per-pair reference loops (parity + benchmark baselines) -----------------


def reference_response(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_in_deg: DEG,
    theta_out_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """The original per-pair scalar loop (parity/benchmark baseline).

    This is the seed implementation of
    :func:`repro.vanatta.retrodirective.response`, kept verbatim so the
    batched kernel has an independent reference to be checked (and
    benchmarked) against.
    """
    k = wavenumber(frequency_hz, sound_speed)
    u_in = math.sin(math.radians(theta_in_deg))
    u_out = math.sin(math.radians(theta_out_deg))
    x = array.positions_m
    phases = array.pair_phases()
    line = array.line_gain()
    g_in = array.element.element_gain(theta_in_deg)
    g_out = array.element.element_gain(theta_out_deg)

    total = 0.0 + 0.0j
    for (a, b), extra in zip(array.pairs, phases):
        rot = complex(math.cos(extra), math.sin(extra))
        if a == b:
            total += rot * np.exp(1j * k * (x[a] * u_in + x[a] * u_out))
        else:
            total += rot * np.exp(1j * k * (x[a] * u_in + x[b] * u_out))
            total += rot * np.exp(1j * k * (x[b] * u_in + x[a] * u_out))
    return complex(total * line * g_in * g_out)


def reference_planar_response(
    array: "PlanarVanAttaArray",
    frequency_hz: HZ,
    az_in_deg: DEG,
    el_in_deg: DEG,
    az_out_deg: DEG,
    el_out_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """The original per-pair planar loop (parity/benchmark baseline)."""
    if frequency_hz <= 0 or sound_speed <= 0:
        raise ValueError("frequency and sound speed must be positive")
    k = 2.0 * math.pi * frequency_hz / sound_speed
    d_in = _scalar_direction_cosines(az_in_deg, el_in_deg)
    d_out = _scalar_direction_cosines(az_out_deg, el_out_deg)
    x = array.positions_m
    phases = pair_phase_errors(len(array.pairs), array.pairing)
    line = array.line_gain()
    g_in = array.element.element_gain(_scalar_off_angle(az_in_deg, el_in_deg))
    g_out = array.element.element_gain(_scalar_off_angle(az_out_deg, el_out_deg))

    total = 0.0 + 0.0j
    for (a, b), extra in zip(array.pairs, phases):
        rot = complex(math.cos(extra), math.sin(extra))
        if a == b:
            total += rot * np.exp(1j * k * (x[a] @ d_in + x[a] @ d_out))
        else:
            total += rot * np.exp(1j * k * (x[a] @ d_in + x[b] @ d_out))
            total += rot * np.exp(1j * k * (x[b] @ d_in + x[a] @ d_out))
    return complex(total * line * g_in * g_out)


def _scalar_direction_cosines(azimuth_deg: DEG, elevation_deg: DEG) -> np.ndarray:
    az = math.radians(azimuth_deg)
    el = math.radians(elevation_deg)
    return np.array([math.sin(az) * math.cos(el), math.sin(el)])


def _scalar_off_angle(azimuth_deg: DEG, elevation_deg: DEG) -> DEG:
    c = math.cos(math.radians(azimuth_deg)) * math.cos(math.radians(elevation_deg))
    return math.degrees(math.acos(max(-1.0, min(1.0, c))))
