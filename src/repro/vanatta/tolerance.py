"""Manufacturing-tolerance analysis for Van Atta arrays.

Retrodirectivity rests on geometric symmetry and matched line lengths.
A built array has neither exactly: elements are potted a few millimetres
off, transmission lines differ by centimetres, transducers spread in
resonance. This module quantifies what those imperfections cost, which is
how a designer picks fabrication tolerances:

* element-position jitter breaks the mirror symmetry (the conjugation
  leaves a residual phase ``k * (delta_a + delta_b) * sin(theta)``);
* line-length mismatch adds a per-pair phase error directly;
* both are evaluated by seeded Monte-Carlo over build instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rng import fallback_rng
from repro.vanatta.array import VanAttaArray
from repro.vanatta.fastfield import ensemble_monostatic_db
from repro.vanatta.retrodirective import monostatic_gain


@dataclass(frozen=True)
class ToleranceResult:
    """Monte-Carlo statistics of built-array gain.

    Attributes:
        mean_gain_db: mean monostatic gain across build instances.
        std_gain_db: spread across instances.
        worst_gain_db: worst instance.
        loss_vs_ideal_db: mean loss relative to the unperturbed array.
        instances: how many builds were simulated.
    """

    mean_gain_db: float
    std_gain_db: float
    worst_gain_db: float
    loss_vs_ideal_db: float
    instances: int


def perturbed_array(
    base: VanAttaArray,
    position_sigma_m: float = 0.0,
    line_phase_sigma_rad: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> VanAttaArray:
    """One build instance with position jitter and line-phase spread.

    Position jitter moves each element along the array axis; line phase
    errors are modelled through per-pair phases (added to the pairing
    scheme's) via the ``line_phase_rad`` mechanism — here approximated by
    a common draw per instance plus per-pair spread folded into the
    positions of the pair's members (equivalent at the pattern level).

    Args:
        base: the nominal array.
        position_sigma_m: RMS element-position error, metres.
        line_phase_sigma_rad: RMS per-pair line phase error, radians.
        rng: random generator; Monte-Carlo drivers thread a seeded one
            (see :func:`monte_carlo_gain`), otherwise draws come from
            the documented fallback stream (:func:`repro.rng.fallback_rng`).

    Returns:
        A new array instance with perturbed geometry.
    """
    if rng is None:
        rng = fallback_rng()
    positions = base.positions_m.copy()
    if position_sigma_m > 0:
        positions = positions + rng.normal(0.0, position_sigma_m, len(positions))
    line_phase = base.line_phase_rad
    if line_phase_sigma_rad > 0:
        line_phase = line_phase + float(rng.normal(0.0, line_phase_sigma_rad))
    return VanAttaArray(
        positions_m=positions,
        pairs=base.pairs,
        element=base.element,
        pairing=base.pairing,
        line_loss_db=base.line_loss_db,
        line_phase_rad=line_phase,
    )


def monte_carlo_gain(
    base: VanAttaArray,
    frequency_hz: float,
    theta_deg: float = 30.0,
    position_sigma_m: float = 0.0,
    line_phase_sigma_rad: float = 0.0,
    instances: int = 200,
    seed: int = 17,
    sound_speed: float = 1500.0,
) -> ToleranceResult:
    """Monte-Carlo the monostatic gain across build instances.

    Args:
        base: nominal array design.
        frequency_hz: operating frequency.
        theta_deg: evaluation incidence angle (off-broadside stresses the
            symmetry more than broadside).
        position_sigma_m: RMS element-position error.
        line_phase_sigma_rad: RMS line phase error.
        instances: Monte-Carlo size.
        seed: RNG seed.
        sound_speed: medium sound speed.

    Returns:
        Gain statistics over the builds.
    """
    if instances < 1:
        raise ValueError("need at least one instance")
    rng = np.random.default_rng(seed)
    ideal_db = 20.0 * math.log10(
        max(abs(monostatic_gain(base, frequency_hz, theta_deg, sound_speed)), 1e-15)
    )
    # Draw all build instances first (the per-instance RNG stream order
    # is the documented contract), then score the whole ensemble in one
    # batched array-factor call instead of one response loop per build.
    builds = [
        perturbed_array(base, position_sigma_m, line_phase_sigma_rad, rng)
        for _ in range(instances)
    ]
    gains = ensemble_monostatic_db(builds, frequency_hz, theta_deg, sound_speed)
    return ToleranceResult(
        mean_gain_db=float(gains.mean()),
        std_gain_db=float(gains.std()),
        worst_gain_db=float(gains.min()),
        loss_vs_ideal_db=float(ideal_db - gains.mean()),
        instances=instances,
    )


def position_tolerance_for_loss(
    base: VanAttaArray,
    frequency_hz: float,
    max_loss_db: float = 1.0,
    theta_deg: float = 30.0,
    sound_speed: float = 1500.0,
    seed: int = 17,
) -> float:
    """Largest position sigma keeping the mean loss under a budget.

    Bisection over sigma in (0, lambda/2]. This is the number a mechanical
    designer actually asks for.
    """
    if max_loss_db <= 0:
        raise ValueError("loss budget must be positive")
    lam = sound_speed / frequency_hz

    def loss(sigma: float) -> float:
        return monte_carlo_gain(
            base, frequency_hz, theta_deg, position_sigma_m=sigma,
            instances=150, seed=seed, sound_speed=sound_speed,
        ).loss_vs_ideal_db

    lo, hi = 0.0, lam / 2.0
    if loss(hi) <= max_loss_db:
        return hi
    for _ in range(24):
        mid = 0.5 * (lo + hi)
        if loss(mid) <= max_loss_db:
            lo = mid
        else:
            hi = mid
    return lo
