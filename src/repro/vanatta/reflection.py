"""Time-domain reflection operator for the waveform simulator.

The end-to-end simulator propagates the reader's carrier to the node,
asks the node what comes back, and propagates that to the hydrophone.
This module implements the middle step under the narrowband assumption
(signal bandwidth ~1 kHz << carrier 18.5 kHz, array aperture ~0.1 ms of
travel time << chip duration ~1 ms):

``reflected(t) = incident(t) * m(t) * G_array(theta)``

where ``m(t)`` is the switch amplitude waveform and ``G_array`` the
monostatic phasor gain of the array toward the reader. The narrowband
assumption is exactly what makes Van Atta arrays practical at these
scales, and it keeps the simulator fast enough for 1,500-trial campaigns.
"""

from __future__ import annotations

import numpy as np

from repro.vanatta.array import VanAttaArray
from repro.vanatta.retrodirective import monostatic_gain


def reflect_waveform(
    incident: np.ndarray,
    modulation: np.ndarray,
    array: VanAttaArray,
    frequency_hz: float,
    theta_deg: float,
    sound_speed: float = 1500.0,
) -> np.ndarray:
    """Reflect an incident complex baseband waveform off a modulated array.

    Args:
        incident: complex baseband samples of the carrier at the node.
        modulation: real reflection-amplitude waveform (from
            :func:`repro.vanatta.switching.chips_to_waveform`); shorter
            waveforms are padded with their last value (the node holds
            its final state), longer ones are truncated. A
            ``(trials, samples)`` block reflects each row off the same
            incident carrier, returning a matching block.
        array: the Van Atta array doing the reflecting.
        frequency_hz: carrier frequency.
        theta_deg: incidence angle from array broadside, degrees.
        sound_speed: medium sound speed.

    Returns:
        Complex baseband waveform re-radiated toward the reader.
    """
    incident = np.asarray(incident, dtype=np.complex128)
    modulation = np.asarray(modulation, dtype=np.float64)
    n = incident.shape[-1]
    n_mod = modulation.shape[-1]
    if n_mod < n:
        if n_mod:
            pad_value = modulation[..., -1:]
            pad = np.broadcast_to(
                pad_value, modulation.shape[:-1] + (n - n_mod,)
            )
        else:
            pad = np.zeros(modulation.shape[:-1] + (n - n_mod,))
        modulation = np.concatenate([modulation, pad], axis=-1)
    modulation = modulation[..., :n]
    gain = monostatic_gain(array, frequency_hz, theta_deg, sound_speed)
    return incident * modulation * gain
