"""Aperture-scaling design rules (the E5 study).

The retrodirective field gain grows linearly with element count, so the
round-trip SNR grows as ``20 log10 N`` — every doubling of the array buys
6 dB. Because absorption makes underwater loss super-logarithmic in
range, those dB translate into large but *diminishing* range extensions;
:func:`repro.sim.linkbudget.max_range_m` inverts the budget numerically.

Spacing rules: at lambda/2 the pattern is clean; pushing the pitch past
one wavelength introduces grating lobes that leak reflected energy into
spurious directions (and therefore out of the monostatic return at some
angles).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.units.vocab import DB, DEG, HZ, METERS, MPS


def peak_gain_db(num_elements: int) -> DB:
    """Monostatic field gain of an ideal N-element Van Atta, dB.

    Relative to a single ideal element; field scales with N.
    """
    if num_elements < 1:
        raise ValueError("need at least one element")
    return 20.0 * math.log10(num_elements)


def aperture_m(num_elements: int, spacing_m: METERS) -> METERS:
    """End-to-end aperture of a uniform array, metres."""
    if num_elements < 1:
        raise ValueError("need at least one element")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    return (num_elements - 1) * spacing_m


def recommended_spacing(frequency_hz: HZ, sound_speed: MPS = 1500.0) -> METERS:
    """Half-wavelength pitch, metres."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return sound_speed / frequency_hz / 2.0


def grating_lobe_free(spacing_m: METERS, frequency_hz: HZ, sound_speed: MPS = 1500.0) -> bool:
    """True when no grating lobe exists for any scan angle (d < lambda/2... lambda).

    For a retrodirective reflector illuminated from up to +-90 degrees the
    safe condition is pitch strictly below one wavelength; lambda/2 keeps
    margin for wideband operation.
    """
    lam = sound_speed / frequency_hz
    return spacing_m < lam


def gain_improvement_db(n_from: int, n_to: int) -> DB:
    """Gain delta when growing an array from ``n_from`` to ``n_to`` elements."""
    return peak_gain_db(n_to) - peak_gain_db(n_from)


def simulated_gain_curve_db(
    element_counts: Sequence[int],
    frequency_hz: HZ = 18_500.0,
    theta_deg: DEG = 0.0,
    sound_speed: MPS = 1500.0,
    line_loss_db: DB = 0.0,
) -> np.ndarray:
    """Field-simulated monostatic gain at each element count, dB.

    Where :func:`peak_gain_db` is the ideal ``20 log10 N`` rule, this
    builds the actual half-wavelength arrays and scores them through
    the batched array-factor engine — the E5/E21 scaling curve at
    thousands of elements, one kernel call per count. The two agree
    for ideal lossless arrays; line loss and element roll-off open the
    gap a designer budgets for.
    """
    from repro.piezo.transducer import Transducer
    from repro.vanatta.array import VanAttaArray
    from repro.vanatta.fastfield import ArrayFactorEngine

    gains = np.empty(len(element_counts), dtype=np.float64)
    omni = Transducer(elevation_rolloff_exponent=0.0)
    for i, n in enumerate(element_counts):
        array = VanAttaArray.uniform(
            int(n), frequency_hz=frequency_hz, sound_speed=sound_speed,
            element=omni,
        )
        array = VanAttaArray(
            positions_m=array.positions_m,
            pairs=array.pairs,
            element=array.element,
            pairing=array.pairing,
            line_loss_db=line_loss_db,
        )
        engine = ArrayFactorEngine.from_linear(array)
        gains[i] = float(
            engine.monostatic_pattern_db(frequency_hz, theta_deg, sound_speed)
        )
    return gains
