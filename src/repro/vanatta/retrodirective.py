"""Far-field phasor response of a Van Atta array.

The narrowband model: a plane wave at angle ``theta_in`` (from broadside)
paints phase ``k x_i sin(theta_in)`` on element ``i``. Each pair re-radiates
the wave captured by one element from its mirror twin, so the field
launched toward ``theta_out`` is

``sum over pairs (a, b) of e^{jk(x_a u_in + x_b u_out)} + e^{jk(x_b u_in + x_a u_out)}``

with ``u = sin(theta)``. For mirror pairs ``x_b = -x_a`` every term hits
phase zero at ``theta_out = theta_in`` — the reflection is coherent back
toward the source at *any* incidence, which is the entire trick.

Normalisation: one ideally-reflecting element scores ``1.0`` monostatic.
An N-element Van Atta therefore scores ``N`` in field (``20 log10 N`` dB
in round-trip power), before line losses, polarity errors, and element
roll-off.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.units.vocab import DB, DEG, HZ, MPS
from repro.vanatta.array import VanAttaArray
from repro.vanatta.fastfield import ArrayFactorEngine


def response(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_in_deg: DEG,
    theta_out_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """Bistatic complex response (normalised to one ideal element).

    Delegates to the batched array-factor kernel
    (:mod:`repro.vanatta.fastfield`) at batch size 1, so the scalar and
    batched paths share one implementation; the original per-pair loop
    survives as :func:`repro.vanatta.fastfield.reference_response` and
    the parity tests hold the two to ``<= 1e-9``.

    Args:
        array: the Van Atta array.
        frequency_hz: operating frequency.
        theta_in_deg: incidence angle from broadside, degrees.
        theta_out_deg: observation angle from broadside, degrees.
        sound_speed: medium sound speed.

    Returns:
        Complex field amplitude toward ``theta_out``.
    """
    engine = ArrayFactorEngine.from_linear(array)
    return complex(
        engine.response_batch(
            frequency_hz, theta_in_deg, theta_out_deg, sound_speed
        )
    )


def monostatic_gain(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """Response back toward the source (the backscatter direction)."""
    return response(array, frequency_hz, theta_deg, theta_deg, sound_speed)


def monostatic_gain_db(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> DB:
    """Monostatic field gain in dB re one ideal element."""
    mag = abs(monostatic_gain(array, frequency_hz, theta_deg, sound_speed))
    return 20.0 * math.log10(max(mag, 1e-15))


def pattern(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_in_deg: DEG,
    thetas_out_deg: Sequence[float],
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Bistatic pattern: complex response at each observation angle.

    One batched kernel call — the per-angle loop is gone.
    """
    engine = ArrayFactorEngine.from_linear(array)
    return engine.response_batch(
        frequency_hz,
        theta_in_deg,
        np.asarray(thetas_out_deg, dtype=np.float64),
        sound_speed,
    )


def monostatic_pattern_db(
    array: VanAttaArray,
    frequency_hz: HZ,
    thetas_deg: Sequence[float],
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Monostatic gain (dB) across incidence angles — the E1 curve.

    One batched kernel call — the per-angle loop is gone.
    """
    engine = ArrayFactorEngine.from_linear(array)
    return engine.monostatic_pattern_db(
        frequency_hz, np.asarray(thetas_deg, dtype=np.float64), sound_speed
    )
