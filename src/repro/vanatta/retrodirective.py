"""Far-field phasor response of a Van Atta array.

The narrowband model: a plane wave at angle ``theta_in`` (from broadside)
paints phase ``k x_i sin(theta_in)`` on element ``i``. Each pair re-radiates
the wave captured by one element from its mirror twin, so the field
launched toward ``theta_out`` is

``sum over pairs (a, b) of e^{jk(x_a u_in + x_b u_out)} + e^{jk(x_b u_in + x_a u_out)}``

with ``u = sin(theta)``. For mirror pairs ``x_b = -x_a`` every term hits
phase zero at ``theta_out = theta_in`` — the reflection is coherent back
toward the source at *any* incidence, which is the entire trick.

Normalisation: one ideally-reflecting element scores ``1.0`` monostatic.
An N-element Van Atta therefore scores ``N`` in field (``20 log10 N`` dB
in round-trip power), before line losses, polarity errors, and element
roll-off.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.units.vocab import DB, DEG, HZ, MPS
from repro.vanatta.array import VanAttaArray


def _wavenumber(frequency_hz: HZ, sound_speed: MPS) -> float:
    if frequency_hz <= 0 or sound_speed <= 0:
        raise ValueError("frequency and sound speed must be positive")
    return 2.0 * math.pi * frequency_hz / sound_speed


def response(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_in_deg: DEG,
    theta_out_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """Bistatic complex response (normalised to one ideal element).

    Args:
        array: the Van Atta array.
        frequency_hz: operating frequency.
        theta_in_deg: incidence angle from broadside, degrees.
        theta_out_deg: observation angle from broadside, degrees.
        sound_speed: medium sound speed.

    Returns:
        Complex field amplitude toward ``theta_out``.
    """
    k = _wavenumber(frequency_hz, sound_speed)
    u_in = math.sin(math.radians(theta_in_deg))
    u_out = math.sin(math.radians(theta_out_deg))
    x = array.positions_m
    phases = array.pair_phases()
    line = array.line_gain()
    g_in = array.element.element_gain(theta_in_deg)
    g_out = array.element.element_gain(theta_out_deg)

    total = 0.0 + 0.0j
    for (a, b), extra in zip(array.pairs, phases):
        rot = complex(math.cos(extra), math.sin(extra))
        if a == b:
            total += rot * np.exp(1j * k * (x[a] * u_in + x[a] * u_out))
        else:
            total += rot * np.exp(1j * k * (x[a] * u_in + x[b] * u_out))
            total += rot * np.exp(1j * k * (x[b] * u_in + x[a] * u_out))
    return complex(total * line * g_in * g_out)


def monostatic_gain(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """Response back toward the source (the backscatter direction)."""
    return response(array, frequency_hz, theta_deg, theta_deg, sound_speed)


def monostatic_gain_db(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> DB:
    """Monostatic field gain in dB re one ideal element."""
    mag = abs(monostatic_gain(array, frequency_hz, theta_deg, sound_speed))
    return 20.0 * math.log10(max(mag, 1e-15))


def pattern(
    array: VanAttaArray,
    frequency_hz: HZ,
    theta_in_deg: DEG,
    thetas_out_deg: Sequence[float],
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Bistatic pattern: complex response at each observation angle."""
    return np.array(
        [
            response(array, frequency_hz, theta_in_deg, float(t), sound_speed)
            for t in thetas_out_deg
        ]
    )


def monostatic_pattern_db(
    array: VanAttaArray,
    frequency_hz: HZ,
    thetas_deg: Sequence[float],
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Monostatic gain (dB) across incidence angles — the E1 curve."""
    return np.array(
        [
            monostatic_gain_db(array, frequency_hz, float(t), sound_speed)
            for t in thetas_deg
        ]
    )
