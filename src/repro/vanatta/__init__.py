"""Van Atta acoustic backscatter — the paper's core contribution.

A Van Atta array is a retrodirective reflector: elements are wired in
pairs that are mirror images about the array centre, so the signal
received by one element is re-radiated by its mirror twin. The phase
gradient the incident wave paints across the aperture is thereby
*conjugated* on re-transmission, and the reflected beam steers itself back
toward the source — no phase shifters, no DoA estimation, no power.

Modules:

* :mod:`repro.vanatta.array` — array geometry, pairing, validation.
* :mod:`repro.vanatta.polarity` — cross-polarity co-phasing of pairs.
* :mod:`repro.vanatta.retrodirective` — far-field phasor response of the
  array (the model behind the E1 pattern and E5 scaling results).
* :mod:`repro.vanatta.switching` — the modulation switch joining each
  pair (insertion loss, transition behaviour, chip waveforms).
* :mod:`repro.vanatta.reflection` — time-domain reflection operator used
  by the end-to-end waveform simulator.
* :mod:`repro.vanatta.node` — the complete battery-free node.
* :mod:`repro.vanatta.scaling` — aperture-scaling design rules.
* :mod:`repro.vanatta.fastfield` — batched array-factor engine: the
  scalar response functions delegate to it at batch size 1, and it
  evaluates thousands of elements times hundreds of angles/frequencies
  in one broadcasted tensor op (plus a chirp-Z dense-grid path).
* :mod:`repro.vanatta.ris` — programmable (RIS-style) phase surfaces
  on the same kernel: steering/retro codebooks, quantized shifters,
  multi-reader spatial multiplexing (DoF, sum capacity).
"""

from repro.vanatta.array import VanAttaArray, linear_positions
from repro.vanatta.fastfield import (
    FASTFIELD_ENGINE_VERSION,
    ArrayFactorEngine,
    ensemble_monostatic_db,
    reference_planar_response,
    reference_response,
)
from repro.vanatta.polarity import PairingScheme, pair_phase_errors
from repro.vanatta.ris import (
    PhaseSurface,
    quantization_loss_db,
    quantize_phases_rad,
    reader_steering_matrix,
    retro_phases_rad,
    spatial_dof,
    steering_phases_rad,
    sum_capacity_bits,
)
from repro.vanatta.retrodirective import (
    monostatic_gain,
    monostatic_gain_db,
    pattern,
    response,
)
from repro.vanatta.switching import ModulationSwitch, chips_to_waveform
from repro.vanatta.reflection import reflect_waveform
from repro.vanatta.node import VanAttaNode
from repro.vanatta.planar import (
    PlanarVanAttaArray,
    grid_positions,
    planar_monostatic_gain,
    planar_monostatic_gain_db,
    planar_response,
    point_mirror_pairs,
)
from repro.vanatta.scaling import (
    aperture_m,
    peak_gain_db,
    recommended_spacing,
    simulated_gain_curve_db,
)
from repro.vanatta.tolerance import (
    ToleranceResult,
    monte_carlo_gain,
    perturbed_array,
    position_tolerance_for_loss,
)
from repro.vanatta.wideband import (
    SystemResponse,
    max_chip_rate_for_bandwidth,
    system_response,
    usable_bandwidth_hz,
)

__all__ = [
    "VanAttaArray",
    "linear_positions",
    "PairingScheme",
    "pair_phase_errors",
    "ArrayFactorEngine",
    "FASTFIELD_ENGINE_VERSION",
    "ensemble_monostatic_db",
    "reference_response",
    "reference_planar_response",
    "PhaseSurface",
    "steering_phases_rad",
    "retro_phases_rad",
    "quantize_phases_rad",
    "quantization_loss_db",
    "reader_steering_matrix",
    "spatial_dof",
    "sum_capacity_bits",
    "simulated_gain_curve_db",
    "response",
    "pattern",
    "monostatic_gain",
    "monostatic_gain_db",
    "ModulationSwitch",
    "chips_to_waveform",
    "reflect_waveform",
    "VanAttaNode",
    "PlanarVanAttaArray",
    "grid_positions",
    "point_mirror_pairs",
    "planar_response",
    "planar_monostatic_gain",
    "planar_monostatic_gain_db",
    "peak_gain_db",
    "aperture_m",
    "recommended_spacing",
    "ToleranceResult",
    "monte_carlo_gain",
    "perturbed_array",
    "position_tolerance_for_loss",
    "SystemResponse",
    "system_response",
    "usable_bandwidth_hz",
    "max_chip_rate_for_bandwidth",
]
