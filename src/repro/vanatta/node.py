"""The complete battery-free VAB node.

A node is the Van Atta array, the pair-line modulation switches, the
energy-harvesting chain, and an ultra-low-power sequencer. It exposes the
two behaviours the rest of the system needs:

* a *communication* face — turn PHY chips into a reflection waveform and
  apply it to an incident carrier (used by the waveform simulator), and
* an *energy* face — how much power it harvests at a given incident level
  and whether that sustains its duty cycle (used by the E8 budget study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry.placement import Pose
from repro.geometry.vec3 import Vec3
from repro.piezo.harvester import EnergyHarvester, PowerBudget
from repro.vanatta.array import VanAttaArray
from repro.vanatta.reflection import reflect_waveform
from repro.vanatta.switching import ModulationSwitch, chips_to_waveform


@dataclass
class VanAttaNode:
    """A deployed Van Atta backscatter node.

    Attributes:
        array: the retrodirective transducer array.
        switch: modulation switch model.
        harvester: energy-harvesting chain.
        budget: consumption model.
        pose: where the node sits and which way it faces.
        node_id: identifier used by the link layer.
    """

    array: VanAttaArray = field(default_factory=VanAttaArray.uniform)
    switch: ModulationSwitch = field(default_factory=ModulationSwitch)
    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    budget: PowerBudget = field(default_factory=PowerBudget)
    pose: Pose = field(default_factory=lambda: Pose(Vec3.zero()))
    node_id: int = 1

    # -- communication face ---------------------------------------------------

    def modulation_waveform(
        self, chips: Sequence[int], samples_per_chip: int, fs: float = None
    ) -> np.ndarray:
        """Reflection-amplitude waveform for a chip sequence."""
        return chips_to_waveform(chips, samples_per_chip, self.switch, fs)

    def reflect(
        self,
        incident: np.ndarray,
        modulation: np.ndarray,
        frequency_hz: float,
        theta_deg: float,
        sound_speed: float = 1500.0,
    ) -> np.ndarray:
        """Re-radiate an incident baseband waveform (see reflection module)."""
        return reflect_waveform(
            incident, modulation, self.array, frequency_hz, theta_deg, sound_speed
        )

    # -- energy face --------------------------------------------------------------

    def harvested_power_w(self, incident_level_db: float, frequency_hz: float) -> float:
        """DC power harvested from an incident carrier level, watts."""
        return self.harvester.harvested_power_w(incident_level_db, frequency_hz)

    def is_power_sustainable(
        self, incident_level_db: float, frequency_hz: float, bitrate_bps: float = 1000.0
    ) -> bool:
        """True when harvesting covers the node's average consumption."""
        harvested = self.harvested_power_w(incident_level_db, frequency_hz)
        return self.budget.is_sustainable(harvested, bitrate_bps)

    def average_power_w(self, bitrate_bps: float = 1000.0) -> float:
        """Node average consumption including switch gate drive, watts."""
        base = self.budget.average_power_w(bitrate_bps)
        gate = self.switch.switching_power_w(bitrate_bps) * self.budget.duty_cycle
        return base + gate
