"""The modulation switch joining each Van Atta pair.

The node signals by opening and closing an analog switch placed in the
middle of every pair's transmission line:

* **closed** — the pair is connected: the array retrodirects the carrier
  (the "reflective" state);
* **open** — each element sees its termination instead: the captured
  energy is absorbed (and harvested), and almost nothing returns.

The switch is the only active component in the uplink path, so its
insertion loss and the OFF-state leakage bound the modulation depth, and
its transition time bounds the chip rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ModulationSwitch:
    """Electrical behaviour of the pair-line switch.

    Attributes:
        insertion_loss_db: loss through the closed switch (per pass).
        off_isolation_db: how far below the ON reflection the OFF-state
            residual sits (structural/static reflection leakage).
        transition_time_s: 10-90% settling time of a state change.
        gate_energy_j: energy to toggle the switch once.
    """

    insertion_loss_db: float = 0.4
    off_isolation_db: float = 25.0
    transition_time_s: float = 20e-6
    gate_energy_j: float = 1.5e-9

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0 or self.off_isolation_db <= 0:
            raise ValueError("losses must be non-negative / positive")
        if self.transition_time_s < 0:
            raise ValueError("transition time must be non-negative")

    @property
    def on_amplitude(self) -> float:
        """Linear reflection amplitude in the ON (connected) state."""
        return 10.0 ** (-self.insertion_loss_db / 20.0)

    @property
    def off_amplitude(self) -> float:
        """Residual reflection amplitude in the OFF (terminated) state."""
        return self.on_amplitude * 10.0 ** (-self.off_isolation_db / 20.0)

    @property
    def modulation_depth(self) -> float:
        """ON/OFF amplitude contrast in (0, 1]; 1 = ideal lossless keying."""
        return self.on_amplitude - self.off_amplitude

    def max_chip_rate_hz(self, settle_fraction: float = 0.2) -> float:
        """Highest chip rate keeping transitions under a chip fraction."""
        if self.transition_time_s == 0:
            return math.inf
        if not 0 < settle_fraction < 1:
            raise ValueError("settle fraction in (0, 1)")
        return settle_fraction / self.transition_time_s

    def switching_power_w(self, chip_rate_hz: float) -> float:
        """Average gate-drive power at a chip rate, watts."""
        if chip_rate_hz < 0:
            raise ValueError("chip rate must be non-negative")
        return self.gate_energy_j * chip_rate_hz


def chips_to_waveform(
    chips: Sequence[int],
    samples_per_chip: int,
    switch: ModulationSwitch,
    fs: float = None,
) -> np.ndarray:
    """Expand a chip sequence into the node's reflection-amplitude waveform.

    Chip value 1 maps to the ON amplitude, 0 to the OFF residual. When
    ``fs`` is given, state changes are smoothed with the switch transition
    time (linear ramp) instead of being instantaneous.

    Args:
        chips: binary chip sequence (from the PHY line coder).
        samples_per_chip: waveform samples per chip.
        switch: switch model supplying the two amplitudes.
        fs: sample rate; enables transition shaping when provided.

    Returns:
        Real amplitude waveform of length ``len(chips) * samples_per_chip``.
    """
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    chips = np.asarray(list(chips), dtype=np.int64)
    if chips.size and not ((chips == 0) | (chips == 1)).all():
        raise ValueError("chips must be 0/1")
    levels = np.where(chips == 1, switch.on_amplitude, switch.off_amplitude)
    wave = np.repeat(levels, samples_per_chip).astype(np.float64)
    if fs is None or switch.transition_time_s == 0:
        return wave
    ramp = max(int(round(switch.transition_time_s * fs)), 1)
    if ramp <= 1:
        return wave
    kernel = np.ones(ramp) / ramp
    smoothed = np.convolve(wave, kernel, mode="full")[: len(wave)]
    # The moving-average introduces a (ramp-1)/2 group delay; shift back.
    shift = (ramp - 1) // 2
    if shift:
        smoothed = np.concatenate([smoothed[shift:], np.full(shift, smoothed[-1])])
    return smoothed


def chips_to_waveform_batch(
    chips: np.ndarray,
    samples_per_chip: int,
    switch: ModulationSwitch,
    fs: float = None,
) -> np.ndarray:
    """Expand a ``(trials, chips)`` block into reflection waveforms.

    Batched counterpart of :func:`chips_to_waveform`: the level mapping
    and chip expansion vectorize over the trial axis, and each row is
    bitwise-equal to running the scalar function on it alone. Transition
    shaping (when ``fs`` gives a ramp longer than one sample) runs the
    scalar smoothing per row — it is a short convolution that campaigns
    at the default rates never hit.
    """
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    chips = np.asarray(chips, dtype=np.int64)
    if chips.ndim != 2:
        raise ValueError("chips must be a (trials, chips) array")
    if chips.size and not ((chips == 0) | (chips == 1)).all():
        raise ValueError("chips must be 0/1")
    levels = np.where(chips == 1, switch.on_amplitude, switch.off_amplitude)
    wave = np.repeat(levels, samples_per_chip, axis=1).astype(np.float64)
    if fs is None or switch.transition_time_s == 0:
        return wave
    ramp = max(int(round(switch.transition_time_s * fs)), 1)
    if ramp <= 1:
        return wave
    kernel = np.ones(ramp) / ramp
    shift = (ramp - 1) // 2
    n = wave.shape[1]
    out = np.empty_like(wave)
    for t in range(wave.shape[0]):
        smoothed = np.convolve(wave[t], kernel, mode="full")[:n]
        if shift:
            smoothed = np.concatenate(
                [smoothed[shift:], np.full(shift, smoothed[-1])]
            )
        out[t] = smoothed
    return out
