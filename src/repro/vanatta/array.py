"""Array geometry and Van Atta pairing.

The reproduction's default geometry matches the paper's: a uniform linear
array of piezo cylinders at half-wavelength spacing, wired in mirror-image
pairs (element ``i`` with element ``N-1-i``). Even element counts pair
everything; odd counts leave the centre element self-paired (it reflects
through a matched line to itself, which is still phase-correct).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.units.vocab import HZ, METERS, MPS
from repro.piezo.transducer import Transducer
from repro.vanatta.polarity import PairingScheme, pair_phase_errors


def linear_positions(num_elements: int, spacing_m: float) -> np.ndarray:
    """Positions (metres) of a uniform linear array centred on the origin.

    The array lies along a single axis; positions are scalars because the
    retrodirective math only needs the projection onto the array axis.
    """
    if num_elements < 1:
        raise ValueError("need at least one element")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    idx = np.arange(num_elements, dtype=np.float64)
    return (idx - (num_elements - 1) / 2.0) * spacing_m


def mirror_pairs(num_elements: int) -> List[Tuple[int, int]]:
    """Van Atta pairing: element ``i`` with its mirror ``N-1-i``.

    Returns one tuple per pair; the centre element of an odd array is
    paired with itself.
    """
    pairs = []
    for i in range((num_elements + 1) // 2):
        pairs.append((i, num_elements - 1 - i))
    return pairs


@dataclass(frozen=True)
class VanAttaArray:
    """A pair-connected transducer array.

    Attributes:
        positions_m: element coordinates along the array axis, metres.
        pairs: index pairs connected by transmission lines.
        element: the transducer model shared by all elements.
        pairing: polarity scheme used when wiring the pairs.
        line_loss_db: one-way electrical loss of a pair connection, dB.
        line_phase_rad: common electrical phase of every pair line
            (equal-length lines — a Van Atta requirement — make this a
            constant that drops out of the pattern).
    """

    positions_m: np.ndarray
    pairs: Tuple[Tuple[int, int], ...]
    element: Transducer = field(default_factory=Transducer)
    pairing: PairingScheme = PairingScheme.CROSS_POLARITY
    line_loss_db: float = 0.5
    line_phase_rad: float = 0.0

    def __post_init__(self) -> None:
        n = len(self.positions_m)
        seen = set()
        for a, b in self.pairs:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"pair ({a}, {b}) out of range for {n} elements")
            for e in {a, b}:
                if e in seen:
                    raise ValueError(f"element {e} appears in more than one pair")
                seen.add(e)
        if len(seen) != n:
            raise ValueError("every element must belong to exactly one pair")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def uniform(
        num_elements: int = 4,
        spacing_m: Optional[METERS] = None,
        frequency_hz: HZ = 18_500.0,
        sound_speed: MPS = 1500.0,
        element: Optional[Transducer] = None,
        pairing: PairingScheme = PairingScheme.CROSS_POLARITY,
    ) -> "VanAttaArray":
        """A half-wavelength uniform linear Van Atta array.

        Args:
            num_elements: element count (the paper's prototype uses 4).
            spacing_m: element spacing; defaults to lambda/2.
            frequency_hz: design frequency (sets the default spacing).
            sound_speed: medium sound speed for the wavelength.
            element: transducer model (default VAB element).
            pairing: polarity scheme for the pair wiring.
        """
        if spacing_m is None:
            spacing_m = sound_speed / frequency_hz / 2.0
        return VanAttaArray(
            positions_m=linear_positions(num_elements, spacing_m),
            pairs=tuple(mirror_pairs(num_elements)),
            element=element if element is not None else Transducer(),
            pairing=pairing,
        )

    # -- properties --------------------------------------------------------------

    @property
    def num_elements(self) -> int:
        """Number of physical elements."""
        return len(self.positions_m)

    @property
    def num_pairs(self) -> int:
        """Number of pair connections (centre self-pair counts once)."""
        return len(self.pairs)

    @property
    def aperture_m(self) -> float:
        """End-to-end aperture, metres."""
        return float(self.positions_m.max() - self.positions_m.min())

    @property
    def spacing_m(self) -> float:
        """Element pitch (assumes uniform spacing)."""
        if self.num_elements < 2:
            return 0.0
        return float(self.positions_m[1] - self.positions_m[0])

    def line_gain(self) -> float:
        """Linear amplitude gain of one pair line (from ``line_loss_db``)."""
        return 10.0 ** (-self.line_loss_db / 20.0)

    def pair_phases(self) -> np.ndarray:
        """Extra phase each pair contributes (polarity errors + line phase).

        Cross-polarity wiring co-phases all pairs (zero error); naive
        wiring leaves alternating pairs pi out of phase — see
        :mod:`repro.vanatta.polarity`.
        """
        errors = pair_phase_errors(self.num_pairs, self.pairing)
        return errors + self.line_phase_rad

    def is_mirror_symmetric(self, tol: float = 1e-9) -> bool:
        """True when every pair is a mirror-image pair (true Van Atta)."""
        for a, b in self.pairs:
            if abs(self.positions_m[a] + self.positions_m[b]) > tol:
                return False
        return True
