"""Wideband behaviour: what bandwidth does the system actually have?

Three mechanisms cap the usable band, and they trade against each other:

1. **The piezo resonance.** The motional branch rolls off as ``f_s / Q``;
   high-Q elements are efficient but narrow.
2. **The modulation network.** The switch's OFF state is a conjugate
   match *at one frequency*; away from it the match degrades and the
   ON/OFF contrast shrinks.
3. **The array geometry.** Pair spacing is λ/2 at the design frequency;
   off-frequency the retrodirective condition still holds exactly (the
   conjugation argument is frequency-independent for mirror pairs), but
   grating lobes appear once the spacing exceeds λ.

The composite "system response" here multiplies the element's two-way
conversion (TVR-shaped reflection efficiency) with the modulation depth
at each frequency, normalised to the design point — the curve that
decides how many FDMA channels or how much chip rate the link supports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.piezo.bvd import BVDModel
from repro.piezo.matching import modulation_depth_for
from repro.vanatta.array import VanAttaArray
from repro.vanatta.fastfield import ArrayFactorEngine


@dataclass(frozen=True)
class SystemResponse:
    """The composite backscatter response across frequency.

    Attributes:
        frequencies_hz: evaluation grid.
        element_db: two-way element conversion response (0 dB at peak).
        depth_db: modulation-depth response relative to the design point.
        array_db: array monostatic gain at each frequency (absolute).
        total_db: element + depth (the comm-bandwidth curve), 0 dB peak.
    """

    frequencies_hz: np.ndarray
    element_db: np.ndarray
    depth_db: np.ndarray
    array_db: np.ndarray
    total_db: np.ndarray

    def bandwidth_hz(self, drop_db: float = 3.0) -> float:
        """Contiguous band around the peak within ``drop_db`` of it."""
        peak = int(np.argmax(self.total_db))
        level = self.total_db[peak] - drop_db
        lo = peak
        while lo > 0 and self.total_db[lo - 1] >= level:
            lo -= 1
        hi = peak
        while hi < len(self.total_db) - 1 and self.total_db[hi + 1] >= level:
            hi += 1
        return float(self.frequencies_hz[hi] - self.frequencies_hz[lo])


def system_response(
    array: VanAttaArray,
    bvd: BVDModel,
    frequencies_hz: Sequence[float],
    design_frequency_hz: Optional[float] = None,
    theta_deg: float = 0.0,
    sound_speed: float = 1500.0,
) -> SystemResponse:
    """Evaluate the composite response across a frequency grid.

    Args:
        array: the Van Atta array (geometry fixed at build time).
        bvd: element equivalent circuit.
        frequencies_hz: evaluation grid.
        design_frequency_hz: the matching-network design point (element
            series resonance if None).
        theta_deg: incidence angle for the array term.
        sound_speed: medium sound speed.

    Returns:
        The per-mechanism and composite responses.
    """
    freqs = np.asarray(list(frequencies_hz), dtype=np.float64)
    if len(freqs) < 2:
        raise ValueError("need a frequency grid")
    f0 = design_frequency_hz or bvd.series_resonance_hz
    z_off_design = bvd.conjugate_match(f0)

    element = np.empty(len(freqs))
    depth = np.empty(len(freqs))
    for i, f in enumerate(freqs):
        # Two-way conversion: receive + re-transmit both ride the
        # motional-branch shape.
        shape = bvd.rm_ohm / abs(bvd.motional_impedance(f))
        element[i] = 40.0 * math.log10(max(shape, 1e-12))
        d = modulation_depth_for(bvd, f, z_off=z_off_design)
        depth[i] = 20.0 * math.log10(max(min(d, 1.0), 1e-12))
    # The array term sweeps the whole frequency grid in one batched
    # array-factor call (the geometry is fixed; only k changes).
    engine = ArrayFactorEngine.from_linear(array)
    mags = np.abs(engine.monostatic_batch(freqs, theta_deg, sound_speed))
    arr_gain_db = 20.0 * np.log10(np.maximum(mags, 1e-12))

    depth_at_f0_db = 20.0 * math.log10(
        max(modulation_depth_for(bvd, f0, z_off=z_off_design), 1e-12)
    )
    total = element + (depth - depth_at_f0_db)
    total = total - total.max()
    return SystemResponse(
        frequencies_hz=freqs,
        element_db=element - element.max(),
        depth_db=depth - depth_at_f0_db,
        array_db=arr_gain_db,
        total_db=total,
    )


def usable_bandwidth_hz(
    bvd: BVDModel,
    array: Optional[VanAttaArray] = None,
    drop_db: float = 3.0,
    sound_speed: float = 1500.0,
) -> float:
    """Convenience: composite bandwidth around the element resonance."""
    f0 = bvd.series_resonance_hz
    freqs = np.linspace(0.85 * f0, 1.15 * f0, 241)
    if array is None:
        array = VanAttaArray.uniform(
            4, frequency_hz=f0, sound_speed=sound_speed
        )
    response = system_response(array, bvd, freqs, sound_speed=sound_speed)
    return response.bandwidth_hz(drop_db)


def max_chip_rate_for_bandwidth(bandwidth_hz: float, rolloff: float = 1.0) -> float:
    """Chip rate a band supports (OOK occupies ~(1+rolloff) x chip rate)."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    if rolloff < 0:
        raise ValueError("rolloff must be non-negative")
    return bandwidth_hz / (1.0 + rolloff)
