"""Cross-polarity co-phasing of Van Atta pairs.

Retrodirectivity requires every pair line to present the *same* electrical
phase: the pattern is the coherent sum of per-pair terms, and any pair-to-
pair phase spread de-coheres it. The paper's design observation is that
with piezo transducers the obvious wiring does not achieve this — the
physical lead orientation of neighbouring elements alternates when
cylinders are stacked into an array, so naively wired pairs end up with a
pi polarity flip relative to their neighbours. Wiring each pair *cross
polarity* (swapping the leads on one element of the pair) cancels the flip
and co-phases the aperture.

The model here is deliberately simple and captures exactly that effect:

* ``CROSS_POLARITY`` — all pairs in phase (the paper's design);
* ``DIRECT``        — alternating pairs flipped by pi (the naive wiring);
* ``RANDOM``        — each pair gets an arbitrary phase (a badly built
  array; useful as a lower bound in the ablation).
"""

from __future__ import annotations

import enum

import numpy as np


class PairingScheme(enum.Enum):
    """How pair transmission lines are wired."""

    CROSS_POLARITY = "cross_polarity"
    DIRECT = "direct"
    RANDOM = "random"


def pair_phase_errors(
    num_pairs: int, scheme: PairingScheme, seed: int = 7
) -> np.ndarray:
    """Per-pair phase errors (radians) introduced by a wiring scheme.

    Args:
        num_pairs: number of pair lines.
        scheme: wiring scheme.
        seed: RNG seed for the ``RANDOM`` scheme (fixed so experiments are
            reproducible).

    Returns:
        Array of ``num_pairs`` phases; all zeros for cross-polarity.
    """
    if num_pairs < 0:
        raise ValueError("num_pairs must be non-negative")
    if scheme is PairingScheme.CROSS_POLARITY:
        return np.zeros(num_pairs)
    if scheme is PairingScheme.DIRECT:
        # Alternating polarity flip across the stacked pairs.
        return np.array([np.pi * (i % 2) for i in range(num_pairs)])
    if scheme is PairingScheme.RANDOM:
        rng = np.random.default_rng(seed)
        return rng.uniform(0.0, 2.0 * np.pi, size=num_pairs)
    raise ValueError(f"unknown pairing scheme: {scheme}")


def coherence_loss_db(phase_errors: np.ndarray) -> float:
    """Array-gain loss caused by a set of pair phase errors, dB.

    The coherent sum of ``N`` unit phasors with phases ``phi_i`` has
    magnitude ``|sum exp(j phi_i)| <= N``; the loss is the ratio to the
    perfectly co-phased sum.
    """
    phase_errors = np.asarray(phase_errors, dtype=np.float64)
    n = len(phase_errors)
    if n == 0:
        return 0.0
    coherent = abs(np.exp(1j * phase_errors).sum()) / n
    return -20.0 * float(np.log10(max(coherent, 1e-15)))
