"""Planar (2-D) Van Atta arrays: retrodirectivity in both planes.

A linear array retrodirects only in its own plane — tilt the node in
elevation and the reflection walks away. The planar extension (the
paper's scaling direction for full-orientation coverage) places elements
on a grid and pairs each with its point reflection through the array
centre; the same mirror argument then conjugates the phase gradient in
*both* axes, making the monostatic gain independent of azimuth and
elevation simultaneously.

Geometry: the array face lies in a local (u, w) plane (u = horizontal
aperture axis, w = vertical). An incident direction is (azimuth, elevation)
off broadside; its direction cosines on the face are
``(sin(az) cos(el), sin(el))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.piezo.transducer import Transducer
from repro.vanatta.polarity import PairingScheme, pair_phase_errors


def grid_positions(
    num_u: int, num_w: int, spacing_m: float
) -> np.ndarray:
    """Element coordinates of a centred ``num_u x num_w`` grid, shape (N, 2)."""
    if num_u < 1 or num_w < 1:
        raise ValueError("grid dimensions must be >= 1")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    us = (np.arange(num_u) - (num_u - 1) / 2.0) * spacing_m
    ws = (np.arange(num_w) - (num_w - 1) / 2.0) * spacing_m
    uu, ww = np.meshgrid(us, ws, indexing="ij")
    return np.column_stack([uu.ravel(), ww.ravel()])


def point_mirror_pairs(positions: np.ndarray, tol: float = 1e-9) -> List[Tuple[int, int]]:
    """Pair every element with its point reflection through the origin.

    Raises:
        ValueError: if some element has no mirror partner in the layout.
    """
    n = len(positions)
    used = set()
    pairs: List[Tuple[int, int]] = []
    for i in range(n):
        if i in used:
            continue
        target = -positions[i]
        match = None
        for j in range(i, n):
            if j in used and j != i:
                continue
            if np.allclose(positions[j], target, atol=tol):
                match = j
                break
        if match is None:
            raise ValueError(f"element {i} has no point-mirror partner")
        pairs.append((i, match))
        used.add(i)
        used.add(match)
    return pairs


@dataclass(frozen=True)
class PlanarVanAttaArray:
    """A point-mirror-paired planar array.

    Attributes:
        positions_m: (N, 2) element coordinates in the face plane.
        pairs: index pairs connected by equal-length lines.
        element: shared transducer model.
        pairing: polarity scheme of the pair wiring.
        line_loss_db: one-way electrical loss per pair line.
    """

    positions_m: np.ndarray
    pairs: Tuple[Tuple[int, int], ...]
    element: Transducer = field(default_factory=Transducer)
    pairing: PairingScheme = PairingScheme.CROSS_POLARITY
    line_loss_db: float = 0.5

    def __post_init__(self) -> None:
        seen = set()
        n = len(self.positions_m)
        for a, b in self.pairs:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"pair ({a}, {b}) out of range")
            for e in {a, b}:
                if e in seen:
                    raise ValueError(f"element {e} in more than one pair")
                seen.add(e)
        if len(seen) != n:
            raise ValueError("every element must belong to exactly one pair")

    @staticmethod
    def uniform(
        num_u: int = 2,
        num_w: int = 2,
        spacing_m: float = None,
        frequency_hz: float = 18_500.0,
        sound_speed: float = 1500.0,
        element: Transducer = None,
        pairing: PairingScheme = PairingScheme.CROSS_POLARITY,
    ) -> "PlanarVanAttaArray":
        """A half-wavelength grid with point-mirror pairing."""
        if spacing_m is None:
            spacing_m = sound_speed / frequency_hz / 2.0
        positions = grid_positions(num_u, num_w, spacing_m)
        return PlanarVanAttaArray(
            positions_m=positions,
            pairs=tuple(point_mirror_pairs(positions)),
            element=element if element is not None else Transducer(),
            pairing=pairing,
        )

    @property
    def num_elements(self) -> int:
        """Number of physical elements."""
        return len(self.positions_m)

    def line_gain(self) -> float:
        """Linear amplitude gain of one pair line."""
        return 10.0 ** (-self.line_loss_db / 20.0)

    def is_point_symmetric(self, tol: float = 1e-9) -> bool:
        """True when every pair mirrors through the array centre."""
        for a, b in self.pairs:
            if not np.allclose(self.positions_m[a], -self.positions_m[b], atol=tol):
                return False
        return True


def direction_cosines(azimuth_deg: float, elevation_deg: float) -> np.ndarray:
    """Face-plane direction cosines (u, w) of an incidence direction."""
    az = math.radians(azimuth_deg)
    el = math.radians(elevation_deg)
    return np.array([math.sin(az) * math.cos(el), math.sin(el)])


def planar_response(
    array: PlanarVanAttaArray,
    frequency_hz: float,
    az_in_deg: float,
    el_in_deg: float,
    az_out_deg: float,
    el_out_deg: float,
    sound_speed: float = 1500.0,
) -> complex:
    """Bistatic complex response of the planar array (per ideal element)."""
    if frequency_hz <= 0 or sound_speed <= 0:
        raise ValueError("frequency and sound speed must be positive")
    k = 2.0 * math.pi * frequency_hz / sound_speed
    d_in = direction_cosines(az_in_deg, el_in_deg)
    d_out = direction_cosines(az_out_deg, el_out_deg)
    x = array.positions_m
    phases = pair_phase_errors(len(array.pairs), array.pairing)
    line = array.line_gain()

    # Element pattern: treat the total off-broadside angle per leg.
    def off_angle(az, el):
        c = math.cos(math.radians(az)) * math.cos(math.radians(el))
        return math.degrees(math.acos(max(-1.0, min(1.0, c))))

    g_in = array.element.element_gain(off_angle(az_in_deg, el_in_deg))
    g_out = array.element.element_gain(off_angle(az_out_deg, el_out_deg))

    total = 0.0 + 0.0j
    for (a, b), extra in zip(array.pairs, phases):
        rot = complex(math.cos(extra), math.sin(extra))
        if a == b:
            total += rot * np.exp(1j * k * (x[a] @ d_in + x[a] @ d_out))
        else:
            total += rot * np.exp(1j * k * (x[a] @ d_in + x[b] @ d_out))
            total += rot * np.exp(1j * k * (x[b] @ d_in + x[a] @ d_out))
    return complex(total * line * g_in * g_out)


def planar_monostatic_gain(
    array: PlanarVanAttaArray,
    frequency_hz: float,
    azimuth_deg: float,
    elevation_deg: float,
    sound_speed: float = 1500.0,
) -> complex:
    """Response back toward the source from an (az, el) direction."""
    return planar_response(
        array,
        frequency_hz,
        azimuth_deg,
        elevation_deg,
        azimuth_deg,
        elevation_deg,
        sound_speed,
    )


def planar_monostatic_gain_db(
    array: PlanarVanAttaArray,
    frequency_hz: float,
    azimuth_deg: float,
    elevation_deg: float,
    sound_speed: float = 1500.0,
) -> float:
    """Monostatic field gain in dB re one ideal element."""
    mag = abs(
        planar_monostatic_gain(
            array, frequency_hz, azimuth_deg, elevation_deg, sound_speed
        )
    )
    return 20.0 * math.log10(max(mag, 1e-15))
