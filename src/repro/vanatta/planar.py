"""Planar (2-D) Van Atta arrays: retrodirectivity in both planes.

A linear array retrodirects only in its own plane — tilt the node in
elevation and the reflection walks away. The planar extension (the
paper's scaling direction for full-orientation coverage) places elements
on a grid and pairs each with its point reflection through the array
centre; the same mirror argument then conjugates the phase gradient in
*both* axes, making the monostatic gain independent of azimuth and
elevation simultaneously.

Geometry: the array face lies in a local (u, w) plane (u = horizontal
aperture axis, w = vertical). An incident direction is (azimuth, elevation)
off broadside; its direction cosines on the face are
``(sin(az) cos(el), sin(el))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.units.vocab import DB, DEG, HZ, METERS, MPS
from repro.piezo.transducer import Transducer
from repro.vanatta.polarity import PairingScheme


def grid_positions(
    num_u: int, num_w: int, spacing_m: float
) -> np.ndarray:
    """Element coordinates of a centred ``num_u x num_w`` grid, shape (N, 2)."""
    if num_u < 1 or num_w < 1:
        raise ValueError("grid dimensions must be >= 1")
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    us = (np.arange(num_u) - (num_u - 1) / 2.0) * spacing_m
    ws = (np.arange(num_w) - (num_w - 1) / 2.0) * spacing_m
    uu, ww = np.meshgrid(us, ws, indexing="ij")
    return np.column_stack([uu.ravel(), ww.ravel()])


def point_mirror_pairs(positions: np.ndarray, tol: float = 1e-9) -> List[Tuple[int, int]]:
    """Pair every element with its point reflection through the origin.

    Matching is O(N): coordinates are quantized to the tolerance and
    looked up in a hash of rounded keys (each lookup also probes the
    neighbouring quantization cells, so points straddling a rounding
    boundary still meet their mirrors). The previous all-pairs scan was
    O(N^2) and dominated construction beyond ~1k elements.

    Raises:
        ValueError: if some element has no mirror partner in the layout.
    """
    if tol <= 0:
        raise ValueError("tolerance must be positive")
    coords = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    if coords.shape[0] == 1 and np.ndim(positions) == 1:
        coords = coords.T
    n = len(coords)
    quantized = np.round(coords / tol).astype(np.int64)
    buckets: Dict[Tuple[int, ...], List[int]] = {}
    for i in range(n):
        buckets.setdefault(tuple(quantized[i]), []).append(i)

    dims = coords.shape[1]
    offsets = np.indices((3,) * dims).reshape(dims, -1).T - 1
    used = [False] * n
    pairs: List[Tuple[int, int]] = []
    for i in range(n):
        if used[i]:
            continue
        key = np.round(-coords[i] / tol).astype(np.int64)
        match = None
        for off in offsets:
            for j in buckets.get(tuple(key + off), ()):
                if (j == i or not used[j]) and np.allclose(
                    coords[j], -coords[i], atol=tol
                ):
                    match = j if match is None else min(match, j)
        if match is None:
            raise ValueError(f"element {i} has no point-mirror partner")
        pairs.append((i, match))
        used[i] = True
        used[match] = True
    return pairs


@dataclass(frozen=True)
class PlanarVanAttaArray:
    """A point-mirror-paired planar array.

    Attributes:
        positions_m: (N, 2) element coordinates in the face plane.
        pairs: index pairs connected by equal-length lines.
        element: shared transducer model.
        pairing: polarity scheme of the pair wiring.
        line_loss_db: one-way electrical loss per pair line.
    """

    positions_m: np.ndarray
    pairs: Tuple[Tuple[int, int], ...]
    element: Transducer = field(default_factory=Transducer)
    pairing: PairingScheme = PairingScheme.CROSS_POLARITY
    line_loss_db: float = 0.5

    def __post_init__(self) -> None:
        seen = set()
        n = len(self.positions_m)
        for a, b in self.pairs:
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"pair ({a}, {b}) out of range")
            for e in {a, b}:
                if e in seen:
                    raise ValueError(f"element {e} in more than one pair")
                seen.add(e)
        if len(seen) != n:
            raise ValueError("every element must belong to exactly one pair")

    @staticmethod
    def uniform(
        num_u: int = 2,
        num_w: int = 2,
        spacing_m: Optional[METERS] = None,
        frequency_hz: HZ = 18_500.0,
        sound_speed: MPS = 1500.0,
        element: Optional[Transducer] = None,
        pairing: PairingScheme = PairingScheme.CROSS_POLARITY,
    ) -> "PlanarVanAttaArray":
        """A half-wavelength grid with point-mirror pairing."""
        if spacing_m is None:
            spacing_m = sound_speed / frequency_hz / 2.0
        positions = grid_positions(num_u, num_w, spacing_m)
        return PlanarVanAttaArray(
            positions_m=positions,
            pairs=tuple(point_mirror_pairs(positions)),
            element=element if element is not None else Transducer(),
            pairing=pairing,
        )

    @property
    def num_elements(self) -> int:
        """Number of physical elements."""
        return len(self.positions_m)

    def line_gain(self) -> float:
        """Linear amplitude gain of one pair line."""
        return 10.0 ** (-self.line_loss_db / 20.0)

    def is_point_symmetric(self, tol: float = 1e-9) -> bool:
        """True when every pair mirrors through the array centre."""
        for a, b in self.pairs:
            if not np.allclose(self.positions_m[a], -self.positions_m[b], atol=tol):
                return False
        return True


def direction_cosines(azimuth_deg: float, elevation_deg: float) -> np.ndarray:
    """Face-plane direction cosines (u, w) of an incidence direction."""
    az = math.radians(azimuth_deg)
    el = math.radians(elevation_deg)
    return np.array([math.sin(az) * math.cos(el), math.sin(el)])


def planar_response(
    array: PlanarVanAttaArray,
    frequency_hz: HZ,
    az_in_deg: DEG,
    el_in_deg: DEG,
    az_out_deg: DEG,
    el_out_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """Bistatic complex response of the planar array (per ideal element).

    Delegates to the batched array-factor kernel
    (:mod:`repro.vanatta.fastfield`) at batch size 1; the original
    per-pair loop survives as
    :func:`repro.vanatta.fastfield.reference_planar_response` and the
    parity tests hold the two to ``<= 1e-9``.
    """
    from repro.vanatta.fastfield import ArrayFactorEngine

    engine = ArrayFactorEngine.from_planar(array)
    return complex(
        engine.planar_response_batch(
            frequency_hz, az_in_deg, el_in_deg, az_out_deg, el_out_deg,
            sound_speed,
        )
    )


def planar_monostatic_gain(
    array: PlanarVanAttaArray,
    frequency_hz: HZ,
    azimuth_deg: DEG,
    elevation_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> complex:
    """Response back toward the source from an (az, el) direction."""
    return planar_response(
        array,
        frequency_hz,
        azimuth_deg,
        elevation_deg,
        azimuth_deg,
        elevation_deg,
        sound_speed,
    )


def planar_monostatic_gain_db(
    array: PlanarVanAttaArray,
    frequency_hz: HZ,
    azimuth_deg: DEG,
    elevation_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> DB:
    """Monostatic field gain in dB re one ideal element."""
    mag = abs(
        planar_monostatic_gain(
            array, frequency_hz, azimuth_deg, elevation_deg, sound_speed
        )
    )
    return 20.0 * math.log10(max(mag, 1e-15))
