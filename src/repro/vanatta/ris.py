"""Programmable phase surfaces: acoustic RIS on the fast-field kernel.

A Van Atta array is *passive* retrodirectivity: the pair wiring bakes
the phase-conjugation into the geometry. A reconfigurable intelligent
surface (RIS) gets the same physics *programmably* — every element
re-radiates its capture through a controllable phase shifter, so one
surface can steer reflections anywhere, serve several readers at once,
and trade phase-shifter resolution against gain. The acoustic-RIS
literature (massive spatial multiplexing, degrees of freedom) is the
workload this module models.

Both reflector families are configurations of one kernel
(:class:`repro.vanatta.fastfield.ArrayFactorEngine`): a Van Atta is the
mirror permutation with polarity weights, an RIS is the identity
permutation with codebook weights. :func:`retro_phases_rad` makes the
equivalence executable — it programs a surface to mimic a Van Atta for
a given incidence, and the fast-field tests pin the two responses to
each other.

Quantization: real phase shifters snap to ``2^bits`` levels.
:func:`quantize_phases_rad` rounds a codebook to the nearest level, and
:func:`quantization_loss_db` gives the classical coherence loss (about
0.2 dB at 3 bits, 3.9 dB at 1 bit).

Multi-reader spatial multiplexing: :func:`reader_steering_matrix`
builds the readers-by-elements phasor matrix whose singular values are
the surface's spatial subchannels; :func:`spatial_dof` counts the
usable ones and :func:`sum_capacity_bits` waterfills power across them
— the capacity/DoF-versus-element-count curves of the E21 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.units.vocab import DB, DEG, HZ, MPS
from repro.piezo.transducer import Transducer
from repro.vanatta.fastfield import (
    ArrayFactorEngine,
    ArrayLike,
    direction_cosine_grid,
    wavenumber,
)
from repro.vanatta.planar import grid_positions


def steering_phases_rad(
    positions_m: np.ndarray,
    frequency_hz: HZ,
    az_in_deg: DEG,
    el_in_deg: DEG,
    az_out_deg: DEG,
    el_out_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Codebook that reflects an ``(az, el)`` incidence toward a target.

    Cancels each element's round-trip path phase so all re-radiated
    terms add coherently toward the outgoing direction:
    ``phi_i = -k x_i . (u_in + u_out)``.
    """
    k = wavenumber(frequency_hz, sound_speed)
    positions = _face_positions(positions_m)
    u_in = direction_cosine_grid(az_in_deg, el_in_deg)
    u_out = direction_cosine_grid(az_out_deg, el_out_deg)
    return -k * (positions @ (u_in + u_out))


def retro_phases_rad(
    positions_m: np.ndarray,
    frequency_hz: HZ,
    az_deg: DEG,
    el_deg: DEG,
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Codebook that retro-reflects one incidence (emulates a Van Atta).

    Unlike the passive array — retrodirective at *every* incidence —
    a programmed surface conjugates the phase gradient of one known
    direction; tracking a moving reader means re-programming.
    """
    return steering_phases_rad(
        positions_m, frequency_hz, az_deg, el_deg, az_deg, el_deg, sound_speed
    )


def quantize_phases_rad(phases_rad: np.ndarray, bits: int) -> np.ndarray:
    """Snap a phase codebook to ``2^bits`` uniform phase-shifter levels."""
    if bits < 1:
        raise ValueError("need at least one quantization bit")
    levels = 2**bits
    step = 2.0 * math.pi / levels
    return np.round(np.asarray(phases_rad, dtype=np.float64) / step) * step


def quantization_loss_db(bits: int) -> DB:
    """Coherence loss of uniform phase quantization, dB (field).

    Phase errors uniform on ``[-pi/2^bits, pi/2^bits]`` shrink the
    coherent sum by ``sinc(1/2^bits)`` — about 3.9 dB at 1 bit, 0.9 dB
    at 2 bits, 0.2 dB at 3 bits.
    """
    if bits < 1:
        raise ValueError("need at least one quantization bit")
    return -20.0 * math.log10(np.sinc(1.0 / 2**bits))


@dataclass(frozen=True)
class PhaseSurface:
    """A programmable reflecting surface.

    Attributes:
        positions_m: ``(N, 2)`` element coordinates in the face plane
            (``(N,)`` / ``(N, 1)`` inputs model a linear strip).
        phases_rad: per-element programmed phase shifts.
        element: shared transducer model.
        reflection_loss_db: per-element reflection insertion loss.
        phase_bits: phase-shifter resolution; ``None`` = continuous.
            Quantization applies when the surface is programmed
            (:meth:`with_phases`, :meth:`steered`, :meth:`retro`).
    """

    positions_m: np.ndarray
    phases_rad: np.ndarray
    element: Transducer = field(default_factory=Transducer)
    reflection_loss_db: float = 0.5
    phase_bits: Optional[int] = None

    def __post_init__(self) -> None:
        positions = _face_positions(self.positions_m)
        phases = np.asarray(self.phases_rad, dtype=np.float64)
        if phases.shape != (len(positions),):
            raise ValueError("need one programmed phase per element")
        if self.phase_bits is not None and self.phase_bits < 1:
            raise ValueError("need at least one quantization bit")
        object.__setattr__(self, "positions_m", positions)
        object.__setattr__(self, "phases_rad", phases)

    @staticmethod
    def uniform(
        num_u: int = 16,
        num_w: int = 16,
        spacing_m: Optional[float] = None,
        frequency_hz: HZ = 18_500.0,
        sound_speed: MPS = 1500.0,
        element: Optional[Transducer] = None,
        phase_bits: Optional[int] = None,
    ) -> "PhaseSurface":
        """A half-wavelength grid surface programmed to all-zero phase."""
        if spacing_m is None:
            spacing_m = sound_speed / frequency_hz / 2.0
        positions = grid_positions(num_u, num_w, spacing_m)
        return PhaseSurface(
            positions_m=positions,
            phases_rad=np.zeros(len(positions)),
            element=element if element is not None else Transducer(),
            phase_bits=phase_bits,
        )

    @property
    def num_elements(self) -> int:
        """Number of programmable elements."""
        return len(self.positions_m)

    def reflection_gain(self) -> float:
        """Linear amplitude gain of one element's reflection path."""
        return 10.0 ** (-self.reflection_loss_db / 20.0)

    # -- programming ----------------------------------------------------------

    def with_phases(self, phases_rad: np.ndarray) -> "PhaseSurface":
        """The same surface programmed with a new codebook (quantized
        to ``phase_bits`` when the surface models finite shifters)."""
        phases = np.asarray(phases_rad, dtype=np.float64)
        if self.phase_bits is not None:
            phases = quantize_phases_rad(phases, self.phase_bits)
        return PhaseSurface(
            positions_m=self.positions_m,
            phases_rad=phases,
            element=self.element,
            reflection_loss_db=self.reflection_loss_db,
            phase_bits=self.phase_bits,
        )

    def steered(
        self,
        frequency_hz: HZ,
        az_in_deg: DEG,
        el_in_deg: DEG,
        az_out_deg: DEG,
        el_out_deg: DEG,
        sound_speed: MPS = 1500.0,
    ) -> "PhaseSurface":
        """Programmed to reflect one incidence toward one target."""
        return self.with_phases(
            steering_phases_rad(
                self.positions_m, frequency_hz, az_in_deg, el_in_deg,
                az_out_deg, el_out_deg, sound_speed,
            )
        )

    def retro(
        self,
        frequency_hz: HZ,
        az_deg: DEG,
        el_deg: DEG,
        sound_speed: MPS = 1500.0,
    ) -> "PhaseSurface":
        """Programmed to retro-reflect one incidence (Van Atta mimic)."""
        return self.with_phases(
            retro_phases_rad(
                self.positions_m, frequency_hz, az_deg, el_deg, sound_speed
            )
        )

    # -- evaluation -----------------------------------------------------------

    def engine(self) -> ArrayFactorEngine:
        """The fast-field engine for the current programming."""
        return ArrayFactorEngine.from_phase_surface(
            self.positions_m,
            self.phases_rad,
            element=self.element,
            reflection_gain=self.reflection_gain(),
        )

    def response_batch(
        self,
        frequency_hz: ArrayLike,
        az_in_deg: ArrayLike,
        el_in_deg: ArrayLike,
        az_out_deg: ArrayLike,
        el_out_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Bistatic complex response over a broadcast batch."""
        return self.engine().planar_response_batch(
            frequency_hz, az_in_deg, el_in_deg, az_out_deg, el_out_deg,
            sound_speed,
        )

    def monostatic_gain_db(
        self,
        frequency_hz: HZ,
        az_deg: ArrayLike,
        el_deg: ArrayLike,
        sound_speed: MPS = 1500.0,
    ) -> np.ndarray:
        """Monostatic field gain (dB re one ideal element), batched."""
        mag = np.abs(
            self.response_batch(
                frequency_hz, az_deg, el_deg, az_deg, el_deg, sound_speed
            )
        )
        return 20.0 * np.log10(np.maximum(mag, 1e-15))


# -- multi-reader spatial multiplexing ---------------------------------------


def reader_steering_matrix(
    positions_m: np.ndarray,
    frequency_hz: HZ,
    reader_directions_deg: Sequence[Tuple[float, float]],
    sound_speed: MPS = 1500.0,
) -> np.ndarray:
    """Readers-by-elements steering matrix of a shared aperture.

    Row ``r`` holds each element's round-trip phasor toward reader
    ``r`` at ``(az, el)``, normalised by ``sqrt(N)`` so every row has
    unit norm — the matrix whose singular values are the spatial
    subchannels the surface can multiplex.
    """
    k = wavenumber(frequency_hz, sound_speed)
    positions = _face_positions(positions_m)
    directions = np.asarray(
        [direction_cosine_grid(az, el) for az, el in reader_directions_deg]
    )
    if directions.size == 0:
        raise ValueError("need at least one reader direction")
    phase = k * (directions @ positions.T)
    return np.exp(1j * phase) / math.sqrt(len(positions))


def spatial_dof(
    steering: np.ndarray, rel_threshold_db: DB = 20.0
) -> int:
    """Usable spatial degrees of freedom of a steering matrix.

    Counts singular values within ``rel_threshold_db`` of the largest —
    the number of readers the aperture can serve on near-orthogonal
    subchannels. Grows with element count until reader geometry, not
    aperture, becomes the bottleneck.
    """
    if rel_threshold_db <= 0:
        raise ValueError("threshold must be positive dB")
    sigma = np.linalg.svd(np.asarray(steering), compute_uv=False)
    if sigma.size == 0 or sigma[0] <= 0:
        return 0
    floor = sigma[0] * 10.0 ** (-rel_threshold_db / 20.0)
    return int(np.count_nonzero(sigma >= floor))


def sum_capacity_bits(
    steering: np.ndarray, snr_db: DB = 10.0
) -> float:
    """Sum capacity (bits/s/Hz) of the multiplexed downlink, waterfilled.

    Treats the steering matrix's eigenmodes as parallel Gaussian
    subchannels with total transmit SNR ``snr_db`` and waterfills power
    across them — the standard MIMO sum-capacity bound, here indexing
    how much *spatial* rate a massive surface adds over a single beam.
    """
    sigma_sq = (
        np.linalg.svd(np.asarray(steering), compute_uv=False) ** 2
    )
    sigma_sq = sigma_sq[sigma_sq > 1e-15]
    if sigma_sq.size == 0:
        return 0.0
    snr = 10.0 ** (snr_db / 10.0)
    inv = 1.0 / (snr * sigma_sq)
    # Waterfilling: find the level mu with sum(mu - inv)_+ = 1.
    order = np.argsort(inv)
    inv_sorted = inv[order]
    mu = 0.0
    for m in range(len(inv_sorted), 0, -1):
        mu = (1.0 + inv_sorted[:m].sum()) / m
        if mu > inv_sorted[m - 1]:
            break
    powers = np.maximum(mu - inv, 0.0)
    return float(np.log2(1.0 + powers * snr * sigma_sq).sum())


def _face_positions(positions_m: np.ndarray) -> np.ndarray:
    """Coerce positions to an ``(N, 2)`` face-plane tensor."""
    positions = np.asarray(positions_m, dtype=np.float64)
    if positions.ndim == 1:
        positions = positions[:, None]
    if positions.ndim != 2:
        raise ValueError("positions must be (N,), (N, 1) or (N, 2)")
    if positions.shape[1] == 1:
        positions = np.column_stack(
            [positions[:, 0], np.zeros(len(positions))]
        )
    if positions.shape[1] != 2:
        raise ValueError("positions must be (N,), (N, 1) or (N, 2)")
    return positions
