"""A small immutable 3-vector.

``numpy`` arrays are used for bulk math inside the DSP and channel code; at
the API surface a tiny typed vector makes scenarios self-describing::

    reader = Vec3(0.0, 0.0, 5.0)        # 5 m deep at the origin
    node = Vec3(100.0, 0.0, 5.0)        # 100 m down-range

The class supports the handful of operations scenario code needs
(arithmetic, norms, rotation about z) and converts to/from ``numpy``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class Vec3:
    """An immutable Cartesian 3-vector (units: metres unless noted)."""

    x: float
    y: float
    z: float

    # -- constructors -----------------------------------------------------

    @staticmethod
    def zero() -> "Vec3":
        """The origin."""
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def from_array(a: Union[Sequence[float], np.ndarray]) -> "Vec3":
        """Build from any length-3 sequence or ``numpy`` array."""
        ax, ay, az = (float(v) for v in a)
        return Vec3(ax, ay, az)

    @staticmethod
    def from_spherical(r: float, azimuth_rad: float, elevation_rad: float) -> "Vec3":
        """Build from range, azimuth (about z, from +x), and elevation.

        Elevation is measured from the horizontal plane; positive elevation
        points *up* (toward the surface, i.e. decreasing z).
        """
        horiz = r * math.cos(elevation_rad)
        return Vec3(
            horiz * math.cos(azimuth_rad),
            horiz * math.sin(azimuth_rad),
            -r * math.sin(elevation_rad),
        )

    # -- conversions -------------------------------------------------------

    def as_array(self) -> np.ndarray:
        """Return a ``numpy`` array ``[x, y, z]`` of dtype float64."""
        return np.array([self.x, self.y, self.z], dtype=np.float64)

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return a plain tuple ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, s: float) -> "Vec3":
        return Vec3(self.x * s, self.y * s, self.z * s)

    __rmul__ = __mul__

    def __truediv__(self, s: float) -> "Vec3":
        return Vec3(self.x / s, self.y / s, self.z / s)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    # -- metrics -------------------------------------------------------------

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to ``other``."""
        return (self - other).norm()

    def unit(self) -> "Vec3":
        """Unit vector in this direction.

        Raises:
            ValueError: if the vector is (numerically) zero.
        """
        n = self.norm()
        if n < 1e-30:
            raise ValueError("cannot normalise a zero vector")
        return self / n

    # -- transforms -----------------------------------------------------------

    def rotated_z(self, angle_rad: float) -> "Vec3":
        """Rotate about the +z (depth) axis by ``angle_rad`` (right-handed)."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec3(c * self.x - s * self.y, s * self.x + c * self.y, self.z)

    def mirrored_surface(self) -> "Vec3":
        """Image of this point in the water surface (z = 0 plane)."""
        return Vec3(self.x, self.y, -self.z)

    def mirrored_bottom(self, bottom_depth: float) -> "Vec3":
        """Image of this point in a flat bottom at depth ``bottom_depth``."""
        return Vec3(self.x, self.y, 2.0 * bottom_depth - self.z)


def dot(a: Vec3, b: Vec3) -> float:
    """Dot product of two vectors."""
    return a.x * b.x + a.y * b.y + a.z * b.z


def cross(a: Vec3, b: Vec3) -> Vec3:
    """Cross product ``a × b``."""
    return Vec3(
        a.y * b.z - a.z * b.y,
        a.z * b.x - a.x * b.z,
        a.x * b.y - a.y * b.x,
    )


def norm(a: Vec3) -> float:
    """Euclidean length of ``a`` (function form of :meth:`Vec3.norm`)."""
    return a.norm()


def unit(a: Vec3) -> Vec3:
    """Unit vector of ``a`` (function form of :meth:`Vec3.unit`)."""
    return a.unit()
