"""Geometric primitives for placing readers, nodes, and array elements.

The simulator works in a right-handed Cartesian frame:

* ``x`` — horizontal range axis (reader usually looks along +x),
* ``y`` — horizontal cross-range axis,
* ``z`` — depth, **positive downward** (``z = 0`` is the water surface).

Angles follow the acoustics convention used in the paper's plots:
*incidence angle* (or *bearing*) is measured from an array's broadside
direction, so 0 degrees means the wave arrives head-on.
"""

from repro.geometry.vec3 import Vec3, cross, dot, norm, unit
from repro.geometry.placement import (
    Pose,
    bearing_deg,
    elevation_deg,
    incidence_angle_deg,
    slant_range,
)

__all__ = [
    "Vec3",
    "cross",
    "dot",
    "norm",
    "unit",
    "Pose",
    "bearing_deg",
    "elevation_deg",
    "incidence_angle_deg",
    "slant_range",
]
