"""Poses and angle bookkeeping for deployed devices.

A :class:`Pose` couples a position with a heading (the direction the
device's broadside/acoustic axis points). The headline plots in the paper
sweep the *node orientation* relative to the reader — these helpers compute
the incidence angle that sweep controls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.vec3 import Vec3, dot


@dataclass(frozen=True)
class Pose:
    """Position plus heading of a deployed device.

    Attributes:
        position: device location in the global frame (z positive down).
        heading_deg: azimuth of the device broadside, degrees from +x,
            measured counter-clockwise when viewed from above.
        tilt_deg: elevation tilt of the broadside out of the horizontal
            plane; positive tilts the axis toward the surface.
    """

    position: Vec3
    heading_deg: float = 0.0
    tilt_deg: float = 0.0

    @property
    def broadside(self) -> Vec3:
        """Unit vector along the device's acoustic axis."""
        az = math.radians(self.heading_deg)
        el = math.radians(self.tilt_deg)
        return Vec3.from_spherical(1.0, az, el)

    def facing(self, target: Vec3) -> "Pose":
        """A copy of this pose rotated (in azimuth and tilt) to face ``target``."""
        d = target - self.position
        az = math.degrees(math.atan2(d.y, d.x))
        horiz = math.hypot(d.x, d.y)
        # Elevation from the horizontal plane: positive = toward surface.
        el = math.degrees(math.atan2(-d.z, horiz)) if horiz > 0 else 0.0
        return Pose(self.position, heading_deg=az, tilt_deg=el)

    def rotated(self, delta_heading_deg: float) -> "Pose":
        """A copy rotated in azimuth by ``delta_heading_deg``."""
        return Pose(self.position, self.heading_deg + delta_heading_deg, self.tilt_deg)

    def translated(self, offset: Vec3) -> "Pose":
        """A copy translated by ``offset``."""
        return Pose(self.position + offset, self.heading_deg, self.tilt_deg)


def slant_range(a: Vec3, b: Vec3) -> float:
    """Straight-line distance between two points, metres."""
    return a.distance_to(b)


def bearing_deg(source: Vec3, target: Vec3) -> float:
    """Azimuth of ``target`` as seen from ``source``, degrees from +x."""
    d = target - source
    return math.degrees(math.atan2(d.y, d.x))


def elevation_deg(source: Vec3, target: Vec3) -> float:
    """Elevation of ``target`` from ``source``, degrees above horizontal."""
    d = target - source
    horiz = math.hypot(d.x, d.y)
    return math.degrees(math.atan2(-d.z, horiz))


def incidence_angle_deg(device: Pose, source: Vec3) -> float:
    """Angle between a device's broadside and the direction to ``source``.

    This is the abscissa of the paper's orientation-robustness plots:
    0 degrees means the incoming wave hits the array head-on; 90 degrees
    means it arrives along the array face.

    Returns:
        The unsigned angle in degrees, in [0, 180].
    """
    direction = (source - device.position).unit()
    cosang = max(-1.0, min(1.0, dot(device.broadside, direction)))
    return math.degrees(math.acos(cosang))
