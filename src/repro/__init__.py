"""VAB: Van Atta Acoustic Backscatter — a SIGCOMM 2023 reproduction.

Long-range, ultra-low-power underwater backscatter networking built on a
retrodirective (Van Atta) piezo-acoustic array, reproduced end to end in
simulation: channel physics, transducer circuits, array wiring, PHY DSP,
link layer, and the paper's full evaluation harness.

Quick start::

    from repro.core import Scenario, simulate_link

    report = simulate_link(Scenario.river(range_m=100.0), trials=10)
    print(f"BER {report.ber:.2e} at {report.range_m:.0f} m")

Package map (bottom-up): :mod:`repro.geometry`, :mod:`repro.acoustics`,
:mod:`repro.dsp`, :mod:`repro.piezo`, :mod:`repro.vanatta`,
:mod:`repro.phy`, :mod:`repro.link`, :mod:`repro.sim`,
:mod:`repro.baselines`, :mod:`repro.core`.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
