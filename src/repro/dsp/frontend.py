"""Receiver analog front end: AGC, clipping, and ADC quantisation.

Backscatter is brutal on front ends: the self-interference carrier sits
40-60 dB above the data, so the ADC must digitise a huge carrier without
clipping while keeping enough resolution for the microscopic sidebands.
The model here lets experiments ask "how many bits does the reader need?"
— a question the DSP-only chain can't answer.

The chain is ``AGC -> saturation -> uniform quantiser`` applied to both
I and Q.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrontEnd:
    """Front-end conversion parameters.

    Attributes:
        adc_bits: quantiser resolution per I/Q rail.
        full_scale: saturation level after AGC (the quantiser spans
            [-full_scale, +full_scale] on each rail).
        agc_target: AGC drives the record's RMS to this fraction of full
            scale (headroom for the carrier crest factor).
        agc_enabled: disable to model a fixed-gain front end.
    """

    adc_bits: int = 12
    full_scale: float = 1.0
    agc_target: float = 0.25
    agc_enabled: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.adc_bits <= 32:
            raise ValueError("adc_bits must be in 1..32")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if not 0.0 < self.agc_target <= 1.0:
            raise ValueError("agc_target must be in (0, 1]")

    def agc_gain(self, record: np.ndarray) -> float:
        """Gain that puts the record RMS at the AGC target level."""
        record = np.asarray(record)
        rms = float(np.sqrt(np.mean(np.abs(record) ** 2))) if len(record) else 0.0
        if rms <= 0:
            return 1.0
        return self.agc_target * self.full_scale / rms

    def digitize(self, record: np.ndarray) -> np.ndarray:
        """Run the full front end on a complex baseband record.

        Returns:
            The quantised complex record (same scale as the AGC output,
            so downstream DSP is unchanged).
        """
        record = np.asarray(record, dtype=np.complex128)
        if len(record) == 0:
            return record.copy()
        gain = self.agc_gain(record) if self.agc_enabled else 1.0
        scaled = record * gain

        levels = 2 ** (self.adc_bits - 1)
        step = self.full_scale / levels

        def quantise(rail: np.ndarray) -> np.ndarray:
            clipped = np.clip(rail, -self.full_scale, self.full_scale - step)
            return np.round(clipped / step) * step

        return quantise(scaled.real) + 1j * quantise(scaled.imag)

    def dynamic_range_db(self) -> float:
        """Quantiser dynamic range, ~6.02 dB per bit."""
        return 6.02 * self.adc_bits


def clip_level_exceedance(record: np.ndarray, full_scale: float) -> float:
    """Fraction of samples whose I or Q rail would clip at a full scale."""
    record = np.asarray(record, dtype=np.complex128)
    if len(record) == 0:
        return 0.0
    over = (np.abs(record.real) >= full_scale) | (np.abs(record.imag) >= full_scale)
    return float(np.count_nonzero(over)) / len(record)
