"""Correlation helpers for preamble detection and matched filtering."""

from __future__ import annotations

import numpy as np


def correlate_full(signal: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Cross-correlation of ``signal`` with ``template`` (valid lags only).

    Output index ``k`` is the correlation of ``signal[k : k + len(template)]``
    with the template, so a peak at ``k`` means the template starts at
    sample ``k``.
    """
    signal = np.asarray(signal)
    template = np.asarray(template)
    if len(template) == 0 or len(signal) < len(template):
        return np.zeros(0, dtype=np.result_type(signal, template))
    return np.correlate(signal, template, mode="valid")


def normalized_correlation(signal: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Sliding normalised correlation in [0, 1] (magnitude).

    Normalises by the local signal energy and the template energy, making
    the detection threshold independent of receive level — the property
    the reader needs, since backscatter level swings ~60 dB across range.
    """
    signal = np.asarray(signal, dtype=np.complex128)
    template = np.asarray(template, dtype=np.complex128)
    if len(signal) < len(template):
        return np.zeros(0)
    # np.correlate conjugates its second argument, giving the proper
    # complex matched statistic.
    raw = np.correlate(signal, template, mode="valid")
    t_energy = float(np.sum(np.abs(template) ** 2))
    if t_energy <= 0:
        raise ValueError("template has zero energy")
    power = np.abs(signal) ** 2
    window = np.ones(len(template))
    local_energy = np.convolve(power, window, mode="valid")
    denom = np.sqrt(np.maximum(local_energy * t_energy, 1e-30))
    return np.abs(raw) / denom


def normalized_correlation_batch(
    signals: np.ndarray, template: np.ndarray
) -> np.ndarray:
    """Sliding normalised correlation of many records at once.

    FFT-based batched counterpart of :func:`normalized_correlation`:
    ``signals`` is ``(trials, n)`` and the output is
    ``(trials, n - len(template) + 1)``, one correlation row per record.
    The circular FFT correlation is exact for the valid lags (the
    template is zero-padded to the record length, so no wrap-around
    reaches lag ``n - len(template)``), and the local-energy window is a
    cumulative-sum difference instead of a convolution.

    Rows are independent — the FFT transforms along the last axis — so
    the result for a record does not depend on its batch neighbours.
    Numerics differ from the time-domain :func:`normalized_correlation`
    at the 1e-12 level; batched receivers must use this function for
    *every* record (batch size one included) to stay self-consistent.
    """
    signals = np.asarray(signals, dtype=np.complex128)
    template = np.asarray(template, dtype=np.complex128)
    if signals.ndim != 2:
        raise ValueError("signals must be a (trials, n) array")
    trials, n = signals.shape
    m = len(template)
    if m == 0 or n < m:
        return np.zeros((trials, 0))
    t_energy = float(np.sum(np.abs(template) ** 2))
    if t_energy <= 0:
        raise ValueError("template has zero energy")
    spectrum = np.fft.fft(signals, n=n, axis=1)
    spectrum *= np.conj(np.fft.fft(template, n=n))[None, :]
    raw = np.fft.ifft(spectrum, axis=1)[:, : n - m + 1]
    # |z|^2 without the hypot of abs(): re^2 + im^2 (the scalar path's
    # abs()**2 differs only at the last ulp, within this function's
    # documented 1e-12 tolerance to the time-domain form).
    power = signals.real**2 + signals.imag**2
    cumulative = np.cumsum(power, axis=1)
    local_energy = cumulative[:, m - 1 :].copy()
    local_energy[:, 1:] -= cumulative[:, : n - m]
    denom = np.sqrt(np.maximum(local_energy * t_energy, 1e-30))
    return np.abs(raw) / denom


def matched_filter(signal: np.ndarray, pulse: np.ndarray) -> np.ndarray:
    """Filter with the time-reversed conjugate pulse (max-SNR receiver).

    Output is aligned so sample ``k`` integrates the pulse that *starts*
    at ``k`` (same convention as :func:`correlate_full`), trimmed to the
    valid region.
    """
    return correlate_full(signal, pulse)


def peak_to_sidelobe(correlation: np.ndarray, guard: int = 2) -> float:
    """Ratio of the correlation peak to the largest sample outside a guard.

    A quality metric for preamble detections; > ~3 indicates a confident
    lock. Returns ``inf`` when everything outside the guard is zero.
    """
    corr = np.abs(np.asarray(correlation))
    if len(corr) == 0:
        raise ValueError("empty correlation")
    peak_idx = int(np.argmax(corr))
    peak = corr[peak_idx]
    mask = np.ones(len(corr), dtype=bool)
    lo = max(peak_idx - guard, 0)
    hi = min(peak_idx + guard + 1, len(corr))
    mask[lo:hi] = False
    if not mask.any():
        return float("inf")
    side = corr[mask].max()
    if side <= 0:
        return float("inf")
    return float(peak / side)
