"""Correlation helpers for preamble detection and matched filtering."""

from __future__ import annotations

import numpy as np


def correlate_full(signal: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Cross-correlation of ``signal`` with ``template`` (valid lags only).

    Output index ``k`` is the correlation of ``signal[k : k + len(template)]``
    with the template, so a peak at ``k`` means the template starts at
    sample ``k``.
    """
    signal = np.asarray(signal)
    template = np.asarray(template)
    if len(template) == 0 or len(signal) < len(template):
        return np.zeros(0, dtype=np.result_type(signal, template))
    return np.correlate(signal, template, mode="valid")


def normalized_correlation(signal: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Sliding normalised correlation in [0, 1] (magnitude).

    Normalises by the local signal energy and the template energy, making
    the detection threshold independent of receive level — the property
    the reader needs, since backscatter level swings ~60 dB across range.
    """
    signal = np.asarray(signal, dtype=np.complex128)
    template = np.asarray(template, dtype=np.complex128)
    if len(signal) < len(template):
        return np.zeros(0)
    # np.correlate conjugates its second argument, giving the proper
    # complex matched statistic.
    raw = np.correlate(signal, template, mode="valid")
    t_energy = float(np.sum(np.abs(template) ** 2))
    if t_energy <= 0:
        raise ValueError("template has zero energy")
    power = np.abs(signal) ** 2
    window = np.ones(len(template))
    local_energy = np.convolve(power, window, mode="valid")
    denom = np.sqrt(np.maximum(local_energy * t_energy, 1e-30))
    return np.abs(raw) / denom


def matched_filter(signal: np.ndarray, pulse: np.ndarray) -> np.ndarray:
    """Filter with the time-reversed conjugate pulse (max-SNR receiver).

    Output is aligned so sample ``k`` integrates the pulse that *starts*
    at ``k`` (same convention as :func:`correlate_full`), trimmed to the
    valid region.
    """
    return correlate_full(signal, pulse)


def peak_to_sidelobe(correlation: np.ndarray, guard: int = 2) -> float:
    """Ratio of the correlation peak to the largest sample outside a guard.

    A quality metric for preamble detections; > ~3 indicates a confident
    lock. Returns ``inf`` when everything outside the guard is zero.
    """
    corr = np.abs(np.asarray(correlation))
    if len(corr) == 0:
        raise ValueError("empty correlation")
    peak_idx = int(np.argmax(corr))
    peak = corr[peak_idx]
    mask = np.ones(len(corr), dtype=bool)
    lo = max(peak_idx - guard, 0)
    hi = min(peak_idx + guard + 1, len(corr))
    mask[lo:hi] = False
    if not mask.any():
        return float("inf")
    side = corr[mask].max()
    if side <= 0:
        return float("inf")
    return float(peak / side)
