"""Envelope detection for non-coherent OOK demodulation."""

from __future__ import annotations

import numpy as np

from repro.dsp.filters import lowpass_fir, fir_filter


def envelope_detect(signal: np.ndarray) -> np.ndarray:
    """Magnitude envelope of a complex baseband signal."""
    return np.abs(np.asarray(signal, dtype=np.complex128))


def rectify_smooth(
    signal: np.ndarray, fs: float, cutoff_hz: float
) -> np.ndarray:
    """Classic envelope detector: rectify then low-pass.

    Args:
        signal: complex (or real) baseband samples.
        fs: sample rate, Hz.
        cutoff_hz: smoothing bandwidth; set to ~2x the symbol rate.

    Returns:
        Real, non-negative smoothed envelope, same length as the input.
    """
    if cutoff_hz <= 0 or cutoff_hz >= fs / 2:
        raise ValueError("cutoff must be in (0, fs/2)")
    env = np.abs(np.asarray(signal))
    taps = lowpass_fir(cutoff_hz, fs, num_taps=65)
    smoothed = fir_filter(env, taps)
    return np.maximum(smoothed.real, 0.0)
