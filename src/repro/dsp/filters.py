"""FIR filter design and application.

Only windowed-sinc designs are used: they are unconditionally stable,
linear-phase, and easy to reason about in tests. All application helpers
compensate the filter group delay so outputs stay aligned with inputs —
essential for the symbol-timing bookkeeping in the receiver.
"""

from __future__ import annotations

import numpy as np


def lowpass_fir(cutoff_hz: float, fs: float, num_taps: int = 101) -> np.ndarray:
    """Design a windowed-sinc (Hamming) low-pass FIR.

    Args:
        cutoff_hz: -6 dB cutoff frequency, Hz.
        fs: sample rate, Hz.
        num_taps: filter length (odd keeps integer group delay).

    Returns:
        Real tap array of length ``num_taps`` with unit DC gain.
    """
    if not 0 < cutoff_hz < fs / 2:
        raise ValueError(f"cutoff {cutoff_hz} Hz outside (0, fs/2)")
    if num_taps < 3:
        raise ValueError("need at least 3 taps")
    if num_taps % 2 == 0:
        num_taps += 1
    n = np.arange(num_taps) - (num_taps - 1) / 2
    fc = cutoff_hz / fs
    taps = 2.0 * fc * np.sinc(2.0 * fc * n)
    taps *= np.hamming(num_taps)
    taps /= taps.sum()
    return taps


def bandpass_fir(
    low_hz: float, high_hz: float, fs: float, num_taps: int = 201
) -> np.ndarray:
    """Design a windowed-sinc band-pass FIR (difference of two low-passes)."""
    if not 0 < low_hz < high_hz < fs / 2:
        raise ValueError("need 0 < low < high < fs/2")
    lp_high = lowpass_fir(high_hz, fs, num_taps)
    lp_low = lowpass_fir(low_hz, fs, num_taps)
    return lp_high - lp_low


def fir_filter(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Filter and compensate group delay (same length as the input)."""
    signal = np.asarray(signal)
    full = np.convolve(signal, taps, mode="full")
    delay = (len(taps) - 1) // 2
    return full[delay : delay + len(signal)]


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average (boxcar), same length as the input."""
    if window < 1:
        raise ValueError("window must be >= 1")
    taps = np.ones(window) / window
    return fir_filter(signal, taps)


def dc_block(signal: np.ndarray, alpha: float = 0.995) -> np.ndarray:
    """One-pole DC blocker ``y[n] = x[n] - x[n-1] + alpha * y[n-1]``.

    Used by the reader to strip the un-modulated carrier leakage (the
    self-interference term) before envelope processing: backscatter data
    lives in the sidebands, the static reflection is at DC in baseband.

    Args:
        signal: complex or real baseband samples.
        alpha: pole location in (0, 1); closer to 1 = narrower notch.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    x = np.asarray(signal, dtype=np.complex128)
    y = np.empty_like(x)
    prev_x = 0.0 + 0.0j
    prev_y = 0.0 + 0.0j
    for i in range(len(x)):
        prev_y = x[i] - prev_x + alpha * prev_y
        prev_x = x[i]
        y[i] = prev_y
    return y if np.iscomplexobj(signal) else y.real


def dc_block_fast(signal: np.ndarray, alpha: float = 0.995) -> np.ndarray:
    """Vectorised DC blocker, identical response to :func:`dc_block`.

    ``y[n] = d[n] + alpha y[n-1]`` with ``d[n] = x[n] - x[n-1]`` is solved
    in closed form via ``scipy.signal.lfilter``-free cumulative products to
    avoid a Python loop on long records.
    """
    x = np.asarray(signal, dtype=np.complex128)
    if len(x) == 0:
        return x.copy()
    d = np.empty_like(x)
    d[0] = x[0]
    d[1:] = x[1:] - x[:-1]
    # y[n] = sum_{k<=n} alpha^(n-k) d[k]; computed stably block-wise.
    y = np.empty_like(x)
    acc = 0.0 + 0.0j
    block = 4096
    n = np.arange(block)
    powers = alpha**n
    for start in range(0, len(x), block):
        chunk = d[start : start + block]
        m = len(chunk)
        # Convolve chunk with the geometric kernel and add carried state.
        conv = np.convolve(chunk, powers[:m])[:m]
        y[start : start + m] = conv + acc * powers[:m] * alpha
        acc = y[start + m - 1]
    return y if np.iscomplexobj(signal) else y.real
