"""FIR filter design and application.

Only windowed-sinc designs are used: they are unconditionally stable,
linear-phase, and easy to reason about in tests. All application helpers
compensate the filter group delay so outputs stay aligned with inputs —
essential for the symbol-timing bookkeeping in the receiver.
"""

from __future__ import annotations

import numpy as np


def lowpass_fir(cutoff_hz: float, fs: float, num_taps: int = 101) -> np.ndarray:
    """Design a windowed-sinc (Hamming) low-pass FIR.

    Args:
        cutoff_hz: -6 dB cutoff frequency, Hz.
        fs: sample rate, Hz.
        num_taps: filter length (odd keeps integer group delay).

    Returns:
        Real tap array of length ``num_taps`` with unit DC gain.
    """
    if not 0 < cutoff_hz < fs / 2:
        raise ValueError(f"cutoff {cutoff_hz} Hz outside (0, fs/2)")
    if num_taps < 3:
        raise ValueError("need at least 3 taps")
    if num_taps % 2 == 0:
        num_taps += 1
    n = np.arange(num_taps) - (num_taps - 1) / 2
    fc = cutoff_hz / fs
    taps = 2.0 * fc * np.sinc(2.0 * fc * n)
    taps *= np.hamming(num_taps)
    taps /= taps.sum()
    return taps


def bandpass_fir(
    low_hz: float, high_hz: float, fs: float, num_taps: int = 201
) -> np.ndarray:
    """Design a windowed-sinc band-pass FIR (difference of two low-passes)."""
    if not 0 < low_hz < high_hz < fs / 2:
        raise ValueError("need 0 < low < high < fs/2")
    lp_high = lowpass_fir(high_hz, fs, num_taps)
    lp_low = lowpass_fir(low_hz, fs, num_taps)
    return lp_high - lp_low


def fir_filter(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Filter and compensate group delay (same length as the input)."""
    signal = np.asarray(signal)
    full = np.convolve(signal, taps, mode="full")
    delay = (len(taps) - 1) // 2
    return full[delay : delay + len(signal)]


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average (boxcar), same length as the input."""
    if window < 1:
        raise ValueError("window must be >= 1")
    taps = np.ones(window) / window
    return fir_filter(signal, taps)


def dc_block(signal: np.ndarray, alpha: float = 0.995) -> np.ndarray:
    """One-pole DC blocker ``y[n] = x[n] - x[n-1] + alpha * y[n-1]``.

    Used by the reader to strip the un-modulated carrier leakage (the
    self-interference term) before envelope processing: backscatter data
    lives in the sidebands, the static reflection is at DC in baseband.

    Args:
        signal: complex or real baseband samples.
        alpha: pole location in (0, 1); closer to 1 = narrower notch.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    x = np.asarray(signal, dtype=np.complex128)
    y = np.empty_like(x)
    prev_x = 0.0 + 0.0j
    prev_y = 0.0 + 0.0j
    for i in range(len(x)):
        prev_y = x[i] - prev_x + alpha * prev_y
        prev_x = x[i]
        y[i] = prev_y
    return y if np.iscomplexobj(signal) else y.real


def dc_block_fast(signal: np.ndarray, alpha: float = 0.995) -> np.ndarray:
    """Vectorised DC blocker, identical response to :func:`dc_block`.

    The recurrence ``y[n] = x[n] - x[n-1] + alpha y[n-1]`` is the IIR
    ``H(z) = (1 - z^-1) / (1 - alpha z^-1)``, run in C by
    ``scipy.signal.lfilter``. The previous block-convolution scheme was
    O(n * block) and dominated the receive chain on campaign profiles;
    this is O(n) and drops the DC blocker out of the top ten.
    """
    x = np.asarray(signal, dtype=np.complex128)
    if len(x) == 0:
        return x.copy()
    from scipy.signal import lfilter

    y = lfilter([1.0, -1.0], [1.0, -alpha], x)
    return y if np.iscomplexobj(signal) else y.real
