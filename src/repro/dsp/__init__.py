"""Signal-processing primitives shared by the PHY and the simulator.

Everything operates on ``numpy`` arrays; signals are complex baseband
unless a function says otherwise.
"""

from repro.dsp.filters import (
    bandpass_fir,
    dc_block,
    fir_filter,
    lowpass_fir,
    moving_average,
)
from repro.dsp.correlate import (
    correlate_full,
    matched_filter,
    normalized_correlation,
    peak_to_sidelobe,
)
from repro.dsp.envelope import envelope_detect, rectify_smooth
from repro.dsp.timing import (
    early_late_offset,
    resample_linear,
    symbol_samples,
    symbol_sum,
)
from repro.dsp.frontend import FrontEnd, clip_level_exceedance
from repro.dsp.noisegen import colored_noise, white_noise
from repro.dsp.metrics import (
    db_to_linear,
    linear_to_db,
    measure_snr_db,
    power,
    rms,
    scale_to_snr,
)

__all__ = [
    "bandpass_fir",
    "dc_block",
    "fir_filter",
    "lowpass_fir",
    "moving_average",
    "correlate_full",
    "matched_filter",
    "normalized_correlation",
    "peak_to_sidelobe",
    "envelope_detect",
    "rectify_smooth",
    "early_late_offset",
    "resample_linear",
    "symbol_samples",
    "symbol_sum",
    "FrontEnd",
    "clip_level_exceedance",
    "colored_noise",
    "white_noise",
    "db_to_linear",
    "linear_to_db",
    "measure_snr_db",
    "power",
    "rms",
    "scale_to_snr",
]
