"""Power/SNR measurement helpers used across the PHY and benchmarks."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def power(signal: np.ndarray) -> float:
    """Mean square value E[|x|^2]."""
    signal = np.asarray(signal)
    if len(signal) == 0:
        return 0.0
    return float(np.mean(np.abs(signal) ** 2))


def rms(signal: np.ndarray) -> float:
    """Root mean square value."""
    return math.sqrt(power(signal))


def linear_to_db(x: float) -> float:
    """Power ratio to dB (floors at -300 dB instead of -inf)."""
    return 10.0 * math.log10(max(x, 1e-30))


def db_to_linear(db: float) -> float:
    """dB to linear power ratio."""
    return 10.0 ** (db / 10.0)


def measure_snr_db(received: np.ndarray, noise_only: np.ndarray) -> float:
    """SNR estimate from a received record and a noise-only record.

    Subtracts the measured noise power from the received power to estimate
    signal power (clamped at a small positive floor).
    """
    p_rx = power(received)
    p_n = power(noise_only)
    p_sig = max(p_rx - p_n, 1e-30)
    return linear_to_db(p_sig / max(p_n, 1e-30))


def scale_to_snr(
    signal: np.ndarray,
    target_snr_db: float,
    noise_power: float,
    reference: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scale ``signal`` so its power is ``target_snr_db`` above a noise power.

    Args:
        signal: samples to scale.
        target_snr_db: desired SNR, dB.
        noise_power: noise mean-square value.
        reference: if given, the power of this array (e.g. the data-bearing
            portion of the waveform) is used to compute the scale instead
            of ``signal`` itself.

    Returns:
        Scaled copy of ``signal``.
    """
    base = power(reference if reference is not None else signal)
    if base <= 0:
        raise ValueError("cannot scale a zero-power signal")
    target_power = noise_power * db_to_linear(target_snr_db)
    return np.asarray(signal) * math.sqrt(target_power / base)
