"""Noise synthesis with prescribed spectra.

The waveform simulator needs ambient noise whose in-band power matches the
Wenz level computed by :mod:`repro.acoustics.noise`, with approximately the
right spectral tilt across the receiver band. Noise is generated in the
frequency domain: complex white Gaussian bins shaped by the target PSD.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np


def white_noise(
    n: int, power: float, rng: Optional[np.random.Generator] = None, complex_: bool = True
) -> np.ndarray:
    """Complex (or real) white Gaussian noise with a given average power.

    Args:
        n: number of samples.
        power: target mean square value E[|x|^2].
        rng: random generator (a fresh default one if omitted).
        complex_: circular complex noise if True, real if False.
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    if rng is None:
        rng = np.random.default_rng()
    if complex_:
        scale = np.sqrt(power / 2.0)
        return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    return np.sqrt(power) * rng.standard_normal(n)


def colored_noise(
    n: int,
    fs: float,
    psd_db_fn: Callable[[float], float],
    carrier_hz: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Complex baseband noise matching an absolute passband PSD.

    The returned samples represent passband noise around ``carrier_hz``
    translated to baseband: bin ``f`` of the output spectrum is shaped by
    ``psd_db_fn(carrier_hz + f)``. Mean-square value equals the PSD
    integrated across the simulated bandwidth ``fs``.

    Args:
        n: number of samples.
        fs: sample rate (simulated bandwidth), Hz.
        psd_db_fn: function mapping absolute frequency (Hz) to PSD in
            dB re 1 uPa^2/Hz (or any consistent unit).
        carrier_hz: centre frequency the baseband is referenced to.
        rng: random generator.

    Returns:
        Complex baseband noise samples of length ``n``.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.complex128)
    if rng is None:
        rng = np.random.default_rng()
    freqs = np.fft.fftfreq(n, d=1.0 / fs)
    abs_freqs = carrier_hz + freqs
    psd_linear = np.array(
        [10.0 ** (psd_db_fn(float(max(f, 1.0))) / 10.0) for f in abs_freqs]
    )
    # Bin amplitude: each FFT bin spans fs/n Hz of PSD; synthesise unit
    # white bins then scale so E[|x[t]|^2] = integral of PSD.
    bins = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    bins *= np.sqrt(psd_linear * fs / 2.0)
    noise = np.fft.ifft(bins) * np.sqrt(n)
    return noise.astype(np.complex128)
