"""Noise synthesis with prescribed spectra.

The waveform simulator needs ambient noise whose in-band power matches the
Wenz level computed by :mod:`repro.acoustics.noise`, with approximately the
right spectral tilt across the receiver band. Noise is generated in the
frequency domain: complex white Gaussian bins shaped by the target PSD.

The PSD shaping amplitude depends only on ``(n, fs, carrier_hz, psd)`` —
it is identical for every trial of a Monte-Carlo point — so it is
memoized here (see :func:`clear_noise_cache`). Campaigns that used to
spend ~80% of each trial re-evaluating the Wenz curves per FFT bin now
pay for the shaping filter once per operating point.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.rng import fallback_rng

_SHAPE_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_SHAPE_CACHE_MAX = 64
_CACHE_ENABLED = True
_FORCE_POINTWISE = False
"""When True, evaluate the PSD per frequency in Python (the pre-cache
seed behaviour) — kept so the perf harness can measure an honest
baseline. See :func:`tools.bench_perf`."""


def set_noise_cache_enabled(enabled: bool) -> bool:
    """Enable/disable the shaping-filter cache; returns the old state."""
    global _CACHE_ENABLED
    old = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return old


def set_pointwise_psd(forced: bool) -> bool:
    """Force per-frequency Python PSD evaluation (baseline emulation)."""
    global _FORCE_POINTWISE
    old = _FORCE_POINTWISE
    _FORCE_POINTWISE = bool(forced)
    return old


def clear_noise_cache() -> None:
    """Explicitly invalidate the memoized PSD shaping filters."""
    _SHAPE_CACHE.clear()


def noise_cache_info() -> Tuple[int, int]:
    """(entries, capacity) of the shaping-filter cache."""
    return len(_SHAPE_CACHE), _SHAPE_CACHE_MAX


def white_noise(
    n: int, power: float, rng: Optional[np.random.Generator] = None, complex_: bool = True
) -> np.ndarray:
    """Complex (or real) white Gaussian noise with a given average power.

    Args:
        n: number of samples.
        power: target mean square value E[|x|^2].
        rng: random generator; thread one from campaign seeds, or the
            documented process-global fallback stream is used
            (:func:`repro.rng.fallback_rng`).
        complex_: circular complex noise if True, real if False.
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    if rng is None:
        rng = fallback_rng()
    if complex_:
        scale = np.sqrt(power / 2.0)
        return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    return np.sqrt(power) * rng.standard_normal(n)


def _psd_fn_cache_key(psd_db_fn: Callable[[float], float]):
    """A hashable identity for a PSD callable, or None when uncachable.

    Bound methods of value-type objects (e.g. ``NoiseConditions.psd_db``)
    compare by instance *identity*, which would defeat the cache across
    equal-but-distinct scenario objects — so key on ``(func, self)``
    where ``self`` hashes by value.
    """
    bound_self = getattr(psd_db_fn, "__self__", None)
    if bound_self is not None:
        try:
            hash(bound_self)
        except TypeError:
            return None
        return (getattr(psd_db_fn, "__func__", psd_db_fn), bound_self)
    try:
        hash(psd_db_fn)
    except TypeError:
        return None
    return psd_db_fn


def _evaluate_psd_db(
    psd_db_fn: Callable[[float], float], abs_freqs: np.ndarray
) -> np.ndarray:
    """PSD in dB at each frequency, vectorized when the callable allows.

    Callables exposing a vectorized form (``psd_db_array`` attribute on
    the bound object, e.g. :class:`repro.acoustics.noise.NoiseConditions`)
    or natively accepting arrays are evaluated in one shot; anything else
    falls back to the per-frequency loop.
    """
    clamped = np.maximum(abs_freqs, 1.0)
    if not _FORCE_POINTWISE:
        bound_self = getattr(psd_db_fn, "__self__", None)
        array_fn = getattr(bound_self, "psd_db_array", None)
        if array_fn is not None:
            return np.asarray(array_fn(clamped), dtype=np.float64)
        try:
            out = np.asarray(psd_db_fn(clamped), dtype=np.float64)
            if out.shape == clamped.shape:
                return out
        except Exception:
            pass
    return np.array([psd_db_fn(float(f)) for f in clamped], dtype=np.float64)


def _shaping_amplitude(
    n: int, fs: float, psd_db_fn: Callable[[float], float], carrier_hz: float
) -> np.ndarray:
    """Per-bin amplitude scale sqrt(PSD * fs / 2), memoized when possible."""
    key = None
    if _CACHE_ENABLED:
        fn_key = _psd_fn_cache_key(psd_db_fn)
        if fn_key is not None:
            key = (fn_key, n, float(fs), float(carrier_hz))
            cached = _SHAPE_CACHE.get(key)
            if cached is not None:
                _SHAPE_CACHE.move_to_end(key)
                return cached
    freqs = np.fft.fftfreq(n, d=1.0 / fs)
    psd_linear = 10.0 ** (_evaluate_psd_db(psd_db_fn, carrier_hz + freqs) / 10.0)
    amplitude = np.sqrt(psd_linear * fs / 2.0)
    amplitude.setflags(write=False)
    if key is not None:
        _SHAPE_CACHE[key] = amplitude
        if len(_SHAPE_CACHE) > _SHAPE_CACHE_MAX:
            _SHAPE_CACHE.popitem(last=False)
    return amplitude


def colored_noise(
    n: int,
    fs: float,
    psd_db_fn: Callable[[float], float],
    carrier_hz: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Complex baseband noise matching an absolute passband PSD.

    The returned samples represent passband noise around ``carrier_hz``
    translated to baseband: bin ``f`` of the output spectrum is shaped by
    ``psd_db_fn(carrier_hz + f)``. Mean-square value equals the PSD
    integrated across the simulated bandwidth ``fs``.

    Args:
        n: number of samples.
        fs: sample rate (simulated bandwidth), Hz.
        psd_db_fn: function mapping absolute frequency (Hz) to PSD in
            dB re 1 uPa^2/Hz (or any consistent unit).
        carrier_hz: centre frequency the baseband is referenced to.
        rng: random generator; thread one from campaign seeds, or the
            documented process-global fallback stream is used
            (:func:`repro.rng.fallback_rng`).

    Returns:
        Complex baseband noise samples of length ``n``.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.complex128)
    if rng is None:
        rng = fallback_rng()
    # Bin amplitude: each FFT bin spans fs/n Hz of PSD; synthesise unit
    # white bins then scale so E[|x[t]|^2] = integral of PSD.
    bins = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    bins *= _shaping_amplitude(n, fs, psd_db_fn, carrier_hz)
    noise = np.fft.ifft(bins) * np.sqrt(n)
    return noise.astype(np.complex128)


def white_noise_batch(
    n: int, power: float, rngs: Sequence[np.random.Generator]
) -> np.ndarray:
    """One row of complex white noise per generator, shape ``(len(rngs), n)``.

    Row ``t`` is drawn from ``rngs[t]`` with the exact draw sequence of
    :func:`white_noise` — the batched campaign engine's bit-identity
    contract rests on each trial's stream seeing the same requests in the
    same order as the per-trial path.
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    rows = np.empty((len(rngs), n), dtype=np.complex128)
    scale = np.sqrt(power / 2.0)
    for t, rng in enumerate(rngs):
        rows[t] = scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    return rows


def colored_noise_batch(
    n: int,
    fs: float,
    psd_db_fn: Callable[[float], float],
    carrier_hz: float,
    rngs: Sequence[np.random.Generator],
) -> np.ndarray:
    """One row of shaped noise per generator, shape ``(len(rngs), n)``.

    The Gaussian bins are drawn per generator (preserving each trial's
    stream order — see :func:`white_noise_batch`), but the PSD shaping
    and the inverse FFT run once over the whole ``(trials, n)`` block.
    Each row is bit-identical to :func:`colored_noise` called with the
    same generator: the shaping multiply is elementwise and a batched
    ``ifft`` along the last axis transforms rows independently.
    """
    if n <= 0:
        return np.zeros((len(rngs), 0), dtype=np.complex128)
    bins = np.empty((len(rngs), n), dtype=np.complex128)
    for t, rng in enumerate(rngs):
        bins[t] = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    bins *= _shaping_amplitude(n, fs, psd_db_fn, carrier_hz)[None, :]
    noise = np.fft.ifft(bins, axis=1) * np.sqrt(n)
    return noise.astype(np.complex128)
