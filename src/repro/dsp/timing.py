"""Symbol-timing utilities for the reader's receive chain."""

from __future__ import annotations

import numpy as np


def symbol_samples(fs: float, symbol_rate: float) -> int:
    """Integer samples per symbol; raises if not an exact multiple.

    The simulator picks ``fs`` as an exact multiple of the symbol rate so
    that symbol boundaries are sample-aligned and tests are deterministic.
    """
    sps = fs / symbol_rate
    rounded = round(sps)
    if abs(sps - rounded) > 1e-6 or rounded < 2:
        raise ValueError(
            f"fs={fs} must be an integer multiple (>=2) of symbol rate {symbol_rate}"
        )
    return int(rounded)


def symbol_sum(signal: np.ndarray, sps: int, offset: int = 0) -> np.ndarray:
    """Integrate-and-dump: sum each symbol period starting at ``offset``.

    Args:
        signal: sample stream (real or complex).
        sps: samples per symbol.
        offset: index of the first symbol boundary.

    Returns:
        One value per complete symbol period.
    """
    if sps < 1:
        raise ValueError("sps must be >= 1")
    usable = signal[offset:]
    n_sym = len(usable) // sps
    if n_sym == 0:
        return np.zeros(0, dtype=signal.dtype if hasattr(signal, "dtype") else float)
    trimmed = np.asarray(usable[: n_sym * sps])
    return trimmed.reshape(n_sym, sps).sum(axis=1)


def early_late_offset(signal: np.ndarray, sps: int, search: int = None) -> int:
    """Pick the symbol-boundary offset maximising eye opening.

    Scans candidate offsets in ``[0, sps)`` and returns the one whose
    integrate-and-dump outputs have the largest variance — transitions
    falling mid-window smear the dump values toward the mean, so the
    variance peaks when the window is aligned with symbols.

    Args:
        signal: envelope or soft-value stream.
        sps: samples per symbol.
        search: number of offsets to try (default: all of ``sps``).

    Returns:
        Best offset in samples.
    """
    if search is None:
        search = sps
    search = min(search, sps)
    env = np.abs(np.asarray(signal, dtype=np.complex128))
    best_offset = 0
    best_metric = -1.0
    for off in range(search):
        dumps = symbol_sum(env, sps, off)
        if len(dumps) < 2:
            continue
        metric = float(np.var(dumps))
        if metric > best_metric:
            best_metric = metric
            best_offset = off
    return best_offset


def resample_linear(signal: np.ndarray, factor: float) -> np.ndarray:
    """Resample by a rate factor with linear interpolation.

    ``factor`` > 1 produces more samples (upsampling). Intended for the
    small (< 0.1%) rate corrections Doppler compensation needs, not for
    large rate changes.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    signal = np.asarray(signal)
    n_out = int(round(len(signal) * factor))
    if n_out <= 1 or len(signal) < 2:
        return signal.copy()
    src = np.linspace(0.0, len(signal) - 1.0, n_out)
    i0 = np.floor(src).astype(int)
    i1 = np.minimum(i0 + 1, len(signal) - 1)
    frac = src - i0
    return (1.0 - frac) * signal[i0] + frac * signal[i1]
