"""E10 — Multi-node network inventory (paper: networked deployment fig).

Backscatter nodes cannot carrier-sense, so the reader runs a slotted
query protocol. Per-node frame-delivery probabilities come from the link
budget at each node's range, composing the whole stack: channel ->
budget -> MAC. Paper shape: inventory time grows modestly with node
count, and far nodes (thin margin) cost retries.
"""

from repro.core import Scenario, default_vab_budget
from repro.link.mac import SlottedAlohaInventory, throughput_efficiency
from repro.link.session import FrameTiming

from _tables import print_table

NODE_COUNTS = [1, 2, 4, 8]
PAYLOAD = 8


def delivery_probability_at(range_m: float) -> float:
    budget = default_vab_budget(Scenario.river(range_m=range_m))
    frame_bits = FrameTiming().frame_config.frame_bits(PAYLOAD)
    return (1.0 - budget.ber(range_m)) ** frame_bits


def run_inventory_study():
    rows = []
    for count in NODE_COUNTS:
        # Nodes spread from 50 m to 290 m down-range.
        ranges = {i + 1: 50.0 + 240.0 * i / max(count - 1, 1) for i in range(count)}
        probs = {n: delivery_probability_at(r) for n, r in ranges.items()}
        result = SlottedAlohaInventory(seed=77, payload_bytes=PAYLOAD).run(
            ranges, delivery_probability=probs
        )
        rows.append(
            {
                "nodes": count,
                "inventoried": len(result.inventoried),
                "rounds": result.rounds,
                "elapsed_s": result.elapsed_s,
                "efficiency": throughput_efficiency(result),
                "read_rate_hz": result.node_read_rate_hz(),
            }
        )
    return rows


def report(rows):
    print_table(
        "E10: slotted inventory of a VAB network (river, nodes 50-290 m)",
        ["nodes", "read", "rounds", "elapsed_s", "efficiency", "reads_per_s"],
        [
            [r["nodes"], r["inventoried"], r["rounds"], f"{r['elapsed_s']:.2f}",
             f"{r['efficiency']:.2f}", f"{r['read_rate_hz']:.2f}"]
            for r in rows
        ],
    )


def test_e10_network(benchmark):
    rows = benchmark(run_inventory_study)
    report(rows)

    # Everyone gets read (all nodes are inside the 337 m envelope).
    for r in rows:
        assert r["inventoried"] == r["nodes"]
    # Inventory time grows with the population.
    elapsed = [r["elapsed_s"] for r in rows]
    assert all(b > a for a, b in zip(elapsed, elapsed[1:]))
    # Efficiency stays in the slotted-ALOHA ballpark.
    for r in rows:
        assert 0.2 <= r["efficiency"] <= 1.0


if __name__ == "__main__":
    report(run_inventory_study())
