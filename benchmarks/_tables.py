"""Shared helpers for the benchmark harness: tables + observed campaigns.

Every benchmark prints the rows/series the corresponding paper figure or
table reports, in a fixed-width layout that survives CI logs. Run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables, or execute
any bench module directly (``python benchmarks/bench_e1_*.py``).

Campaign-driven benchmarks route through :func:`run_bench_campaign`,
which plugs into the observability layer: set ``VAB_OBS_DIR=<dir>`` and
every campaign writes a run manifest + JSONL event log there
(``<label>.manifest.json`` / ``<label>.events.jsonl``), renderable with
``python -m repro obs report <manifest>``. Results are bit-identical
with or without observation.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence


def run_bench_campaign(scenarios, campaign, label: str, workers: int = 1):
    """Run a campaign, emitting obs artifacts when ``VAB_OBS_DIR`` is set."""
    from repro.sim.parallel import run_campaign_parallel, run_observed_campaign

    obs_dir = os.environ.get("VAB_OBS_DIR")
    if not obs_dir:
        return run_campaign_parallel(
            scenarios, campaign, label=label, workers=workers
        )
    out = Path(obs_dir)
    out.mkdir(parents=True, exist_ok=True)
    result, _ = run_observed_campaign(
        scenarios,
        campaign,
        label=label,
        workers=workers,
        manifest_path=out / f"{label}.manifest.json",
        events_path=out / f"{label}.events.jsonl",
    )
    return result


def print_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Print an aligned table with a title banner."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.2e}"
        return f"{cell:.3g}"
    return str(cell)
