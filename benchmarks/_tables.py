"""Shared table-printing helpers for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper figure or
table reports, in a fixed-width layout that survives CI logs. Run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables, or execute
any bench module directly (``python benchmarks/bench_e1_*.py``).
"""

from __future__ import annotations

from typing import List, Sequence


def print_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Print an aligned table with a title banner."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.2e}"
        return f"{cell:.3g}"
    return str(cell)
