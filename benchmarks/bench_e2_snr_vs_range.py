"""E2 — Round-trip SNR vs range in the river (paper: SNR-vs-distance fig).

Analytic link budget plus waveform-simulator spot checks. Paper shape:
SNR decays with the round-trip sonar equation and crosses the BER-1e-3
threshold beyond 300 m.
"""

import numpy as np

from repro.core import Scenario, default_vab_budget
from repro.phy.ber import required_snr_db
from repro.sim.trials import TrialCampaign

from _tables import print_table

RANGES = [25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0]
SPOT_CHECK_RANGES = {100.0, 300.0}


def run_snr_sweep():
    budget = default_vab_budget(Scenario.river())
    predicted = [budget.snr_db(r) for r in RANGES]
    measured = {}
    campaign = TrialCampaign(trials_per_point=8, seed=21)
    for r in SPOT_CHECK_RANGES:
        point = campaign.run_point(Scenario.river(range_m=r))
        measured[r] = point.mean_snr_db
    return budget, predicted, measured


def report(budget, predicted, measured):
    threshold = required_snr_db(1e-3, coherent=True)
    rows = []
    for r, snr in zip(RANGES, predicted):
        meas = f"{measured[r]:.1f}" if r in measured else "-"
        rows.append([f"{r:.0f}", f"{snr:.1f}", meas, "yes" if snr >= threshold else "no"])
    print_table(
        "E2: round-trip SNR vs range, river "
        f"(threshold {threshold:.1f} dB for BER 1e-3)",
        ["range_m", "predicted_snr_db", "measured_snr_db", "link_up"],
        rows,
    )
    print(f"max range at BER 1e-3 (budget): {budget.max_range_m(1e-3):.0f} m")


def test_e2_snr_vs_range(benchmark):
    budget, predicted, measured = benchmark(run_snr_sweep)
    report(budget, predicted, measured)

    # Monotone decay.
    assert all(b < a for a, b in zip(predicted, predicted[1:]))
    # Paper headline: the link is still up at 300 m.
    threshold = required_snr_db(1e-3, coherent=True)
    snr_at_300 = predicted[RANGES.index(300.0)]
    assert snr_at_300 >= threshold
    # Budget and waveform sim agree within implementation loss at 300 m
    # (the waveform chain saturates near its ~30 dB ceiling up close).
    assert abs(measured[300.0] - snr_at_300) < 6.0


if __name__ == "__main__":
    report(*run_snr_sweep())
