"""E17 — Build-tolerance ablation: how precisely must the array be made?

The cross-polarity study (E9) shows what gross wiring errors cost; this
extension quantifies *continuous* imperfection: element-position jitter
over Monte-Carlo build instances, and the resulting fabrication budget.
The answer — millimetres at 18.5 kHz — is why acoustic Van Atta arrays
are buildable in a machine shop while their 24 GHz RF cousins need
photolithography.
"""

from repro.core import Scenario, default_vab_budget
from repro.sim.linkbudget import LinkBudget
from repro.vanatta.array import VanAttaArray
from repro.vanatta.tolerance import monte_carlo_gain, position_tolerance_for_loss

from _tables import print_table

F = 18_500.0
C = 1480.0
SIGMAS_MM = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]


def run_tolerance_study():
    base = VanAttaArray.uniform(4, frequency_hz=F, sound_speed=C)
    rows = []
    scenario = Scenario.river()
    for sigma_mm in SIGMAS_MM:
        stats = monte_carlo_gain(
            base, F, theta_deg=30.0,
            position_sigma_m=sigma_mm * 1e-3, instances=200,
        )
        budget = LinkBudget(
            scenario=scenario, array_gain_db=stats.mean_gain_db
        )
        rows.append(
            {
                "sigma_mm": sigma_mm,
                "mean_gain_db": stats.mean_gain_db,
                "std_db": stats.std_gain_db,
                "worst_db": stats.worst_gain_db,
                "loss_db": stats.loss_vs_ideal_db,
                "range_m": budget.max_range_m(1e-3),
            }
        )
    budget_1db = position_tolerance_for_loss(base, F, max_loss_db=1.0)
    return rows, budget_1db


def report(rows, budget_1db):
    print_table(
        "E17: array gain vs element-position jitter (200 builds each, 30 deg)",
        ["sigma_mm", "mean_gain_db", "std_db", "worst_db", "loss_db", "range_m"],
        [
            [f"{r['sigma_mm']:.1f}", f"{r['mean_gain_db']:.2f}",
             f"{r['std_db']:.2f}", f"{r['worst_db']:.2f}",
             f"{r['loss_db']:.2f}", f"{r['range_m']:.0f}"]
            for r in rows
        ],
    )
    print(f"fabrication budget for <=1 dB mean loss: "
          f"sigma <= {budget_1db * 1e3:.1f} mm "
          f"(lambda = {C / F * 1e3:.0f} mm)")


def test_e17_tolerance(benchmark):
    rows, budget_1db = benchmark.pedantic(run_tolerance_study, rounds=1,
                                          iterations=1)
    report(rows, budget_1db)

    losses = [r["loss_db"] for r in rows]
    ranges = [r["range_m"] for r in rows]
    # Loss is monotone in jitter; range follows inversely.
    assert losses == sorted(losses)
    assert all(b <= a + 1.0 for a, b in zip(ranges, ranges[1:]))
    # Millimetre builds are essentially free; centimetre builds are not.
    assert losses[SIGMAS_MM.index(1.0)] < 0.2
    assert losses[SIGMAS_MM.index(16.0)] > 1.5
    # The fabrication budget is a machinable number.
    assert 2e-3 < budget_1db < 40e-3


if __name__ == "__main__":
    report(*run_tolerance_study())
