"""E15 — Seasonal stratification: where can a node be moored? (extension)

The coastal-monitoring application ultimately has to survive summer.
A warm mixed layer over a thermocline refracts sound downward, creating
geometric shadow zones below the layer. This bench maps reader-to-node
reachability (direct-eigenray existence) over a (range, node-depth) grid
for a winter (well-mixed) and a summer (stratified) profile.

Shape: winter — everything reachable; summer — downward refraction
drives both direct and surface-reflected rays into the bottom, opening a
shadow zone beyond ~1.4 km at every node depth.
"""

import numpy as np

from repro.acoustics.raytrace import in_shadow_zone
from repro.acoustics.ssp import SoundSpeedProfile

from _tables import print_table

READER_DEPTH = 3.0
BOTTOM = 200.0
RANGES = [400.0, 800.0, 1200.0, 1600.0]
NODE_DEPTHS = [6.0, 30.0, 60.0, 120.0]


def run_reachability_grids():
    winter = SoundSpeedProfile.isothermal(1480.0, max_depth_m=BOTTOM)
    summer = SoundSpeedProfile.summer_thermocline(max_depth_m=BOTTOM)
    grids = {}
    for name, ssp in (("winter_mixed", winter), ("summer_stratified", summer)):
        grid = {}
        for r in RANGES:
            for z in NODE_DEPTHS:
                grid[(r, z)] = not in_shadow_zone(
                    ssp, READER_DEPTH, z, r, bottom_depth_m=BOTTOM
                )
        grids[name] = grid
    return grids


def report(grids):
    for name, grid in grids.items():
        rows = []
        for z in NODE_DEPTHS:
            rows.append(
                [f"{z:.0f}"] + [
                    "reachable" if grid[(r, z)] else "SHADOW" for r in RANGES
                ]
            )
        print_table(
            f"E15: direct-ray reachability, {name} "
            f"(reader at {READER_DEPTH:.0f} m; rows node depth, cols range)",
            ["depth\\range"] + [f"{r:.0f}" for r in RANGES],
            rows,
        )
    summer = grids["summer_stratified"]
    shadowed = sum(1 for ok in summer.values() if not ok)
    print(f"summer shadow cells: {shadowed}/{len(summer)}")


def test_e15_thermocline(benchmark):
    grids = benchmark.pedantic(run_reachability_grids, rounds=1, iterations=1)
    report(grids)

    winter = grids["winter_mixed"]
    summer = grids["summer_stratified"]
    # Winter: iso-speed water has no refraction shadows.
    assert all(winter.values())
    # Summer: the shadow zone opens at long range, at every node depth.
    for z in NODE_DEPTHS:
        assert not summer[(1600.0, z)]
    # Close-in nodes stay reachable.
    assert all(summer[(400.0, z)] for z in NODE_DEPTHS)
    assert all(summer[(800.0, z)] for z in NODE_DEPTHS)
    # Stratification only removes reachability, never adds it.
    for key, ok in summer.items():
        assert winter[key] or not ok


if __name__ == "__main__":
    report(run_reachability_grids())
