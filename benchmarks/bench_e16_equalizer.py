"""E16 — Equalised reception in the real multipath channel (extension).

Receiver features under test: the chip-spaced decision-feedback
equaliser (bounded to a physical ~3-chip span) plus the +-4-sample
timing search (multipath superposition pulls the correlation peak off
the true chip boundary).

E11 shows deployment geometries where the image-method channel fades the
link by up to ~9 dB and smears chips across hundreds of microseconds.
This bench re-runs the worst geometries with the chip-spaced
decision-feedback equaliser enabled, measuring how much of the multipath
penalty the receiver wins back.
"""

import dataclasses

from repro.core import Scenario
from repro.geometry.placement import Pose
from repro.geometry.vec3 import Vec3
from repro.phy.receiver import ReaderReceiver
from repro.sim.trials import TrialCampaign

from _tables import print_table

WATER_DEPTH = 6.0
GEOMETRIES = [
    # (range_m, depth_fraction) — includes the E11 fade cells.
    (120.0, 0.25),
    (120.0, 0.5),
    (200.0, 0.25),
    (200.0, 0.75),
    (280.0, 0.5),
]
TRIALS = 8


def multipath_scenario(range_m, z_fraction):
    z = WATER_DEPTH * z_fraction
    base = Scenario.river(range_m=range_m)
    water = dataclasses.replace(base.water, depth_m=WATER_DEPTH)
    return dataclasses.replace(
        base,
        water=water,
        reader=Pose(Vec3(0.0, 0.0, z)),
        node=Pose(Vec3(range_m, 0.0, z), 180.0),
        max_bounces=2,
        name="multipath-eq",
    )


def make_receiver(equalizer_taps, timing_search=0):
    def factory(scenario):
        return ReaderReceiver(
            fs=scenario.fs,
            chip_rate=scenario.chip_rate,
            equalizer_taps=equalizer_taps,
            timing_search=timing_search,
        )
    return factory


def run_equalizer_study():
    rows = []
    for idx, (r, zf) in enumerate(GEOMETRIES):
        sc = multipath_scenario(r, zf)
        plain = TrialCampaign(
            trials_per_point=TRIALS, seed=160,
            receiver_factory=make_receiver(0),
        ).run_point(sc, point_index=idx)
        equalised = TrialCampaign(
            trials_per_point=TRIALS, seed=160,
            receiver_factory=make_receiver(24, timing_search=4),
        ).run_point(sc, point_index=idx)
        rows.append(
            {
                "range_m": r,
                "depth_m": WATER_DEPTH * zf,
                "plain_ok": plain.frame_success_rate,
                "plain_snr": plain.mean_snr_db,
                "eq_ok": equalised.frame_success_rate,
                "eq_snr": equalised.mean_snr_db,
            }
        )
    return rows


def report(rows):
    print_table(
        "E16: DFE in the image-method channel (river, 6 m column)",
        ["range_m", "depth_m", "plain_ok", "plain_snr", "dfe_ok", "dfe_snr"],
        [
            [f"{r['range_m']:.0f}", f"{r['depth_m']:.1f}",
             f"{r['plain_ok']:.2f}", f"{r['plain_snr']:.1f}",
             f"{r['eq_ok']:.2f}", f"{r['eq_snr']:.1f}"]
            for r in rows
        ],
    )


def test_e16_equalizer(benchmark):
    rows = benchmark.pedantic(run_equalizer_study, rounds=1, iterations=1)
    report(rows)

    # The enhanced receiver never hurts frame delivery and recovers SNR
    # in the smeared geometries.
    for r in rows:
        assert r["eq_ok"] >= r["plain_ok"] - 1e-9
    mean_gain = sum(r["eq_snr"] - r["plain_snr"] for r in rows) / len(rows)
    assert mean_gain > 0.2
    # Aggregate delivery strictly improves (the faded cells recover).
    assert sum(r["eq_ok"] for r in rows) > sum(r["plain_ok"] for r in rows) + 0.3


if __name__ == "__main__":
    report(run_equalizer_study())
