"""E18 — System bandwidth: the piezo Q trade (extension).

The transducer's quality factor buys conversion efficiency at the price
of bandwidth, and bandwidth is chip rate. This bench regenerates the
composite system response (two-way element conversion x modulation-depth
degradation off the matching design point) across Q, and the chip rate
each build supports — the design chart behind the PHY's 2 kchip/s
default and the paper's kbps-class throughput.
"""

import numpy as np

from repro.piezo.bvd import BVDModel
from repro.vanatta.array import VanAttaArray
from repro.vanatta.wideband import (
    max_chip_rate_for_bandwidth,
    system_response,
    usable_bandwidth_hz,
)

from _tables import print_table

F0 = 18_500.0
QS = [4.0, 7.0, 12.0, 20.0, 40.0]


def run_bandwidth_study():
    rows = []
    for q in QS:
        bvd = BVDModel.from_resonance(F0, q_factor=q)
        bw3 = usable_bandwidth_hz(bvd, drop_db=3.0)
        bw6 = usable_bandwidth_hz(bvd, drop_db=6.0)
        rows.append(
            {
                "q": q,
                "electrical_bw": bvd.bandwidth_hz(),
                "bw3": bw3,
                "bw6": bw6,
                "chip_rate": max_chip_rate_for_bandwidth(bw6),
            }
        )

    # Shape of the default element's response across the band.
    bvd = BVDModel.vab_element()
    array = VanAttaArray.uniform(4, frequency_hz=F0, sound_speed=1480.0)
    freqs = np.linspace(0.85 * F0, 1.15 * F0, 13)
    response = system_response(array, bvd, freqs, sound_speed=1480.0)
    return rows, response


def report(rows, response):
    print_table(
        "E18: bandwidth and supported chip rate vs element Q",
        ["Q", "electrical_bw_hz", "bw_3dB_hz", "bw_6dB_hz", "chip_rate_cps"],
        [
            [f"{r['q']:.0f}", f"{r['electrical_bw']:.0f}", f"{r['bw3']:.0f}",
             f"{r['bw6']:.0f}", f"{r['chip_rate']:.0f}"]
            for r in rows
        ],
    )
    print_table(
        "E18: composite response of the default (Q=7) element",
        ["freq_hz", "element_db", "depth_db", "total_db"],
        [
            [f"{f:.0f}", f"{e:.1f}", f"{d:.1f}", f"{t:.1f}"]
            for f, e, d, t in zip(
                response.frequencies_hz, response.element_db,
                response.depth_db, response.total_db,
            )
        ],
    )


def test_e18_bandwidth(benchmark):
    rows, response = benchmark(run_bandwidth_study)
    report(rows, response)

    # Bandwidth and chip rate fall monotonically with Q.
    bws = [r["bw6"] for r in rows]
    assert bws == sorted(bws, reverse=True)
    # The default build (Q=7) supports the ~1 kbps-class PHY the paper
    # operates; a Q=40 air-type build would not.
    by_q = {r["q"]: r for r in rows}
    assert by_q[7.0]["chip_rate"] > 900.0
    assert by_q[40.0]["chip_rate"] < 400.0
    # The composite response peaks at 0 dB near resonance and is down
    # several dB at the band edges.
    assert response.total_db.max() == 0.0
    assert response.total_db[0] < -6.0
    assert response.total_db[-1] < -6.0


if __name__ == "__main__":
    report(*run_bandwidth_study())
