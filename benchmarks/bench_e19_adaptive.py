"""E19 — Link adaptation: goodput envelope across range (extension).

Fixed-rate operation either wastes the channel near the reader or dies at
the cliff; per-node mode selection (chip rate + FEC) rides the envelope.
This bench tabulates every fixed mode's goodput across range against the
adaptive policy — the classic rate-adaptation staircase, underwater.
"""

from repro.core import Scenario, default_vab_budget
from repro.link.adaptive import (
    DEFAULT_MODES,
    adaptive_goodput_bps,
    frame_delivery_probability,
    mode_goodput_bps,
    select_mode,
)

from _tables import print_table

RANGES = [50.0, 150.0, 250.0, 330.0, 400.0, 450.0]


def run_adaptation_study():
    budget = default_vab_budget(Scenario.river())
    rows = []
    for r in RANGES:
        row = {"range_m": r}
        for mode in DEFAULT_MODES:
            delivery = frame_delivery_probability(budget, mode, r)
            row[mode.name] = (
                mode_goodput_bps(budget, mode, r) if delivery >= 0.5 else 0.0
            )
        chosen = select_mode(budget, r)
        row["adaptive"] = adaptive_goodput_bps(budget, r)
        row["chosen"] = chosen.name if chosen else "-"
        rows.append(row)
    return rows


def report(rows):
    mode_names = [m.name for m in DEFAULT_MODES]
    print_table(
        "E19: goodput (bps) per fixed mode vs the adaptive policy (river)",
        ["range_m"] + mode_names + ["adaptive", "chosen"],
        [
            [f"{r['range_m']:.0f}"]
            + [f"{r[name]:.0f}" for name in mode_names]
            + [f"{r['adaptive']:.0f}", r["chosen"]]
            for r in rows
        ],
    )


def test_e19_adaptive(benchmark):
    rows = benchmark(run_adaptation_study)
    report(rows)

    mode_names = [m.name for m in DEFAULT_MODES]
    # The adaptive column dominates every fixed column at every range.
    for row in rows:
        for name in mode_names:
            assert row["adaptive"] >= row[name] - 1e-9
    # The choice actually changes across range (a staircase exists).
    choices = {row["chosen"] for row in rows}
    assert len(choices) >= 2
    # Close in, the fast mode is picked; at the cliff something slower
    # or coded takes over while fast delivers zero.
    assert rows[0]["chosen"] == "fast"
    last_usable = [row for row in rows if row["adaptive"] > 0][-1]
    assert last_usable["fast"] == 0.0
    assert last_usable["adaptive"] > 0.0


if __name__ == "__main__":
    report(run_adaptation_study())
