"""E3 — BER vs range across node orientations (the paper's headline figure).

Full Monte-Carlo waveform campaign: every trial synthesises the complete
round trip (carrier, channel, modulated Van Atta reflection, channel,
reader DSP) and is scored bit by bit, exactly how the paper's 1,500+
field trials score BER.

Runs on the parallel campaign engine (``repro.sim.parallel``) — results
are bit-identical to the serial runner for the same seeds, so the table
below is unchanged from the seed benchmark while the campaign executes
across ``E3_WORKERS`` processes (set the env var to 1 to force the
serial path; serial-vs-parallel wall-clocks are recorded in
RESULTS.txt). Set ``VAB_OBS_DIR=<dir>`` to also emit a run manifest +
event log per orientation for ``repro obs report``.

Paper shape: BER stays at/below 1e-3 out to ~300 m, across orientations
from head-on to 60 degrees, with a sharp waterfall beyond.
"""

import os

from repro.core import Scenario
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign

from _tables import print_table, run_bench_campaign

RANGES = [50.0, 150.0, 250.0, 330.0, 450.0, 600.0]
ORIENTATIONS = [0.0, 30.0, 60.0]
TRIALS_PER_POINT = 10
WORKERS = int(os.environ.get("E3_WORKERS", "4"))


def run_ber_campaign(workers: int = WORKERS):
    results = {}
    for offset in ORIENTATIONS:
        scenarios = sweep_range(
            Scenario.river(node_heading_offset_deg=offset), RANGES
        )
        # Re-apply the rotation after the range move.
        scenarios = [s.with_node_rotation(offset) for s in scenarios]
        campaign = TrialCampaign(trials_per_point=TRIALS_PER_POINT, seed=30 + int(offset))
        results[offset] = run_bench_campaign(
            scenarios, campaign, label=f"river-{offset:.0f}deg", workers=workers
        )
    return results


def report(results):
    rows = []
    for offset, campaign in results.items():
        for p in campaign.points:
            rows.append(
                [
                    f"{offset:.0f}",
                    f"{p.range_m:.0f}",
                    p.trials,
                    f"{p.ber:.4f}",
                    f"{p.frame_success_rate:.2f}",
                    f"{p.detection_rate:.2f}",
                ]
            )
    print_table(
        "E3: BER vs range across orientations (river, waveform Monte-Carlo)",
        ["orient_deg", "range_m", "trials", "ber", "frame_ok", "detected"],
        rows,
    )
    for offset, campaign in results.items():
        print(
            f"orientation {offset:>4.0f} deg: max range at BER<=1e-3 "
            f"~ {campaign.max_range_at_ber(1e-3):.0f} m"
        )


def test_e3_ber_vs_range(benchmark):
    results = benchmark.pedantic(run_ber_campaign, rounds=1, iterations=1)
    report(results)

    for offset, campaign in results.items():
        bers = [p.ber for p in campaign.points]
        # Solid at short range, dead far out: the waterfall exists.
        assert bers[0] == 0.0, f"short range should be clean at {offset} deg"
        assert bers[-1] > 1e-2, f"600 m should be beyond the cliff at {offset} deg"
        # Paper headline: the link extends past 250 m at every orientation.
        assert campaign.max_range_at_ber(1e-3) >= 250.0


if __name__ == "__main__":
    report(run_ber_campaign())
