"""E1 — Retrodirectivity pattern (paper: backscatter SNR vs incidence angle).

Regenerates the paper's core microbenchmark: monostatic backscatter gain
versus incidence angle for (a) the Van Atta array, (b) a conventional
self-reflecting array of the same aperture, and (c) a single element.

Paper shape: the Van Atta curve is nearly flat across +-60 degrees while
the conventional array collapses off broadside — that contrast is the
reason VAB reaches long range *across orientations*.
"""

import numpy as np

from repro.baselines.conventional_array import conventional_monostatic_gain_db
from repro.vanatta.array import VanAttaArray
from repro.vanatta.retrodirective import monostatic_pattern_db

from _tables import print_table

F = 18_500.0
C = 1480.0
ANGLES = np.arange(-60.0, 61.0, 10.0)


def run_pattern_sweep():
    """Compute the three pattern curves of the figure."""
    arr = VanAttaArray.uniform(4, frequency_hz=F, sound_speed=C)
    single = VanAttaArray.uniform(1, frequency_hz=F, sound_speed=C)
    van_atta = monostatic_pattern_db(arr, F, ANGLES, C)
    conventional = np.array(
        [conventional_monostatic_gain_db(arr.positions_m, F, t, C) for t in ANGLES]
    )
    one_element = monostatic_pattern_db(single, F, ANGLES, C)
    return van_atta, conventional, one_element


def report(van_atta, conventional, one_element):
    rows = [
        [f"{a:+.0f}", f"{v:.1f}", f"{c:.1f}", f"{s:.1f}"]
        for a, v, c, s in zip(ANGLES, van_atta, conventional, one_element)
    ]
    print_table(
        "E1: monostatic gain vs incidence angle (dB re 1 ideal element)",
        ["angle_deg", "van_atta", "conventional", "single"],
        rows,
    )


def test_e1_retrodirectivity(benchmark):
    van_atta, conventional, one_element = benchmark(run_pattern_sweep)
    report(van_atta, conventional, one_element)

    # Shape checks (the paper's qualitative claims):
    # 1. Van Atta is nearly flat across +-60 degrees.
    assert van_atta.max() - van_atta.min() < 8.0
    # 2. The conventional array swings wildly.
    assert conventional.max() - conventional.min() > 20.0
    # 3. Van Atta beats the single element everywhere by ~array gain.
    assert np.all(van_atta > one_element + 6.0)
    # 4. At broadside both arrays coincide.
    mid = len(ANGLES) // 2
    assert abs(van_atta[mid] - conventional[mid]) < 1.0


if __name__ == "__main__":
    report(*run_pattern_sweep())
