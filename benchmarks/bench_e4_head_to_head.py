"""E4 — Head-to-head against the prior state of the art (paper: 15x table).

Same reader power, same throughput, same water, same noise: only the node
architecture and its first-generation reader deficits differ. The paper
reports a 15x communication-range improvement at BER 1e-3; this bench
regenerates the comparison from both the analytic budget and waveform
spot checks on each side of each system's cliff.
"""

from repro.baselines.pab import PAB_SI_SUPPRESSION_DB, pab_link_budget, pab_node
from repro.core import Scenario, default_vab_budget
from repro.sim.trials import TrialCampaign

from _tables import print_table

TARGET_BER = 1e-3


def run_head_to_head():
    sc = Scenario.river()
    vab_budget = default_vab_budget(sc)
    pab_budget = pab_link_budget(sc)
    vab_range = vab_budget.max_range_m(TARGET_BER)
    pab_range = pab_budget.max_range_m(TARGET_BER)

    # Waveform spot checks: each system inside and beyond its own cliff.
    checks = {}
    vab_campaign = TrialCampaign(trials_per_point=8, seed=44)
    pab_campaign = TrialCampaign(
        trials_per_point=8, seed=45, node_factory=pab_node,
        si_suppression_db=PAB_SI_SUPPRESSION_DB,
    )
    checks["vab_inside"] = vab_campaign.run_point(
        Scenario.river(range_m=round(vab_range * 0.8))
    )
    checks["vab_beyond"] = vab_campaign.run_point(
        Scenario.river(range_m=round(vab_range * 1.8))
    )
    checks["pab_inside"] = pab_campaign.run_point(
        Scenario.river(range_m=max(round(pab_range * 0.6), 2))
    )
    checks["pab_beyond"] = pab_campaign.run_point(
        Scenario.river(range_m=round(pab_range * 3.0))
    )
    return vab_budget, pab_budget, vab_range, pab_range, checks


def report(vab_budget, pab_budget, vab_range, pab_range, checks):
    rows = [
        [
            "VAB (this paper)",
            f"{vab_budget.array_gain_db:.1f}",
            f"{vab_budget.modulation_depth:.2f}",
            "coherent",
            f"{vab_range:.0f}",
        ],
        [
            "PAB (prior SOTA)",
            f"{pab_budget.array_gain_db:.1f}",
            f"{pab_budget.modulation_depth:.2f}",
            "noncoherent",
            f"{pab_range:.0f}",
        ],
    ]
    print_table(
        "E4: head-to-head at equal power and throughput (river, BER 1e-3)",
        ["system", "array_gain_db", "mod_depth", "detection", "max_range_m"],
        rows,
    )
    print(f"range improvement: {vab_range / pab_range:.1f}x (paper: 15x)")
    spot = [
        [name, f"{p.range_m:.0f}", f"{p.frame_success_rate:.2f}", f"{p.ber:.3f}"]
        for name, p in checks.items()
    ]
    print_table(
        "E4: waveform spot checks",
        ["check", "range_m", "frame_ok", "ber"],
        spot,
    )


def test_e4_head_to_head(benchmark):
    vab_budget, pab_budget, vab_range, pab_range, checks = benchmark.pedantic(
        run_head_to_head, rounds=1, iterations=1
    )
    report(vab_budget, pab_budget, vab_range, pab_range, checks)

    ratio = vab_range / pab_range
    # The paper's 15x claim: allow a band around it (simulated substrate).
    assert 10.0 < ratio < 22.0, f"range ratio {ratio:.1f}x out of band"
    assert vab_range > 300.0
    assert pab_range < 40.0
    # Waveform checks agree with each budget's cliff.
    assert checks["vab_inside"].frame_success_rate >= 0.9
    assert checks["vab_beyond"].frame_success_rate <= 0.2
    assert checks["pab_inside"].frame_success_rate >= 0.9
    assert checks["pab_beyond"].frame_success_rate <= 0.2


if __name__ == "__main__":
    report(*run_head_to_head())
