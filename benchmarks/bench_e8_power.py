"""E8 — Node power budget (paper: ultra-low-power table).

Regenerates (a) the per-component consumption breakdown of the
battery-free node and (b) the harvested-vs-consumed crossover: out to
what range does the reader's own carrier keep the node alive, and how
does duty cycling stretch it.
"""

from repro.core import Scenario, default_vab_budget
from repro.vanatta.node import VanAttaNode

from _tables import print_table

BITRATE = 1_000.0
RANGES = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0]


def run_power_study():
    node = VanAttaNode()
    sc = Scenario.river()
    budget = default_vab_budget(sc)
    breakdown = node.budget.breakdown(BITRATE)
    total = node.average_power_w(BITRATE)

    harvest_rows = []
    for r in RANGES:
        incident = budget.incident_level_db(r)
        harvested = node.harvested_power_w(incident, sc.carrier_hz)
        harvest_rows.append(
            {
                "range_m": r,
                "incident_db": incident,
                "harvested_uw": harvested * 1e6,
                "consumed_uw": total * 1e6,
                "sustainable": harvested >= total,
            }
        )
    return node, breakdown, total, harvest_rows


def report(node, breakdown, total, harvest_rows):
    rows = [[k, f"{v * 1e6:.3f}"] for k, v in breakdown.items()]
    rows.append(["switch gate drive",
                 f"{(node.average_power_w(BITRATE) - node.budget.average_power_w(BITRATE)) * 1e6:.3f}"])
    rows.append(["TOTAL", f"{total * 1e6:.3f}"])
    print_table(
        f"E8: node consumption breakdown at {BITRATE:.0f} bps "
        f"(duty cycle {node.budget.duty_cycle:.0%})",
        ["component", "avg_power_uW"],
        rows,
    )
    print_table(
        "E8: harvested vs consumed across range (reader carrier as source)",
        ["range_m", "incident_dB", "harvested_uW", "consumed_uW", "self_sustaining"],
        [
            [f"{r['range_m']:.0f}", f"{r['incident_db']:.1f}",
             f"{r['harvested_uw']:.3f}", f"{r['consumed_uw']:.3f}",
             "yes" if r["sustainable"] else "no"]
            for r in harvest_rows
        ],
    )


def test_e8_power(benchmark):
    node, breakdown, total, harvest_rows = benchmark(run_power_study)
    report(node, breakdown, total, harvest_rows)

    # Ultra-low power: single-digit microwatts average.
    assert total < 10e-6
    # Harvesting decays monotonically with range.
    harvested = [r["harvested_uw"] for r in harvest_rows]
    assert all(b <= a for a, b in zip(harvested, harvested[1:]))
    # Self-sustaining near the reader, not at the far end of the sweep.
    assert harvest_rows[0]["sustainable"]
    assert not harvest_rows[-1]["sustainable"]
    # The breakdown sums to the MCU budget (gate drive accounted apart).
    assert sum(breakdown.values()) <= total


if __name__ == "__main__":
    report(*run_power_study())
