"""E5 — Scaling with array size (paper: SNR/range vs number of elements).

Paper shape: retrodirective field gain grows as 20 log10 N (6 dB per
doubling), and each 6 dB buys a predictable range extension through the
round-trip sonar equation — with diminishing absolute returns as
absorption accumulates.
"""

from repro.core import Scenario, default_vab_budget
from repro.vanatta.scaling import peak_gain_db, simulated_gain_curve_db

from _tables import print_table

ELEMENT_COUNTS = [1, 2, 4, 8, 16]


def run_scaling_sweep():
    sc = Scenario.river()
    # Field-scored gain for every count through the batched engine —
    # one kernel evaluation per count, no per-angle loops.
    sim_gains = simulated_gain_curve_db(ELEMENT_COUNTS)
    rows = []
    for n, sim_gain in zip(ELEMENT_COUNTS, sim_gains):
        budget = default_vab_budget(sc, num_elements=n)
        rows.append(
            {
                "n": n,
                "ideal_gain_db": peak_gain_db(n),
                "sim_gain_db": float(sim_gain),
                "model_gain_db": budget.array_gain_db,
                "snr_100m_db": budget.snr_db(100.0),
                "max_range_m": budget.max_range_m(1e-3),
            }
        )
    return rows


def report(rows):
    print_table(
        "E5: aperture scaling (river link budget)",
        ["elements", "ideal_gain_db", "sim_gain_db", "model_gain_db",
         "snr@100m_db", "max_range_m"],
        [
            [r["n"], f"{r['ideal_gain_db']:.1f}", f"{r['sim_gain_db']:.1f}",
             f"{r['model_gain_db']:.1f}",
             f"{r['snr_100m_db']:.1f}", f"{r['max_range_m']:.0f}"]
            for r in rows
        ],
    )


def test_e5_scaling(benchmark):
    rows = benchmark(run_scaling_sweep)
    report(rows)

    # The field-simulated curve reproduces the ideal 20 log10 N law.
    for r in rows:
        assert r["sim_gain_db"] == pytest.approx(r["ideal_gain_db"], abs=1e-6)
    gains = [r["model_gain_db"] for r in rows]
    ranges = [r["max_range_m"] for r in rows]
    # 6 dB per doubling (minus fixed line loss, identical across N).
    for i in range(len(rows) - 1):
        assert gains[i + 1] - gains[i] == pytest.approx(6.02, abs=0.1)
    # Range grows monotonically but with diminishing ratio (absorption).
    assert all(b > a for a, b in zip(ranges, ranges[1:]))
    ratios = [b / a for a, b in zip(ranges, ranges[1:])]
    assert all(r2 <= r1 + 0.02 for r1, r2 in zip(ratios, ratios[1:]))


import pytest  # noqa: E402  (used inside the test body)

if __name__ == "__main__":
    report(run_scaling_sweep())
