"""E6 — Ocean evaluation (paper: first experimental ocean validation).

Waveform campaigns in the coastal-ocean preset across sea states: salt
water absorbs more, the wind-driven noise floor is higher, and platform
drift plus surface motion smear the phase. Paper shape: the link works in
the ocean with graceful degradation relative to the river, and worsening
sea state costs range.
"""

from repro.core import Scenario, default_vab_budget
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign

from _tables import print_table, run_bench_campaign

RANGES = [30.0, 80.0, 150.0, 220.0, 300.0]
SEA_STATES = [1, 3, 5]
TRIALS = 8


def run_ocean_campaign():
    campaigns = {}
    for ss in SEA_STATES:
        scenarios = sweep_range(Scenario.ocean(sea_state=ss), RANGES)
        campaigns[ss] = run_bench_campaign(
            scenarios,
            TrialCampaign(trials_per_point=TRIALS, seed=60 + ss),
            label=f"ocean-ss{ss}",
        )
    budget_ranges = {
        ss: default_vab_budget(Scenario.ocean(sea_state=ss)).max_range_m(1e-3)
        for ss in SEA_STATES
    }
    river_range = default_vab_budget(Scenario.river()).max_range_m(1e-3)
    return campaigns, budget_ranges, river_range


def report(campaigns, budget_ranges, river_range):
    rows = []
    for ss, campaign in campaigns.items():
        for p in campaign.points:
            rows.append(
                [ss, f"{p.range_m:.0f}", f"{p.ber:.4f}",
                 f"{p.frame_success_rate:.2f}", f"{p.mean_snr_db:.1f}"]
            )
    print_table(
        "E6: ocean BER vs range across sea states (waveform Monte-Carlo)",
        ["sea_state", "range_m", "ber", "frame_ok", "snr_db"],
        rows,
    )
    for ss, r in budget_ranges.items():
        print(f"sea state {ss}: budget max range {r:.0f} m")
    print(f"river reference: {river_range:.0f} m")


def test_e6_ocean(benchmark):
    campaigns, budget_ranges, river_range = benchmark.pedantic(
        run_ocean_campaign, rounds=1, iterations=1
    )
    report(campaigns, budget_ranges, river_range)

    # The ocean link works (the paper's first-validation claim) ...
    assert campaigns[1].points[0].frame_success_rate == 1.0
    assert campaigns[3].max_range_at_ber(1e-3) >= 80.0
    # ... but is shorter than the river and degrades with sea state.
    ranges = [budget_ranges[ss] for ss in SEA_STATES]
    assert all(b < a for a, b in zip(ranges, ranges[1:]))
    assert ranges[0] < river_range


if __name__ == "__main__":
    report(*run_ocean_campaign())
