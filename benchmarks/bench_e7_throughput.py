"""E7 — Throughput vs range (paper: rate–range trade-off figure).

Two effects set the curve: (i) a higher chip rate widens the noise
bandwidth, pulling the BER cliff closer; (ii) at long range the acoustic
round-trip dominates the exchange, capping goodput regardless of PHY
rate. The bench sweeps both axes and also regenerates the paper's
"same throughput as prior work" operating point.
"""

import dataclasses

from repro.core import Scenario, default_vab_budget
from repro.link.session import FrameTiming, QuerySession
from repro.phy.ber import required_snr_db

from _tables import print_table

CHIP_RATES = [500.0, 1_000.0, 2_000.0, 4_000.0]
RANGES = [50.0, 150.0, 300.0, 450.0]
PAYLOAD = 8


def run_throughput_sweep():
    rows = []
    for chip_rate in CHIP_RATES:
        sc = dataclasses.replace(Scenario.river(), chip_rate=chip_rate)
        budget = default_vab_budget(sc)
        timing = FrameTiming(chip_rate=chip_rate)
        for r in RANGES:
            frame_ber = budget.ber(r)
            frame_bits = timing.frame_config.frame_bits(PAYLOAD)
            p_frame = (1.0 - frame_ber) ** frame_bits
            session = QuerySession(
                timing=timing,
                payload_bytes=PAYLOAD,
                frame_success_probability=p_frame,
            )
            rows.append(
                {
                    "chip_rate": chip_rate,
                    "range_m": r,
                    "uplink_bps": session.uplink_bitrate_bps(),
                    "snr_db": budget.snr_db(r),
                    "p_frame": p_frame,
                    "goodput_bps": session.goodput_bps(r, sc.water.sound_speed),
                }
            )
    return rows


def report(rows):
    print_table(
        "E7: goodput vs range and chip rate (river)",
        ["chip_rate", "range_m", "uplink_bps", "snr_db", "p_frame", "goodput_bps"],
        [
            [f"{r['chip_rate']:.0f}", f"{r['range_m']:.0f}",
             f"{r['uplink_bps']:.0f}", f"{r['snr_db']:.1f}",
             f"{r['p_frame']:.3f}", f"{r['goodput_bps']:.1f}"]
            for r in rows
        ],
    )


def test_e7_throughput(benchmark):
    rows = benchmark(run_throughput_sweep)
    report(rows)

    by_rate = {cr: [r for r in rows if r["chip_rate"] == cr] for cr in CHIP_RATES}
    # Higher chip rate -> less SNR at the same range.
    for r_idx in range(len(RANGES)):
        snrs = [by_rate[cr][r_idx]["snr_db"] for cr in CHIP_RATES]
        assert all(b < a for a, b in zip(snrs, snrs[1:]))
    # At short range the fastest PHY wins on goodput.
    short = [by_rate[cr][0]["goodput_bps"] for cr in CHIP_RATES]
    assert short[-1] > short[0]
    # At 450 m the fast PHYs have fallen off their cliff while the slow
    # one still delivers: a rate-range crossover exists.
    far = {cr: by_rate[cr][-1]["goodput_bps"] for cr in CHIP_RATES}
    assert far[500.0] > far[4_000.0]
    # Goodput never exceeds the raw uplink bitrate.
    for r in rows:
        assert r["goodput_bps"] <= r["uplink_bps"] + 1e-9


if __name__ == "__main__":
    report(run_throughput_sweep())
