"""E9 — Design ablations (paper: cross-polarity pairing & switch design).

Two knobs the paper co-designs:

1. **Pair wiring.** Cross-polarity pairing co-phases all pair lines; the
   naive wiring leaves alternating pairs pi out of phase and destroys the
   coherent sum.
2. **Modulation termination.** The switch's OFF-state load sets the
   ON/OFF reflection contrast — the budget's modulation depth. Sweeping
   the termination from conjugate match (ideal) to a pure resistor shows
   how much range the matching network is worth.
"""

import numpy as np

from repro.core import Scenario
from repro.piezo.bvd import BVDModel
from repro.piezo.matching import modulation_depth_for
from repro.piezo.transducer import Transducer
from repro.sim.linkbudget import LinkBudget
from repro.vanatta.array import VanAttaArray
from repro.vanatta.polarity import PairingScheme
from repro.vanatta.retrodirective import monostatic_gain_db

from _tables import print_table

F = 18_500.0
C = 1480.0


def run_pairing_ablation():
    base = VanAttaArray.uniform(4, frequency_hz=F, sound_speed=C)
    rows = []
    for scheme in PairingScheme:
        arr = VanAttaArray(
            positions_m=base.positions_m,
            pairs=base.pairs,
            element=Transducer(),
            pairing=scheme,
        )
        gains = [monostatic_gain_db(arr, F, t, C) for t in (0.0, 30.0, 60.0)]
        rows.append({"scheme": scheme.value, "gains": gains})
    return rows


def run_termination_sweep():
    bvd = BVDModel.vab_element()
    f = bvd.series_resonance_hz
    sc = Scenario.river()
    rows = []
    terminations = [
        ("conjugate match (paper)", None),
        ("50 ohm resistor", complex(50.0, 0.0)),
        ("500 ohm resistor", complex(500.0, 0.0)),
        ("open (no termination)", complex(1e9, 0.0)),
    ]
    for name, z_off in terminations:
        from repro.piezo.matching import power_wave_reflection, reflection_states

        g_on, g_off = reflection_states(bvd, f, z_off=z_off)
        depth = max(min(abs(g_on - g_off) / 2.0, 1.0), 1e-3)
        harvest_fraction = max(0.0, 1.0 - abs(g_off) ** 2)
        budget = LinkBudget(scenario=sc, array_gain_db=11.5, modulation_depth=depth)
        rows.append(
            {
                "name": name,
                "depth": depth,
                "harvest_fraction": harvest_fraction,
                "range_m": budget.max_range_m(1e-3),
            }
        )
    return rows


def report(pairing_rows, termination_rows):
    print_table(
        "E9a: pair-wiring ablation (monostatic gain, dB)",
        ["wiring", "gain@0deg", "gain@30deg", "gain@60deg"],
        [
            [r["scheme"]] + [f"{g:.1f}" for g in r["gains"]]
            for r in pairing_rows
        ],
    )
    print_table(
        "E9b: switch termination: contrast vs OFF-state harvesting",
        ["off_state_termination", "mod_depth", "harvest_frac", "max_range_m"],
        [
            [r["name"], f"{r['depth']:.3f}", f"{r['harvest_fraction']:.2f}",
             f"{r['range_m']:.0f}"]
            for r in termination_rows
        ],
    )
    print(
        "note: open/short keying maximises contrast but harvests nothing in\n"
        "the OFF state; the paper's conjugate match trades ~6 dB of sideband\n"
        "for a node that can power itself."
    )


def test_e9_ablation(benchmark):
    pairing_rows, termination_rows = benchmark(
        lambda: (run_pairing_ablation(), run_termination_sweep())
    )
    report(pairing_rows, termination_rows)

    by_scheme = {r["scheme"]: r["gains"] for r in pairing_rows}
    # Cross-polarity dominates the alternatives at every angle.
    for scheme in ("direct", "random"):
        for g_good, g_bad in zip(by_scheme["cross_polarity"], by_scheme[scheme]):
            assert g_good > g_bad + 3.0
    # The co-design trade-off: the conjugate match is the only
    # termination that harvests (nearly) all OFF-state energy, while
    # keeping at least half the ideal open/short contrast.
    match = termination_rows[0]
    open_term = termination_rows[-1]
    assert match["harvest_fraction"] > 0.95
    assert open_term["harvest_fraction"] < 0.1
    assert match["depth"] >= 0.45
    # Among harvest-capable terminations (>50% captured), match wins range.
    harvesters = [r for r in termination_rows if r["harvest_fraction"] > 0.5]
    assert match["range_m"] == max(r["range_m"] for r in harvesters)


if __name__ == "__main__":
    report(run_pairing_ablation(), run_termination_sweep())
