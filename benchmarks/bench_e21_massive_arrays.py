"""E21 — Massive arrays and programmable surfaces (beyond the paper).

The paper's prototype stops at 4 elements; the batched array-factor
engine makes thousands tractable. This experiment sweeps element count
from 4 to 4096 and reports, per count:

* simulated monostatic gain (field-scored through the engine) against
  the ideal ``20 log10 N`` rule,
* spatial degrees of freedom toward a fixed multi-reader constellation
  (how many readers a programmable surface can serve at once), and
* waterfilled sum capacity of the surface-to-readers MIMO channel.

The gain column is the E5 scaling story pushed three orders of
magnitude further; the DoF/capacity columns are the RIS upside — a
passive retrodirective sheet only talks back along the incidence
direction, while a programmable one multiplexes spatially separated
readers until the aperture runs out of resolvable directions.
"""

import numpy as np
import pytest

from repro.vanatta.ris import (
    PhaseSurface,
    reader_steering_matrix,
    spatial_dof,
    sum_capacity_bits,
)
from repro.vanatta.scaling import peak_gain_db, simulated_gain_curve_db

from _tables import print_table

ELEMENT_COUNTS = [4, 16, 64, 256, 1024, 4096]
FREQUENCY_HZ = 18_500.0
READER_DIRECTIONS_DEG = [(-40.0, -12.0), (-15.0, 8.0), (10.0, -5.0), (35.0, 15.0)]
SNR_DB = 10.0


def _surface_positions(num_elements: int) -> np.ndarray:
    """A near-square surface of ``num_elements`` at half-wavelength pitch."""
    num_u = int(np.floor(np.sqrt(num_elements)))
    while num_elements % num_u:
        num_u -= 1
    surface = PhaseSurface.uniform(
        num_u=num_u,
        num_w=num_elements // num_u,
        frequency_hz=FREQUENCY_HZ,
    )
    return surface.positions_m


def run_massive_sweep():
    gains = simulated_gain_curve_db(ELEMENT_COUNTS, frequency_hz=FREQUENCY_HZ)
    rows = []
    for n, gain_db in zip(ELEMENT_COUNTS, gains):
        steering = reader_steering_matrix(
            _surface_positions(n), FREQUENCY_HZ, READER_DIRECTIONS_DEG
        )
        rows.append(
            {
                "n": n,
                "ideal_gain_db": peak_gain_db(n),
                "sim_gain_db": float(gain_db),
                "dof": spatial_dof(steering),
                "capacity_bits": sum_capacity_bits(steering, snr_db=SNR_DB),
            }
        )
    return rows


def report(rows):
    print_table(
        "E21: massive arrays and multi-reader multiplexing",
        ["elements", "ideal_gain_db", "sim_gain_db", "readers_dof",
         "sum_capacity_b/s/Hz"],
        [
            [r["n"], f"{r['ideal_gain_db']:.1f}", f"{r['sim_gain_db']:.1f}",
             r["dof"], f"{r['capacity_bits']:.2f}"]
            for r in rows
        ],
    )


def test_e21_massive_arrays(benchmark):
    rows = benchmark(run_massive_sweep)
    report(rows)

    # The field-simulated gain reproduces the 20 log10 N law at every
    # count — including 4096 elements, far beyond per-pair-loop reach.
    for r in rows:
        assert r["sim_gain_db"] == pytest.approx(r["ideal_gain_db"], abs=1e-6)
    # Spatial multiplexing saturates at the reader count once the
    # aperture resolves the constellation, and never exceeds it.
    dofs = [r["dof"] for r in rows]
    assert all(d <= len(READER_DIRECTIONS_DEG) for d in dofs)
    assert dofs[-1] == len(READER_DIRECTIONS_DEG)
    assert all(b >= a for a, b in zip(dofs, dofs[1:]))
    # Sum capacity is monotone in aperture for a fixed constellation.
    caps = [r["capacity_bits"] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(caps, caps[1:]))


if __name__ == "__main__":
    report(run_massive_sweep())
