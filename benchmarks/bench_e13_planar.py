"""E13 — Planar (2-D) Van Atta: full-orientation coverage (extension).

A Van Atta pairs elements through the array *centre*. On a planar grid
there is a tempting shortcut — pair only across rows (each element with
its horizontal mirror) — which conjugates the azimuth phase but *repeats*
the elevation phase. The result retrodirects in azimuth and decoheres the
moment the node tilts. The correct point-mirror pairing conjugates both
axes and holds the full gain over the whole orientation grid.

This bench maps monostatic gain over (azimuth, elevation) for both
wirings of the same 2x2 grid.
"""

import numpy as np

from repro.piezo.transducer import Transducer
from repro.vanatta.fastfield import ArrayFactorEngine
from repro.vanatta.planar import (
    PlanarVanAttaArray,
    grid_positions,
    point_mirror_pairs,
)

from _tables import print_table

F = 18_500.0
C = 1500.0
ANGLES = [-45.0, -20.0, 0.0, 20.0, 45.0]


def build_arrays():
    positions = grid_positions(2, 2, C / F / 2.0)
    omni = Transducer(elevation_rolloff_exponent=0.0)
    point = PlanarVanAttaArray(
        positions_m=positions,
        pairs=tuple(point_mirror_pairs(positions)),
        element=omni,
        line_loss_db=0.0,
    )
    # Row-only pairing: mirror in u, same w. grid_positions with 'ij'
    # indexing orders elements (u0,w0),(u0,w1),(u1,w0),(u1,w1).
    row = PlanarVanAttaArray(
        positions_m=positions,
        pairs=((0, 2), (1, 3)),
        element=omni,
        line_loss_db=0.0,
    )
    return {"point_mirror_2x2": point, "row_paired_2x2": row}


def run_orientation_grid():
    # One batched engine call per wiring covers the whole (az, el) grid.
    grids = {}
    for name, arr in build_arrays().items():
        engine = ArrayFactorEngine.from_planar(arr)
        grids[name] = engine.planar_monostatic_grid_db(F, ANGLES, ANGLES, C)
    return grids


def report(grids):
    for name, grid in grids.items():
        rows = [
            [f"{az:+.0f}"] + [f"{grid[i, j]:.1f}" for j in range(len(ANGLES))]
            for i, az in enumerate(ANGLES)
        ]
        print_table(
            f"E13: monostatic gain grid, {name} (rows az, cols el, dB)",
            ["az\\el"] + [f"{e:+.0f}" for e in ANGLES],
            rows,
        )
        print(f"{name}: worst case {grid.min():.1f} dB, "
              f"spread {grid.max() - grid.min():.1f} dB")


def test_e13_planar(benchmark):
    grids = benchmark(run_orientation_grid)
    report(grids)

    point = grids["point_mirror_2x2"]
    row = grids["row_paired_2x2"]
    el0 = ANGLES.index(0.0)
    # Point-mirror: full 4-element gain (12.04 dB) everywhere.
    assert point.min() > 11.9
    assert point.max() - point.min() < 0.2
    # Row pairing matches at zero elevation ...
    np.testing.assert_allclose(row[:, el0], point[:, el0], atol=0.1)
    # ... but decoheres once the node tilts (4-7 dB across the grid).
    tilted = [i for i, a in enumerate(ANGLES) if a != 0.0]
    losses = point[:, tilted] - row[:, tilted]
    assert losses.min() > 4.0
    assert losses.max() > 6.0


if __name__ == "__main__":
    report(run_orientation_grid())
