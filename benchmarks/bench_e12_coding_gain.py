"""E12 — FEC coding gain at the range cliff (extension experiment).

The paper's future-work direction of hardening the PHY: hold the chip
rate fixed (the node's switch budget) and spend some of it on FEC. The
coded frame is longer but survives bit errors, so the BER-10^-3 frontier
moves out — at the cost of information rate.

Monte-Carlo waveform campaign comparing uncoded, Hamming(7,4) with
interleaving, and repetition-3 framing straddling the uncoded cliff.
"""

from repro.core import Scenario
from repro.phy.fec import FECScheme, code_rate
from repro.phy.frame import FrameConfig
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign

from _tables import print_table, run_bench_campaign

RANGES = [330.0, 370.0, 410.0, 450.0]
TRIALS = 10
SCHEMES = [
    ("uncoded", FrameConfig(fec=FECScheme.NONE)),
    ("hamming74+il8", FrameConfig(fec=FECScheme.HAMMING74, interleave_depth=8)),
    ("repetition3", FrameConfig(fec=FECScheme.REPETITION3)),
]


def run_coding_campaign():
    results = {}
    for name, cfg in SCHEMES:
        scenarios = sweep_range(Scenario.river(), RANGES)
        campaign = TrialCampaign(
            trials_per_point=TRIALS, seed=120, frame_config=cfg
        )
        results[name] = run_bench_campaign(scenarios, campaign, label=name)
    return results


def report(results):
    rows = []
    for (name, cfg), campaign in zip(SCHEMES, results.values()):
        for p in campaign.points:
            rows.append(
                [name, f"{code_rate(cfg.fec):.2f}", f"{p.range_m:.0f}",
                 f"{p.ber:.4f}", f"{p.frame_success_rate:.2f}"]
            )
    print_table(
        "E12: FEC at the cliff (river, fixed 2 kchip/s)",
        ["scheme", "rate", "range_m", "ber", "frame_ok"],
        rows,
    )
    for name, campaign in results.items():
        frontier = max(
            (p.range_m for p in campaign.points if p.frame_success_rate >= 1.0),
            default=0.0,
        )
        print(f"{name:>14}: 100%-delivery frontier ~{frontier:.0f} m")
    print(
        "note: past ~410 m the limiter becomes preamble detection, which\n"
        "no body FEC can protect — coding buys margin only in the regime\n"
        "where frames are detected but bits err."
    )


def test_e12_coding_gain(benchmark):
    results = benchmark.pedantic(run_coding_campaign, rounds=1, iterations=1)
    report(results)

    def frontier(campaign):
        return max(
            (p.range_m for p in campaign.points if p.frame_success_rate >= 1.0),
            default=0.0,
        )

    # Coding extends the 100%-delivery frontier past the uncoded cliff.
    assert frontier(results["hamming74+il8"]) >= frontier(results["uncoded"])
    assert frontier(results["repetition3"]) >= frontier(results["uncoded"])
    # In the detected-but-erroring band, Hamming halves the payload BER.
    idx = RANGES.index(410.0)
    unc = results["uncoded"].points[idx].ber
    ham = results["hamming74+il8"].points[idx].ber
    assert ham <= unc


if __name__ == "__main__":
    report(run_coding_campaign())
