"""E20 — Collisions at waveform level: validating the MAC premise (extension).

The slotted-ALOHA model (E10) scores collided slots as lost. This bench
checks the premise against the physics: nodes answering in the same slot
are summed at the hydrophone — but their round-trip delays differ, so the
frames partially self-stagger, and the relative carrier phase decides the
rest. The table maps outcomes over contender-separation geometry, plus
the capture-effect case the MAC silently benefits from.
"""

import numpy as np

from repro.core import Scenario
from repro.sim.multinode import NodePlacement, simulate_slot
from repro.vanatta.node import VanAttaNode

from _tables import print_table

BASE_RANGE = 80.0
SEPARATIONS = [0.5, 1.0, 2.0, 4.5, 7.5, 8.0]


def run_collision_study():
    scenario = Scenario.river(range_m=BASE_RANGE)
    rows = []
    for i, sep in enumerate(SEPARATIONS):
        result = simulate_slot(
            scenario,
            [
                NodePlacement(VanAttaNode(node_id=1), BASE_RANGE, b"frame A!"),
                NodePlacement(VanAttaNode(node_id=2), BASE_RANGE + sep, b"frame B!"),
            ],
            rng=np.random.default_rng(10 + i),
        )
        rows.append(
            {
                "separation_m": sep,
                "outcome": (
                    "lost" if result.decoded_payload is None
                    else f"captured node {result.decoded_node_id}"
                ),
                "lost": result.decoded_payload is None,
            }
        )

    capture = simulate_slot(
        scenario,
        [
            NodePlacement(VanAttaNode(node_id=1), 25.0, b"strong!!"),
            NodePlacement(VanAttaNode(node_id=2), 300.0, b"weak...."),
        ],
        rng=np.random.default_rng(5),
    )
    return rows, capture


def report(rows, capture):
    print_table(
        "E20: same-slot collision outcomes vs contender separation "
        f"(both near {BASE_RANGE:.0f} m)",
        ["separation_m", "outcome"],
        [[f"{r['separation_m']:.1f}", r["outcome"]] for r in rows],
    )
    print(
        f"near/far capture check: node at 25 m vs node at 300 m -> "
        f"decoded node {capture.decoded_node_id} "
        f"({'capture' if capture.decoded_node_id == 1 else 'unexpected'})"
    )


def test_e20_collisions(benchmark):
    rows, capture = benchmark.pedantic(run_collision_study, rounds=1, iterations=1)
    report(rows, capture)

    losses = sum(1 for r in rows if r["lost"])
    captures = len(rows) - losses
    # Both outcomes occur across geometry: collisions are a lottery the
    # MAC must retry through, not a deterministic loss.
    assert losses >= 1
    assert captures >= 1
    # The strong near node always captures over the weak far one.
    assert capture.decoded_node_id == 1
    assert capture.decoded_payload == b"strong!!"


if __name__ == "__main__":
    report(*run_collision_study())
