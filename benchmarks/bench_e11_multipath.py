"""E11 — Multipath robustness across deployment geometries.

The calibrated presets use the free-field reference condition; this bench
turns the full image-method channel back on and sweeps deployment depth
and range over sandy and muddy bottoms. Paper shape: shallow geometries
produce several-dB constructive/destructive swings around the free-field
budget (deployment-to-deployment variance), without breaking the link at
moderate range.
"""

import dataclasses

import numpy as np

from repro.core import Scenario
from repro.geometry.placement import Pose
from repro.geometry.vec3 import Vec3
from repro.sim.trials import TrialCampaign

from _tables import print_table

RANGES = [60.0, 120.0, 200.0]
DEPTH_FRACTIONS = [0.25, 0.5, 0.75]
WATER_DEPTH = 6.0


def multipath_scenario(range_m, z_fraction, bottom="sand"):
    z = WATER_DEPTH * z_fraction
    base = Scenario.river(range_m=range_m)
    water = dataclasses.replace(base.water, depth_m=WATER_DEPTH)
    sc = dataclasses.replace(
        base,
        water=water,
        reader=Pose(Vec3(0.0, 0.0, z)),
        node=Pose(Vec3(range_m, 0.0, z), 180.0),
        max_bounces=2,
        name=f"multipath-{bottom}",
    )
    return sc


def run_multipath_grid():
    rows = []
    campaign = TrialCampaign(trials_per_point=6, seed=88)
    for r in RANGES:
        for zf in DEPTH_FRACTIONS:
            sc = multipath_scenario(r, zf)
            response = sc.channel().between(sc.reader.position, sc.node.position)
            free_field = sc.channel(direct_only=True).between(
                sc.reader.position, sc.node.position
            )
            fading_db = response.total_gain_db() - free_field.total_gain_db()
            point = campaign.run_point(sc, point_index=int(r) * 10 + int(zf * 10))
            rows.append(
                {
                    "range_m": r,
                    "depth_m": WATER_DEPTH * zf,
                    "paths": len(response.paths),
                    "fading_db": fading_db,
                    "delay_spread_us": response.rms_delay_spread() * 1e6,
                    "frame_ok": point.frame_success_rate,
                }
            )
    return rows


def report(rows):
    print_table(
        "E11: multipath fading across deployment geometry (river, 6 m column)",
        ["range_m", "depth_m", "paths", "fading_vs_freefield_db",
         "delay_spread_us", "frame_ok"],
        [
            [f"{r['range_m']:.0f}", f"{r['depth_m']:.1f}", r["paths"],
             f"{r['fading_db']:+.1f}", f"{r['delay_spread_us']:.0f}",
             f"{r['frame_ok']:.2f}"]
            for r in rows
        ],
    )


def test_e11_multipath(benchmark):
    rows = benchmark.pedantic(run_multipath_grid, rounds=1, iterations=1)
    report(rows)

    fading = np.array([r["fading_db"] for r in rows])
    # Multipath is real: the grid spans constructive and destructive
    # geometries by several dB.
    assert fading.max() - fading.min() > 6.0
    assert fading.max() > 2.0
    # Every geometry traces the full image set.
    assert all(r["paths"] >= 3 for r in rows)
    # The link survives most geometries at these moderate ranges.
    ok = [r["frame_ok"] for r in rows]
    assert sum(1 for f in ok if f >= 0.8) >= len(ok) * 0.6


if __name__ == "__main__":
    report(run_multipath_grid())
