"""E14 — Storage-assisted operation beyond the harvesting radius (extension).

E8 shows the node self-sustains only within ~15 m of the reader, yet the
headline experiments read nodes at 300 m. The deployment answer is the
supercap life cycle: top up when the reader boat passes close, then serve
long-range interrogations from storage. This bench quantifies that cycle:

* recharge time at close range vs starting state,
* interrogations served per full charge vs polling period and cap size.
"""

from repro.core import Scenario, default_vab_budget
from repro.link.energy import DutyCycledNode, StorageState, endurance_interrogations

from _tables import print_table

POLL_PERIODS = [10.0, 60.0, 300.0]
CAPS_UF = [220.0, 1000.0, 4700.0]
RECHARGE_RANGES = [5.0, 10.0, 15.0]


def run_duty_cycle_study():
    budget = default_vab_budget(Scenario.river())
    carrier_hz = budget.scenario.carrier_hz

    recharge_rows = []
    for r in RECHARGE_RANGES:
        incident = budget.incident_level_db(r)
        node = DutyCycledNode()
        node.storage.voltage_v = node.storage.min_voltage_v
        seconds = 0.0
        # Charge in 10 s steps until full (or give up after 2 h).
        while node.storage.voltage_v < node.storage.max_voltage_v - 1e-6:
            node.recharge(incident, 10.0, carrier_hz)
            seconds += 10.0
            if seconds > 7200.0:
                seconds = float("inf")
                break
        recharge_rows.append({"range_m": r, "incident_db": incident,
                              "recharge_s": seconds})

    endurance_rows = []
    for cap_uf in CAPS_UF:
        for period in POLL_PERIODS:
            node = DutyCycledNode(
                storage=StorageState(capacitance_f=cap_uf * 1e-6)
            )
            n = endurance_interrogations(node, polling_period_s=period)
            endurance_rows.append(
                {"cap_uF": cap_uf, "period_s": period, "responses": n,
                 "service_h": n * period / 3600.0}
            )
    return recharge_rows, endurance_rows


def report(recharge_rows, endurance_rows):
    print_table(
        "E14a: supercap recharge time near the reader (empty -> full)",
        ["range_m", "incident_dB", "recharge_s"],
        [
            [f"{r['range_m']:.0f}", f"{r['incident_db']:.1f}",
             "never" if r["recharge_s"] == float("inf") else f"{r['recharge_s']:.0f}"]
            for r in recharge_rows
        ],
    )
    print_table(
        "E14b: interrogations served per full charge (no recharge at range)",
        ["cap_uF", "poll_period_s", "responses", "service_hours"],
        [
            [f"{r['cap_uF']:.0f}", f"{r['period_s']:.0f}",
             r["responses"], f"{r['service_h']:.2f}"]
            for r in endurance_rows
        ],
    )


def test_e14_duty_cycle(benchmark):
    recharge_rows, endurance_rows = benchmark.pedantic(
        run_duty_cycle_study, rounds=1, iterations=1
    )
    report(recharge_rows, endurance_rows)

    # Recharge is fast near the reader and slows with range.
    times = [r["recharge_s"] for r in recharge_rows]
    assert times[0] < 300.0
    assert all(b >= a for a, b in zip(times, times[1:]))
    # Endurance grows with capacitance and with faster polling (idle burn
    # dominates at long periods).
    by_key = {(r["cap_uF"], r["period_s"]): r["responses"] for r in endurance_rows}
    assert by_key[(4700.0, 60.0)] > by_key[(220.0, 60.0)]
    assert by_key[(220.0, 10.0)] > by_key[(220.0, 300.0)]
    # The headline scenario is viable: a 1 mF node polled every minute
    # serves tens of reads per top-up.
    assert by_key[(1000.0, 60.0)] >= 10


if __name__ == "__main__":
    report(*run_duty_cycle_study())
