"""Tests for confidence intervals and result export."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.confidence import (
    ProportionEstimate,
    trials_for_ber_confidence,
    wilson_interval,
    zero_error_ber_bound,
)
from repro.sim.export import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from repro.sim.results import BERPoint, CampaignResult


class TestWilson:
    def test_half_and_half(self):
        est = wilson_interval(50, 100)
        assert est.value == 0.5
        assert est.lower < 0.5 < est.upper
        assert est.width < 0.25

    def test_zero_successes_nonzero_upper(self):
        est = wilson_interval(0, 20)
        assert est.value == 0.0
        assert est.lower == 0.0
        assert 0.0 < est.upper < 0.3

    def test_all_successes_nonunit_lower(self):
        est = wilson_interval(20, 20)
        assert est.upper == 1.0
        assert 0.7 < est.lower < 1.0

    def test_more_trials_tighter(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert narrow.width < wide.width / 5

    def test_higher_confidence_wider(self):
        c90 = wilson_interval(10, 40, confidence=0.90)
        c99 = wilson_interval(10, 40, confidence=0.99)
        assert c99.width > c90.width

    def test_contains(self):
        est = wilson_interval(10, 100)
        assert est.contains(0.1)
        assert not est.contains(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40)
    def test_interval_well_formed(self, k, n):
        if k > n:
            k = n
        est = wilson_interval(k, n)
        assert 0.0 <= est.lower <= est.value <= est.upper <= 1.0


class TestZeroErrorBound:
    def test_rule_of_three(self):
        assert zero_error_ber_bound(1000) == pytest.approx(3.0 / 1000, rel=0.01)

    def test_more_bits_tighter(self):
        assert zero_error_ber_bound(10_000) < zero_error_ber_bound(1_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            zero_error_ber_bound(0)


class TestTrialPlanning:
    def test_ber_1e3_needs_thousands_of_bits(self):
        n = trials_for_ber_confidence(1e-3, relative_precision=0.5)
        assert 10_000 < n < 100_000

    def test_tighter_precision_needs_more(self):
        assert trials_for_ber_confidence(1e-3, 0.1) > trials_for_ber_confidence(
            1e-3, 0.5
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            trials_for_ber_confidence(0.0)


def sample_campaign():
    c = CampaignResult(label="roundtrip")
    c.add(BERPoint(50.0, 0.0, 10, 0.0, 1.0, 1.0, 28.5))
    c.add(BERPoint(400.0, 30.0, 10, 0.5, 0.0, 0.0, -math.inf))
    return c


class TestExport:
    def test_dict_roundtrip(self):
        original = sample_campaign()
        rebuilt = campaign_from_dict(campaign_to_dict(original))
        assert rebuilt.label == original.label
        assert rebuilt.points == original.points

    def test_file_roundtrip(self, tmp_path):
        original = sample_campaign()
        path = tmp_path / "campaign.json"
        save_campaign(original, path)
        rebuilt = load_campaign(path)
        assert rebuilt.points == original.points

    def test_infinities_survive_json(self, tmp_path):
        path = tmp_path / "inf.json"
        save_campaign(sample_campaign(), path)
        text = path.read_text()
        assert "Infinity" not in text  # valid strict JSON
        rebuilt = load_campaign(path)
        assert rebuilt.points[1].mean_snr_db == -math.inf

    def test_schema_guard(self):
        data = campaign_to_dict(sample_campaign())
        data["schema"] = 99
        with pytest.raises(ValueError):
            campaign_from_dict(data)
