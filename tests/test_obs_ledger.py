"""Tests for the content-addressed run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.obs.ledger import (
    Ledger,
    diff_manifests,
    ledger_rows,
    render_diff,
    render_ledger,
    run_id,
    run_key,
)
from repro.obs.manifest import RunManifest
from repro.sim.parallel import run_observed_campaign
from repro.sim.scenario import Scenario
from repro.sim.sweep import sweep_range
from repro.sim.trials import TrialCampaign


def make_manifest(label="a", seed=7, ber=0.1, range_m=50.0, elapsed=1.0,
                  workers=1, trials=5):
    return RunManifest(
        label=label,
        seed=seed,
        version="1.0",
        created_unix=1000.0 + elapsed,
        elapsed_s=elapsed,
        workers=workers,
        campaign={"trials_per_point": trials, "engine": "auto"},
        scenarios=[{"range_m": range_m, "water": {"depth_m": 4.0}}],
        timings={"campaign": {"total_s": elapsed, "count": 1,
                              "mean_ms": elapsed * 1e3}},
        metrics={"counters": {}},
        results={"points": [{"trials": trials, "ber": ber,
                             "frame_success_rate": 1.0 - ber,
                             "detection_rate": 1.0,
                             "mean_snr_db": 12.0, "range_m": range_m,
                             "incidence_deg": 0.0}]},
        engine_versions={"phy.batch": 1},
    )


class TestRunKey:
    def test_identical_configs_share_a_key(self):
        assert run_key(make_manifest(elapsed=1.0)) == run_key(
            make_manifest(elapsed=9.0)
        )

    def test_label_and_workers_do_not_change_the_key(self):
        base = run_key(make_manifest())
        assert run_key(make_manifest(label="other")) == base
        assert run_key(make_manifest(workers=8)) == base

    def test_scenario_seed_and_engine_changes_change_the_key(self):
        base = run_key(make_manifest())
        assert run_key(make_manifest(range_m=80.0)) != base
        assert run_key(make_manifest(seed=8)) != base
        changed = make_manifest()
        changed.engine_versions = {"phy.batch": 2}
        assert run_key(changed) != base

    def test_results_do_not_change_the_key_but_change_the_run_id(self):
        a, b = make_manifest(ber=0.1), make_manifest(ber=0.3)
        assert run_key(a) == run_key(b)
        assert run_id(a) != run_id(b)

    def test_run_id_ignores_volatile_telemetry(self):
        a, b = make_manifest(elapsed=1.0), make_manifest(elapsed=5.0)
        assert run_id(a) == run_id(b)


class TestLedgerStore:
    def test_record_files_manifest_under_key(self, tmp_path):
        ledger = Ledger(tmp_path)
        rec = ledger.record(make_manifest())
        assert rec.manifest_path.exists()
        assert rec.manifest_path.parent.name == rec.key
        assert not rec.duplicate
        assert ledger.load(rec.run_id).label == "a"

    def test_repeat_runs_share_key_and_both_index(self, tmp_path):
        ledger = Ledger(tmp_path)
        r1 = ledger.record(make_manifest(elapsed=1.0))
        r2 = ledger.record(make_manifest(elapsed=2.0))
        assert r1.key == r2.key and r1.run_id == r2.run_id
        assert r2.duplicate
        assert len(ledger.entries()) == 2
        rows = ledger_rows(ledger)
        assert len(rows) == 1 and rows[0]["runs"] == 2

    def test_distinct_configs_get_distinct_rows(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.record(make_manifest())
        ledger.record(make_manifest(range_m=90.0))
        assert len(ledger_rows(ledger)) == 2
        listing = render_ledger(ledger)
        assert "2 configuration(s)" in listing

    def test_resolve_by_prefix_and_ambiguity(self, tmp_path):
        ledger = Ledger(tmp_path)
        r1 = ledger.record(make_manifest())
        r2 = ledger.record(make_manifest(range_m=90.0))
        assert ledger.resolve(r1.run_id[:6]).run_id == r1.run_id
        assert ledger.resolve(r2.key[:10]).run_id == r2.run_id
        with pytest.raises(KeyError):
            ledger.resolve("")
        with pytest.raises(KeyError):
            ledger.resolve("zzzz")

    def test_empty_ledger(self, tmp_path):
        ledger = Ledger(tmp_path / "missing")
        assert ledger.entries() == []
        assert "empty" in render_ledger(ledger)

    def test_torn_index_line_is_tolerated(self, tmp_path):
        ledger = Ledger(tmp_path)
        rec = ledger.record(make_manifest())
        with ledger.index_path.open("a") as fh:
            fh.write('{"ts": 1, "key": "abc')  # killed mid-write
        assert [e["run_id"] for e in ledger.entries()] == [rec.run_id]

    def test_events_are_copied_into_the_store(self, tmp_path):
        events_src = tmp_path / "run.events.jsonl"
        events_src.write_text('{"ts": 1, "event": "campaign_start"}\n')
        manifest = make_manifest()
        manifest.events_path = str(events_src)
        rec = Ledger(tmp_path / "led").record(manifest)
        assert rec.events_path is not None and rec.events_path.exists()
        events_src.unlink()  # the filed copy outlives the original
        assert rec.events_path.exists()

    def test_env_var_selects_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("VAB_LEDGER_DIR", str(tmp_path / "envled"))
        assert Ledger().root == tmp_path / "envled"


class TestDiff:
    def test_scenario_metric_and_timing_deltas(self):
        a = make_manifest(range_m=50.0, ber=0.1, elapsed=1.0)
        b = make_manifest(range_m=80.0, ber=0.2, elapsed=2.0)
        diff = diff_manifests(a, b)
        assert not diff["same_key"]
        fields = {d["field"] for d in diff["scenarios"]}
        assert "range_m" in fields
        metrics = {d["metric"]: d for d in diff["metrics"]}
        assert metrics["ber"]["delta"] == pytest.approx(0.1)
        assert any(t["stage"] == "campaign" for t in diff["timings"])
        text = render_diff(diff)
        assert "range_m" in text and "ber" in text and "campaign" in text

    def test_identical_runs_diff_clean(self):
        diff = diff_manifests(make_manifest(), make_manifest())
        assert diff["same_key"]
        assert not diff["scenarios"] and not diff["metrics"]
        assert "no differences" in render_diff(diff)

    def test_campaign_config_delta_reported(self):
        a = make_manifest(trials=5)
        b = make_manifest(trials=50)
        diff = diff_manifests(a, b)
        assert any(
            d["field"] == "campaign.trials_per_point" for d in diff["config"]
        )


class TestLedgerEndToEnd:
    @pytest.fixture(scope="class")
    def sweep_pair(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("ledger-e2e")
        ledger = Ledger(tmp / "store")
        scenarios = sweep_range(Scenario.river(), [50.0, 150.0])
        campaign = TrialCampaign(trials_per_point=2, seed=11)
        _, m1 = run_observed_campaign(
            scenarios, campaign, label="e2e", workers=1,
            ledger=ledger, progress=False,
        )
        _, m2 = run_observed_campaign(
            scenarios, campaign, label="e2e", workers=1,
            ledger=ledger, progress=False,
        )
        return ledger, m1, m2

    def test_same_sweep_twice_one_entry_two_runs(self, sweep_pair):
        ledger, m1, m2 = sweep_pair
        assert run_key(m1) == run_key(m2)
        rows = ledger_rows(ledger)
        assert len(rows) == 1
        assert rows[0]["runs"] == 2

    def test_manifest_records_engine_versions(self, sweep_pair):
        _, m1, _ = sweep_pair
        assert m1.engine_versions is not None
        assert "phy.batch" in m1.engine_versions
        assert "analysis.units" in m1.engine_versions

    def test_stored_manifest_loads_equal(self, sweep_pair):
        ledger, m1, _ = sweep_pair
        rec = ledger.resolve(run_key(m1)[:12])
        stored = json.loads(rec.manifest_path.read_text())
        assert stored["seed"] == m1.seed
        assert stored["results"] == m1.results
