"""Unit and property tests for repro.geometry.vec3."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec3 import Vec3, cross, dot, norm, unit

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vec3s():
    return st.builds(Vec3, finite, finite, finite)


class TestConstruction:
    def test_zero(self):
        assert Vec3.zero().as_tuple() == (0.0, 0.0, 0.0)

    def test_from_array_roundtrip(self):
        v = Vec3.from_array(np.array([1.0, -2.0, 3.5]))
        assert v == Vec3(1.0, -2.0, 3.5)
        np.testing.assert_allclose(v.as_array(), [1.0, -2.0, 3.5])

    def test_from_spherical_along_x(self):
        v = Vec3.from_spherical(10.0, 0.0, 0.0)
        assert v.x == pytest.approx(10.0)
        assert v.y == pytest.approx(0.0)
        assert v.z == pytest.approx(0.0)

    def test_from_spherical_elevation_points_up(self):
        v = Vec3.from_spherical(1.0, 0.0, math.pi / 2)
        # Positive elevation decreases z (z positive down).
        assert v.z == pytest.approx(-1.0)
        assert v.x == pytest.approx(0.0, abs=1e-12)

    def test_iteration_order(self):
        assert list(Vec3(1, 2, 3)) == [1, 2, 3]


class TestArithmetic:
    def test_add_sub(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        assert a + b == Vec3(5, 7, 9)
        assert b - a == Vec3(3, 3, 3)

    def test_scalar_ops(self):
        v = Vec3(1, -2, 3)
        assert 2 * v == Vec3(2, -4, 6)
        assert v / 2 == Vec3(0.5, -1, 1.5)
        assert -v == Vec3(-1, 2, -3)

    @given(vec3s(), vec3s())
    def test_addition_commutes(self, a, b):
        s1, s2 = a + b, b + a
        assert s1.x == pytest.approx(s2.x)
        assert s1.y == pytest.approx(s2.y)
        assert s1.z == pytest.approx(s2.z)


class TestMetrics:
    def test_norm_pythagorean(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Vec3(1, 1, 1), Vec3(4, 5, 1)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a)) == pytest.approx(5.0)

    def test_unit_has_norm_one(self):
        u = Vec3(10, -3, 2).unit()
        assert u.norm() == pytest.approx(1.0)

    def test_unit_of_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3.zero().unit()

    @given(vec3s())
    def test_norm_nonnegative(self, v):
        assert v.norm() >= 0.0

    @given(vec3s(), vec3s())
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6


class TestProducts:
    def test_dot_orthogonal(self):
        assert dot(Vec3(1, 0, 0), Vec3(0, 1, 0)) == 0.0

    def test_cross_right_handed(self):
        c = cross(Vec3(1, 0, 0), Vec3(0, 1, 0))
        assert c == Vec3(0, 0, 1)

    @given(vec3s(), vec3s())
    def test_cross_is_orthogonal(self, a, b):
        c = cross(a, b)
        assert dot(a, c) == pytest.approx(0.0, abs=max(a.norm() * b.norm(), 1.0) * 1e-6)

    @given(vec3s())
    def test_function_forms_match_methods(self, v):
        assert norm(v) == v.norm()
        if v.norm() > 1e-9:
            assert unit(v) == v.unit()


class TestTransforms:
    def test_rotated_z_quarter_turn(self):
        r = Vec3(1, 0, 5).rotated_z(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)
        assert r.z == 5.0

    @given(vec3s(), st.floats(min_value=-10, max_value=10))
    def test_rotation_preserves_norm(self, v, angle):
        assert v.rotated_z(angle).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-9)

    def test_surface_mirror_flips_z(self):
        assert Vec3(1, 2, 3).mirrored_surface() == Vec3(1, 2, -3)

    def test_bottom_mirror(self):
        assert Vec3(1, 2, 3).mirrored_bottom(10.0) == Vec3(1, 2, 17.0)

    def test_double_mirror_is_identity(self):
        v = Vec3(1, 2, 3)
        assert v.mirrored_surface().mirrored_surface() == v
